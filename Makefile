.PHONY: install test bench bench-full examples clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_SCALE=full pytest benchmarks/ --benchmark-only

examples:
	python examples/quickstart.py
	python examples/kernel_transformations.py
	python examples/inference_serving.py
	python examples/multi_tenant_packing.py
	python examples/custom_workload.py
	python examples/trace_colocation.py

clean:
	rm -rf results .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
