"""Shared benchmark fixtures.

``REPRO_SCALE=full`` switches every experiment benchmark from the CI
grid to the paper's complete grid (much slower).  Each benchmark writes
its paper-vs-measured report to ``results/`` and echoes it to stdout.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def scale() -> str:
    value = os.environ.get("REPRO_SCALE", "quick")
    if value not in ("quick", "full"):
        raise ValueError(f"REPRO_SCALE must be quick|full, got {value!r}")
    return value


@pytest.fixture(scope="session")
def report_sink():
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return write
