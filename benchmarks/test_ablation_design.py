"""Design-choice ablations beyond the paper's figures.

DESIGN.md calls out three design decisions this file quantifies:

* **primitive choice** — Tally restricted to slicing-only or PTB-only
  versus the full candidate set (the paper argues both primitives are
  needed because their trade-offs differ per kernel);
* **GPU model sensitivity** — the isolation result must not depend on
  A100-specific constants, so the headline pair is re-run on V100 and
  RTX 3090 specs;
* **channel transport** — the §4.3 shared-memory optimization,
  quantified as forwarding overhead per inference request.
"""

import numpy as np

from repro.core import TallyConfig
from repro.gpu import A100_SXM4_40GB, RTX_3090, V100_SXM2_16GB
from repro.harness import JobSpec, RunConfig, run_colocation, standalone
from repro.harness.reporting import format_table
from repro.virt import Channel, Response, SHARED_MEMORY, UNIX_SOCKET
from repro.virt.protocol import LaunchKernelRequest
from repro.ptx.ir import Dim3
from repro.workloads import get_model

from dataclasses import replace


def _pair_overhead(cfg):
    inf = JobSpec.inference("bert_infer", load=0.5)
    base = standalone(inf, cfg)
    result = run_colocation("Tally", [inf, JobSpec.training("whisper_train")],
                            cfg)
    job = result.job("bert_infer#0")
    train = result.job("whisper_train#0")
    train_base = standalone(JobSpec.training("whisper_train"), cfg)
    return (job.latency.p99 / base.latency.p99,
            train.rate / train_base.rate if train_base.rate else 0.0)


def test_ablation_scheduling_primitives(benchmark, report_sink):
    """Slicing-only vs PTB-only vs both."""
    cfg = RunConfig(duration=6.0, warmup=1.0)
    variants = {
        "both": TallyConfig(),
        "ptb-only": TallyConfig(slice_fractions=()),
        "sliced-only": TallyConfig(worker_sm_multiples=()),
    }

    def run():
        out = {}
        for label, tally_config in variants.items():
            variant_cfg = replace(cfg, tally_config=tally_config)
            out[label] = _pair_overhead(variant_cfg)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [(label, f"{ratio:.2f}x", f"{train:.2f}")
            for label, (ratio, train) in results.items()]
    report_sink("ablation_primitives", format_table(
        ("candidates", "p99 vs ideal", "train norm"), rows,
        title="Ablation: scheduling primitive families (BERT x Whisper)",
    ))

    # Every variant must still isolate (block-level granularity is what
    # matters, not which primitive implements it)...
    for label, (ratio, _train) in results.items():
        assert ratio < 1.6, f"{label} failed to isolate: {ratio:.2f}x"
    # ...and the full candidate set should not be the worst option for
    # best-effort throughput.
    both_train = results["both"][1]
    assert both_train >= min(t for _r, t in results.values()) - 1e-9


def test_ablation_gpu_spec_sensitivity(benchmark, report_sink):
    """The isolation result holds across GPU models."""
    specs = (A100_SXM4_40GB, V100_SXM2_16GB, RTX_3090)

    def run():
        out = {}
        for spec in specs:
            cfg = RunConfig(spec=spec, duration=6.0, warmup=1.0)
            out[spec.name] = _pair_overhead(cfg)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [(name, f"{ratio:.2f}x", f"{train:.2f}")
            for name, (ratio, train) in results.items()]
    report_sink("ablation_gpu_specs", format_table(
        ("GPU", "p99 vs ideal", "train norm"), rows,
        title="Ablation: GPU model sensitivity (BERT x Whisper under Tally)",
    ))

    for name, (ratio, _train) in results.items():
        assert ratio < 1.6, f"Tally lost isolation on {name}: {ratio:.2f}x"


def test_ablation_channel_transport(benchmark, report_sink):
    """Shared-memory vs socket forwarding overhead per request."""
    model = get_model("bert_infer")
    trace = model.build_trace(A100_SXM4_40GB)
    kernels = len(trace.kernels)
    request = LaunchKernelRequest("c", "k", Dim3(1), Dim3(1), {"a": 1})

    def run():
        out = {}
        for config in (SHARED_MEMORY, UNIX_SOCKET):
            channel = Channel(lambda r: Response.success(), config)
            per_call = channel.cost_of(request) + channel.cost_of(
                Response.success())
            out[config.name] = per_call * kernels
        return out

    costs = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [(name, f"{cost * 1e6:.1f} us",
             f"{cost / trace.duration:.1%} of request")
            for name, cost in costs.items()]
    report_sink("ablation_channel", format_table(
        ("transport", "forwarding per request", "relative overhead"), rows,
        title=(f"Ablation: §4.3 channel transport "
               f"({kernels} kernel launches per BERT request)"),
    ))

    shm = costs["shared-memory"]
    sock = costs["unix-socket"]
    # The optimization matters: sockets cost an order of magnitude more,
    # and shared memory keeps forwarding below a few percent of the
    # request latency (the "near-native" claim).
    assert sock > 5 * shm
    assert shm / trace.duration < 0.05
    assert np.isfinite(shm)
