"""Ablation: reset-based (REEF-style) vs block-level (Tally) preemption.

The paper's related-work argument: thread-level reset achieves the
lowest turnaround but only applies to idempotent kernels and discards
in-flight work.  This benchmark quantifies the trade-off on the
BERT-inference x Whisper-training pair: REEF should match (or slightly
beat) Tally's tail latency while paying for it in best-effort
throughput re-executing killed blocks.
"""

from repro.harness import JobSpec, RunConfig, run_colocation, standalone
from repro.harness.reporting import format_table


def test_ablation_reset_vs_block_level(benchmark, report_sink):
    cfg = RunConfig(duration=6.0, warmup=1.0)
    inf = JobSpec.inference("bert_infer", load=0.5)
    train = JobSpec.training("whisper_train")

    def run():
        base = standalone(inf, cfg)
        train_base = standalone(train, cfg)
        out = {}
        for system in ("REEF", "Tally"):
            result = run_colocation(system, [inf, train], cfg)
            j = result.job("bert_infer#0")
            t = result.job("whisper_train#0")
            out[system] = (
                j.latency.p99 / base.latency.p99,
                t.rate / train_base.rate if train_base.rate else 0.0,
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [(name, f"{ratio:.2f}x", f"{train_norm:.2f}")
            for name, (ratio, train_norm) in results.items()]
    report_sink("ablation_reef", format_table(
        ("system", "p99 vs ideal", "train norm"), rows,
        title=("Ablation: reset-based (REEF, idempotent-only) vs "
               "block-level (Tally) preemption"),
    ))

    reef_ratio, reef_train = results["REEF"]
    tally_ratio, tally_train = results["Tally"]
    # Both isolate the high-priority tail.
    assert reef_ratio < 1.5
    assert tally_ratio < 1.5
    # Reset-based preemption discards in-flight work; with Whisper's
    # long kernels and millisecond-scale request gaps the kernel can be
    # killed every time before it completes — reset *livelocks* the
    # training job, while Tally's task counter preserves progress.
    # This is the generalization failure the paper ascribes to REEF.
    assert tally_train > reef_train + 0.1
