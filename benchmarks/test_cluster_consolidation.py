"""Cluster consolidation: the paper's §1 motivation, quantified.

The Alibaba study the paper cites found median GPU utilization as low
as 4.2 % and estimated that effective sharing could cut the cluster's
GPU requirement by ~50 % on average (up to 73 % at peak).  This
benchmark builds a fleet shaped like that story — many low-load online
services, a batch-inference tier, and a set of training jobs — packs it
with Tally's sharing constraints, and verifies both the GPU savings and
that every online service still meets a 1.25x p99 SLA.
"""

from repro.cluster import (
    ClusterJob,
    dedicated_placement,
    evaluate_placement,
    packed_placement,
)
from repro.harness import RunConfig
from repro.harness.reporting import format_table


def _fleet() -> list[ClusterJob]:
    jobs: list[ClusterJob] = []
    seed = 0
    # Low-utilization online services (the underutilization story).
    for model, load in [("resnet50_infer", 0.10), ("bert_infer", 0.12),
                        ("yolov6m_infer", 0.10), ("resnet50_infer", 0.08),
                        ("bert_infer", 0.10), ("yolov6m_infer", 0.12)]:
        jobs.append(ClusterJob(model, load=load, traffic_seed=seed))
        seed += 1
    # A batch-inference (offline) tier.
    for model in ("resnet50_infer", "bert_infer", "resnet50_infer"):
        jobs.append(ClusterJob(model, load=0.3, offline=True,
                               traffic_seed=seed))
        seed += 1
    # Training jobs.
    for model in ("resnet50_train", "pointnet_train", "bert_train",
                  "gpt2_train"):
        jobs.append(ClusterJob(model, traffic_seed=seed))
        seed += 1
    return jobs


def test_cluster_consolidation(benchmark, report_sink, scale):
    jobs = _fleet()
    duration = 8.0 if scale == "full" else 5.0
    config = RunConfig(duration=duration, warmup=1.0)

    def run():
        dedicated = dedicated_placement(jobs)
        packed = packed_placement(jobs, compute_budget=1.4)
        return (dedicated, packed,
                evaluate_placement(packed, "Tally", config))

    dedicated, packed, result = benchmark.pedantic(run, rounds=1,
                                                   iterations=1)
    saved = 1 - packed.gpus_used / dedicated.gpus_used
    rows = [
        ("jobs", len(jobs), ""),
        ("GPUs, dedicated", dedicated.gpus_used, "one job per GPU"),
        ("GPUs, Tally-packed", packed.gpus_used,
         f"{saved:.0%} fewer GPUs"),
        ("online services", len(result.services), ""),
        ("SLA violations (1.25x p99)", result.sla_violations, ""),
        ("worst online p99", f"{result.worst_p99_ratio:.2f}x", ""),
        ("aggregate normalized thpt",
         f"{result.total_normalized_throughput:.1f}", ""),
    ]
    report_sink("cluster_consolidation", format_table(
        ("metric", "value", "note"), rows,
        title=("Cluster consolidation under Tally "
               "(paper §1 / Alibaba-study motivation)"),
    ))

    # The motivating claim: sharing saves a large fraction of GPUs...
    assert saved >= 0.4, f"only {saved:.0%} GPUs saved"
    # ...without violating any online service's SLA.
    assert result.sla_violations == 0, (
        f"{result.sla_violations} SLA violations, "
        f"worst {result.worst_p99_ratio:.2f}x"
    )