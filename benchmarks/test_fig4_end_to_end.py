"""Figure 4: end-to-end p99 latency and system throughput.

Paper reference (36 inference x training pairs, MAF trace @ 50 % load):
mean p99 overhead Time-Slicing 252.3 %, MPS 345.0 %, MPS-Priority
195.5 %, TGS 188.9 %, Tally 7.2 %; Tally achieves >= 80 % of TGS's
system throughput.
"""

from repro.harness.experiments import fig4


def test_fig4_end_to_end_grid(benchmark, report_sink, scale):
    result = benchmark.pedantic(fig4, args=(scale,), rounds=1, iterations=1)
    report_sink("fig4_end_to_end", result.report())

    # Tally's headline claim: near-ideal tail latency.  The paper
    # reports 7.2 % mean overhead with a 23 % worst case; we allow a
    # little slack for the condensed workloads.
    tally = result.mean_overhead("Tally")
    assert tally < 0.30, f"Tally mean p99 overhead too high: {tally:.1%}"
    worst = max(c.overhead for c in result.for_system("Tally"))
    assert worst < 0.60, f"Tally worst-case overhead too high: {worst:.1%}"

    # Every kernel-granularity baseline interferes at least an order of
    # magnitude more than Tally (the paper's central comparison).
    for system in ("Time-Slicing", "MPS", "MPS-Priority", "TGS"):
        baseline = result.median_overhead(system)
        assert baseline > 3 * max(tally, 0.02), (
            f"{system} median overhead {baseline:.1%} not clearly worse "
            f"than Tally {tally:.1%}"
        )

    # Throughput: Tally trades some best-effort progress for isolation
    # but stays within reach of TGS (paper: >= 80 %).
    ratio = result.throughput_vs("Tally", "TGS")
    assert ratio > 0.70, f"Tally/TGS system throughput {ratio:.2f} < 0.70"
