"""Figure 5a: sensitivity to traffic load (GPU idle fraction sweep).

Paper reference: Tally's p99 stays indistinguishable from ideal across
10-90 % idle, while TGS degrades up to 5.8x (BERT) / 2.3x (Llama-2);
both systems' throughput rises with idle time and converges at high
idle fractions.
"""

import numpy as np

from repro.harness.experiments import fig5a, fig5a_report


def test_fig5a_load_sweep(benchmark, report_sink, scale):
    points = benchmark.pedantic(fig5a, args=(scale,), rounds=1, iterations=1)
    report_sink("fig5a_load_sensitivity", fig5a_report(points))

    tally = [p for p in points if p.system == "Tally"]
    tgs = [p for p in points if p.system == "TGS"]

    # Tally holds near-ideal latency at every load point.
    worst_tally = max(p.p99_ratio for p in tally)
    assert worst_tally < 1.5, f"Tally p99 ratio reached {worst_tally:.2f}x"

    # TGS suffers multi-x slowdowns somewhere in the sweep.
    worst_tgs = max(p.p99_ratio for p in tgs)
    assert worst_tgs > 1.8, f"TGS never degraded (max {worst_tgs:.2f}x)"

    # Throughput grows with idle time for both systems.
    for system_points in (tally, tgs):
        by_idle = {}
        for p in system_points:
            by_idle.setdefault(p.idle_percent, []).append(p.system_throughput)
        idles = sorted(by_idle)
        means = [float(np.mean(by_idle[i])) for i in idles]
        assert means[-1] > means[0], (
            f"{system_points[0].system} throughput did not grow with idle "
            f"time: {dict(zip(idles, means))}"
        )

    # At high idle fractions the two systems' throughput converges
    # (paper: the gap diminishes as idleness grows).
    def gap_at(idle):
        t = np.mean([p.system_throughput for p in tally
                     if p.idle_percent == idle])
        g = np.mean([p.system_throughput for p in tgs
                     if p.idle_percent == idle])
        return abs(float(g) - float(t))

    low_idle = min(p.idle_percent for p in tally)
    high_idle = max(p.idle_percent for p in tally)
    assert gap_at(high_idle) <= gap_at(low_idle) + 0.15
