"""Figure 5b: time-series of traffic, tail latency, and throughput.

Paper reference: under a condensed MAF2 trace, Tally's per-interval
p99 tracks the ideal line throughout, the baselines show substantial
slowdowns, and the co-located BERT training job retains over 68 % of
its standalone throughput on average under Tally.
"""

import math

import numpy as np

from repro.harness.experiments import fig5b
from repro.harness.plots import series_panel, sparkline
from repro.harness.reporting import format_table


def _report(series, ideal):
    rows = []
    for i, count in enumerate(ideal.traffic):
        row = [i, count, _fmt(ideal.p99[i])]
        for s in series:
            row.append(_fmt(s.p99[i]))
        tally = next(s for s in series if s.system == "Tally")
        row.append(f"{tally.train_throughput[i]:.2f}")
        rows.append(row)
    headers = (["interval", "requests", "ideal p99"]
               + [f"{s.system} p99" for s in series]
               + ["Tally train norm"])
    table = format_table(headers, rows,
                         title="Figure 5b: time series (BERT inf x BERT train)")
    tally = next(s for s in series if s.system == "Tally")
    panel = series_panel(
        "p99 over time (shared scale; Tally should hug the ideal line)",
        [("ideal", ideal.p99)] + [(s.system, s.p99) for s in series],
    )
    extras = "\n".join([
        "",
        f"traffic   {sparkline([float(c) for c in ideal.traffic])}",
        f"train thr {sparkline(tally.train_throughput)}  "
        "(Tally best-effort, inverse of traffic)",
        "",
        panel,
    ])
    return table + "\n" + extras


def _fmt(value):
    return "-" if (value != value) else f"{value * 1e3:.2f} ms"


def test_fig5b_timeseries(benchmark, report_sink, scale):
    series, ideal = benchmark.pedantic(fig5b, args=(scale,), rounds=1,
                                       iterations=1)
    report_sink("fig5b_timeseries", _report(series, ideal))

    tally = next(s for s in series if s.system == "Tally")

    # Tally's per-interval p99 tracks ideal closely in most intervals.
    ratios = [t / i for t, i in zip(tally.p99, ideal.p99)
              if not (math.isnan(t) or math.isnan(i))]
    assert ratios, "no comparable intervals"
    assert float(np.median(ratios)) < 1.4

    # Best-effort training keeps a healthy share of its standalone
    # throughput on average (paper: > 68 %; our strict-priority
    # scheduler trades more throughput at the condensed time scale).
    mean_train = float(np.mean(tally.train_throughput))
    assert mean_train > 0.10, f"training starved: {mean_train:.2f}"

    # Throughput adapts: intervals with low traffic leave more room for
    # training than the busiest intervals.
    order = np.argsort(ideal.traffic)
    quiet = [tally.train_throughput[i] for i in order[:3]]
    busy = [tally.train_throughput[i] for i in order[-3:]]
    assert float(np.mean(quiet)) > float(np.mean(busy))

    # At least one baseline shows a clearly worse worst-interval p99.
    worst_tally = float(np.nanmax(tally.p99))
    worst_baselines = [float(np.nanmax(s.p99)) for s in series
                       if s.system != "Tally"]
    assert max(worst_baselines) > 1.5 * worst_tally
