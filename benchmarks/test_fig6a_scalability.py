"""Figure 6a: scalability with the number of best-effort workloads.

Paper reference: one high-priority ResNet50 inference service at 10 %
load co-located with up to 10 identical best-effort services — the
high-priority p99 stays flat while aggregate throughput climbs until
the GPU saturates around 8 best-effort jobs.
"""

from repro.harness.experiments import fig6a
from repro.harness.reporting import format_seconds, format_table


def _report(points):
    rows = [
        (p.best_effort_jobs, format_seconds(p.p99),
         f"{p.p99_ratio:.2f}x", f"{p.requests_per_minute:.0f}")
        for p in points
    ]
    return format_table(
        ("best-effort jobs", "HP p99", "vs ideal", "requests/min"),
        rows, title="Figure 6a: scalability with workload count",
    )


def test_fig6a_scalability(benchmark, report_sink, scale):
    points = benchmark.pedantic(fig6a, args=(scale,), rounds=1, iterations=1)
    report_sink("fig6a_scalability", _report(points))

    # High-priority latency stays flat across the whole sweep.
    for p in points:
        assert p.p99_ratio < 1.5, (
            f"HP p99 degraded to {p.p99_ratio:.2f}x with "
            f"{p.best_effort_jobs} best-effort jobs"
        )

    # Aggregate throughput grows with the number of best-effort jobs...
    first, last = points[0], points[-1]
    assert last.requests_per_minute > 2.0 * first.requests_per_minute

    # ...monotonically-ish (each added job never costs much).
    for a, b in zip(points, points[1:]):
        assert b.requests_per_minute > 0.85 * a.requests_per_minute
