"""Figure 6b: performance decomposition (ablation).

Paper reference: BERT inference p99 vs six training partners.
No-scheduling reaches up to 30x slowdown (Whisper), priority-aware
scheduling w/o transformation still reaches ~10x for long-kernel
workloads but is near-ideal for ResNet50/GPT-2, and full Tally brings
the average down to ~4 % (worst case 6.2 %).
"""

import numpy as np

from repro.harness.experiments import fig6b, fig6b_report


def test_fig6b_ablation(benchmark, report_sink, scale):
    rows = benchmark.pedantic(fig6b, args=(scale,), rounds=1, iterations=1)
    report_sink("fig6b_ablation", fig6b_report(rows))

    def ratios(attr):
        return {r.training: getattr(r, attr) / r.ideal_p99 for r in rows}

    none = ratios("no_scheduling")
    sched = ratios("scheduling_only")
    full = ratios("full_tally")

    # Each ablation stage strictly improves the bad cases.
    assert max(none.values()) > max(sched.values()) > max(full.values())

    # No-scheduling interferes heavily on long-kernel training partners.
    assert none["whisper_train"] > 5.0

    # Scheduling alone fixes short-kernel partners but not Whisper —
    # the paper's motivation for block-level transformation.
    assert sched["whisper_train"] > 1.5
    if "resnet50_train" in sched:
        assert sched["resnet50_train"] < sched["whisper_train"]

    # Full Tally is near-ideal across the board.
    mean_full = float(np.mean(list(full.values())))
    assert mean_full < 1.25, f"full-Tally mean ratio {mean_full:.2f}"
    assert max(full.values()) < 1.6
