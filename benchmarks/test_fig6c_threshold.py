"""Figure 6c: the turnaround-latency threshold trade-off.

Paper reference: sweeping the threshold from 0.01 ms to 10 ms, higher
thresholds raise inference tail latency with only a slight throughput
gain; 0.0316 ms balances the two and is the default.
"""

import numpy as np

from repro.harness.experiments import fig6c, fig6c_report


def test_fig6c_threshold_sweep(benchmark, report_sink, scale):
    points = benchmark.pedantic(fig6c, args=(scale,), rounds=1, iterations=1)
    report_sink("fig6c_threshold", fig6c_report(points))

    thresholds = sorted({p.threshold for p in points})

    def mean_at(threshold, attr):
        vals = [getattr(p, attr) for p in points if p.threshold == threshold]
        return float(np.mean(vals))

    lat = [mean_at(t, "p99_ratio") for t in thresholds]
    thpt = [mean_at(t, "training_norm") for t in thresholds]

    # The largest threshold hurts latency more than the smallest.
    assert lat[-1] > lat[0] - 0.02

    # The paper's default keeps latency near-ideal.
    default = 0.0316e-3
    assert default in thresholds
    assert mean_at(default, "p99_ratio") < 1.5

    # Loosening the bound never *loses* best-effort throughput by much,
    # and the largest bound is at least as fast for training as the
    # tightest one.
    assert thpt[-1] >= thpt[0] - 0.05
