"""Microbenchmarks of the reproduction's own components.

Not paper artefacts — these time the substrate itself (transformation
passes, functional interpreter, event engine, channel round trips) so
performance regressions in the infrastructure are caught.
"""

import numpy as np

from repro.gpu import A100_SXM4_40GB, DeviceLaunch, EventLoop, GPUDevice, \
    KernelDescriptor
from repro.ptx import Interpreter, make_case
from repro.runtime import FatBinary
from repro.core import ExecMode, ExecPlan, TallyServer, connect_runtime
from repro.ptx.library import matmul_tiled, vector_add
from repro.transform import make_preemptible, make_sliced, make_unified_sync


def test_bench_slicing_pass(benchmark):
    case = make_case("matmul_tiled", np.random.default_rng(1))
    benchmark(lambda: make_sliced(case.kernel))


def test_bench_unified_sync_pass(benchmark):
    case = make_case("softmax_rows", np.random.default_rng(2))
    benchmark(lambda: make_unified_sync(case.kernel))


def test_bench_preemption_pass(benchmark):
    case = make_case("softmax_rows", np.random.default_rng(3))
    benchmark(lambda: make_preemptible(case.kernel))


def test_bench_interpreter_vector_add(benchmark):
    case = make_case("vector_add", np.random.default_rng(4))

    def run():
        Interpreter(case.memory).launch(case.kernel, case.grid, case.block,
                                        case.args)

    benchmark(run)


def test_bench_event_engine(benchmark):
    def run():
        loop = EventLoop()
        for i in range(5000):
            loop.schedule(float(i) * 1e-6, lambda: None)
        loop.run()

    benchmark(run)


def test_bench_device_dispatch(benchmark):
    spec = A100_SXM4_40GB
    k = KernelDescriptor("k", num_blocks=8640, threads_per_block=256,
                         block_duration=20e-6)

    def run():
        engine = EventLoop()
        device = GPUDevice(spec, engine)
        for _ in range(20):
            device.submit(DeviceLaunch(k, client_id="c"))
        engine.run()

    benchmark(run)


def test_bench_virtualized_launch_roundtrip(benchmark):
    server = TallyServer(best_effort_plan=ExecPlan(ExecMode.ORIGINAL))
    rt = connect_runtime(server, "bench")
    rt.register_fat_binary(FatBinary.of("b", [vector_add()]))
    n = 64
    x, y, out = rt.malloc(n), rt.malloc(n), rt.malloc(n)
    rt.memcpy_h2d(x, np.ones(n))
    rt.memcpy_h2d(y, np.ones(n))
    args = {"x": x, "y": y, "out": out, "n": n}

    benchmark(lambda: rt.launch_kernel("vector_add", (4,), (16,), args))
