"""Table 1: turnaround latency by scheduling granularity.

Paper reference (Whisper training vs 3.93 ms BERT inference, A100):
iteration ~3 s, kernel ~10 ms, block ~304 us, thread ~38 us.
"""

from repro.harness.experiments import table1


def test_table1_turnaround_by_granularity(benchmark, report_sink):
    result = benchmark.pedantic(table1, rounds=1, iterations=1)
    report_sink("table1_granularity", result.report())

    # The ordering the paper's argument rests on: each finer granularity
    # improves turnaround by at least an order of magnitude down to the
    # block level.
    assert result.iteration > result.kernel > result.block > result.thread
    assert result.kernel / result.block > 10
    # Block-level turnaround must be comfortably below the inference
    # latency — that is why block-level scheduling isolates.
    assert result.block < 0.2 * result.inference_latency
    # Kernel-level turnaround exceeds the whole inference time, which is
    # why kernel-level systems (TGS et al.) cannot isolate Whisper.
    assert result.kernel > result.inference_latency
