"""Table 2: standalone latency/throughput of the 12-workload suite."""

from repro.harness.experiments import table2, table2_report


def test_table2_standalone_suite(benchmark, report_sink, scale):
    rows = benchmark.pedantic(table2, args=(scale,), rounds=1, iterations=1)
    report_sink("table2_standalone", table2_report(rows))

    assert len(rows) == 12
    by_name = {r.model: r for r in rows}

    # Inference latencies measured on the simulator track the trace
    # design closely (same condensed time base).
    for name in ("resnet50_infer", "bert_infer", "yolov6m_infer"):
        row = by_name[name]
        ratio = row.measured_value / row.paper_value
        assert 0.7 < ratio < 1.5, f"{name} latency off: {ratio:.2f}x"

    # Training throughput, rescaled by the condensation factor, should
    # be within 2x of Table 2 (the factor is calibrated, not fitted).
    for name, row in by_name.items():
        if row.kind != "training":
            continue
        ratio = row.paper_scale_value / row.paper_value
        assert 0.4 < ratio < 2.5, f"{name} throughput off: {ratio:.2f}x"

    # Relative ordering of Table 2 is preserved: PointNet is the fastest
    # training job, Whisper the slowest.
    training = {n: r.measured_value for n, r in by_name.items()
                if r.kind == "training"}
    assert max(training, key=training.get) == "pointnet_train"
    assert min(training, key=training.get) == "whisper_train"
