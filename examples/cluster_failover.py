"""Device failure and HP-tenant failover on the online control plane.

A packed two-GPU cluster — a latency-critical YOLO detection service
co-located with best-effort training on each device — plus one spare.
At t=2s GPU 0 crashes.  The control plane checkpoints its tenants,
live-migrates them (latency-critical first) onto the surviving
capacity, and the detection service resumes after one migration
downtime with its memory image, registered kernels, and reply cache
intact.  The conservation audit (`check=True`) proves no admitted
request was lost or double-executed across the failover.

The numbers that matter: how long the HP service was actually down,
and whether its SLO held *after* recovery — a migration that lands the
tenant somewhere it can't meet latency is not a recovery.

Run:  python examples/cluster_failover.py
"""

from repro.cluster import ClusterJob, packed_placement, run_controlplane
from repro.harness import RunConfig
from repro.harness.reporting import format_seconds, format_table
from repro.trace import (
    DeviceFault,
    MigrationComplete,
    MigrationStart,
    Tracer,
)

DURATION = 6.0
WARMUP = 1.0
CRASH_AT = 2.0

JOBS = [
    ClusterJob("yolov6m_infer", load=0.4, traffic_seed=0),
    ClusterJob("bert_infer", load=0.3, traffic_seed=1),
    ClusterJob("pointnet_train", traffic_seed=2),
    ClusterJob("resnet50_train", traffic_seed=3),
]


def main() -> None:
    placement = packed_placement(JOBS)
    config = RunConfig(duration=DURATION, warmup=WARMUP)
    tracer = Tracer(capacity=None)

    # Crash the device hosting the YOLO detection service — the
    # interesting failover is the latency-critical one.
    crash_gpu = next(i for i, bin_ in enumerate(placement.bins)
                     if any(job.model == "yolov6m_infer" for job in bin_))

    result = run_controlplane(
        placement=placement,
        devices=placement.gpus_used + 1,      # one spare for failover
        config=config,
        fail_device=((crash_gpu, CRASH_AT),),
        tracer=tracer,
        check=True,
    )
    recovery = result.recovery
    assert recovery is not None

    events = tracer.events
    crashes = [e for e in events if isinstance(e, DeviceFault)]
    starts = [e for e in events if isinstance(e, MigrationStart)]
    completes = [e for e in events if isinstance(e, MigrationComplete)]
    assert crashes, "the armed device crash must fire"
    assert completes, "at least one tenant must complete migration"

    hp = max(recovery.services, key=lambda s: s.migrations)
    rows = [
        ("GPUs (packed + spare)", str(placement.gpus_used + 1),
         f"{len(JOBS)} jobs on {placement.gpus_used}, 1 spare"),
        ("device crash", f"gpu {crashes[0].device}",
         f"t={CRASH_AT:.1f}s"),
        ("migrations", str(recovery.migrations),
         ", ".join(f"{e.client_id}→gpu{e.target}" for e in completes)),
        ("HP service", hp.client_id,
         f"now on gpu {hp.device}"),
        ("HP downtime", format_seconds(hp.downtime),
         f"MTTR {format_seconds(recovery.mttr)} fleet-wide"),
        ("HP SLO attainment", f"{hp.slo_attainment * 100:.1f}%",
         "whole window, crash included"),
        ("HP post-recovery SLO", f"{hp.post_recovery_attainment * 100:.1f}%",
         "requests completed after restore"),
        ("requests shed", str(recovery.requests_shed),
         "conservation audit passed"),
        ("jobs shed / evicted",
         f"{recovery.jobs_shed} / {recovery.jobs_evicted}", ""),
        ("invariant checks", str(result.invariant_checks), "0 violations"),
    ]
    print(format_table(("metric", "value", "note"), rows,
                       title="Cluster failover under Tally"))

    print()
    print(recovery.format())

    migrated_hp = [e for e in starts
                   if e.client_id == hp.client_id and e.target >= 0]
    assert migrated_hp, "the HP tenant must have been live-migrated"
    ok = (recovery.requests_shed == 0
          and hp.post_recovery_attainment >= 0.9)
    verdict = "PASS" if ok else "FAIL"
    print(f"\nHP tenant survived the device crash: {verdict} "
          f"(0 requests shed, post-recovery SLO ≥ 90%)")


if __name__ == "__main__":
    main()
