"""Bring your own workload: define a model, co-locate it under Tally.

The built-in suite mirrors the paper's Table 2, but the harness accepts
any :class:`~repro.workloads.WorkloadModel`.  This example defines a
fictional "RecSys" embedding-heavy training job (many tiny lookup
kernels plus periodic large all-reduce-style kernels) and a "RankNet"
inference service, registers them in the model catalog, and compares
their co-location under TGS and Tally.

Run:  python examples/custom_workload.py
"""

from repro.harness import JobSpec, RunConfig, run_colocation, standalone
from repro.harness.reporting import format_seconds, format_table
from repro.workloads import (
    DurationMixture,
    INFERENCE_MODELS,
    TRAINING_MODELS,
    WorkloadKind,
    WorkloadModel,
)
from repro.workloads.memory import PARAMETER_COUNTS


def define_models() -> None:
    """Register two custom workloads in the model catalog."""
    TRAINING_MODELS["recsys_train"] = WorkloadModel(
        name="recsys_train",
        kind=WorkloadKind.TRAINING,
        paper_engine="custom",
        paper_params="2.1B (mostly embeddings)",
        paper_value=5.0,  # target iterations/s at full scale
        paper_duration=0.2,
        num_kernels=160,
        # embedding lookups are tiny; optimizer + dense towers are not
        mixture=DurationMixture.of((0.90, 35e-6, 0.5), (0.10, 1.1e-3, 0.4)),
        host_gap_fraction=0.25,  # input pipeline heavy
    )
    INFERENCE_MODELS["ranknet_infer"] = WorkloadModel(
        name="ranknet_infer",
        kind=WorkloadKind.INFERENCE,
        paper_engine="custom",
        paper_params="45M",
        paper_value=2.2e-3,  # SLA-relevant latency
        paper_duration=2.2e-3,
        num_kernels=28,
        mixture=DurationMixture.of((1.0, 70e-6, 0.45)),
        host_gap_fraction=0.0,
    )
    # Memory footprints gate co-location feasibility.
    PARAMETER_COUNTS["recsys_train"] = 2.1e9
    PARAMETER_COUNTS["ranknet_infer"] = 45e6


def main() -> None:
    define_models()
    config = RunConfig(duration=8.0, warmup=1.0)
    inference = JobSpec.inference("ranknet_infer", load=0.4)
    training = JobSpec.training("recsys_train")

    base = standalone(inference, config)
    train_base = standalone(training, config)
    assert base.latency is not None
    print(f"ranknet alone: p99 {format_seconds(base.latency.p99)}; "
          f"recsys alone: {train_base.rate:.1f} it/s\n")

    rows = []
    for system in ("TGS", "Tally"):
        result = run_colocation(system, [inference, training], config)
        inf = result.job("ranknet_infer#0")
        train = result.job("recsys_train#0")
        assert inf.latency is not None
        rows.append((
            system,
            format_seconds(inf.latency.p99),
            f"{inf.latency.p99 / base.latency.p99:.2f}x",
            f"{train.rate / train_base.rate:.2f}",
        ))
    print(format_table(
        ("system", "ranknet p99", "vs alone", "recsys norm"),
        rows, title="Custom workloads: RankNet (40% load) x RecSys training",
    ))
    print("\nAny workload expressible as a kernel-duration distribution can")
    print("be evaluated this way — no changes to the library required.")


if __name__ == "__main__":
    main()
