"""Fault tolerance under co-location: a crash that must not matter.

A latency-critical BERT inference service shares the GPU with a
best-effort Whisper training job under Tally.  Halfway through the run
the training process *crashes* — and the run is additionally seeded
with lost preemption acks, so the scheduler's watchdog has to rescue
stuck preemptions by force-resetting the best-effort kernel.

The paper's promise is that best-effort workloads are invisible to the
high-priority service; this example checks the promise still holds when
the best-effort workload misbehaves.  It prints the high-priority p99
before and after the crash, next to a fault-free control run, and the
fault/recovery events recorded in the trace.

Run:  python examples/fault_colocation.py
"""

from repro.core import TallyConfig
from repro.faults import FaultConfig
from repro.harness import JobSpec, RunConfig, run_colocation
from repro.harness.reporting import format_seconds, format_table
from repro.trace import (
    ClientCrash,
    ClientGC,
    PreemptLost,
    Tracer,
    WatchdogReset,
)

DURATION = 8.0
WARMUP = 1.0
CRASH_AT = 4.5

INFERENCE = JobSpec.inference("bert_infer", load=0.5)


def jobs(crash: bool) -> list[JobSpec]:
    training = JobSpec.training(
        "whisper_train", crash_at=CRASH_AT if crash else None)
    return [INFERENCE, training]


def main() -> None:
    tally = TallyConfig(preempt_deadline=4 * TallyConfig().
                        turnaround_latency_bound)
    config = RunConfig(duration=DURATION, warmup=WARMUP,
                       tally_config=tally)

    # Control: the same pair, no faults at all.
    control = run_colocation("Tally", jobs(crash=False), config, check=True)
    control_inf = control.job("bert_infer#0")
    assert control_inf.latency is not None

    # Chaos: the training client dies at CRASH_AT, and 30 % of PTB
    # preemption flags are lost in flight (the watchdog recovers them).
    tracer = Tracer(capacity=None)
    faults = FaultConfig(seed=11, lost_ack=0.3)
    result = run_colocation("Tally", jobs(crash=True), config,
                            check=True, faults=faults, tracer=tracer)
    inf = result.job("bert_infer#0")
    train = result.job("whisper_train#0")

    # Split the HP latencies at the crash instant.
    hp_driver = result.drivers["bert_infer#0"]
    before = hp_driver.latency_summary(since=WARMUP, until=CRASH_AT)
    after = hp_driver.latency_summary(since=CRASH_AT, until=DURATION)

    events = tracer.events
    crashes = [e for e in events if isinstance(e, ClientCrash)]
    gcs = [e for e in events if isinstance(e, ClientGC)]
    lost = [e for e in events if isinstance(e, PreemptLost)]
    resets = [e for e in events if isinstance(e, WatchdogReset)]
    assert crashes, "the armed crash must fire"
    assert gcs, "the crash must be garbage-collected"

    rows = [
        ("control p99 (no faults)", format_seconds(control_inf.latency.p99),
         "whole window"),
        ("chaos p99 (whole window)", format_seconds(inf.latency.p99),
         f"{inf.latency.p99 / control_inf.latency.p99:.2f}x of control"),
        ("chaos p99 before crash", format_seconds(before.p99),
         f"[{WARMUP:.0f}s, {CRASH_AT:.1f}s)"),
        ("chaos p99 after crash", format_seconds(after.p99),
         f"[{CRASH_AT:.1f}s, {DURATION:.0f}s) — BE gone, GPU exclusive"),
        ("BE iterations before crash", str(train.completed),
         f"crashed at t={CRASH_AT:.1f}s"),
        ("preempt flags lost", str(len(lost)),
         "injected channel losses"),
        ("watchdog force-resets", str(len(resets)),
         "recovered within the deadline"),
        ("faults injected", str(sum(result.fault_counts.values())),
         ", ".join(f"{k}={v}" for k, v
                   in sorted(result.fault_counts.items()))),
        ("invariant checks", str(result.invariant_checks), "0 violations"),
    ]
    print(format_table(("metric", "value", "note"), rows,
                       title="Tally under injected faults"))

    if resets:
        worst = max(e.waited for e in resets)
        print(f"\nworst watchdog wait: {format_seconds(worst)} "
              f"(deadline {format_seconds(tally.preempt_deadline)})")
    drift = inf.latency.p99 / control_inf.latency.p99
    verdict = "PASS" if drift < 1.10 else "FAIL"
    print(f"HP p99 drift under chaos: {drift:.2f}x of fault-free "
          f"({verdict}: < 1.10x expected)")


if __name__ == "__main__":
    main()
