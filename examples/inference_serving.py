"""Co-locating a latency-critical inference service with training.

A miniature of the paper's Figure 4: a BERT inference service at 50 %
load (MAF-style traffic) shares an A100 with a Whisper training job
under each GPU-sharing system, and the p99 latency / throughput
trade-off is printed side by side.

Run:  python examples/inference_serving.py            (quick)
      python examples/inference_serving.py --full     (more systems/time)
"""

import sys
import time

from repro.harness import JobSpec, RunConfig, run_colocation, standalone
from repro.harness.reporting import format_seconds, format_table


def main() -> None:
    full = "--full" in sys.argv
    duration = 12.0 if full else 6.0
    config = RunConfig(duration=duration, warmup=1.0)
    inference = JobSpec.inference("bert_infer", load=0.5)
    training = JobSpec.training("whisper_train")

    print("measuring isolated baselines...")
    inf_base = standalone(inference, config)
    train_base = standalone(training, config)
    assert inf_base.latency is not None
    print(f"  bert_infer alone: p99 {format_seconds(inf_base.latency.p99)}, "
          f"{inf_base.rate:.0f} req/s")
    print(f"  whisper_train alone: {train_base.rate:.2f} it/s")

    systems = ("Time-Slicing", "MPS", "MPS-Priority", "TGS", "Tally")
    rows = []
    for system in systems:
        t0 = time.time()
        result = run_colocation(system, [inference, training], config)
        inf = result.job("bert_infer#0")
        train = result.job("whisper_train#0")
        assert inf.latency is not None
        train_norm = train.rate / train_base.rate
        rows.append((
            system,
            format_seconds(inf.latency.p99),
            f"{inf.latency.p99 / inf_base.latency.p99:.2f}x",
            f"{train_norm:.2f}",
            f"{inf.rate / inf_base.rate + train_norm:.2f}",
            f"{time.time() - t0:.1f}s",
        ))

    print()
    print(format_table(
        ("system", "p99", "p99 vs ideal", "train norm", "sys thpt", "wall"),
        rows,
        title="BERT inference (50% load) x Whisper training on one A100",
    ))
    print("\nTally holds the inference tail near the isolated baseline by")
    print("scheduling training kernels at thread-block granularity with")
    print("preemptible (PTB) and sliced launches.")


if __name__ == "__main__":
    main()
