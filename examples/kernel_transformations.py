"""Inside the kernel transformer: slicing, unified sync, preemption.

This example walks through the paper's Section 4.1 on a real (mini-PTX)
tiled matrix-multiplication kernel:

* prints the kernel before and after each transformation pass;
* executes the sliced variant slice by slice;
* executes the preemptible variant, preempts it mid-flight, inspects
  the saved progress, and resumes it to completion;
* demonstrates the divergent-synchronization stall that the unified
  synchronization pass prevents.

Run:  python examples/kernel_transformations.py
"""

import numpy as np

from repro.errors import SyncDivergenceError
from repro.ptx import Interpreter, format_kernel, make_case
from repro.transform import make_preemptible, make_sliced, make_unified_sync


def banner(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def show_excerpt(kernel, lines: int = 14) -> None:
    text = format_kernel(kernel).splitlines()
    for line in text[:lines]:
        print("   ", line)
    if len(text) > lines:
        print(f"    ... ({len(text) - lines} more lines)")


def main() -> None:
    case = make_case("matmul_tiled", np.random.default_rng(2024))
    print(f"kernel: {case.kernel.name}, grid {case.grid}, block {case.block}"
          f" ({case.grid.total} thread blocks)")

    banner("Original kernel (mini-PTX)")
    show_excerpt(case.kernel)

    # ------------------------------------------------------------- slicing
    banner("Slicing transformation (Fig. 2a)")
    sliced = make_sliced(case.kernel)
    print("added parameters:",
          [p for p in sliced.kernel.param_names()
           if p.startswith("__tally")])
    plan = sliced.plan(case.grid, blocks_per_slice=2)
    print(f"launch plan: {len(plan)} slices of <=2 blocks")
    interp = Interpreter(case.memory)
    for launch in plan:
        args = sliced.args_for(case.args, case.grid, launch.offset)
        interp.launch(sliced.kernel, launch.grid, case.block, args)
    case.check()
    print("sliced execution matches the reference output  [ok]")

    # -------------------------------------------------- unified sync + PTB
    banner("Unified synchronization transformation (Fig. 2b)")
    usync = make_unified_sync(case.kernel)
    print(f"redirected {usync.sync_sites} bar.sync sites and "
          f"{usync.return_sites} return sites to one barrier")
    show_excerpt(usync.kernel, lines=10)

    banner("Preemption transformation (persistent thread blocks)")
    case2 = make_case("matmul_tiled", np.random.default_rng(2024))
    pk = make_preemptible(case2.kernel)
    control = pk.make_control(case2.memory)
    args = pk.args_for(case2.args, case2.grid, control)

    preempt_interp = Interpreter(
        case2.memory,
        instr_hook=lambda _i: control.request_preemption(),
        hook_interval=5000,
    )
    preempt_interp.launch(pk.kernel, pk.worker_grid(2), case2.block, args)
    done = control.tasks_started()
    print(f"preempted: {min(done, case2.grid.total)}/{case2.grid.total} "
          f"logical blocks executed; progress lives in the task counter")

    control.clear_preemption()
    Interpreter(case2.memory).launch(pk.kernel, pk.worker_grid(2),
                                     case2.block, args)
    case2.check()
    print("resumed to completion; output matches the reference  [ok]")

    # ------------------------------------------------------ the stall hazard
    banner("Why unified sync is mandatory: the divergence stall")
    hazard = make_case("fold_halves", np.random.default_rng(7))
    naive = make_preemptible(hazard.kernel, unified_sync=False)
    ctrl = naive.make_control(hazard.memory)
    nargs = naive.args_for(hazard.args, hazard.grid, ctrl)
    try:
        Interpreter(hazard.memory).launch(
            naive.kernel, naive.worker_grid(2), hazard.block, nargs)
        print("unexpected: naive transform did not stall")
    except SyncDivergenceError as exc:
        print(f"naive preemption transform stalls: {exc}")

    hazard2 = make_case("fold_halves", np.random.default_rng(7))
    safe = make_preemptible(hazard2.kernel, unified_sync=True)
    ctrl2 = safe.make_control(hazard2.memory)
    Interpreter(hazard2.memory).launch(
        safe.kernel, safe.worker_grid(2), hazard2.block,
        safe.args_for(hazard2.args, hazard2.grid, ctrl2))
    hazard2.check()
    print("with unified sync: executes correctly  [ok]")


if __name__ == "__main__":
    main()
