"""LLM serving under co-location: protecting a token stream.

A Llama-7B continuous-batching server (chunked prefill, batched
decode, paged KV cache) shares the GPU with a best-effort ResNet-50
training job.  Unlike the Table 2 request/response services, the
quantity to protect here is a *cadence*: the millisecond-scale gaps
between consecutive tokens of every live stream.

The example measures the isolated baseline, derives an SLO from it
(2x the isolated TTFT / inter-token p99s), then runs the same pair
under Tally and under unmanaged sharing (MPS) and compares
time-to-first-token, inter-token p99, SLO goodput, and best-effort
training throughput.  A second act shrinks the KV pool to ~1.2
max-size requests to show eviction under memory pressure — the
failure mode continuous batching must surface honestly.

Run:  python examples/llm_serving.py
"""

from dataclasses import replace

from repro.baselines import Ideal
from repro.gpu import A100_SXM4_40GB, EventLoop, GPUDevice
from repro.harness import JobSpec, RunConfig, run_colocation, standalone
from repro.harness.reporting import format_seconds, format_table
from repro.metrics import ServingSLO
from repro.traffic import poisson_trace
from repro.workloads.llm import LLMServingJob, get_llm_model

DURATION = 8.0
WARMUP = 1.0
LLM = "llama7b_serve"
TRAIN = "resnet50_train"


def serving_row(label, serving, base, note=""):
    ttft = serving.ttft.p99 / base.ttft.p99
    itl = serving.inter_token.p99 / base.inter_token.p99
    return (
        label,
        f"{format_seconds(serving.ttft.p99)} ({ttft:.2f}x)",
        f"{format_seconds(serving.inter_token.p99)} ({itl:.2f}x)",
        f"{serving.slo_attainment:.0%} @ {serving.goodput:.2f}/s",
        note,
    )


def main() -> None:
    cfg = RunConfig(duration=DURATION, warmup=WARMUP)
    llm = JobSpec.llm(LLM, load=0.5)

    # Act 1 — the isolated baseline defines what "good" means.
    base = standalone(llm, cfg).serving
    assert base is not None
    slo = ServingSLO.scaled_to_ideal(base.ttft.p99, base.inter_token.p99,
                                     slack=2.0)
    scored = replace(cfg, slo=slo)
    train_alone = standalone(JobSpec.training(TRAIN), cfg)

    rows = [serving_row("isolated", base, base, "the SLO anchor")]
    ratios = {}
    for policy in ("Tally", "MPS"):
        result = run_colocation(
            policy, [llm, JobSpec.training(TRAIN)], scored, check=True)
        job = result.job(f"{LLM}#0")
        train = result.job(f"{TRAIN}#0")
        norm = train.rate / train_alone.rate
        ratios[policy] = job.serving.inter_token.p99 / base.inter_token.p99
        rows.append(serving_row(
            f"{policy} colocated", job.serving, base,
            f"train at {norm:.2f} of standalone"))
    print(format_table(
        ("run", "ttft p99", "inter-token p99", "slo att @ goodput", "note"),
        rows,
        title=f"{LLM} (HP) vs {TRAIN} (BE), "
              f"SLO = 2x isolated p99s"))

    verdict = "PASS" if ratios["Tally"] < 1.2 <= ratios["MPS"] else "FAIL"
    print(f"\ninter-token p99 vs isolated — Tally {ratios['Tally']:.2f}x, "
          f"MPS {ratios['MPS']:.2f}x ({verdict}: block-level preemption "
          f"protects the cadence, unmanaged sharing does not)")

    # Act 2 — KV pressure: a pool of ~1.2 max-size requests forces the
    # batcher to evict its youngest stream when decodes outgrow memory.
    model = get_llm_model(LLM)
    one_request = (model.prompt_tokens.maximum
                   + model.output_tokens.maximum) * model.kv_bytes_per_token
    squeezed = replace(model, name="llama7b_squeezed",
                       kv_capacity_bytes=int(one_request * 1.2))
    engine = EventLoop()
    policy = Ideal(GPUDevice(A100_SXM4_40GB, engine), engine)
    traffic = poisson_trace(30.0, 6.0, seed=0)
    job = LLMServingJob(squeezed, traffic, policy, "llm#0", seed=0)
    job.start()
    engine.run_until(10.0)

    mm = job.kv.manager
    print(f"\nKV pressure: pool of {squeezed.kv_capacity_bytes >> 20} MiB "
          f"(~1.2 max requests), {traffic.count} arrivals")
    print(f"  completed {job.completed_requests}, "
          f"evicted {job.evictions} (youngest-first, terminal)")
    print(f"  KV conservation: {mm.allocated_elements_total} tokens "
          f"allocated == {mm.freed_elements_total} freed, "
          f"{mm.live_bytes()} live at drain")
    assert job.evictions > 0, "the squeezed pool must evict"
    assert mm.allocated_elements_total == mm.freed_elements_total


if __name__ == "__main__":
    main()
