"""Packing many low-utilization services on one GPU (paper §5.4).

The GPU-underutilization story from the paper's introduction: many
inference services individually use ~10 % of a GPU.  This example packs
one high-priority ResNet50 service with a growing number of best-effort
clones under Tally and shows that

* the high-priority p99 stays flat, and
* aggregate throughput scales until the device saturates,

i.e. a cluster could consolidate these services onto a fraction of the
GPUs without violating the high-priority SLA.

Run:  python examples/multi_tenant_packing.py
"""

from repro.baselines import Priority
from repro.harness import JobSpec, RunConfig, run_colocation, standalone
from repro.harness.reporting import format_seconds, format_table


def main() -> None:
    load = 0.10
    config = RunConfig(duration=10.0, warmup=1.0)
    high_priority = JobSpec.inference("resnet50_infer", load=load,
                                      traffic_seed=0)

    base = standalone(high_priority, config)
    assert base.latency is not None
    print(f"one service alone: p99 {format_seconds(base.latency.p99)}, "
          f"{base.rate * 60:.0f} requests/min "
          f"(~{load:.0%} of the GPU)")

    rows = []
    for extra in (0, 2, 4, 6, 8, 10):
        jobs = [high_priority] + [
            JobSpec.inference("resnet50_infer", load=load,
                              priority=Priority.BEST_EFFORT,
                              traffic_seed=i + 1)
            for i in range(extra)
        ]
        result = run_colocation("Tally", jobs, config)
        hp = result.job("resnet50_infer#0")
        assert hp.latency is not None
        total = sum(j.rate for j in result.inference_results()) * 60
        rows.append((
            1 + extra,
            format_seconds(hp.latency.p99),
            f"{hp.latency.p99 / base.latency.p99:.2f}x",
            f"{total:.0f}",
            f"{result.utilization:.0%}",
        ))

    print()
    print(format_table(
        ("services", "HP p99", "vs alone", "requests/min", "GPU util"),
        rows, title="Packing ResNet50 services @ 10% load under Tally",
    ))
    print("\nThe high-priority tail stays put while the device absorbs an")
    print("order of magnitude more traffic — the consolidation opportunity")
    print("the Alibaba study quantified at ~50% of cluster GPUs.")


if __name__ == "__main__":
    main()
