"""Quickstart: run an unmodified GPU application under Tally.

The application below is written once against the CUDA-like runtime
API.  It then runs three ways with identical results:

1. natively (direct execution);
2. under Tally with kernels transparently *sliced*;
3. under Tally with kernels transparently rewritten into *preemptible*
   persistent-thread-block form.

The application never changes — that is the paper's non-intrusiveness
claim, executable.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.baselines import Priority
from repro.core import ExecMode, ExecPlan, TallyServer, connect_runtime
from repro.ptx.library import block_sum, matmul_tiled, vector_add
from repro.runtime import CudaRuntime, FatBinary


def application(runtime: CudaRuntime) -> dict[str, np.ndarray]:
    """A small 'DL-ish' pipeline: elementwise add, matmul, reduction."""
    rng = np.random.default_rng(42)

    # Register device code once at startup (the fatbinary moment Tally
    # intercepts to gain access to kernel PTX).
    runtime.register_fat_binary(FatBinary.of(
        "quickstart", [vector_add(), matmul_tiled(4), block_sum(16)],
    ))

    n = 256
    x, y = rng.standard_normal(n), rng.standard_normal(n)
    dx, dy, dsum_in = runtime.malloc(n), runtime.malloc(n), runtime.malloc(n)
    runtime.memcpy_h2d(dx, x)
    runtime.memcpy_h2d(dy, y)
    runtime.launch_kernel("vector_add", grid=(16,), block=(16,),
                          args={"x": dx, "y": dy, "out": dsum_in, "n": n})

    m, k, p = 24, 18, 20
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, p))
    da, db, dc = runtime.malloc(m * k), runtime.malloc(k * p), runtime.malloc(m * p)
    runtime.memcpy_h2d(da, a.ravel())
    runtime.memcpy_h2d(db, b.ravel())
    runtime.launch_kernel("matmul_tiled", grid=(5, 6), block=(4, 4),
                          args={"a": da, "b": db, "c": dc,
                                "m": m, "n": p, "k": k})

    dtotal = runtime.malloc(1)
    runtime.launch_kernel("block_sum", grid=(16,), block=(16,),
                          args={"x": dsum_in, "out": dtotal, "n": n})
    runtime.device_synchronize()

    return {
        "added": runtime.memcpy_d2h(dsum_in, n),
        "matmul": runtime.memcpy_d2h(dc, m * p).reshape(m, p),
        "total": runtime.memcpy_d2h(dtotal, 1),
    }


def main() -> None:
    print("1) native execution")
    native = application(CudaRuntime())

    results = {"native": native}
    for label, plan in [
        ("tally-sliced", ExecPlan(ExecMode.SLICED, blocks_per_slice=3)),
        ("tally-ptb", ExecPlan(ExecMode.PTB, workers=4)),
    ]:
        print(f"2) {label}: same application, virtualized backend")
        server = TallyServer(best_effort_plan=plan)
        runtime = connect_runtime(server, client_id=label,
                                  priority=Priority.BEST_EFFORT)
        results[label] = application(runtime)
        stats = runtime.backend.channel.stats
        print(f"   forwarded {stats.messages} messages "
              f"({stats.bytes} bytes, "
              f"~{stats.simulated_time * 1e6:.1f} us channel time)")
        print(f"   calls served client-side, never forwarded: "
              f"{runtime.api_calls['cudaGetDevice']} x cudaGetDevice "
              f"among others")

    reference = results["native"]
    for label, outputs in results.items():
        for name, value in outputs.items():
            np.testing.assert_allclose(value, reference[name], atol=1e-9)
        print(f"{label}: outputs identical to native  [ok]")

    print("\nNumerical spot check: sum(x + y) =",
          float(reference["total"][0]))


if __name__ == "__main__":
    main()
