"""Tracing a co-location run and exporting it for Perfetto.

Runs a 2-workload co-location (BERT inference x Whisper training) under
Tally with a :class:`repro.trace.Tracer` attached, then

* writes ``results/trace_colocation.json`` — a Chrome ``trace_event``
  file you can drag into https://ui.perfetto.dev or chrome://tracing to
  see per-client kernel spans, preemption markers, and queue-depth
  counters, and
* prints the derived counters: how often the best-effort job was
  preempted, how fast each preemption landed, and what the slicing
  transformation cost in launch overhead.

The event schema is documented in docs/observability.md.

Run:  python examples/trace_colocation.py
"""

import os

from repro.harness import JobSpec, RunConfig, run_colocation
from repro.harness.reporting import format_seconds
from repro.trace import PreemptAck, PreemptRequest, Tracer, summarize


def main() -> None:
    config = RunConfig(duration=5.0, warmup=0.5)
    jobs = [JobSpec.inference("bert_infer", load=0.5),
            JobSpec.training("whisper_train")]

    tracer = Tracer(capacity=None)  # keep every event
    result = run_colocation("Tally", jobs, config, tracer=tracer)

    inf = result.job("bert_infer#0")
    assert inf.latency is not None
    print(f"traced {tracer.emitted} events over {config.duration:g}s "
          f"simulated; inference p99 {format_seconds(inf.latency.p99)}")

    # The raw events are typed objects — walk them directly...
    requests = [e for e in tracer.events if isinstance(e, PreemptRequest)]
    acks = [e for e in tracer.events if isinstance(e, PreemptAck)]
    print(f"preempt requests: {len(requests)} "
          f"({sum(1 for r in requests if r.mechanism == 'ptb-flag')} "
          f"ptb-flag, "
          f"{sum(1 for r in requests if r.mechanism == 'slice-boundary')} "
          f"slice-boundary); acks: {len(acks)}")

    # ...or let summarize() reduce them to the standard counters.
    print()
    print(summarize(tracer, config.spec).format())

    os.makedirs("results", exist_ok=True)
    path = os.path.join("results", "trace_colocation.json")
    tracer.export_chrome(path)
    print(f"\nPerfetto trace written to {path} — open it at "
          "https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
