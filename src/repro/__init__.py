"""Reproduction of *Tally: Non-Intrusive Performance Isolation for
Concurrent Deep Learning Workloads* (ASPLOS 2025).

The package is layered bottom-up:

* :mod:`repro.ptx` — mini-PTX IR, builder, validator, and a functional
  interpreter with CUDA-faithful block/barrier semantics;
* :mod:`repro.transform` — the paper's kernel transformations (slicing,
  unified synchronization, preemption/persistent thread blocks);
* :mod:`repro.gpu` — discrete-event GPU timing simulator (SM slots,
  occupancy, wave execution, PTB worker loops);
* :mod:`repro.runtime` / :mod:`repro.virt` — CUDA-like runtime API and
  the client/server virtualization layer Tally interposes on;
* :mod:`repro.core` — Tally itself: transformer, transparent profiler,
  priority-aware scheduler, and the functional server;
* :mod:`repro.baselines` — Time-Slicing, MPS, MPS-Priority, TGS, Ideal;
* :mod:`repro.workloads` / :mod:`repro.traffic` — the Table 2 workload
  suite and MAF2-style traffic;
* :mod:`repro.harness` — co-location runner and per-figure experiment
  drivers;
* :mod:`repro.trace` — event tracing and observability (ring-buffer
  tracer, JSONL/Chrome-trace sinks, derived counters);
* :mod:`repro.check` — opt-in runtime invariant checker and
  property-based differential validation of the simulator.

Quick start::

    from repro.harness import JobSpec, RunConfig, run_colocation

    result = run_colocation(
        "Tally",
        [JobSpec.inference("bert_infer", load=0.5),
         JobSpec.training("whisper_train")],
        RunConfig(duration=10.0),
    )
    print(result.job("bert_infer#0").latency.p99)
"""

from . import (
    baselines,
    check,
    cluster,
    core,
    gpu,
    harness,
    metrics,
    ptx,
    runtime,
    trace,
    traffic,
    transform,
    virt,
    workloads,
)
from .errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "__version__",
    "baselines",
    "check",
    "cluster",
    "core",
    "gpu",
    "harness",
    "metrics",
    "ptx",
    "runtime",
    "trace",
    "traffic",
    "transform",
    "virt",
    "workloads",
]
