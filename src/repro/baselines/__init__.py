"""Baseline GPU-sharing systems the paper compares Tally against."""

from .base import ClientInfo, PassthroughPolicy, Priority, SharingPolicy
from .ideal import Ideal
from .mps import MPS, MPSPriority
from .reef import REEF
from .tgs import TGS
from .time_slicing import TimeSlicing

__all__ = [
    "ClientInfo",
    "Ideal",
    "MPS",
    "MPSPriority",
    "PassthroughPolicy",
    "Priority",
    "REEF",
    "SharingPolicy",
    "TGS",
    "TimeSlicing",
]
