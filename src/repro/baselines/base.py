"""The GPU-sharing policy interface.

Every sharing system in the reproduction — Tally and the four baselines
(Time-Slicing, MPS, MPS-Priority, TGS) — implements
:class:`SharingPolicy`: clients register with a priority class and then
submit kernels one at a time; the policy decides when and how each
kernel reaches the :class:`~repro.gpu.device.GPUDevice` and invokes the
client's completion callback when it finishes.

Clients model DL processes: they submit their next kernel from the
completion callback of the previous one (plus any host-side gap), which
mirrors stream-ordered execution.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Callable

from ..errors import SchedulerError
from ..gpu.device import DeviceLaunch, GPUDevice
from ..gpu.engine import EventLoop
from ..gpu.kernel import KernelDescriptor
from ..trace.events import ClientGC

__all__ = ["Priority", "ClientInfo", "SharingPolicy", "PassthroughPolicy"]


class Priority(enum.IntEnum):
    """Client priority classes (lower value = more important)."""

    HIGH = 0
    BEST_EFFORT = 1


@dataclass
class ClientInfo:
    """Registration record of one client process."""

    client_id: str
    priority: Priority
    kernels_submitted: int = 0
    kernels_completed: int = 0


class SharingPolicy(abc.ABC):
    """Mediates kernel execution of concurrent clients on one GPU."""

    #: human-readable system name (used in reports)
    name: str = "abstract"

    def __init__(self, device: GPUDevice, engine: EventLoop) -> None:
        self.device = device
        self.engine = engine
        self.clients: dict[str, ClientInfo] = {}

    @property
    def tracer(self):
        """The device's tracer — one observability channel per run."""
        return self.device.tracer

    # ------------------------------------------------------------------
    def register_client(self, client_id: str,
                        priority: Priority = Priority.BEST_EFFORT) -> ClientInfo:
        """Introduce a client before it submits kernels."""
        if client_id in self.clients:
            raise SchedulerError(f"client {client_id!r} already registered")
        info = ClientInfo(client_id, priority)
        self.clients[client_id] = info
        self._on_register(info)
        return info

    def submit(self, client_id: str, descriptor: KernelDescriptor,
               on_done: Callable[[], None]) -> None:
        """Client ``client_id`` wants to run ``descriptor`` next.

        ``on_done`` fires when the kernel has fully executed; the client
        reacts by submitting its next kernel (stream order).
        """
        try:
            info = self.clients[client_id]
        except KeyError:
            raise SchedulerError(f"unknown client {client_id!r}") from None
        info.kernels_submitted += 1

        def counted_done() -> None:
            info.kernels_completed += 1
            on_done()

        self._submit(info, descriptor, counted_done)

    def disconnect(self, client_id: str) -> None:
        """Forget a crashed client and cancel its in-flight work.

        Idempotent — disconnecting an unknown or already-removed client
        is a no-op.  Surviving clients must be unaffected: their queued
        and resident launches keep their positions.
        """
        info = self.clients.pop(client_id, None)
        if info is None:
            return
        cancelled = self._on_disconnect(info)
        if self.tracer.enabled:
            self.tracer.emit(ClientGC(
                ts=self.engine.now, client_id=client_id, kernel="",
                scope="scheduler", launches_cancelled=cancelled,
            ))

    # ------------------------------------------------------------------
    def _on_register(self, info: ClientInfo) -> None:
        """Hook for subclasses (default: nothing)."""

    def _on_disconnect(self, info: ClientInfo) -> int:
        """Cancel ``info``'s work; returns launches cancelled.

        The default kills the client's resident device launches with
        their completion callbacks neutralized (the client is gone —
        nobody is waiting).  Policies with internal queues override
        this to also drop their per-client state.
        """
        cancelled = 0
        for launch in self.device.resident_for(info.client_id):
            launch.on_complete = None
            self.device.kill(launch)
            cancelled += 1
        return cancelled

    @abc.abstractmethod
    def _submit(self, info: ClientInfo, descriptor: KernelDescriptor,
                on_done: Callable[[], None]) -> None:
        """Policy-specific scheduling of one kernel."""


class PassthroughPolicy(SharingPolicy):
    """Launch every kernel immediately (the building block of MPS).

    ``priority_aware=True`` maps the client's priority class onto the
    device dispatch priority (MPS with client priority levels);
    ``False`` dispatches everything at equal priority (plain MPS).
    """

    name = "passthrough"

    def __init__(self, device: GPUDevice, engine: EventLoop, *,
                 priority_aware: bool = False) -> None:
        super().__init__(device, engine)
        self.priority_aware = priority_aware

    def _submit(self, info: ClientInfo, descriptor: KernelDescriptor,
                on_done: Callable[[], None]) -> None:
        priority = int(info.priority) if self.priority_aware else 0
        launch = DeviceLaunch(
            descriptor,
            client_id=info.client_id,
            priority=priority,
            on_complete=lambda _launch: on_done(),
        )
        self.device.submit(launch)
