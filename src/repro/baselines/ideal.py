"""Isolated execution reference ("Ideal" in the paper's figures).

Runs a single client on the device with no co-located work; the
latencies and throughputs it produces are the normalization baseline
for every sharing experiment.
"""

from __future__ import annotations

from .base import PassthroughPolicy
from ..gpu.device import GPUDevice
from ..gpu.engine import EventLoop

__all__ = ["Ideal"]


class Ideal(PassthroughPolicy):
    """Exclusive, immediate execution — no sharing, no interference."""

    name = "Ideal"

    def __init__(self, device: GPUDevice, engine: EventLoop) -> None:
        super().__init__(device, engine, priority_aware=False)
