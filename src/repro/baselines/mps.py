"""NVIDIA MPS baselines (spatial sharing at kernel granularity).

MPS lets processes share the GPU spatially: kernels from all clients
are dispatched eagerly and their thread blocks fill SM slots together.
This maximizes utilization but is priority-agnostic — a high-priority
kernel arriving behind a long best-effort kernel waits for resident
blocks to drain, which is the queuing-delay interference the paper
measures (up to ~20x tail-latency inflation).

``MPSPriority`` enables the client-priority feature: pending
high-priority blocks are dispatched before best-effort blocks, but
blocks already resident still cannot be preempted, so long-kernel
interference remains.
"""

from __future__ import annotations

from ..gpu.device import GPUDevice
from ..gpu.engine import EventLoop
from .base import PassthroughPolicy

__all__ = ["MPS", "MPSPriority"]


class MPS(PassthroughPolicy):
    """Plain MPS: eager, priority-agnostic spatial sharing."""

    name = "MPS"

    def __init__(self, device: GPUDevice, engine: EventLoop) -> None:
        super().__init__(device, engine, priority_aware=False)


class MPSPriority(PassthroughPolicy):
    """MPS with client priority levels (dispatch-order priority only)."""

    name = "MPS-Priority"

    def __init__(self, device: GPUDevice, engine: EventLoop) -> None:
        super().__init__(device, engine, priority_aware=True)
