"""REEF-style comparator (reset-based thread-level preemption).

REEF (OSDI'22) achieves microsecond-scale preemption by *resetting*
best-effort kernels: in-flight computation is killed outright and the
kernel is re-executed later.  This is only sound for **idempotent**
kernels — the applicability restriction the paper gives for why REEF
does not generalize to arbitrary DL clusters (§3).

The policy here mirrors Tally's opportunistic structure (best-effort
kernels run only while the high-priority client is idle) but uses the
device's :meth:`~repro.gpu.device.GPUDevice.kill` primitive instead of
block-level transformations: turnaround is near-zero, at the price of
re-executing every block that was in flight when the reset hit.  It is
*not* one of the paper's measured baselines; it exists to quantify the
turnaround-vs-wasted-work trade-off the related-work section describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import SchedulerError
from ..gpu.device import DeviceLaunch, GPUDevice, LaunchStatus
from ..gpu.engine import EventLoop
from ..gpu.kernel import KernelDescriptor
from ..trace import SchedDecision
from .base import ClientInfo, Priority, SharingPolicy

__all__ = ["REEF"]


@dataclass
class _Pending:
    """One best-effort kernel waiting for or holding the device."""

    descriptor: KernelDescriptor
    on_done: Callable[[], None]
    launch: DeviceLaunch | None = None
    resets: int = 0


class REEF(SharingPolicy):
    """Reset-based scheduling: kill best-effort kernels on HP arrival.

    Assumes every best-effort kernel is idempotent (safe to re-execute
    from scratch).
    """

    name = "REEF"

    def __init__(self, device: GPUDevice, engine: EventLoop) -> None:
        super().__init__(device, engine)
        self._hp_outstanding = 0
        self._pending: dict[str, _Pending] = {}
        self.resets = 0
        self.blocks_wasted = 0

    # ------------------------------------------------------------------
    def _submit(self, info: ClientInfo, descriptor: KernelDescriptor,
                on_done: Callable[[], None]) -> None:
        if info.priority is Priority.HIGH:
            self._hp_outstanding += 1
            self._reset_best_effort()
            launch = DeviceLaunch(
                descriptor, client_id=info.client_id, priority=0,
                on_complete=lambda _l: self._hp_done(on_done),
            )
            self.device.submit(launch)
            return

        if info.client_id in self._pending:
            raise SchedulerError(
                f"client {info.client_id!r} submitted a kernel while one "
                "is still executing (clients are stream-ordered)"
            )
        entry = _Pending(descriptor, on_done)
        self._pending[info.client_id] = entry
        if self._hp_outstanding == 0:
            self._start(info.client_id, entry)

    def _on_disconnect(self, info: ClientInfo) -> int:
        """Drop a crashed client's pending kernel and kill its launches.

        A crashed high-priority client's severed launches must still
        decrement ``_hp_outstanding``, or best-effort work would wait
        forever for a completion that cannot come.
        """
        entry = self._pending.pop(info.client_id, None)
        cancelled = 0
        if entry is not None and entry.launch is not None \
                and not entry.launch.done:
            entry.launch.on_complete = None
            self.device.kill(entry.launch)
            cancelled += 1
        for stray in self.device.resident_for(info.client_id):
            stray.on_complete = None
            self.device.kill(stray)
            cancelled += 1
            if info.priority is Priority.HIGH and self._hp_outstanding > 0:
                self._hp_outstanding -= 1
        if (info.priority is Priority.HIGH and cancelled
                and self._hp_outstanding == 0):
            for client_id, pending in list(self._pending.items()):
                if pending.launch is None:
                    self._start(client_id, pending)
        return cancelled

    # ------------------------------------------------------------------
    def _hp_done(self, on_done: Callable[[], None]) -> None:
        self._hp_outstanding -= 1
        on_done()
        if self._hp_outstanding == 0:
            for client_id, entry in list(self._pending.items()):
                if entry.launch is None:
                    self._start(client_id, entry)

    def _reset_best_effort(self) -> None:
        for entry in self._pending.values():
            launch = entry.launch
            # A launch killed during its submission delay retires only
            # when it reaches the device; don't count a second reset
            # for it on the next high-priority arrival.
            if (launch is not None and not launch.done
                    and not launch.preempt_requested):
                if self.tracer.enabled:
                    self.tracer.emit(SchedDecision(
                        ts=self.engine.now, client_id=launch.client_id,
                        kernel=entry.descriptor.name, transform="reset",
                        reason="high-priority arrival",
                    ))
                self.device.kill(launch)
                self.resets += 1
                entry.resets += 1

    def _start(self, client_id: str, entry: _Pending) -> None:
        launch = DeviceLaunch(
            entry.descriptor, client_id=client_id, priority=1,
            on_complete=lambda l: self._finished(client_id, entry, l),
        )
        entry.launch = launch
        self.device.submit(launch)

    def _finished(self, client_id: str, entry: _Pending,
                  launch: DeviceLaunch) -> None:
        entry.launch = None
        if launch.status is LaunchStatus.PREEMPTED:
            # Reset: partial progress is discarded (idempotence), the
            # whole kernel re-executes once the HP burst ends.
            self.blocks_wasted += launch.blocks_done + launch.blocks_killed
            if self._hp_outstanding == 0:
                self._start(client_id, entry)
            return
        del self._pending[client_id]
        entry.on_done()
