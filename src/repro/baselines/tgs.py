"""TGS baseline (transparent GPU sharing via adaptive rate control).

TGS (NSDI'23) sits below containers and throttles the kernel-launch
*rate* of the best-effort (opportunistic) job based on feedback from
the production job's observed activity: when the production job is
active, the opportunistic job's launches are delayed hard
(multiplicative increase of the gap); when the production job goes
idle, the gap decays so the opportunistic job ramps back up.

Scheduling stays at kernel granularity: once an opportunistic kernel is
launched it runs to completion, so interference from long kernels
remains — the paper's central criticism.
"""

from __future__ import annotations

from typing import Callable

from ..errors import SchedulerError
from ..gpu.device import DeviceLaunch, GPUDevice
from ..gpu.engine import EventLoop
from ..gpu.kernel import KernelDescriptor
from .base import ClientInfo, Priority, SharingPolicy

__all__ = ["TGS"]


class TGS(SharingPolicy):
    """Adaptive rate control between one production and N opportunistic jobs."""

    name = "TGS"

    def __init__(self, device: GPUDevice, engine: EventLoop, *,
                 activity_window: float = 0.5e-3,
                 min_gap: float = 0.0,
                 max_gap: float = 5e-3,
                 backoff: float = 1.5,
                 recovery: float = 0.6,
                 initial_gap: float = 50e-6) -> None:
        super().__init__(device, engine)
        if backoff <= 1.0 or not 0 < recovery < 1.0:
            raise SchedulerError("need backoff > 1 and 0 < recovery < 1")
        self.activity_window = activity_window
        self.min_gap = min_gap
        self.max_gap = max_gap
        self.backoff = backoff
        self.recovery = recovery
        self._gap = initial_gap
        self._last_high_activity = float("-inf")
        self._next_allowed = 0.0

    # ------------------------------------------------------------------
    @property
    def current_gap(self) -> float:
        """The current inter-launch delay imposed on best-effort kernels."""
        return self._gap

    def _high_priority_active(self) -> bool:
        return (self.engine.now - self._last_high_activity
                <= self.activity_window)

    def _submit(self, info: ClientInfo, descriptor: KernelDescriptor,
                on_done: Callable[[], None]) -> None:
        if info.priority is Priority.HIGH:
            self._last_high_activity = self.engine.now
            launch = DeviceLaunch(
                descriptor,
                client_id=info.client_id,
                priority=0,
                on_complete=lambda _l: self._high_done(on_done),
            )
            self.device.submit(launch)
            return

        # Opportunistic path: adapt the launch gap, then launch after it.
        if self._high_priority_active():
            self._gap = min(self.max_gap, max(self._gap, 1e-6) * self.backoff)
        else:
            self._gap = max(self.min_gap, self._gap * self.recovery)

        start = max(self.engine.now + self._gap, self._next_allowed)
        self._next_allowed = start
        delay = start - self.engine.now

        def launch_now() -> None:
            launch = DeviceLaunch(
                descriptor,
                client_id=info.client_id,
                priority=1,
                on_complete=lambda _l: on_done(),
            )
            self.device.submit(launch)

        if delay > 0:
            self.engine.schedule(delay, launch_now)
        else:
            launch_now()

    def _high_done(self, on_done: Callable[[], None]) -> None:
        self._last_high_activity = self.engine.now
        on_done()
