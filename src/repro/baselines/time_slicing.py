"""NVIDIA time-slicing baseline (temporal sharing at context granularity).

The default GPU concurrency mechanism: contexts take turns owning the
whole device for a scheduling quantum.  Since Pascal, compute preemption
lets the hardware context-switch without waiting for kernels to finish
— at a quantum boundary, running kernels are preempted (in-flight
thread blocks drain, remaining blocks are saved) and resume when their
context is next scheduled.  The policy remains priority-agnostic: a
high-priority inference request arriving during another context's
quantum still waits out the quantum, which is the multi-millisecond
interference the paper measures.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from ..errors import SchedulerError
from ..gpu.device import DeviceLaunch, GPUDevice, LaunchStatus
from ..gpu.engine import EventLoop
from ..gpu.kernel import KernelDescriptor
from ..trace import SchedDecision
from .base import ClientInfo, SharingPolicy

__all__ = ["TimeSlicing"]


class TimeSlicing(SharingPolicy):
    """Round-robin temporal sharing with compute preemption."""

    name = "Time-Slicing"

    def __init__(self, device: GPUDevice, engine: EventLoop, *,
                 quantum: float = 2e-3,
                 context_switch_overhead: float = 100e-6) -> None:
        super().__init__(device, engine)
        if quantum <= 0:
            raise SchedulerError("quantum must be > 0")
        self.quantum = quantum
        self.context_switch_overhead = context_switch_overhead
        self._order: list[str] = []
        #: fresh kernels waiting to start, per client
        self._queues: dict[str, deque] = {}
        #: preempted launches to resume first, per client
        self._suspended: dict[str, deque] = {}
        self._active: str | None = None
        self._inflight: dict[str, int] = {}
        self._quantum_event = None
        self.preemptions = 0

    # ------------------------------------------------------------------
    def _on_register(self, info: ClientInfo) -> None:
        self._order.append(info.client_id)
        self._queues[info.client_id] = deque()
        self._suspended[info.client_id] = deque()
        self._inflight[info.client_id] = 0

    def _submit(self, info: ClientInfo, descriptor: KernelDescriptor,
                on_done: Callable[[], None]) -> None:
        self._queues[info.client_id].append((descriptor, on_done))
        if self._active is None:
            self._activate(info.client_id)
        elif self._active == info.client_id:
            self._drain_active()
        else:
            self._yield_if_idle()

    def _on_disconnect(self, info: ClientInfo) -> int:
        """Remove a crashed context from the rotation.

        Its queued kernels are dropped, resident launches killed with
        callbacks severed (the crashed client's ``_finished`` would
        otherwise touch the state deleted here), and if it held the
        device the quantum rotates to the next context with work.
        """
        client_id = info.client_id
        cancelled = 0
        for launch in self.device.resident_for(client_id):
            launch.on_complete = None
            self.device.kill(launch)
            cancelled += 1
        self._order.remove(client_id)
        del self._queues[client_id]
        del self._suspended[client_id]
        del self._inflight[client_id]
        if self._active == client_id:
            self._active = None
            if self._quantum_event is not None:
                self._quantum_event.cancel()
                self._quantum_event = None
            for survivor in self._order:
                if self._has_work(survivor):
                    self._activate(survivor)
                    break
        return cancelled

    # ------------------------------------------------------------------
    def _has_work(self, client_id: str) -> bool:
        return bool(self._queues[client_id] or self._suspended[client_id]
                    or self._inflight[client_id])

    def _activate(self, client_id: str) -> None:
        self._active = client_id
        if self._quantum_event is not None:
            self._quantum_event.cancel()
        self._quantum_event = self.engine.schedule(
            self.quantum, self._quantum_expired
        )
        # The context-switch cost precedes the new context's kernels.
        self.engine.schedule(self.context_switch_overhead,
                             lambda: self._drain_if_active(client_id))

    def _drain_if_active(self, client_id: str) -> None:
        if self._active == client_id:
            self._drain_active()

    def _quantum_expired(self) -> None:
        active = self._active
        if active is None:
            return
        nxt = self._next_with_work(after=active)
        if nxt is None:
            if self._has_work(active):
                # No other context wants the device: extend the quantum.
                self._quantum_event = self.engine.schedule(
                    self.quantum, self._quantum_expired
                )
            else:
                # Everyone is idle; stop the timer until new work arrives.
                self._active = None
            return
        # Compute preemption: stop the active context's launches; their
        # completion callbacks park the remainders for resumption.
        if self.tracer.enabled:
            self.tracer.emit(SchedDecision(
                ts=self.engine.now, client_id=active, kernel="",
                transform="context-switch",
                reason=f"quantum expired; switching to {nxt}",
            ))
        for launch in list(self.device.resident_launches):
            # A launch preempted in an earlier quantum may still be
            # draining its in-flight blocks; preempt each launch once.
            if (launch.client_id == active and not launch.done
                    and not launch.preempt_requested):
                self.device.preempt(launch)
                self.preemptions += 1
        self._activate(nxt)

    def _next_with_work(self, after: str) -> str | None:
        if not self._order:
            return None
        start = self._order.index(after)
        n = len(self._order)
        for step in range(1, n + 1):
            candidate = self._order[(start + step) % n]
            if candidate != after and self._has_work(candidate):
                return candidate
        return None

    def _yield_if_idle(self) -> None:
        """Hand over early when the active context runs dry."""
        active = self._active
        if active is None or self._has_work(active):
            return
        nxt = self._next_with_work(after=active)
        if nxt is not None:
            self._activate(nxt)
        else:
            # Everyone idle: release the device and stop the timer.
            self._active = None
            if self._quantum_event is not None:
                self._quantum_event.cancel()
                self._quantum_event = None

    # ------------------------------------------------------------------
    def _drain_active(self) -> None:
        active = self._active
        if active is None:
            return
        suspended = self._suspended[active]
        while suspended:
            descriptor, on_done, remaining, offset = suspended.popleft()
            self._launch(active, descriptor, on_done,
                         blocks=remaining, offset=offset)
        queue = self._queues[active]
        while queue:
            descriptor, on_done = queue.popleft()
            self._launch(active, descriptor, on_done,
                         blocks=descriptor.num_blocks, offset=0)

    def _launch(self, client_id: str, descriptor: KernelDescriptor,
                on_done: Callable[[], None], *, blocks: int,
                offset: int) -> None:
        self._inflight[client_id] += 1
        launch = DeviceLaunch(
            descriptor,
            client_id=client_id,
            priority=0,
            blocks=blocks,
            block_offset=offset,
            on_complete=lambda l, c=client_id, cb=on_done:
                self._finished(c, cb, l),
        )
        self.device.submit(launch)

    def _finished(self, client_id: str, on_done: Callable[[], None],
                  launch: DeviceLaunch) -> None:
        self._inflight[client_id] -= 1
        if launch.status is LaunchStatus.PREEMPTED:
            # Park the remainder; it resumes when this context is next
            # scheduled.  If the context already got the device back
            # before the in-flight blocks drained, continue right away.
            self._suspended[client_id].append((
                launch.descriptor, on_done, launch.tasks_remaining,
                launch.block_offset + launch.blocks_done,
            ))
            if self._active == client_id:
                self._drain_active()
            return
        on_done()
        if self._active == client_id:
            self._drain_active()
            self._yield_if_idle()
        elif self._active is None:
            nxt = self._next_with_work(after=client_id)
            if nxt is not None:
                self._activate(nxt)