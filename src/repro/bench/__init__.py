"""Performance-benchmark harness for the simulator (``repro-bench``).

The simulator's value is proportional to how much simulated time it can
chew through per wall-clock second — every paper figure, the property
suite, and the chaos matrix funnel through the same event-loop and
device hot path.  This package measures that hot path and records the
results as machine-readable JSON so the trajectory is tracked, not
remembered:

* **micro benchmarks** (:mod:`repro.bench.micro`) — event-loop
  throughput, device dispatch, and the transformation pipeline in
  isolation;
* **macro benchmarks** (:mod:`repro.bench.macro`) — a fig4-style
  co-location run and a cluster placement sweep, the workloads the
  repository actually runs all day;
* **harness** (:mod:`repro.bench.harness`) — timing, peak-RSS capture,
  per-phase breakdown, and the ``BENCH_simulator.json`` schema;
* **regression** (:mod:`repro.bench.regression`) — comparison against a
  checked-in baseline, used by the CI ``perf`` job to fail on >25 %
  throughput regressions.

Run ``repro-bench run`` (or ``python -m repro.bench run``) to produce a
report, ``repro-bench compare`` to gate against a baseline.  See
``docs/performance.md`` for methodology.
"""

from .harness import (
    BenchmarkResult,
    BenchReport,
    Phase,
    PhaseTimer,
    peak_rss_kb,
    run_suite,
)
from .regression import RegressionReport, compare_reports, load_report
from .micro import MICRO_BENCHMARKS
from .macro import MACRO_BENCHMARKS

__all__ = [
    "BenchmarkResult",
    "BenchReport",
    "MACRO_BENCHMARKS",
    "MICRO_BENCHMARKS",
    "Phase",
    "PhaseTimer",
    "RegressionReport",
    "compare_reports",
    "load_report",
    "peak_rss_kb",
    "run_suite",
]
