"""``python -m repro.bench`` — alias for the ``repro-bench`` CLI."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
