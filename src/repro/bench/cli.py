"""``repro-bench`` — run the perf suite, track the trajectory, gate CI.

Usage::

    repro-bench run                         # smoke suite, print report
    repro-bench run --scale quick --append  # append to BENCH_simulator.json
    repro-bench run --only macro            # one family
    repro-bench compare benchmarks/baselines/BENCH_baseline.json \
        --current BENCH_simulator.json --threshold 0.25

Also reachable as ``python -m repro.bench``.  See
``docs/performance.md`` for methodology and schema.
"""

from __future__ import annotations

import argparse
import json
import sys

from .harness import BenchReport, append_trajectory, run_suite
from .macro import MACRO_BENCHMARKS
from .micro import MICRO_BENCHMARKS
from .regression import compare_reports, load_report

__all__ = ["main", "build_parser"]

#: default trajectory file at the repository root
DEFAULT_TRAJECTORY = "BENCH_simulator.json"


def _select(only: str | None):
    if only == "micro":
        return MICRO_BENCHMARKS
    if only == "macro":
        return MACRO_BENCHMARKS
    return MICRO_BENCHMARKS + MACRO_BENCHMARKS


def _cmd_run(args: argparse.Namespace) -> int:
    echo = (lambda line: print(line, file=sys.stderr)) if args.verbose \
        else None
    report = run_suite(_select(args.only), args.scale, label=args.label,
                       echo=echo)
    print(report.format())
    if args.append:
        entries = append_trajectory(args.out, report)
        print(f"appended entry #{len(entries)} to {args.out}")
    elif args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump([report.to_dict()], fh, indent=2)
            fh.write("\n")
        print(f"report written to {args.out}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    baseline = load_report(args.baseline)
    current = load_report(args.current)
    report = compare_reports(baseline, current, threshold=args.threshold,
                             hit_rate_drop=args.hit_rate_drop,
                             speedup_floor=args.speedup_floor)
    print(report.format())
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Simulator performance benchmarks and regression gate.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run the benchmark suite")
    run.add_argument("--scale", choices=("smoke", "quick", "full"),
                     default="smoke",
                     help="workload size (smoke = CI gate, seconds)")
    run.add_argument("--only", choices=("micro", "macro"), default=None,
                     help="run one benchmark family")
    run.add_argument("--out", metavar="PATH", default=None,
                     help="write the report as JSON to PATH")
    run.add_argument("--append", action="store_true",
                     help=f"append to the trajectory file "
                          f"(default {DEFAULT_TRAJECTORY})")
    run.add_argument("--label", default="",
                     help="free-form label recorded in the report")
    run.add_argument("--verbose", action="store_true",
                     help="progress lines on stderr")
    run.set_defaults(fn=_cmd_run)

    compare = sub.add_parser(
        "compare", help="gate a report against a baseline")
    compare.add_argument("baseline",
                         help="baseline report JSON (report or trajectory)")
    compare.add_argument("--current", default=DEFAULT_TRAJECTORY,
                         help="current report (newest trajectory entry)")
    compare.add_argument("--threshold", type=float, default=0.25,
                         help="fail when events/s drops more than this "
                              "fraction below baseline (default 0.25)")
    compare.add_argument("--hit-rate-drop", type=float, default=0.10,
                         help="fail when a benchmark's transform-cache "
                              "hit rate drops more than this many points "
                              "below baseline (default 0.10)")
    compare.add_argument("--speedup-floor", type=float, default=4.0,
                         help="fail when a speedup-gated benchmark "
                              "(macro.cluster_1k on a host with enough "
                              "cores) reports less than this parallel-"
                              "over-serial speedup (default 4.0)")
    compare.set_defaults(fn=_cmd_compare)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run" and args.append and not args.out:
        args.out = DEFAULT_TRAJECTORY
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
