"""Benchmark timing harness and the ``BENCH_simulator.json`` schema.

A benchmark is a callable that does measured work and returns a
:class:`BenchmarkResult` — wall-clock seconds, an event count (so the
headline metric, simulation events per second, is machine-comparable),
and a per-phase breakdown recorded through a :class:`PhaseTimer`.

The report schema (version 1)::

    {
      "schema": "repro-bench/1",
      "created_unix": 1754400000.0,
      "label": "after hot-path optimization",
      "scale": "smoke",
      "platform": {"python": "3.12.3", "machine": "x86_64", ...},
      "peak_rss_kb": 123456,
      "benchmarks": [
        {
          "name": "macro.colocation_fig4",
          "wall_s": 1.84,
          "events": 462247,
          "events_per_s": 251221.2,
          "phases": [{"name": "simulate", "wall_s": 1.7, ...}, ...],
          "extra": {"simulated_s": 10.0, "sim_per_wall": 5.4}
        }, ...
      ]
    }

``BENCH_simulator.json`` at the repository root holds a *list* of these
reports — the performance trajectory, oldest first.  ``repro-bench run
--append`` adds a new entry; the CI ``perf`` job compares the newest
entry against ``benchmarks/baselines/BENCH_baseline.json``.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..errors import ReproError

__all__ = [
    "BenchmarkResult",
    "BenchReport",
    "Phase",
    "PhaseTimer",
    "SCHEMA",
    "peak_rss_kb",
    "run_suite",
]

#: schema identifier written into every report
SCHEMA = "repro-bench/1"


def peak_rss_kb() -> int:
    """Peak resident-set size of this process in KiB (0 if unavailable)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    if sys.platform == "darwin":  # pragma: no cover - platform-specific
        usage //= 1024
    return int(usage)


@dataclass(frozen=True)
class Phase:
    """One timed phase inside a benchmark."""

    name: str
    wall_s: float
    events: int = 0

    def to_dict(self) -> dict:
        d: dict = {"name": self.name, "wall_s": self.wall_s}
        if self.events:
            d["events"] = self.events
        return d


class PhaseTimer:
    """Accumulates named phases; benchmarks use it for the breakdown.

    >>> timer = PhaseTimer()
    >>> with timer.phase("simulate"):
    ...     engine.run_until(10.0)
    """

    def __init__(self) -> None:
        self.phases: list[Phase] = []

    class _Ctx:
        def __init__(self, timer: "PhaseTimer", name: str) -> None:
            self._timer = timer
            self._name = name
            self._start = 0.0

        def __enter__(self) -> "PhaseTimer._Ctx":
            self._start = time.perf_counter()
            return self

        def __exit__(self, *exc: object) -> None:
            self._timer.phases.append(Phase(
                self._name, time.perf_counter() - self._start))

    def phase(self, name: str) -> "PhaseTimer._Ctx":
        return PhaseTimer._Ctx(self, name)

    def add(self, name: str, wall_s: float, events: int = 0) -> None:
        self.phases.append(Phase(name, wall_s, events))


@dataclass
class BenchmarkResult:
    """Outcome of one benchmark."""

    name: str
    wall_s: float
    events: int
    phases: list[Phase] = field(default_factory=list)
    extra: dict = field(default_factory=dict)

    @property
    def events_per_s(self) -> float:
        if self.wall_s <= 0:
            return 0.0
        return self.events / self.wall_s

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "wall_s": self.wall_s,
            "events": self.events,
            "events_per_s": self.events_per_s,
            "phases": [p.to_dict() for p in self.phases],
            "extra": self.extra,
        }

    @staticmethod
    def from_dict(data: dict) -> "BenchmarkResult":
        return BenchmarkResult(
            name=data["name"],
            wall_s=float(data["wall_s"]),
            events=int(data["events"]),
            phases=[Phase(p["name"], float(p["wall_s"]),
                          int(p.get("events", 0)))
                    for p in data.get("phases", ())],
            extra=dict(data.get("extra", {})),
        )


@dataclass
class BenchReport:
    """One full suite run — a single entry in the trajectory file."""

    benchmarks: list[BenchmarkResult]
    label: str = ""
    scale: str = "smoke"
    created_unix: float = 0.0
    peak_rss: int = 0

    def __post_init__(self) -> None:
        if not self.created_unix:
            self.created_unix = time.time()
        if not self.peak_rss:
            self.peak_rss = peak_rss_kb()

    def result(self, name: str) -> BenchmarkResult:
        for bench in self.benchmarks:
            if bench.name == name:
                return bench
        raise ReproError(
            f"no benchmark {name!r} in report "
            f"(have {[b.name for b in self.benchmarks]})"
        )

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "created_unix": self.created_unix,
            "label": self.label,
            "scale": self.scale,
            "platform": {
                "python": platform.python_version(),
                "implementation": platform.python_implementation(),
                "machine": platform.machine(),
                "system": platform.system(),
            },
            "peak_rss_kb": self.peak_rss,
            "benchmarks": [b.to_dict() for b in self.benchmarks],
        }

    @staticmethod
    def from_dict(data: dict) -> "BenchReport":
        if data.get("schema") != SCHEMA:
            raise ReproError(
                f"unknown bench schema {data.get('schema')!r} "
                f"(expected {SCHEMA!r})"
            )
        return BenchReport(
            benchmarks=[BenchmarkResult.from_dict(b)
                        for b in data.get("benchmarks", ())],
            label=data.get("label", ""),
            scale=data.get("scale", "smoke"),
            created_unix=float(data.get("created_unix", 0.0)),
            peak_rss=int(data.get("peak_rss_kb", 0)),
        )

    def format(self) -> str:
        from ..harness.reporting import format_table

        rows = []
        for bench in self.benchmarks:
            rows.append((
                bench.name,
                f"{bench.wall_s:.3f}s",
                f"{bench.events:,}",
                f"{bench.events_per_s:,.0f}",
            ))
        table = format_table(
            ("benchmark", "wall", "events", "events/s"), rows,
            title=f"repro-bench [{self.scale}]"
            + (f" — {self.label}" if self.label else ""),
        )
        lines = [table]
        for bench in self.benchmarks:
            if "cache_hit_rate" not in bench.extra:
                continue
            extra = bench.extra
            line = (f"{bench.name} cache: {extra.get('cache_hits', 0)} hits"
                    f" / {extra.get('cache_misses', 0)} misses"
                    f" ({float(extra['cache_hit_rate']):.0%} hit rate)")
            if extra.get("cache_evictions"):
                line += f", {extra['cache_evictions']} evicted"
            lines.append(line)
        lines.append(f"peak RSS: {self.peak_rss / 1024:.0f} MiB")
        return "\n".join(lines)


def append_trajectory(path: str, report: BenchReport) -> list[dict]:
    """Append ``report`` to the trajectory file at ``path``; return all."""
    entries: list[dict] = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            content = fh.read().strip()
        if content:
            loaded = json.loads(content)
            if not isinstance(loaded, list):
                raise ReproError(
                    f"{path}: trajectory file must hold a JSON list"
                )
            entries = loaded
    except FileNotFoundError:
        pass
    entries.append(report.to_dict())
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(entries, fh, indent=2)
        fh.write("\n")
    return entries


def run_suite(benchmarks: Iterable[tuple[str, Callable[[str], BenchmarkResult]]],
              scale: str = "smoke", *, label: str = "",
              echo: Callable[[str], None] | None = None) -> BenchReport:
    """Run ``(name, fn)`` benchmarks in order and collect a report.

    Each ``fn`` receives the scale (``smoke`` | ``quick`` | ``full``)
    and returns a :class:`BenchmarkResult`; the suite preserves order
    so reports are comparable line-by-line.
    """
    results: list[BenchmarkResult] = []
    for name, fn in benchmarks:
        if echo is not None:
            echo(f"[bench] {name} ...")
        result = fn(scale)
        result.name = name
        if echo is not None:
            echo(f"[bench] {name}: {result.wall_s:.3f}s, "
                 f"{result.events:,} events "
                 f"({result.events_per_s:,.0f}/s)")
        results.append(result)
    return BenchReport(benchmarks=results, label=label, scale=scale)
