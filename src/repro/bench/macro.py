"""Macro benchmarks: the workloads the repository actually runs.

Two end-to-end shapes:

* **colocation (fig4-style)** — one latency-critical inference service
  against one best-effort training job under Tally, the cell every
  paper figure is built from.  Reported per-phase: standalone
  baselines, the co-located simulation, and metric extraction.
* **cluster sweep** — a packed placement evaluated GPU-by-GPU, the
  ``repro cluster`` consolidation demo (and the shape the parallel
  sweep runner accelerates).

The headline metric is simulation events per wall-clock second; the
``extra`` payload records the simulated-to-wall-time ratio, which is
the number a simulator user actually feels.
"""

from __future__ import annotations

import time

from .harness import BenchmarkResult, PhaseTimer

__all__ = ["MACRO_BENCHMARKS", "bench_colocation", "bench_cluster",
           "bench_cluster_1k", "bench_llm_serve"]

#: simulated seconds per scale
_DURATIONS = {"smoke": 3.0, "quick": 10.0, "full": 20.0}


def _duration(scale: str) -> float:
    return _DURATIONS.get(scale, _DURATIONS["smoke"])


def bench_colocation(scale: str = "smoke") -> BenchmarkResult:
    """Fig4-style cell: bert_infer (load 0.5) x whisper_train, Tally."""
    from ..harness import (
        JobSpec,
        RunConfig,
        clear_standalone_cache,
        run_colocation,
        standalone,
    )

    duration = _duration(scale)
    config = RunConfig(duration=duration, warmup=min(1.0, duration / 3))
    inference = JobSpec.inference("bert_infer", load=0.5)
    training = JobSpec.training("whisper_train")
    timer = PhaseTimer()

    clear_standalone_cache()
    start = time.perf_counter()
    standalone(inference, config)
    standalone(training, config)
    timer.add("standalone", time.perf_counter() - start)

    start = time.perf_counter()
    result = run_colocation("Tally", [inference, training], config)
    sim_wall = time.perf_counter() - start
    timer.add("simulate", sim_wall, result.events)

    start = time.perf_counter()
    for job in result.jobs.values():
        _ = job.rate  # metric extraction already happened; touch it
    timer.add("metrics", time.perf_counter() - start)

    wall = sum(p.wall_s for p in timer.phases)
    return BenchmarkResult(
        name="macro.colocation_fig4", wall_s=wall, events=result.events,
        phases=timer.phases,
        extra={
            "simulated_s": duration,
            "sim_per_wall": duration / sim_wall if sim_wall > 0 else 0.0,
            "policy": "Tally",
            "utilization": result.utilization,
        },
    )


def bench_cluster(scale: str = "smoke") -> BenchmarkResult:
    """Cluster consolidation sweep over a packed placement."""
    from ..cluster import ClusterJob, evaluate_placement, packed_placement
    from ..harness import RunConfig, clear_standalone_cache

    duration = max(2.0, _duration(scale) / 2)
    jobs: list[ClusterJob] = []
    seed = 0
    for model, load in (("resnet50_infer", 0.10), ("bert_infer", 0.12),
                        ("yolov6m_infer", 0.10), ("bert_infer", 0.10)):
        jobs.append(ClusterJob(model, load=load, traffic_seed=seed))
        seed += 1
    for model in ("resnet50_train", "pointnet_train", "gpt2_train"):
        jobs.append(ClusterJob(model, traffic_seed=seed))
        seed += 1
    placement = packed_placement(jobs, compute_budget=1.4)
    config = RunConfig(duration=duration, warmup=1.0)
    timer = PhaseTimer()

    clear_standalone_cache()
    start = time.perf_counter()
    result = evaluate_placement(placement, "Tally", config)
    timer.add("sweep", time.perf_counter() - start)

    wall = sum(p.wall_s for p in timer.phases)
    simulated = duration * placement.gpus_used
    return BenchmarkResult(
        name="macro.cluster_sweep", wall_s=wall,
        events=result.events,
        phases=timer.phases,
        extra={
            "gpus": placement.gpus_used,
            "simulated_gpu_s": simulated,
            "sim_per_wall": simulated / wall if wall > 0 else 0.0,
            "sla_violations": result.sla_violations,
        },
    )


def bench_llm_serve(scale: str = "smoke") -> BenchmarkResult:
    """LLM serving colocation: llama7b_serve (load 0.5) x resnet50_train.

    Continuous batching generates far more (smaller) kernels per unit
    of simulated time than the trace models, so this macro stresses the
    per-kernel scheduler path plus the KV-cache allocator traffic.
    """
    from ..harness import (
        JobSpec,
        RunConfig,
        clear_standalone_cache,
        run_colocation,
        standalone,
    )

    duration = _duration(scale)
    config = RunConfig(duration=duration, warmup=min(1.0, duration / 3))
    llm = JobSpec.llm("llama7b_serve", load=0.5)
    training = JobSpec.training("resnet50_train")
    timer = PhaseTimer()

    clear_standalone_cache()
    start = time.perf_counter()
    standalone(llm, config)
    standalone(training, config)
    timer.add("standalone", time.perf_counter() - start)

    start = time.perf_counter()
    result = run_colocation("Tally", [llm, training], config)
    sim_wall = time.perf_counter() - start
    timer.add("simulate", sim_wall, result.events)

    start = time.perf_counter()
    serving = result.llm_results()[0].serving
    assert serving is not None
    timer.add("metrics", time.perf_counter() - start)

    wall = sum(p.wall_s for p in timer.phases)
    return BenchmarkResult(
        name="macro.llm_serve", wall_s=wall, events=result.events,
        phases=timer.phases,
        extra={
            "simulated_s": duration,
            "sim_per_wall": duration / sim_wall if sim_wall > 0 else 0.0,
            "policy": "Tally",
            "tokens_per_s": serving.tokens_per_s,
            "utilization": result.utilization,
        },
    )


def bench_cluster_1k(scale: str = "smoke") -> BenchmarkResult:
    """One large control-plane run, serial engine vs time-warp engine.

    A fabric of fig4 cells — every device co-locates one
    latency-critical ``bert_infer`` with one ``resnet50_train`` under
    Tally — admitted first-fit at t=0 with no later control events, so
    the shard phase is the whole run and the parallel engine's ceiling
    is visible.  64 devices at smoke/quick scale, 1024 (the "1k" demo)
    at full.  The same topology runs on both engines; the headline
    events/s is the parallel run and ``extra["speedup"]`` is
    serial-wall over parallel-wall.  Bit-identity of the two results is
    asserted here too — a fast benchmark that silently diverged from
    the oracle would be worthless.

    The ≥4x CI gate only makes sense with real cores behind the
    workers; ``extra["gate"]`` records whether this host qualifies
    (see :mod:`repro.bench.regression`).
    """
    import os

    from ..cluster import ClusterJob
    from ..cluster.controlplane import ClusterController
    from ..harness import RunConfig, clear_standalone_cache

    devices = 1024 if scale == "full" else 64
    duration = {"smoke": 1.0, "quick": 2.0}.get(scale, 1.0)
    workers = 8
    jobs: list[ClusterJob] = []
    for index in range(devices):
        jobs.append(ClusterJob("bert_infer", load=0.35,
                               traffic_seed=2 * index))
        jobs.append(ClusterJob("resnet50_train",
                               traffic_seed=2 * index + 1))
    config = RunConfig(duration=duration, warmup=min(0.5, duration / 4))

    def controller(**kw) -> ClusterController:
        return ClusterController(jobs, devices, config=config,
                                 compute_budget=1.5, **kw)

    timer = PhaseTimer()
    clear_standalone_cache()
    start = time.perf_counter()
    serial = controller().run()
    serial_wall = time.perf_counter() - start
    timer.add("serial", serial_wall, serial.events)

    start = time.perf_counter()
    parallel = controller(engine="parallel", workers=workers).run()
    parallel_wall = time.perf_counter() - start
    timer.add("parallel", parallel_wall, parallel.events)

    if repr(serial) != repr(parallel):
        raise AssertionError(
            "macro.cluster_1k: parallel engine diverged from serial "
            "oracle")

    cores = os.cpu_count() or 1
    wall = sum(p.wall_s for p in timer.phases)
    return BenchmarkResult(
        name="macro.cluster_1k", wall_s=wall, events=parallel.events,
        phases=timer.phases,
        extra={
            "devices": devices,
            "workers": workers,
            "cores": cores,
            "simulated_gpu_s": duration * devices,
            "serial_events_per_s": (serial.events / serial_wall
                                    if serial_wall > 0 else 0.0),
            "parallel_events_per_s": (parallel.events / parallel_wall
                                      if parallel_wall > 0 else 0.0),
            "speedup": (serial_wall / parallel_wall
                        if parallel_wall > 0 else 0.0),
            "identical": True,
            # the ≥4x acceptance gate needs >= 8 real cores to mean
            # anything; hosts below that record the speedup but are
            # not held to it
            "gate": cores >= workers,
        },
    )


#: suite entries in run order (name, callable)
MACRO_BENCHMARKS = (
    ("macro.colocation_fig4", bench_colocation),
    ("macro.cluster_sweep", bench_cluster),
    ("macro.cluster_1k", bench_cluster_1k),
    ("macro.llm_serve", bench_llm_serve),
)
