"""Micro benchmarks: the hot path in isolation.

Three components dominate every run's profile, so each gets a dedicated
throughput measurement:

* **event loop** — schedule/fire churn through
  :class:`~repro.gpu.engine.EventLoop`, in the two shapes real runs
  produce: a deep timer chain (stream-ordered kernels) and a wide
  concurrent fan-out (traffic arrivals);
* **device dispatch** — back-to-back ORIGINAL launches through
  :class:`~repro.gpu.device.GPUDevice`, plus a PTB stream, measuring
  the dispatch/complete cycle without any policy above it;
* **transform pipeline** — the PTX slicing/PTB transformations: a cold
  phase (the one-off compile per distinct kernel) followed by a
  memoized phase where fresh kernel objects and pipelines share the
  content-addressed transform memo, the steady-state server cost.

Scales: ``smoke`` sizes each benchmark for a CI gate (< a few seconds
total), ``quick``/``full`` grow the workloads for stable local numbers.
"""

from __future__ import annotations

import time

from ..gpu.device import DeviceLaunch, GPUDevice
from ..gpu.engine import EventLoop
from ..gpu.kernel import KernelDescriptor, LaunchConfig, LaunchKind
from ..gpu.specs import A100_SXM4_40GB
from .harness import BenchmarkResult, PhaseTimer

__all__ = ["MICRO_BENCHMARKS", "bench_event_loop", "bench_device_dispatch",
           "bench_transform_pipeline"]

_SIZES = {
    # (chained events, fan-out events, device launches, transforms)
    "smoke": (50_000, 50_000, 2_000, 60),
    "quick": (200_000, 200_000, 10_000, 200),
    "full": (1_000_000, 1_000_000, 50_000, 500),
}


def _sizes(scale: str) -> tuple[int, int, int, int]:
    return _SIZES.get(scale, _SIZES["smoke"])


def bench_event_loop(scale: str = "smoke") -> BenchmarkResult:
    """Raw engine throughput: timer chain + concurrent fan-out."""
    chain_n, fan_n, _launches, _transforms = _sizes(scale)
    timer = PhaseTimer()

    # Phase 1: a single deep chain — each event schedules the next,
    # the shape stream-ordered kernel completions produce.
    loop = EventLoop()
    remaining = [chain_n]

    def tick() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            loop.schedule(1e-6, tick)

    loop.schedule(1e-6, tick)
    start = time.perf_counter()
    loop.run()
    timer.add("chain", time.perf_counter() - start, chain_n)

    # Phase 2: wide fan-out — all events pre-scheduled (traffic
    # arrivals), stressing heap push/pop at depth.
    loop2 = EventLoop()
    noop = lambda: None  # noqa: E731 - minimal callback on purpose
    start = time.perf_counter()
    for i in range(fan_n):
        loop2.schedule_at(i * 1e-6, noop)
    loop2.run()
    timer.add("fanout", time.perf_counter() - start, fan_n)

    wall = sum(p.wall_s for p in timer.phases)
    events = loop.events_processed + loop2.events_processed
    return BenchmarkResult(
        name="micro.event_loop", wall_s=wall, events=events,
        phases=timer.phases,
    )


def bench_device_dispatch(scale: str = "smoke") -> BenchmarkResult:
    """Device dispatch/complete cycle with no policy above it."""
    _chain, _fan, launches_n, _transforms = _sizes(scale)
    spec = A100_SXM4_40GB
    timer = PhaseTimer()

    # Phase 1: stream-ordered ORIGINAL launches (multi-wave grids).
    engine = EventLoop()
    device = GPUDevice(spec, engine)
    descriptor = KernelDescriptor(
        "bench_original", num_blocks=2048, threads_per_block=256,
        block_duration=2e-5,
    )
    remaining = [launches_n]

    def submit_next(_launch: DeviceLaunch | None = None) -> None:
        if remaining[0] <= 0:
            return
        remaining[0] -= 1
        device.submit(DeviceLaunch(
            descriptor, client_id="bench", on_complete=submit_next))

    start = time.perf_counter()
    submit_next()
    engine.run()
    timer.add("original", time.perf_counter() - start,
              engine.events_processed)
    events = engine.events_processed

    # Phase 2: a PTB stream (persistent workers iterating a large grid).
    engine2 = EventLoop()
    device2 = GPUDevice(spec, engine2)
    ptb_descriptor = KernelDescriptor(
        "bench_ptb", num_blocks=8192, threads_per_block=256,
        block_duration=2e-5,
    )
    ptb_remaining = [max(1, launches_n // 20)]

    def submit_ptb(_launch: DeviceLaunch | None = None) -> None:
        if ptb_remaining[0] <= 0:
            return
        ptb_remaining[0] -= 1
        device2.submit(DeviceLaunch(
            ptb_descriptor, LaunchConfig(LaunchKind.PTB, workers=432),
            client_id="bench", on_complete=submit_ptb))

    start = time.perf_counter()
    submit_ptb()
    engine2.run()
    timer.add("ptb", time.perf_counter() - start, engine2.events_processed)
    events += engine2.events_processed

    wall = sum(p.wall_s for p in timer.phases)
    return BenchmarkResult(
        name="micro.device_dispatch", wall_s=wall, events=events,
        phases=timer.phases,
        extra={"launches": launches_n + max(1, launches_n // 20)},
    )


def bench_transform_pipeline(scale: str = "smoke") -> BenchmarkResult:
    """PTX transformation cost: cold compiles, then memoized reuse.

    Phase 1 (``cold``) pays the full transformation cost once per
    distinct kernel.  Phase 2 (``memoized``) models the production
    server: every iteration builds *fresh* kernel objects and a *fresh*
    pipeline (new clients, repeated workloads, sweep cases), all sharing
    one content-addressed :class:`~repro.transform.TransformMemo` — so
    each transform costs a structural hash plus a lookup rather than a
    recompile.  The headline events/s therefore tracks what the memo JIT
    actually buys; ``extra`` carries the cache counters for the gate.
    """
    from ..ptx.library import dot_product, saxpy, stencil_1d, vector_add
    from ..transform.memo import TransformMemo
    from ..transform.pipeline import TransformPipeline

    _chain, _fan, _launches, transforms_n = _sizes(scale)
    factories = (vector_add, saxpy, stencil_1d, lambda: dot_product(128))
    timer = PhaseTimer()
    memo = TransformMemo()
    transformed = 0

    # Phase 1: cold — one full compile per distinct kernel content.
    start = time.perf_counter()
    for factory in factories:
        kernel = factory()
        pipeline = TransformPipeline(memo=memo)
        pipeline.sliced(kernel)
        pipeline.preemptible(kernel)
        transformed += 2
    timer.add("cold", time.perf_counter() - start, transformed)

    # Phase 2: memoized — fresh kernel objects (new ids, same content)
    # through fresh pipelines; every transform is a memo hit.
    warm = 0
    start = time.perf_counter()
    for i in range(transforms_n):
        kernel = factories[i % len(factories)]()
        pipeline = TransformPipeline(memo=memo)
        pipeline.sliced(kernel)
        pipeline.preemptible(kernel)
        warm += 2
    timer.add("memoized", time.perf_counter() - start, warm)
    transformed += warm

    wall = sum(p.wall_s for p in timer.phases)
    return BenchmarkResult(
        name="micro.transform_pipeline", wall_s=wall, events=transformed,
        phases=timer.phases,
        extra={
            "kernels": transforms_n,
            "cache_hits": memo.hits,
            "cache_misses": memo.misses,
            "cache_evictions": memo.evictions,
            "cache_hit_rate": round(memo.hit_rate, 4),
        },
    )


#: suite entries in run order (name, callable)
MICRO_BENCHMARKS = (
    ("micro.event_loop", bench_event_loop),
    ("micro.device_dispatch", bench_device_dispatch),
    ("micro.transform_pipeline", bench_transform_pipeline),
)
