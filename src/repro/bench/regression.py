"""Regression gating: compare a bench report against a baseline.

The CI ``perf`` job runs the smoke suite and fails when any benchmark's
events-per-second throughput drops more than ``threshold`` (default
25 %) below the checked-in baseline
(``benchmarks/baselines/BENCH_baseline.json``).  The baseline is a
recorded :class:`~repro.bench.harness.BenchReport`; refresh it with
``repro-bench run --out benchmarks/baselines/BENCH_baseline.json``
whenever a deliberate trade-off (or a hardware change on the reference
machine) moves the numbers.

Comparison is by benchmark *name*: benchmarks present on only one side
are reported but never fail the gate, so adding a benchmark does not
require touching the baseline in the same commit.

Benchmarks that record a transform-cache hit rate (``cache_hit_rate``
in ``extra``, e.g. ``micro.transform_pipeline``) get a second gate: an
absolute hit-rate drop beyond ``hit_rate_drop`` (default 10 points)
fails the build even when throughput still squeaks past the threshold —
a broken memo key shows up there first.

Benchmarks that record a parallel-over-serial ``speedup`` with
``gate: true`` in ``extra`` (``macro.cluster_1k`` — the flag is set by
the benchmark only on hosts with enough real cores for the worker
count) get a third gate: the speedup must clear ``speedup_floor``
(default 4x).  This one reads the *current* report alone — a baseline
is not needed to know the parallel engine stopped pulling its weight.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..errors import ReproError
from .harness import BenchReport

__all__ = ["Comparison", "RegressionReport", "compare_reports",
           "load_report"]


def load_report(path: str) -> BenchReport:
    """Load one report — either a bare report or a trajectory list.

    Trajectory files (``BENCH_simulator.json``) hold a list of reports;
    the *newest* (last) entry is returned.
    """
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if isinstance(data, list):
        if not data:
            raise ReproError(f"{path}: empty trajectory file")
        data = data[-1]
    if not isinstance(data, dict):
        raise ReproError(f"{path}: expected a report object or list")
    return BenchReport.from_dict(data)


@dataclass(frozen=True)
class Comparison:
    """One benchmark's baseline-vs-current throughput comparison.

    Benchmarks that report a transform-cache hit rate (the
    ``cache_hit_rate`` key in ``extra``) are additionally gated on it:
    a memoization bug that recompiles instead of reusing shows up as a
    hit-rate drop long before the wall-clock noise floor would catch
    it.
    """

    name: str
    baseline_eps: float
    current_eps: float
    baseline_hit_rate: float | None = None
    current_hit_rate: float | None = None

    @property
    def ratio(self) -> float:
        """current / baseline events-per-second (>1 means faster)."""
        if self.baseline_eps <= 0:
            return float("inf")
        return self.current_eps / self.baseline_eps

    def regressed(self, threshold: float) -> bool:
        return self.ratio < 1.0 - threshold

    def hit_rate_dropped(self, max_drop: float) -> bool:
        """Did the cache hit rate fall more than ``max_drop`` (absolute)?

        Only meaningful when both sides report a hit rate; a benchmark
        gaining or losing the counter between versions never fails.
        """
        if self.baseline_hit_rate is None or self.current_hit_rate is None:
            return False
        return self.current_hit_rate < self.baseline_hit_rate - max_drop


@dataclass
class RegressionReport:
    """Outcome of a baseline comparison."""

    threshold: float
    comparisons: list[Comparison]
    only_in_baseline: list[str] = field(default_factory=list)
    only_in_current: list[str] = field(default_factory=list)
    #: maximum tolerated absolute cache-hit-rate drop
    hit_rate_drop: float = 0.10
    #: minimum parallel-over-serial speedup for gated benchmarks
    speedup_floor: float = 4.0
    #: ``(name, speedup)`` of gated benchmarks under the floor
    speedup_failures: list[tuple[str, float]] = field(default_factory=list)

    @property
    def regressions(self) -> list[Comparison]:
        return [c for c in self.comparisons if c.regressed(self.threshold)]

    @property
    def hit_rate_regressions(self) -> list[Comparison]:
        return [c for c in self.comparisons
                if c.hit_rate_dropped(self.hit_rate_drop)]

    @property
    def ok(self) -> bool:
        return (not self.regressions and not self.hit_rate_regressions
                and not self.speedup_failures)

    def format(self) -> str:
        lines = []
        for c in self.comparisons:
            mark = "REGRESSED" if c.regressed(self.threshold) else "ok"
            line = (
                f"  {c.name}: {c.baseline_eps:,.0f} -> "
                f"{c.current_eps:,.0f} events/s "
                f"({c.ratio:.2f}x) [{mark}]"
            )
            if c.baseline_hit_rate is not None \
                    and c.current_hit_rate is not None:
                hr_mark = ("HIT-RATE DROPPED"
                           if c.hit_rate_dropped(self.hit_rate_drop)
                           else "ok")
                line += (f" cache {c.baseline_hit_rate:.0%} -> "
                         f"{c.current_hit_rate:.0%} [{hr_mark}]")
            lines.append(line)
        for name in self.only_in_baseline:
            lines.append(f"  {name}: only in baseline (skipped)")
        for name in self.only_in_current:
            lines.append(f"  {name}: new benchmark (no baseline)")
        for name, speedup in self.speedup_failures:
            lines.append(
                f"  {name}: parallel speedup {speedup:.2f}x under the "
                f"{self.speedup_floor:.1f}x floor [SPEEDUP FAILED]")
        failures = (len(self.regressions) + len(self.hit_rate_regressions)
                    + len(self.speedup_failures))
        verdict = "OK" if self.ok else f"FAILED ({failures} regressions)"
        header = (f"perf gate {verdict}: threshold "
                  f"{self.threshold:.0%} below baseline, cache hit rate "
                  f"within {self.hit_rate_drop:.0%}")
        return "\n".join([header] + lines)


def _hit_rate(extra: dict) -> float | None:
    value = extra.get("cache_hit_rate")
    return float(value) if value is not None else None


def compare_reports(baseline: BenchReport, current: BenchReport, *,
                    threshold: float = 0.25,
                    hit_rate_drop: float = 0.10,
                    speedup_floor: float = 4.0) -> RegressionReport:
    """Compare throughput (and cache hit rates) by benchmark name."""
    if not 0 < threshold < 1:
        raise ReproError(f"threshold must be in (0, 1), got {threshold!r}")
    if not 0 < hit_rate_drop < 1:
        raise ReproError(
            f"hit_rate_drop must be in (0, 1), got {hit_rate_drop!r}")
    if speedup_floor <= 0:
        raise ReproError(
            f"speedup_floor must be > 0, got {speedup_floor!r}")
    speedup_failures = [
        (b.name, float(b.extra.get("speedup", 0.0)))
        for b in current.benchmarks
        if b.extra.get("gate")
        and float(b.extra.get("speedup", 0.0)) < speedup_floor
    ]
    base_by_name = {b.name: b for b in baseline.benchmarks}
    cur_by_name = {b.name: b for b in current.benchmarks}
    comparisons = [
        Comparison(name, base_by_name[name].events_per_s,
                   cur_by_name[name].events_per_s,
                   baseline_hit_rate=_hit_rate(base_by_name[name].extra),
                   current_hit_rate=_hit_rate(cur_by_name[name].extra))
        for name in base_by_name if name in cur_by_name
    ]
    return RegressionReport(
        threshold=threshold,
        comparisons=comparisons,
        only_in_baseline=sorted(set(base_by_name) - set(cur_by_name)),
        only_in_current=sorted(set(cur_by_name) - set(base_by_name)),
        hit_rate_drop=hit_rate_drop,
        speedup_floor=speedup_floor,
        speedup_failures=speedup_failures,
    )
