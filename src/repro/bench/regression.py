"""Regression gating: compare a bench report against a baseline.

The CI ``perf`` job runs the smoke suite and fails when any benchmark's
events-per-second throughput drops more than ``threshold`` (default
25 %) below the checked-in baseline
(``benchmarks/baselines/BENCH_baseline.json``).  The baseline is a
recorded :class:`~repro.bench.harness.BenchReport`; refresh it with
``repro-bench run --out benchmarks/baselines/BENCH_baseline.json``
whenever a deliberate trade-off (or a hardware change on the reference
machine) moves the numbers.

Comparison is by benchmark *name*: benchmarks present on only one side
are reported but never fail the gate, so adding a benchmark does not
require touching the baseline in the same commit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..errors import ReproError
from .harness import BenchReport

__all__ = ["Comparison", "RegressionReport", "compare_reports",
           "load_report"]


def load_report(path: str) -> BenchReport:
    """Load one report — either a bare report or a trajectory list.

    Trajectory files (``BENCH_simulator.json``) hold a list of reports;
    the *newest* (last) entry is returned.
    """
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if isinstance(data, list):
        if not data:
            raise ReproError(f"{path}: empty trajectory file")
        data = data[-1]
    if not isinstance(data, dict):
        raise ReproError(f"{path}: expected a report object or list")
    return BenchReport.from_dict(data)


@dataclass(frozen=True)
class Comparison:
    """One benchmark's baseline-vs-current throughput comparison."""

    name: str
    baseline_eps: float
    current_eps: float

    @property
    def ratio(self) -> float:
        """current / baseline events-per-second (>1 means faster)."""
        if self.baseline_eps <= 0:
            return float("inf")
        return self.current_eps / self.baseline_eps

    def regressed(self, threshold: float) -> bool:
        return self.ratio < 1.0 - threshold


@dataclass
class RegressionReport:
    """Outcome of a baseline comparison."""

    threshold: float
    comparisons: list[Comparison]
    only_in_baseline: list[str] = field(default_factory=list)
    only_in_current: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[Comparison]:
        return [c for c in self.comparisons if c.regressed(self.threshold)]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def format(self) -> str:
        lines = []
        for c in self.comparisons:
            mark = "REGRESSED" if c.regressed(self.threshold) else "ok"
            lines.append(
                f"  {c.name}: {c.baseline_eps:,.0f} -> "
                f"{c.current_eps:,.0f} events/s "
                f"({c.ratio:.2f}x) [{mark}]"
            )
        for name in self.only_in_baseline:
            lines.append(f"  {name}: only in baseline (skipped)")
        for name in self.only_in_current:
            lines.append(f"  {name}: new benchmark (no baseline)")
        verdict = ("OK" if self.ok
                   else f"FAILED ({len(self.regressions)} regressions)")
        header = (f"perf gate {verdict}: threshold "
                  f"{self.threshold:.0%} below baseline")
        return "\n".join([header] + lines)


def compare_reports(baseline: BenchReport, current: BenchReport, *,
                    threshold: float = 0.25) -> RegressionReport:
    """Compare throughput by benchmark name."""
    if not 0 < threshold < 1:
        raise ReproError(f"threshold must be in (0, 1), got {threshold!r}")
    base_by_name = {b.name: b for b in baseline.benchmarks}
    cur_by_name = {b.name: b for b in current.benchmarks}
    comparisons = [
        Comparison(name, base_by_name[name].events_per_s,
                   cur_by_name[name].events_per_s)
        for name in base_by_name if name in cur_by_name
    ]
    return RegressionReport(
        threshold=threshold,
        comparisons=comparisons,
        only_in_baseline=sorted(set(base_by_name) - set(cur_by_name)),
        only_in_current=sorted(set(cur_by_name) - set(base_by_name)),
    )
