"""Correctness tooling: runtime invariants + differential validation.

Two layers (see ``docs/validation.md``):

* :mod:`repro.check.invariants` — an opt-in runtime checker
  (:class:`InvariantChecker`) that re-audits the device's accounting
  after every simulation event, behind a zero-overhead disabled
  default (:data:`NULL_CHECKER`, mirroring ``NULL_TRACER``);
* :mod:`repro.check.differential` — seeded random workload generation
  plus differential oracles: the device versus the analytic cost
  model, repeated runs for determinism, physical lower bounds, and
  kernel conservation across Tally and every baseline.

``differential`` is imported lazily: the device itself imports this
package for :data:`NULL_CHECKER`, and the differential layer imports
the policies, which import the device.
"""

from __future__ import annotations

from ..errors import InvariantViolation
from .cluster import ServiceLedger, check_request_conservation
from .invariants import NULL_CHECKER, InvariantChecker, NullChecker

__all__ = [
    "InvariantChecker",
    "InvariantViolation",
    "NULL_CHECKER",
    "NullChecker",
    "ServiceLedger",
    "check_request_conservation",
    # lazily loaded from .differential:
    "Divergence",
    "KernelRecord",
    "ValidationReport",
    "analytic_divergences",
    "conservation_divergences",
    "determinism_divergences",
    "lower_bound_divergences",
    "make_policy",
    "random_mix",
    "random_plan",
    "run_mix",
    "run_validation",
]

_DIFFERENTIAL = {
    "Divergence",
    "KernelRecord",
    "ValidationReport",
    "analytic_divergences",
    "conservation_divergences",
    "determinism_divergences",
    "lower_bound_divergences",
    "make_policy",
    "random_mix",
    "random_plan",
    "run_mix",
    "run_validation",
}


def __getattr__(name: str):
    if name in _DIFFERENTIAL:
        from . import differential

        return getattr(differential, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
