"""Cluster-level invariants: migration conservation.

The control plane's correctness contract is *exactly-once-or-counted*:
with devices crashing and tenants live-migrating mid-run, every request
a service ever accepted must either complete exactly once, still be
pending at the end of the run, or be explicitly counted as shed — a
request silently lost in a migration, or replayed twice by a stale
completion from the dead device, breaks the ledger and fails here.

:func:`check_request_conservation` audits one
:class:`ServiceLedger` per service:

    ``arrivals == completed + pending + shed``

The drivers maintain the terms independently (arrivals at the traffic
source, completions at record append, shed at crash/eviction), so a
double-execution inflates ``completed`` and a lost request strands the
difference — either way the equation fails and the run aborts with
:class:`~repro.errors.InvariantViolation`, never with a silently wrong
result.  See ``docs/cluster.md`` and ``docs/validation.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..errors import InvariantViolation

__all__ = ["ServiceLedger", "check_request_conservation"]


@dataclass(frozen=True)
class ServiceLedger:
    """Request accounting of one service across its whole lifetime."""

    client_id: str
    #: requests that ever entered the service's queue
    arrivals: int
    #: requests that completed (each exactly once)
    completed: int
    #: requests still queued or in flight at the end of the run
    pending: int
    #: requests explicitly discarded by a crash or eviction
    shed: int

    @property
    def balanced(self) -> bool:
        return self.arrivals == self.completed + self.pending + self.shed


def check_request_conservation(
        ledgers: Iterable[ServiceLedger]) -> int:
    """Audit every ledger; raise on the full list of imbalances.

    Returns the number of ledgers audited, so callers can fold it into
    their ``invariant_checks`` total.
    """
    audited = 0
    problems: list[str] = []
    for ledger in ledgers:
        audited += 1
        counts = (ledger.arrivals, ledger.completed, ledger.pending,
                  ledger.shed)
        if any(count < 0 for count in counts):
            problems.append(
                f"{ledger.client_id}: negative count in "
                f"arrivals={ledger.arrivals} completed={ledger.completed} "
                f"pending={ledger.pending} shed={ledger.shed}"
            )
        elif not ledger.balanced:
            delta = (ledger.arrivals - ledger.completed - ledger.pending
                     - ledger.shed)
            kind = "lost" if delta > 0 else "double-counted"
            problems.append(
                f"{ledger.client_id}: {abs(delta)} request(s) {kind} "
                f"(arrivals={ledger.arrivals} != completed="
                f"{ledger.completed} + pending={ledger.pending} + "
                f"shed={ledger.shed})"
            )
    if problems:
        raise InvariantViolation(
            "migration-conservation invariant violated:\n  "
            + "\n  ".join(problems)
        )
    return audited
