"""Property-based differential validation of the timing simulator.

Every helper is **seeded and deterministic**: a failing seed replays
the exact workload, so a divergence is a reproducible bug report, not
a flake.  Four independent oracles cross-check the simulator:

* **analytic** — a random kernel executed solo through the device must
  match the closed-form cost model on
  :class:`~repro.gpu.kernel.KernelDescriptor`
  (``duration`` / ``sliced_duration`` / ``ptb_duration``) to within
  float tolerance;
* **determinism** — the same seeded workload run twice through a policy
  produces bit-identical completion times, event counts, and
  utilization;
* **lower bound** — no kernel may ever finish faster than launch
  overhead plus its idle-device execution time, under any policy
  (sharing only adds delay — a faster result is an accounting bug);
* **conservation** — every kernel submitted to Tally or a baseline
  completes exactly once when the event queue drains.

Generated kernels use threads-per-block values that divide the per-SM
thread pool, where the device's flat resource pool and the per-SM
occupancy calculation agree exactly; mixed divisibility is a modelled
approximation, not a bug (see ``docs/validation.md``).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..errors import HarnessError
from ..gpu.device import DeviceLaunch, GPUDevice
from ..gpu.engine import EventLoop
from ..gpu.kernel import KernelDescriptor, LaunchConfig, LaunchKind
from ..gpu.specs import A100_SXM4_40GB, GPUSpec
from .invariants import InvariantChecker

__all__ = [
    "Divergence",
    "KernelRecord",
    "ValidationReport",
    "analytic_divergences",
    "conservation_divergences",
    "determinism_divergences",
    "lower_bound_divergences",
    "make_policy",
    "random_mix",
    "random_plan",
    "run_mix",
    "run_validation",
]

#: every sharing policy the differential layer exercises
POLICY_NAMES = ("Ideal", "Time-Slicing", "MPS", "MPS-Priority",
                "TGS", "REEF", "Tally")

#: relative tolerance for float-exact comparisons (accumulated
#: floating-point addition over event times, nothing more)
REL_TOL = 1e-9

#: threads-per-block choices under which the device's flat pools equal
#: the per-SM occupancy model (divisors of 2048/1024-thread SMs)
TPB_CHOICES = (64, 128, 256, 512, 1024)


@dataclass(frozen=True)
class Divergence:
    """One disagreement between the simulator and an oracle."""

    kind: str  # "analytic" | "determinism" | "lower-bound" | "conservation"
    subject: str  # kernel / policy the divergence concerns
    expected: float
    actual: float
    tolerance: float
    seed: int | None = None

    def __str__(self) -> str:
        return (f"[{self.kind}] {self.subject}: expected {self.expected!r}, "
                f"got {self.actual!r} (tolerance {self.tolerance:g}, "
                f"seed {self.seed})")


@dataclass(frozen=True)
class KernelRecord:
    """Lifecycle of one kernel observed at the policy boundary."""

    client_id: str
    kernel: str
    descriptor: KernelDescriptor
    submitted_at: float
    completed_at: float

    @property
    def latency(self) -> float:
        return self.completed_at - self.submitted_at


def make_policy(name: str, device: GPUDevice, engine: EventLoop):
    """Instantiate a sharing policy by name (harness-independent)."""
    from ..baselines import MPS, MPSPriority, Ideal, REEF, TGS, TimeSlicing
    from ..core import Tally

    factories = {
        "Ideal": Ideal, "Time-Slicing": TimeSlicing, "MPS": MPS,
        "MPS-Priority": MPSPriority, "TGS": TGS, "REEF": REEF,
        "Tally": Tally,
    }
    try:
        return factories[name](device, engine)
    except KeyError:
        raise HarnessError(
            f"unknown policy {name!r}; choose from {POLICY_NAMES}"
        ) from None


def _checked_device(spec: GPUSpec, engine: EventLoop, *,
                    check: bool) -> GPUDevice:
    return GPUDevice(spec, engine,
                     check=InvariantChecker() if check else None)


# ---------------------------------------------------------------------------
# Analytic differential: device vs. the closed-form cost model
# ---------------------------------------------------------------------------

def random_plan(seed: int, spec: GPUSpec = A100_SXM4_40GB, *,
                max_kernels: int = 5) -> list[tuple[KernelDescriptor, str, int]]:
    """Seeded ``(descriptor, mode, param)`` execution plans.

    ``mode`` is ``original`` (param unused), ``ptb`` (param = worker
    count, within device capacity so workers place in one batch), or
    ``sliced`` (param = blocks per slice, dividing the block count so
    the closed-form per-slice time applies to every slice).
    """
    rng = random.Random(seed)
    plan: list[tuple[KernelDescriptor, str, int]] = []
    for i in range(rng.randint(1, max_kernels)):
        tpb = rng.choice(TPB_CHOICES)
        bd = rng.uniform(5e-6, 5e-4)
        mode = rng.choice(("original", "ptb", "sliced"))
        if mode == "sliced":
            per_slice = rng.randint(1, 2000)
            blocks = per_slice * rng.randint(1, 6)
            param = per_slice
        else:
            blocks = rng.randint(1, 6000)
            param = 0
        descriptor = KernelDescriptor(
            f"rand{i}", num_blocks=blocks, threads_per_block=tpb,
            block_duration=bd,
        )
        if mode == "ptb":
            cap = descriptor.capacity(spec)
            param = rng.randint(1, min(cap, blocks))
        plan.append((descriptor, mode, param))
    return plan


def analytic_divergences(seed: int, spec: GPUSpec = A100_SXM4_40GB, *,
                         check: bool = True) -> list[Divergence]:
    """Run a seeded plan solo through the device; compare to the model."""
    plan = random_plan(seed, spec)
    divergences: list[Divergence] = []
    engine = EventLoop()
    device = _checked_device(spec, engine, check=check)
    overhead = spec.kernel_launch_overhead

    measured: dict[int, float] = {}

    def run_entry(index: int) -> None:
        if index >= len(plan):
            return
        descriptor, mode, param = plan[index]
        started = engine.now

        def finish(_launch: DeviceLaunch) -> None:
            measured[index] = engine.now - started
            run_entry(index + 1)

        if mode == "ptb":
            device.submit(DeviceLaunch(
                descriptor, LaunchConfig(LaunchKind.PTB, workers=param),
                client_id="solo", on_complete=finish,
            ))
        elif mode == "sliced":
            def slice_at(offset: int) -> None:
                blocks = min(param, descriptor.num_blocks - offset)

                def slice_done(launch: DeviceLaunch) -> None:
                    nxt = offset + launch.total_blocks
                    if nxt >= descriptor.num_blocks:
                        finish(launch)
                    else:
                        slice_at(nxt)

                device.submit(DeviceLaunch(
                    descriptor, client_id="solo", blocks=blocks,
                    block_offset=offset, on_complete=slice_done,
                ))

            slice_at(0)
        else:
            device.submit(DeviceLaunch(
                descriptor, client_id="solo", on_complete=finish,
            ))

    run_entry(0)
    engine.run()

    for index, (descriptor, mode, param) in enumerate(plan):
        if mode == "ptb":
            expected = overhead + descriptor.ptb_duration(param)
        elif mode == "sliced":
            expected = descriptor.sliced_duration(spec, param)
        else:
            expected = overhead + descriptor.duration(spec)
        actual = measured.get(index, float("nan"))
        if not math.isclose(expected, actual, rel_tol=REL_TOL,
                            abs_tol=1e-12):
            divergences.append(Divergence(
                kind="analytic",
                subject=f"{descriptor.name}[{mode}]",
                expected=expected, actual=actual,
                tolerance=REL_TOL, seed=seed,
            ))
    return divergences


# ---------------------------------------------------------------------------
# Policy-level mixes: determinism, lower bounds, conservation
# ---------------------------------------------------------------------------

def random_mix(seed: int, spec: GPUSpec = A100_SXM4_40GB):
    """A seeded high-priority burst plus best-effort kernel chains.

    Returns ``(hp_arrivals, be_chains)`` where ``hp_arrivals`` is a
    list of ``(arrival_time, descriptor)`` and ``be_chains`` maps each
    best-effort client to its stream-ordered kernel list.
    """
    rng = random.Random(seed)
    hp_arrivals = []
    for i in range(rng.randint(0, 6)):
        hp_arrivals.append((
            rng.uniform(0.0, 4e-3),
            KernelDescriptor(
                f"hp{i}", num_blocks=rng.randint(8, 800),
                threads_per_block=rng.choice(TPB_CHOICES),
                block_duration=rng.uniform(1e-5, 2e-4),
            ),
        ))
    hp_arrivals.sort(key=lambda pair: pair[0])
    be_chains: dict[str, list[KernelDescriptor]] = {}
    for c in range(rng.randint(1, 3)):
        client = f"be{c}"
        be_chains[client] = [
            KernelDescriptor(
                f"{client}_k{i}", num_blocks=rng.randint(64, 20_000),
                threads_per_block=rng.choice(TPB_CHOICES),
                block_duration=rng.uniform(1e-5, 3e-4),
            )
            for i in range(rng.randint(1, 4))
        ]
    return hp_arrivals, be_chains


def run_mix(policy_name: str, seed: int, spec: GPUSpec = A100_SXM4_40GB, *,
            check: bool = True):
    """Run the seeded mix under a policy until the event queue drains.

    Returns ``(records, device, engine)``; ``records`` lists every
    kernel in completion order.
    """
    from ..baselines import Priority

    hp_arrivals, be_chains = random_mix(seed, spec)
    engine = EventLoop()
    device = _checked_device(spec, engine, check=check)
    policy = make_policy(policy_name, device, engine)
    records: list[KernelRecord] = []

    if hp_arrivals:
        policy.register_client("hp", Priority.HIGH)
    for client in be_chains:
        policy.register_client(client, Priority.BEST_EFFORT)

    def record(client: str, descriptor: KernelDescriptor,
               submitted: float) -> None:
        records.append(KernelRecord(
            client_id=client, kernel=descriptor.name,
            descriptor=descriptor, submitted_at=submitted,
            completed_at=engine.now,
        ))

    for arrival, descriptor in hp_arrivals:
        def submit_hp(descriptor=descriptor) -> None:
            submitted = engine.now
            policy.submit("hp", descriptor,
                          lambda: record("hp", descriptor, submitted))

        engine.schedule_at(arrival, submit_hp)

    def submit_chain(client: str, index: int) -> None:
        chain = be_chains[client]
        if index >= len(chain):
            return
        descriptor = chain[index]
        submitted = engine.now

        def done() -> None:
            record(client, descriptor, submitted)
            submit_chain(client, index + 1)

        policy.submit(client, descriptor, done)

    for client in be_chains:
        submit_chain(client, 0)
    engine.run()
    return records, device, engine


def _fingerprint(policy_name: str, seed: int, spec: GPUSpec, *,
                 check: bool):
    records, device, engine = run_mix(policy_name, seed, spec, check=check)
    times = tuple((r.client_id, r.kernel, r.completed_at) for r in records)
    return times, engine.events_processed, device.utilization()


def determinism_divergences(policy_name: str, seed: int,
                            spec: GPUSpec = A100_SXM4_40GB, *,
                            check: bool = True) -> list[Divergence]:
    """Two runs of the same seed must be bit-identical."""
    first = _fingerprint(policy_name, seed, spec, check=check)
    second = _fingerprint(policy_name, seed, spec, check=check)
    divergences: list[Divergence] = []
    if first[0] != second[0]:
        diverged = sum(1 for a, b in zip(first[0], second[0]) if a != b)
        divergences.append(Divergence(
            kind="determinism", subject=f"{policy_name}: completion times",
            expected=len(first[0]), actual=diverged,
            tolerance=0.0, seed=seed,
        ))
    if first[1] != second[1]:
        divergences.append(Divergence(
            kind="determinism", subject=f"{policy_name}: event count",
            expected=first[1], actual=second[1], tolerance=0.0, seed=seed,
        ))
    if first[2] != second[2]:
        divergences.append(Divergence(
            kind="determinism", subject=f"{policy_name}: utilization",
            expected=first[2], actual=second[2], tolerance=0.0, seed=seed,
        ))
    return divergences


def lower_bound_divergences(policy_name: str, seed: int,
                            spec: GPUSpec = A100_SXM4_40GB, *,
                            check: bool = True) -> list[Divergence]:
    """No kernel may beat launch overhead + its idle-device duration."""
    records, _device, _engine = run_mix(policy_name, seed, spec, check=check)
    divergences: list[Divergence] = []
    for r in records:
        bound = spec.kernel_launch_overhead + r.descriptor.duration(spec)
        if r.latency < bound * (1.0 - REL_TOL):
            divergences.append(Divergence(
                kind="lower-bound",
                subject=f"{policy_name}: {r.client_id}/{r.kernel}",
                expected=bound, actual=r.latency,
                tolerance=REL_TOL, seed=seed,
            ))
    return divergences


def conservation_divergences(policy_name: str, seed: int,
                             spec: GPUSpec = A100_SXM4_40GB, *,
                             check: bool = True) -> list[Divergence]:
    """Every submitted kernel completes exactly once."""
    hp_arrivals, be_chains = random_mix(seed, spec)
    submitted = len(hp_arrivals) + sum(len(c) for c in be_chains.values())
    records, _device, _engine = run_mix(policy_name, seed, spec, check=check)
    if len(records) != submitted:
        return [Divergence(
            kind="conservation", subject=f"{policy_name}: kernels completed",
            expected=submitted, actual=len(records),
            tolerance=0.0, seed=seed,
        )]
    return []


# ---------------------------------------------------------------------------
# Aggregate entry point
# ---------------------------------------------------------------------------

@dataclass
class ValidationReport:
    """Outcome of a multi-seed, multi-policy validation sweep."""

    seeds: tuple[int, ...]
    policies: tuple[str, ...]
    divergences: list[Divergence]
    invariant_checks: int = 0

    @property
    def ok(self) -> bool:
        return not self.divergences

    def format(self) -> str:
        if self.ok:
            return (f"validation OK: {len(self.seeds)} seeds x "
                    f"{len(self.policies)} policies, "
                    f"{self.invariant_checks} invariant checks, "
                    f"0 divergences")
        lines = [f"validation FAILED ({len(self.divergences)} divergences):"]
        lines += [f"  {d}" for d in self.divergences]
        return "\n".join(lines)


def _validate_seed(seed: int, policies, spec: GPUSpec):
    """Every oracle for one seed: ``(divergences, invariant_checks)``.

    Top-level (picklable) so :func:`run_validation` can fan seeds out
    over worker processes; each seed's workload is independent and
    internally deterministic, so the merged report is identical to a
    serial run.
    """
    divergences: list[Divergence] = []
    checks = 0
    divergences.extend(analytic_divergences(seed, spec))
    for policy_name in policies:
        divergences.extend(
            determinism_divergences(policy_name, seed, spec))
        divergences.extend(
            lower_bound_divergences(policy_name, seed, spec))
        divergences.extend(
            conservation_divergences(policy_name, seed, spec))
        _records, device, _engine = run_mix(policy_name, seed, spec)
        checks += device.check.checks_run
    return divergences, checks


def run_validation(seeds=(0, 1, 2), policies=POLICY_NAMES,
                   spec: GPUSpec = A100_SXM4_40GB, *,
                   jobs: int = 1) -> ValidationReport:
    """Run every oracle for every (seed, policy); collect divergences.

    ``jobs`` fans the seeds out over that many worker processes; the
    merged report is bit-identical to the serial one because each
    seed's oracles are self-contained and results are merged in seed
    order.
    """
    seeds = tuple(seeds)
    policies = tuple(policies)
    if jobs > 1 and len(seeds) > 1:
        import functools
        import os
        from concurrent.futures import ProcessPoolExecutor

        workers = min(jobs, len(seeds), os.cpu_count() or 1)
        worker = functools.partial(_validate_seed, policies=policies,
                                   spec=spec)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            per_seed = list(pool.map(worker, seeds))
    else:
        per_seed = [_validate_seed(seed, policies, spec) for seed in seeds]
    divergences: list[Divergence] = []
    checks = 0
    for seed_divergences, seed_checks in per_seed:
        divergences.extend(seed_divergences)
        checks += seed_checks
    return ValidationReport(
        seeds=seeds, policies=policies,
        divergences=divergences, invariant_checks=checks,
    )
