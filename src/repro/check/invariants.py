"""Runtime invariant checker for the timing simulator.

The checker mirrors the ``NULL_TRACER`` pattern: a
:class:`GPUDevice <repro.gpu.device.GPUDevice>` holds either the module
singleton :data:`NULL_CHECKER` (``enabled`` is False; every
instrumentation site costs one attribute load and a branch) or an
:class:`InvariantChecker`, in which case the device re-audits its whole
accounting state after every event and dispatch decision.

The invariants (also documented in ``docs/simulator.md``):

* **capacity** — free threads/slots never leave ``[0, capacity]``, and
  equal full capacity exactly when no block is in flight;
* **conservation** — for every ORIGINAL launch,
  ``blocks_done + blocks_inflight + blocks_to_start + blocks_killed ==
  total_blocks``; for every PTB launch the task counter stays within
  ``[0, total_blocks]`` and worker occupancy within the worker count;
* **accounting** — the device's free pools and per-client in-flight
  table are exactly the totals implied by resident launches;
* **time** — simulated time is non-negative and never moves backwards,
  and utilization stays within ``[0, 1]``;
* **strict priority** — a block of priority ``p`` only starts while a
  higher-priority launch has blocks waiting if that launch cannot fit
  a dispatchable chunk in the currently free resources.

Violations raise :class:`~repro.errors.InvariantViolation` (or are
collected on ``violations`` when ``raise_on_violation`` is False, for
harness-level reporting).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import InvariantViolation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..gpu.device import DeviceLaunch, GPUDevice

__all__ = ["InvariantChecker", "NullChecker", "NULL_CHECKER"]

#: slack for float comparisons (time, utilization); resource counts are
#: integers and compared exactly.
_EPS = 1e-9


class InvariantChecker:
    """Audits a device's accounting state after every simulation event."""

    enabled = True

    def __init__(self, *, raise_on_violation: bool = True) -> None:
        self.raise_on_violation = raise_on_violation
        #: number of full-state audits performed
        self.checks_run = 0
        #: human-readable description of every violation seen
        self.violations: list[str] = []
        self._last_now = 0.0

    # ------------------------------------------------------------------
    def verify(self, device: "GPUDevice") -> None:
        """Full-state audit; called by the device after each event."""
        self.checks_run += 1
        problems = self.audit(device)
        if problems:
            self._report(device, problems)

    def verify_dispatch(self, device: "GPUDevice",
                        launch: "DeviceLaunch") -> None:
        """Dispatch-safety audit; called just before a batch starts."""
        problems = self.audit_dispatch(device, launch)
        if problems:
            self._report(device, problems)

    # ------------------------------------------------------------------
    def audit(self, device: "GPUDevice") -> list[str]:
        """Every currently violated invariant (empty list = healthy)."""
        problems: list[str] = []
        spec = device.spec
        now = device.engine.now

        # Time moves forward and stays non-negative.
        if now < 0:
            problems.append(f"negative simulated time {now!r}")
        if now < self._last_now - _EPS:
            problems.append(
                f"time went backwards: {now!r} after {self._last_now!r}"
            )
        self._last_now = max(self._last_now, now)

        # Global capacity bounds.
        threads_free = device.threads_free
        slots_free = device.slots_free
        if not 0 <= threads_free <= spec.total_threads:
            problems.append(
                f"threads_free {threads_free} outside "
                f"[0, {spec.total_threads}]"
            )
        if not 0 <= slots_free <= spec.total_block_slots:
            problems.append(
                f"slots_free {slots_free} outside "
                f"[0, {spec.total_block_slots}]"
            )

        # Per-launch conservation plus the implied resource totals.
        inflight_blocks = 0
        inflight_threads = 0
        per_client: dict[str, int] = {}
        for launch in device.resident_launches:
            if launch.done:
                problems.append(f"{launch!r} finished but still resident")
            problems.extend(self._audit_launch(launch))
            inflight_blocks += launch.blocks_inflight
            inflight_threads += (launch.blocks_inflight
                                 * launch.descriptor.threads_per_block)
            per_client[launch.client_id] = (
                per_client.get(launch.client_id, 0) + launch.blocks_inflight
            )

        if threads_free + inflight_threads != spec.total_threads:
            problems.append(
                f"thread leak: {threads_free} free + {inflight_threads} "
                f"in flight != capacity {spec.total_threads}"
            )
        if slots_free + inflight_blocks != spec.total_block_slots:
            problems.append(
                f"slot leak: {slots_free} free + {inflight_blocks} "
                f"in flight != capacity {spec.total_block_slots}"
            )

        # The per-client in-flight table matches resident blocks.
        for client, count in device._client_inflight.items():
            if count < 0:
                problems.append(f"client {client!r} in-flight count {count} < 0")
            if count != per_client.get(client, 0):
                problems.append(
                    f"client {client!r} in-flight count {count} != "
                    f"{per_client.get(client, 0)} resident blocks"
                )
        for client, count in device._submitting.items():
            if count < 0:
                problems.append(
                    f"client {client!r} submission count {count} < 0"
                )

        # Utilization is a fraction of capacity.
        utilization = device.utilization()
        if not -_EPS <= utilization <= 1.0 + _EPS:
            problems.append(f"utilization {utilization!r} outside [0, 1]")

        return problems

    def audit_dispatch(self, device: "GPUDevice",
                       launch: "DeviceLaunch") -> list[str]:
        """Strict-priority safety of starting a batch of ``launch`` now."""
        problems: list[str] = []
        if launch.preempt_requested:
            problems.append(
                f"dispatching blocks of preempted launch {launch!r}"
            )
        for other in device.resident_launches:
            if (other.priority >= launch.priority or other.done
                    or other.preempt_requested
                    or other.blocks_to_start <= 0):
                continue
            # A higher-priority launch has blocks waiting; the batch is
            # only legitimate if that launch cannot fit a dispatchable
            # chunk (the device's coalescing rule) in the free pool.
            tpb = other.descriptor.threads_per_block
            fit = min(device.threads_free // tpb, device.slots_free,
                      other.blocks_to_start)
            min_chunk = min(
                other.blocks_to_start,
                max(1, device._capacity(
                    tpb, other.descriptor.shared_mem_per_block) // 8),
            )
            if fit >= min_chunk:
                problems.append(
                    f"priority inversion: starting blocks of {launch!r} "
                    f"(priority {launch.priority}) while {other!r} "
                    f"(priority {other.priority}) has "
                    f"{other.blocks_to_start} blocks waiting and "
                    f"{fit} would fit"
                )
        return problems

    # ------------------------------------------------------------------
    @staticmethod
    def _audit_launch(launch: "DeviceLaunch") -> list[str]:
        problems: list[str] = []
        label = f"{launch.descriptor.name}#{launch.seq}"
        counters = (launch.blocks_done, launch.blocks_inflight,
                    launch.blocks_to_start, launch.blocks_killed,
                    launch.tasks_done)
        if min(counters) < 0:
            problems.append(f"{label}: negative block counter {counters}")
        if launch.is_ptb:
            if launch.tasks_done > launch.total_blocks:
                problems.append(
                    f"{label}: tasks_done {launch.tasks_done} > "
                    f"total_blocks {launch.total_blocks}"
                )
            if launch.blocks_done != launch.tasks_done:
                problems.append(
                    f"{label}: PTB blocks_done {launch.blocks_done} != "
                    f"tasks_done {launch.tasks_done}"
                )
            workers = min(launch.config.workers, launch.total_blocks)
            if launch.blocks_inflight + launch.blocks_to_start > workers:
                problems.append(
                    f"{label}: {launch.blocks_inflight} workers in flight "
                    f"+ {launch.blocks_to_start} to start exceed the "
                    f"{workers} PTB workers"
                )
        else:
            total = (launch.blocks_done + launch.blocks_inflight
                     + launch.blocks_to_start + launch.blocks_killed)
            if total != launch.total_blocks:
                problems.append(
                    f"{label}: block conservation broken — "
                    f"{launch.blocks_done} done + "
                    f"{launch.blocks_inflight} in flight + "
                    f"{launch.blocks_to_start} to start + "
                    f"{launch.blocks_killed} killed != "
                    f"total {launch.total_blocks}"
                )
        return problems

    def _report(self, device: "GPUDevice", problems: list[str]) -> None:
        self.violations.extend(problems)
        if self.raise_on_violation:
            lines = "\n  - ".join(problems)
            raise InvariantViolation(
                f"invariant violation at t={device.engine.now:.9f} "
                f"(after {self.checks_run} checks):\n  - {lines}"
            )


class NullChecker:
    """Disabled checker: the default, with zero per-event overhead."""

    enabled = False

    def verify(self, device: "GPUDevice") -> None:  # pragma: no cover
        """No-op (instrumentation sites skip the call entirely)."""

    def verify_dispatch(self, device: "GPUDevice",
                        launch: "DeviceLaunch") -> None:  # pragma: no cover
        """No-op (instrumentation sites skip the call entirely)."""


#: Shared disabled checker; devices hold this unless given a real one.
NULL_CHECKER = NullChecker()
