"""Command-line interface for reproducing the paper's artefacts.

Usage::

    python -m repro table1
    python -m repro table2 --scale quick
    python -m repro fig4 --scale full
    python -m repro fig5a | fig5b | fig6a | fig6b | fig6c
    python -m repro colocate --inference bert_infer --training whisper_train \
        --policy Tally --load 0.5 --duration 10
    python -m repro colocate --trace out.json   # Perfetto-loadable trace
    python -m repro list

Each figure command prints the paper-vs-measured report that the
corresponding benchmark also writes to ``results/``.  ``colocate`` and
``cluster`` accept ``--trace PATH`` to record the run through
:mod:`repro.trace` (see ``docs/observability.md``), ``--check`` to
audit simulator invariants through :mod:`repro.check` (see
``docs/validation.md``), and ``--faults SPEC`` to enable seeded fault
injection through :mod:`repro.faults` (see ``docs/fault_tolerance.md``),
e.g. ``--faults "seed=1,drop=0.05,crash_at=3.0"``.
"""

from __future__ import annotations

import argparse
import sys
import time

from .harness import (
    POLICY_NAMES,
    JobSpec,
    RunConfig,
    run_colocation,
    standalone,
)
from .trace import JSONLSink, Tracer, summarize
from .harness.experiments import (
    fig4,
    fig5a,
    fig5a_report,
    fig5b,
    fig6a,
    fig6b,
    fig6b_report,
    fig6c,
    fig6c_report,
    llm_colocation,
    table1,
    table2,
    table2_report,
)
from .harness.reporting import format_seconds, format_table
from .workloads import INFERENCE_MODELS, LLM_MODELS, TRAINING_MODELS

__all__ = ["main"]


def _make_tracer(path: str) -> Tracer:
    """An unbounded tracer; a ``.jsonl`` path streams raw events too."""
    if path.endswith(".jsonl"):
        return Tracer(capacity=None, sinks=[JSONLSink(path)])
    open(path, "w", encoding="utf-8").close()  # unwritable? fail now,
    return Tracer(capacity=None)               # not after the run



def _finish_trace(tracer: Tracer, path: str, config: RunConfig) -> None:
    """Write the trace file and print the derived counters."""
    if not path.endswith(".jsonl"):
        tracer.export_chrome(path)
    tracer.close()
    print()
    print(summarize(tracer, config.spec).format())
    kind = "JSONL events" if path.endswith(".jsonl") else "Perfetto trace"
    print(f"{kind} written to {path} "
          f"({tracer.emitted} events)")


def _cmd_list(_args: argparse.Namespace) -> None:
    rows = [(name, "training", f"{m.paper_value:g} it/s")
            for name, m in TRAINING_MODELS.items()]
    rows += [(name, "inference", format_seconds(m.paper_value))
             for name, m in INFERENCE_MODELS.items()]
    rows += [(name, "llm serving",
              f"{format_seconds(m.mean_request_time())} /req")
             for name, m in LLM_MODELS.items()]
    print(format_table(("model", "kind", "paper metric"), rows,
                       title="Workload suite (Table 2 + LLM serving)"))


def _cmd_table1(_args: argparse.Namespace) -> None:
    print(table1().report())


def _cmd_table2(args: argparse.Namespace) -> None:
    print(table2_report(table2(args.scale)))


def _cmd_fig4(args: argparse.Namespace) -> None:
    print(fig4(args.scale).report())


def _cmd_fig5a(args: argparse.Namespace) -> None:
    print(fig5a_report(fig5a(args.scale)))


def _cmd_fig5b(args: argparse.Namespace) -> None:
    series, ideal = fig5b(args.scale)
    rows = []
    tally = next(s for s in series if s.system == "Tally")
    for i, count in enumerate(ideal.traffic):
        rows.append((
            i, count,
            _ms(ideal.p99[i]), _ms(tally.p99[i]),
            f"{tally.train_throughput[i]:.2f}",
        ))
    print(format_table(
        ("interval", "requests", "ideal p99", "Tally p99", "train norm"),
        rows, title="Figure 5b time series (BERT x BERT)",
    ))


def _cmd_fig6a(args: argparse.Namespace) -> None:
    rows = [
        (p.best_effort_jobs, format_seconds(p.p99), f"{p.p99_ratio:.2f}x",
         f"{p.requests_per_minute:.0f}")
        for p in fig6a(args.scale)
    ]
    print(format_table(
        ("best-effort jobs", "HP p99", "vs ideal", "requests/min"),
        rows, title="Figure 6a scalability",
    ))


def _cmd_fig6b(args: argparse.Namespace) -> None:
    print(fig6b_report(fig6b(args.scale)))


def _cmd_fig6c(args: argparse.Namespace) -> None:
    print(fig6c_report(fig6c(args.scale)))


def _parse_faults(args: argparse.Namespace):
    """``--faults SPEC`` → :class:`~repro.faults.FaultConfig` or None."""
    if not getattr(args, "faults", None):
        return None
    from .faults import FaultConfig

    return FaultConfig.parse(args.faults)


def _faulted_tally_config(faults) -> "TallyConfig | None":
    """Tally config for a faulted run: arm the preemption watchdog.

    Lost-PreemptAck recovery needs a deadline; a few turnaround bounds
    keeps the watchdog well clear of healthy preemptions (which finish
    within one bound) while still recovering quickly.
    """
    if faults is None:
        return None
    from .core import TallyConfig

    base = TallyConfig()
    return TallyConfig(
        preempt_deadline=4 * base.turnaround_latency_bound,
    )


def _parse_fail_device(specs: list[str]) -> tuple[tuple[int, float], ...]:
    """``--fail-device IDX@TIME`` occurrences → ``((idx, time), ...)``."""
    from .errors import HarnessError

    failures = []
    for spec in specs:
        try:
            index_text, _, time_text = spec.partition("@")
            failures.append((int(index_text), float(time_text)))
        except ValueError:
            raise HarnessError(
                f"--fail-device expects IDX@TIME (e.g. 0@2.0), got "
                f"{spec!r}") from None
    return tuple(failures)


def _cmd_cluster(args: argparse.Namespace) -> None:
    from .cluster import (
        ClusterJob,
        dedicated_placement,
        evaluate_placement,
        packed_placement,
    )

    jobs: list[ClusterJob] = []
    seed = 0
    for model, load in [("resnet50_infer", 0.10), ("bert_infer", 0.12),
                        ("yolov6m_infer", 0.10), ("resnet50_infer", 0.08),
                        ("bert_infer", 0.10), ("yolov6m_infer", 0.12)]:
        jobs.append(ClusterJob(model, load=load, traffic_seed=seed))
        seed += 1
    if args.llm:
        jobs.append(ClusterJob("llama7b_serve", load=0.3,
                               traffic_seed=seed))
        seed += 1
    for model in ("resnet50_infer", "bert_infer", "resnet50_infer"):
        jobs.append(ClusterJob(model, load=0.3, offline=True,
                               traffic_seed=seed))
        seed += 1
    for model in ("resnet50_train", "pointnet_train", "bert_train",
                  "gpt2_train"):
        jobs.append(ClusterJob(model, traffic_seed=seed))
        seed += 1

    dedicated = dedicated_placement(jobs)
    packed = packed_placement(jobs, compute_budget=1.4)
    faults = _parse_faults(args)
    config = RunConfig(duration=args.duration, warmup=1.0,
                       tally_config=_faulted_tally_config(faults))
    tracer = _make_tracer(args.trace) if args.trace else None
    fail_device = _parse_fail_device(args.fail_device or [])
    online = (fail_device or args.arrivals is not None or args.spares
              or args.autoscale is not None
              or args.parallel_shards is not None
              or (faults is not None and faults.any_device_faults))
    if online:
        _cluster_online(args, jobs, packed, dedicated, config, faults,
                        fail_device, tracer)
        return
    start = time.time()
    result = evaluate_placement(packed, "Tally", config, tracer=tracer,
                                check=args.check, faults=faults,
                                jobs=args.jobs)
    wall = time.time() - start
    saved = 1 - packed.gpus_used / dedicated.gpus_used
    rows = [
        ("jobs", len(jobs), ""),
        ("GPUs, dedicated", dedicated.gpus_used, ""),
        ("GPUs, Tally-packed", packed.gpus_used, f"{saved:.0%} saved"),
        ("SLA violations", result.sla_violations,
         f"worst p99 {result.worst_p99_ratio:.2f}x"),
        ("aggregate norm. thpt",
         f"{result.total_normalized_throughput:.1f}", ""),
        ("simulated / wall",
         f"{config.duration:.0f}s x {packed.gpus_used} GPUs / {wall:.1f}s",
         f"{result.events} events, {args.jobs} worker(s)"),
    ]
    print(format_table(("metric", "value", "note"), rows,
                       title="Cluster consolidation under Tally"))
    if args.check:
        print("invariant checks: enabled on every GPU, 0 violations")
    if tracer is not None:
        _finish_trace(tracer, args.trace, config)


def _cluster_online(args, jobs, packed, dedicated, config, faults,
                    fail_device, tracer) -> None:
    """``cluster --arrivals/--fail-device``: the online control plane."""
    from .cluster import AutoscalerConfig, run_controlplane

    autoscale = (AutoscalerConfig.parse(args.autoscale)
                 if args.autoscale is not None else None)
    # with the autoscaler, spares start standby and are activated by
    # load; without it they are plain extra first-fit capacity
    standby = args.spares if autoscale is not None else 0
    devices = packed.gpus_used + args.spares
    engine = "serial" if args.parallel_shards is None else "parallel"
    workers = args.parallel_shards or 0
    start = time.time()
    if args.arrivals is not None:
        result = run_controlplane(
            jobs=jobs, devices=devices, policy="Tally", config=config,
            arrival_rate=args.arrivals, faults=faults,
            fail_device=fail_device, tracer=tracer, check=args.check,
            autoscale=autoscale, standby=standby,
            engine=engine, workers=workers)
    else:
        result = run_controlplane(
            placement=packed, devices=devices, policy="Tally",
            config=config, faults=faults, fail_device=fail_device,
            tracer=tracer, check=args.check,
            autoscale=autoscale, standby=standby,
            engine=engine, workers=workers)
    wall = time.time() - start
    recovery = result.recovery
    assert recovery is not None
    mode = (f"online arrivals at {args.arrivals:g}/s"
            if args.arrivals is not None else "packed placement")
    rows = [
        ("jobs", len(jobs), mode),
        ("devices", devices,
         f"{packed.gpus_used} packed + {args.spares} spare(s)"
         + (" [standby]" if standby else "")),
        ("SLA violations", result.sla_violations,
         f"worst p99 {result.worst_p99_ratio:.2f}x"),
        ("aggregate norm. thpt",
         f"{result.total_normalized_throughput:.1f}", ""),
        ("simulated / wall",
         f"{config.duration:.0f}s x {devices} GPUs / {wall:.1f}s",
         f"{result.events} events"
         + (f", parallel engine x{workers}" if engine == "parallel"
            else "")),
    ]
    if args.check:
        rows.append(("invariant checks", str(result.invariant_checks),
                     "0 violations"))
    print(format_table(("metric", "value", "note"), rows,
                       title="Cluster control plane under Tally"))
    print()
    print(recovery.format())
    if args.save:
        import json

        from .harness import cluster_result_to_dict

        with open(args.save, "w", encoding="utf-8") as fh:
            json.dump(cluster_result_to_dict(result), fh, indent=2)
            fh.write("\n")
        print(f"result written to {args.save}")
    if tracer is not None:
        _finish_trace(tracer, args.trace, config)


def _cmd_storm(args: argparse.Namespace) -> None:
    """``storm``: retry-storm A/B — unbounded vs resilience layer."""
    from .faults.storm import StormConfig, run_storm_sweep, storm_pair

    shards = args.parallel_shards or 1
    base = StormConfig(clients=args.clients, duration=args.duration,
                       seed=args.seed, check=args.check, shards=shards)
    start = time.time()
    if shards > 1:
        # intra-run parallelism: each variant's shard cells fan out
        from .faults.storm import run_storm
        results = [run_storm(cfg, jobs=shards)
                   for cfg in storm_pair(base)]
    else:
        results = run_storm_sweep(list(storm_pair(base)), jobs=args.jobs)
    wall = time.time() - start
    rows = [
        (result.label,
         f"{result.amplification:.2f}x",
         f"{result.attainment_before:.0%}",
         f"{result.attainment_after:.0%}",
         f"{result.peak_backlog * 1e3:.0f}ms",
         str(result.overload.total_sheds))
        for result in results
    ]
    print(format_table(
        ("variant", "amplification", "slo before", "slo after",
         "peak backlog", "sheds"), rows,
        title=(f"Retry storm: {args.clients} clients, degrade window "
               f"[{base.degrade_start:g}, {base.degrade_end:g})s"
               + (f", {shards} service shards" if shards > 1 else "")),
    ))
    print()
    for result in results:
        print(result.format())
        print()
    if args.check:
        checks = sum(r.invariant_checks for r in results)
        print(f"invariant checks: {checks} ledgers audited, 0 violations")
    print(f"wall time {wall:.1f}s")


def _cmd_llm(args: argparse.Namespace) -> None:
    """LLM serving colocation: one policy in detail, or all policies."""
    if args.policy == "all":
        result = llm_colocation(
            args.scale, llm_model=args.model,
            training_model=args.training, load=args.load,
            seed=args.seed,
        )
        print(result.report())
        print(f"SLO: ttft <= {format_seconds(result.slo.ttft)}, "
              f"inter-token <= {format_seconds(result.slo.inter_token)} "
              f"(2x the isolated p99s)")
        return

    from .metrics import ServingSLO

    faults = _parse_faults(args)
    tally_config = (_faulted_tally_config(faults)
                    if args.policy == "Tally" else None)
    config = RunConfig(duration=args.duration, warmup=args.warmup,
                       tally_config=tally_config)
    llm = JobSpec.llm(args.model, load=args.load, traffic_seed=args.seed)
    training = JobSpec.training(args.training)
    base = standalone(llm, config)
    train_base = standalone(training, config)
    assert base.serving is not None
    assert base.serving.ttft is not None
    assert base.serving.inter_token is not None
    slo = ServingSLO.scaled_to_ideal(base.serving.ttft.p99,
                                     base.serving.inter_token.p99)
    config = RunConfig(duration=args.duration, warmup=args.warmup,
                       tally_config=tally_config, slo=slo)

    tracer = _make_tracer(args.trace) if args.trace else None
    start = time.time()
    result = run_colocation(args.policy, [llm, training], config,
                            tracer=tracer, check=args.check, faults=faults)
    wall = time.time() - start
    served = result.job(f"{args.model}#0")
    train = result.job(f"{args.training}#0")
    s = served.serving
    assert s is not None and s.ttft is not None and s.inter_token is not None
    train_norm = (train.rate / train_base.rate if train_base.rate else 0.0)
    rows = [
        ("TTFT p99", format_seconds(s.ttft.p99),
         f"{s.ttft.p99 / base.serving.ttft.p99:.2f}x vs ideal"),
        ("TTFT p50", format_seconds(s.ttft.p50), ""),
        ("inter-token p99", format_seconds(s.inter_token.p99),
         f"{s.inter_token.p99 / base.serving.inter_token.p99:.2f}x "
         f"vs ideal"),
        ("inter-token p50", format_seconds(s.inter_token.p50), ""),
        ("requests served", str(s.completed),
         f"{s.requests_per_s:.2f}/s, {s.tokens_per_s:.0f} tok/s"),
        ("SLO attainment", f"{s.slo_attainment * 100:.0f}%",
         f"goodput {s.goodput:.2f}/s at 1.5x isolated p99s"),
        ("evicted (KV pressure)", str(served.evicted), ""),
        ("admission queueing p99",
         format_seconds(served.queueing.p99)
         if served.queueing is not None else "-", ""),
        ("training throughput", f"{train.rate:.2f} it/s",
         f"{train_norm:.2f} of standalone"),
        ("GPU utilization", f"{result.utilization:.0%}", ""),
        ("simulated / wall",
         f"{config.duration:.0f}s / {wall:.1f}s",
         f"{result.events} events"),
    ]
    if args.check:
        rows.append(("invariant checks", str(result.invariant_checks),
                     "0 violations"))
    if result.fault_counts:
        injected = ", ".join(f"{kind}={n}" for kind, n
                             in sorted(result.fault_counts.items()))
        rows.append(("faults injected", str(sum(
            result.fault_counts.values())), injected))
    print(format_table(
        ("metric", "value", "note"), rows,
        title=(f"{args.policy}: {args.model} (load {args.load:.0%}) "
               f"x {args.training}"),
    ))
    if tracer is not None:
        _finish_trace(tracer, args.trace, config)


def _cmd_colocate(args: argparse.Namespace) -> None:
    faults = _parse_faults(args)
    tally_config = (_faulted_tally_config(faults)
                    if args.policy == "Tally" else None)
    config = RunConfig(duration=args.duration, warmup=args.warmup,
                       tally_config=tally_config)
    inference = JobSpec.inference(args.inference, load=args.load)
    training = JobSpec.training(args.training)
    if args.seeds > 1:
        _colocate_sweep(args, config, inference, training, faults)
        return
    base = standalone(inference, config)
    train_base = standalone(training, config)
    assert base.latency is not None

    tracer = _make_tracer(args.trace) if args.trace else None
    start = time.time()
    result = run_colocation(args.policy, [inference, training], config,
                            tracer=tracer, check=args.check, faults=faults)
    wall = time.time() - start
    inf = result.job(f"{args.inference}#0")
    train = result.job(f"{args.training}#0")
    assert inf.latency is not None
    train_norm = (train.rate / train_base.rate if train_base.rate else 0.0)
    rows = [
        ("inference p99", format_seconds(inf.latency.p99),
         f"{inf.latency.p99 / base.latency.p99:.2f}x vs ideal"),
        ("inference p50", format_seconds(inf.latency.p50), ""),
        ("requests served", str(inf.completed), f"{inf.rate:.1f}/s"),
        ("training throughput", f"{train.rate:.2f} it/s",
         f"{train_norm:.2f} of standalone"),
        ("system throughput",
         f"{inf.rate / base.rate + train_norm:.2f}", ""),
        ("GPU utilization", f"{result.utilization:.0%}", ""),
        ("simulated / wall",
         f"{config.duration:.0f}s / {wall:.1f}s",
         f"{result.events} events"),
    ]
    if args.check:
        rows.append(("invariant checks", str(result.invariant_checks),
                     "0 violations"))
    if result.fault_counts:
        injected = ", ".join(f"{kind}={n}" for kind, n
                             in sorted(result.fault_counts.items()))
        rows.append(("faults injected", str(sum(
            result.fault_counts.values())), injected))
    print(format_table(
        ("metric", "value", "note"), rows,
        title=(f"{args.policy}: {args.inference} (load {args.load:.0%}) "
               f"x {args.training}"),
    ))
    if tracer is not None:
        _finish_trace(tracer, args.trace, config)


def _colocate_sweep(args: argparse.Namespace, config: RunConfig,
                    inference: JobSpec, training: JobSpec, faults) -> None:
    """``colocate --seeds K [--jobs N]``: a seed-replicated sweep."""
    from .errors import HarnessError
    from .harness import seed_sweep, run_sweep

    if args.trace and args.jobs > 1:
        raise HarnessError("tracing is per-process state: use --jobs 1 "
                           "when tracing")
    cases = seed_sweep(args.policy, [inference, training], config,
                       seeds=range(args.seeds), check=args.check,
                       faults=faults)
    start = time.time()
    results = run_sweep(cases, jobs=args.jobs)
    wall = time.time() - start
    rows = []
    p99s: list[float] = []
    for case, result in zip(cases, results):
        inf = result.job(f"{args.inference}#0")
        train = result.job(f"{args.training}#0")
        assert inf.latency is not None
        p99s.append(inf.latency.p99)
        rows.append((
            case.label, format_seconds(inf.latency.p99),
            f"{inf.rate:.1f}/s", f"{train.rate:.2f} it/s",
            f"{result.utilization:.0%}",
        ))
    rows.append((
        "mean", format_seconds(sum(p99s) / len(p99s)), "", "",
        f"wall {wall:.1f}s, {args.jobs} worker(s)",
    ))
    print(format_table(
        ("seed", "inference p99", "req rate", "training", "util"), rows,
        title=(f"{args.policy}: {args.inference} (load {args.load:.0%}) "
               f"x {args.training}, {args.seeds} seeds"),
    ))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the Tally paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add(name, fn, help_, scale=True):
        p = sub.add_parser(name, help=help_)
        if scale:
            p.add_argument("--scale", choices=("quick", "full"),
                           default="quick")
        p.set_defaults(fn=fn)
        return p

    add("list", _cmd_list, "list the workload suite", scale=False)
    add("table1", _cmd_table1, "turnaround by granularity", scale=False)
    add("table2", _cmd_table2, "standalone workload metrics")
    add("fig4", _cmd_fig4, "end-to-end latency/throughput grid")
    add("fig5a", _cmd_fig5a, "traffic load sensitivity")
    add("fig5b", _cmd_fig5b, "time-series under a condensed trace")
    add("fig6a", _cmd_fig6a, "scalability with workload count")
    add("fig6b", _cmd_fig6b, "scheduling/transformation ablation")
    add("fig6c", _cmd_fig6c, "turnaround threshold sweep")

    trace_help = ("record the run and write a Chrome/Perfetto "
                  "trace_event JSON to PATH (a .jsonl suffix streams "
                  "raw events instead); also prints derived counters")
    faults_help = ('seeded fault injection, e.g. '
                   '"seed=1,drop=0.05,lost_ack=0.2,crash_at=3.0" '
                   '(see docs/fault_tolerance.md)')
    check_help = ("audit simulator invariants after every event and "
                  "fail on the first violation (docs/validation.md)")

    cluster = sub.add_parser(
        "cluster", help="cluster consolidation demo (GPUs saved vs SLA)")
    cluster.add_argument("--duration", type=float, default=5.0)
    cluster.add_argument("--llm", action="store_true",
                         help="include an LLM serving endpoint "
                              "(llama7b_serve) in the job mix")
    cluster.add_argument("--trace", metavar="PATH", default=None,
                         help=trace_help)
    cluster.add_argument("--check", action="store_true", help=check_help)
    cluster.add_argument("--faults", metavar="SPEC", default=None,
                         help=faults_help)
    cluster.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="simulate GPUs in N worker processes "
                              "(results are identical to --jobs 1)")
    cluster.add_argument("--arrivals", type=float, default=None,
                         metavar="RATE",
                         help="online control plane: jobs arrive at "
                              "Poisson RATE per second and are admitted "
                              "first-fit (docs/cluster.md)")
    cluster.add_argument("--fail-device", action="append", default=[],
                         metavar="IDX@TIME",
                         help="online control plane: crash device IDX at "
                              "simulated TIME and live-migrate its "
                              "tenants (repeatable, e.g. 0@2.0)")
    cluster.add_argument("--spares", type=int, default=0, metavar="N",
                         help="provision N spare devices beyond the "
                              "packed count (failover headroom; with "
                              "--autoscale they start standby)")
    cluster.add_argument("--autoscale", metavar="SPEC", nargs="?",
                         const="", default=None,
                         help="enable the load-signal autoscaler; SPEC "
                              "overrides AutoscalerConfig fields, e.g. "
                              '"interval=0.25,queue_high=2" '
                              "(docs/cluster.md)")
    cluster.add_argument("--parallel-shards", type=int, default=None,
                         metavar="N",
                         help="run the online control plane on the "
                              "time-warp parallel engine with N worker "
                              "processes (bit-identical to serial; "
                              "docs/performance.md)")
    cluster.add_argument("--save", metavar="PATH", default=None,
                         help="write the control-plane result as JSON")
    cluster.set_defaults(fn=_cmd_cluster)

    storm = sub.add_parser(
        "storm", help="retry-storm chaos scenario: unbounded vs "
                      "retry-budget + circuit-breaker resilience")
    storm.add_argument("--clients", type=int, default=8)
    storm.add_argument("--duration", type=float, default=6.0)
    storm.add_argument("--seed", type=int, default=0)
    storm.add_argument("--check", action="store_true", help=check_help)
    storm.add_argument("--parallel-shards", type=int, default=None,
                       metavar="N",
                       help="split the service into N independent "
                            "shard replicas (capacity divided evenly) "
                            "and run the cells over N worker processes "
                            "with a deterministic merge")
    storm.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="run the two variants in N worker processes "
                            "(results are identical to --jobs 1)")
    storm.set_defaults(fn=_cmd_storm)

    colocate = sub.add_parser("colocate",
                              help="run one custom co-location experiment")
    colocate.add_argument("--inference", default="bert_infer",
                          choices=sorted(INFERENCE_MODELS))
    colocate.add_argument("--training", default="whisper_train",
                          choices=sorted(TRAINING_MODELS))
    colocate.add_argument("--policy", default="Tally",
                          choices=POLICY_NAMES)
    colocate.add_argument("--load", type=float, default=0.5)
    colocate.add_argument("--duration", type=float, default=10.0)
    colocate.add_argument("--warmup", type=float, default=1.0)
    colocate.add_argument("--trace", metavar="PATH", default=None,
                          help=trace_help)
    colocate.add_argument("--check", action="store_true", help=check_help)
    colocate.add_argument("--faults", metavar="SPEC", default=None,
                         help=faults_help)
    colocate.add_argument("--seeds", type=int, default=1, metavar="K",
                          help="replicate the experiment across K "
                               "traffic/trace seeds (prints a per-seed "
                               "table)")
    colocate.add_argument("--jobs", type=int, default=1, metavar="N",
                          help="run sweep cases in N worker processes "
                               "(results are identical to --jobs 1)")
    colocate.set_defaults(fn=_cmd_colocate)

    llm = sub.add_parser(
        "llm", help="LLM serving (continuous batching) vs best-effort "
                    "training")
    llm.add_argument("--model", default="llama7b_serve",
                     choices=sorted(LLM_MODELS))
    llm.add_argument("--training", default="resnet50_train",
                     choices=sorted(TRAINING_MODELS))
    llm.add_argument("--policy", default="Tally",
                     choices=POLICY_NAMES + ("all",),
                     help='"all" prints the per-policy comparison table')
    llm.add_argument("--scale", choices=("quick", "full"), default="quick",
                     help="grid size for --policy all")
    llm.add_argument("--load", type=float, default=0.5)
    llm.add_argument("--duration", type=float, default=10.0)
    llm.add_argument("--warmup", type=float, default=1.0)
    llm.add_argument("--seed", type=int, default=0,
                     help="traffic and length-sampling seed")
    llm.add_argument("--trace", metavar="PATH", default=None,
                     help=trace_help)
    llm.add_argument("--check", action="store_true", help=check_help)
    llm.add_argument("--faults", metavar="SPEC", default=None,
                     help=faults_help)
    llm.set_defaults(fn=_cmd_llm)
    return parser


def _ms(value: float) -> str:
    return "-" if value != value else f"{value * 1e3:.2f} ms"


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    args.fn(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
