"""Cluster-level consolidation: placement and SLA-checked packing.

Reproduces the paper's §1 motivation — that GPU sharing can shrink a
cluster's GPU count substantially (the Alibaba estimate is ~50 %)
without violating latency SLAs — using the same co-location simulator
as the per-GPU experiments.
"""

from .placement import (
    ClusterJob,
    Placement,
    dedicated_placement,
    packed_placement,
)
from .simulate import ClusterResult, ServiceOutcome, evaluate_placement

__all__ = [
    "ClusterJob",
    "ClusterResult",
    "Placement",
    "ServiceOutcome",
    "dedicated_placement",
    "evaluate_placement",
    "packed_placement",
]
