"""Cluster-level consolidation: placement, SLA-checked packing, and
the online control plane.

Reproduces the paper's §1 motivation — that GPU sharing can shrink a
cluster's GPU count substantially (the Alibaba estimate is ~50 %)
without violating latency SLAs — using the same co-location simulator
as the per-GPU experiments, and extends it to cluster-scale resilience:
online arrivals, device failures, and checkpoint/restore live migration
of latency-critical tenants (:mod:`repro.cluster.controlplane`, see
``docs/cluster.md``).
"""

from .controlplane import (
    AutoscalerConfig,
    ClusterCase,
    ClusterController,
    run_cluster_sweep,
    run_controlplane,
    schedule_arrivals,
)
from .placement import (
    ClusterJob,
    Placement,
    dedicated_placement,
    packed_placement,
)
from .simulate import ClusterResult, ServiceOutcome, evaluate_placement

__all__ = [
    "AutoscalerConfig",
    "ClusterCase",
    "ClusterController",
    "ClusterJob",
    "ClusterResult",
    "Placement",
    "ServiceOutcome",
    "dedicated_placement",
    "evaluate_placement",
    "packed_placement",
    "run_cluster_sweep",
    "run_controlplane",
    "schedule_arrivals",
]
