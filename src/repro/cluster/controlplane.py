"""Online cluster control plane: arrivals, failures, live migration.

The static evaluation (:func:`~repro.cluster.simulate.evaluate_placement`)
answers "does this packing meet SLAs in steady state?".  This module
answers the question a production fleet actually faces: jobs arrive and
depart online, devices crash / throttle / flap, and the packed cluster
must keep its latency-critical tenants alive through all of it.

One :class:`ClusterController` owns a single shared
:class:`~repro.gpu.engine.EventLoop` with one device shard per simulated
GPU — a :class:`~repro.gpu.device.GPUDevice`, its own sharing-policy
instance, and a :class:`~repro.core.server.TallyServer` holding the
shard's functional client state.  On top of the shards it runs:

* **admission control** — arriving jobs are first-fit placed under the
  same compute-budget / memory / one-HP-per-GPU constraints as
  :func:`~repro.cluster.placement.packed_placement`; jobs that fit
  nowhere wait in a bounded queue (backpressure) and are shed beyond it;
* **failure handling** — the seeded device-fault schedule
  (:meth:`~repro.faults.FaultInjector.device_fault_schedule`) drives
  three fault kinds: a *crash* triggers reactive failover, a *degrade*
  window slows the device (:meth:`~repro.gpu.device.GPUDevice.set_speed_factor`)
  and is ridden through, and *flapping* past ``flap_threshold``
  transitions quarantines the device and proactively migrates its
  latency-critical tenants;
* **checkpoint/restore live migration** — the driver freezes
  (:meth:`~repro.workloads.InferenceJob.checkpoint`: cancel timers,
  requeue the in-flight request, bump the stale-completion epoch), the
  source policy disconnects the client (killing resident launches), the
  functional state moves via :func:`~repro.core.server.migrate_client`
  (allocations, module registrations, reply cache — so retried requests
  replay idempotently), and after ``migration_downtime`` simulated
  seconds the driver resumes on the target shard.  Arrivals keep
  queueing throughout, so no admitted request is lost — the
  migration-conservation invariant
  (:func:`~repro.check.check_request_conservation`) audits exactly that;
* **re-pack on failover** — when a displaced high-priority tenant fits
  nowhere, best-effort tenants are migrated (or, as a last resort,
  evicted) to make room;
* **graceful drain** — :meth:`ClusterController.drain` migrates every
  tenant off a device for scale-down;
* **load-driven autoscaling** — with ``autoscale=`` an
  :class:`AutoscalerConfig` and ``standby=`` spare devices, a periodic
  tick reads two load signals (admission-queue depth and the worst
  windowed p99-vs-SLO ratio across latency-critical tenants) through
  consecutive-tick hysteresis: sustained overload activates a standby
  shard after a seeded warm-up delay; sustained calm gracefully drains
  the least-loaded elastic shard back to standby.  Every committed
  decision emits a :class:`~repro.trace.ScaleDecision` event.

Everything is deterministic: fault schedules come from seeded sub-RNGs,
arrival times from a seeded draw, and all control decisions are
functions of event-loop state — a fixed seed replays bit-identically,
including across the process-parallel :func:`run_cluster_sweep`.
See ``docs/cluster.md`` for the full semantics.
"""

from __future__ import annotations

import random
from collections import Counter, deque
from dataclasses import dataclass, fields

from ..check import (
    InvariantChecker,
    ServiceLedger,
    check_request_conservation,
)
from ..core.server import TallyServer, migrate_client
from ..errors import HarnessError
from ..faults import DeviceFaultEvent, FaultConfig, FaultInjector
from ..gpu import EventLoop, GPUDevice
from ..harness import JobSpec, RunConfig, standalone
from ..harness.colocate import _traffic_for, make_policy
from ..metrics import LatencySummary
from ..metrics.recovery import RecoveryReport, ServiceRecovery
from ..trace import (
    NULL_TRACER,
    AdmissionDecision,
    DeviceDrain,
    DeviceFault,
    MigrationComplete,
    MigrationStart,
    ScaleDecision,
    Tracer,
)
from ..workloads import (
    InferenceJob,
    LLMServingJob,
    TrainingJob,
    WorkloadKind,
    get_llm_model,
    get_model,
)
from ..workloads.memory import A100_MEMORY_BYTES
from .placement import ClusterJob, Placement
from .simulate import ClusterResult, ServiceOutcome, _to_jobspec

__all__ = [
    "AutoscalerConfig",
    "ClusterCase",
    "ClusterController",
    "run_controlplane",
    "run_cluster_sweep",
    "schedule_arrivals",
]


@dataclass(frozen=True)
class AutoscalerConfig:
    """Hysteresis parameters for the load-signal autoscaler.

    The controller samples two signals every ``interval`` simulated
    seconds: the admission-queue depth and the worst ratio of windowed
    p99 latency to the SLO threshold (``sla_factor`` × standalone p99)
    across live latency-critical tenants.  A tick is *overloaded* when
    either signal is at or above its high-water mark, *calm* when both
    are at or below the low-water marks; anything in between resets the
    hysteresis counters.  ``up_ticks`` consecutive overloaded ticks
    activate a standby device (after a seeded warm-up delay drawn
    uniformly from ``[warmup_min, warmup_max]``); ``down_ticks``
    consecutive calm ticks gracefully drain the least-loaded elastic
    device back to standby.  ``cooldown`` simulated seconds must pass
    between committed decisions.
    """

    interval: float = 0.25
    queue_high: int = 2
    queue_low: int = 0
    p99_high: float = 1.0
    p99_low: float = 0.5
    #: latency-sample lookback for the p99 signal, seconds
    signal_window: float = 0.5
    up_ticks: int = 2
    down_ticks: int = 4
    cooldown: float = 0.5
    warmup_min: float = 0.1
    warmup_max: float = 0.3
    #: never drain below this many accepting (or warming) devices
    min_active: int = 1

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise HarnessError("autoscaler interval must be > 0")
        if self.queue_low > self.queue_high:
            raise HarnessError("queue_low must be <= queue_high")
        if self.p99_low > self.p99_high:
            raise HarnessError("p99_low must be <= p99_high")
        if self.signal_window <= 0:
            raise HarnessError("signal_window must be > 0")
        if self.up_ticks < 1 or self.down_ticks < 1:
            raise HarnessError("hysteresis tick counts must be >= 1")
        if not 0 <= self.warmup_min <= self.warmup_max:
            raise HarnessError(
                "need 0 <= warmup_min <= warmup_max")
        if self.cooldown < 0:
            raise HarnessError("cooldown must be >= 0")
        if self.min_active < 1:
            raise HarnessError("min_active must be >= 1")

    @staticmethod
    def parse(spec: str) -> "AutoscalerConfig":
        """Build a config from a ``key=value,key=value`` CLI string."""
        known = {f.name: f for f in fields(AutoscalerConfig)}
        int_keys = {"queue_high", "queue_low", "up_ticks", "down_ticks",
                    "min_active"}
        values: dict[str, object] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, raw = part.partition("=")
            key = key.strip()
            if not sep or key not in known:
                raise HarnessError(
                    f"bad --autoscale entry {part!r}; known keys: "
                    f"{', '.join(sorted(known))}")
            try:
                values[key] = (int(raw) if key in int_keys
                               else float(raw))
            except ValueError:
                raise HarnessError(
                    f"bad --autoscale value {raw!r} for {key}") from None
        return AutoscalerConfig(**values)  # type: ignore[arg-type]


def schedule_arrivals(count: int, rate: float, *, seed: int = 0) -> list[float]:
    """Seeded Poisson arrival times for ``count`` online jobs.

    Drawn from a dedicated sub-RNG (``{seed}/arrivals``) so the job
    arrival process never interleaves with any other randomness source.
    """
    if rate <= 0:
        raise HarnessError(f"arrival rate must be > 0, got {rate!r}")
    rng = random.Random(f"{seed}/arrivals")
    times: list[float] = []
    t = 0.0
    for _ in range(count):
        t += rng.expovariate(rate)
        times.append(t)
    return times


@dataclass
class _Tenant:
    """One admitted job and its live bookkeeping."""

    job: ClusterJob
    spec: JobSpec
    driver: object
    client_id: str
    role: str               # "inference" | "training" | "llm"
    demand: float
    memory: int
    device: int             # current (or last) device index; -1 if evicted
    admitted_at: float
    evicted: bool = False
    departed: bool = False
    migrations: int = 0
    downtime: float = 0.0
    restored_at: float | None = None
    #: set while checkpointed and off-device (downtime accrues from here)
    paused_since: float | None = None
    #: bumped per migration leg; stale restore events check it
    move_seq: int = 0

    @property
    def latency_critical(self) -> bool:
        return self.job.latency_critical


class _ShardState:
    """The accounting half of a shard: placement truth, no simulation.

    This is everything admission control, migration targeting and the
    autoscaler read or write — it lives wherever the *decisions* are
    made.  The serial controller extends it with the live simulation
    objects (:class:`_Shard`); the parallel controller keeps bare
    instances as coordinator-side proxies while the live objects run
    inside workers.
    """

    def __init__(self, index: int) -> None:
        self.index = index
        self.alive = True
        #: False while draining or quarantined — no new admissions
        self.accepting = True
        #: part of the autoscaler's elastic pool (starts not accepting)
        self.standby = False
        #: scale-up committed, warm-up delay still running
        self.warming = False
        self.demand = 0.0
        self.memory = 0
        self.has_high = False
        self.tenants: dict[str, _Tenant] = {}
        self.flap_transitions = 0

    # populated by the serial shard; proxies leave them None
    checker = None
    injector = None

    def add(self, tenant: _Tenant) -> None:
        self.tenants[tenant.client_id] = tenant
        self.demand += tenant.demand
        self.memory += tenant.memory
        if tenant.latency_critical:
            self.has_high = True

    def remove(self, tenant: _Tenant) -> None:
        self.tenants.pop(tenant.client_id, None)
        self.demand -= tenant.demand
        self.memory -= tenant.memory
        if tenant.latency_critical:
            self.has_high = any(t.latency_critical
                                for t in self.tenants.values())

    def fits(self, tenant_demand: float, tenant_memory: int,
             is_high: bool, *, budget: float, capacity: int) -> bool:
        if not (self.alive and self.accepting):
            return False
        if is_high and self.has_high:
            return False
        if self.demand + tenant_demand > budget:
            return False
        return self.memory + tenant_memory <= capacity


class _Shard(_ShardState):
    """One simulated GPU: device + policy + functional server."""

    def __init__(self, index: int, engine: EventLoop, config: RunConfig,
                 policy_name: str, tracer, checker, injector) -> None:
        super().__init__(index)
        self.checker = checker
        self.injector = injector
        self.device = GPUDevice(
            config.spec, engine,
            colocation_slowdown=config.colocation_slowdown,
            tracer=tracer, check=checker, faults=injector,
        )
        self.policy = make_policy(policy_name, self.device, engine,
                                  tally_config=config.tally_config)
        self.server = TallyServer(tracer=tracer)


def _build_driver(config: RunConfig, spec: JobSpec, policy,
                  client_id: str):
    """Construct the driver for one admitted job on ``policy``.

    Module-level because it runs in two places: on the serial
    controller's shared loop, and inside a parallel worker's shard
    domain — both must build byte-identical drivers from the same
    (config, spec) inputs.
    """
    if spec.role == "llm":
        llm_model = get_llm_model(spec.model)
        traffic = _traffic_for(spec, llm_model.mean_request_time(),
                               config)
        return LLMServingJob(llm_model, traffic, policy, client_id,
                             priority=spec.effective_priority,
                             seed=spec.traffic_seed)
    model = get_model(spec.model)
    expected = ("inference" if model.kind is WorkloadKind.INFERENCE
                else "training")
    if expected != spec.role:
        raise HarnessError(
            f"model {spec.model!r} is a {expected} workload, "
            f"not {spec.role}")
    trace = model.build_trace(config.spec, seed=config.trace_seed)
    if spec.role == "inference":
        traffic = _traffic_for(spec, trace.duration, config)
        return InferenceJob(trace, traffic, policy, client_id,
                            priority=spec.effective_priority)
    return TrainingJob(trace, policy, client_id,
                       priority=spec.effective_priority)


class ClusterController:
    """Event-driven control plane over ``devices`` shards.

    Build one, then :meth:`run` it; or use :func:`run_controlplane`.
    ``engine="parallel"`` returns the time-warp sharded implementation
    (:class:`repro.cluster.parallel.ParallelClusterController`) — same
    arguments, bit-identical committed metrics, ``workers`` processes.
    """

    def __new__(cls, *args, engine: str = "serial", workers: int = 0,
                **kwargs):
        if engine not in ("serial", "parallel"):
            raise HarnessError(
                f"engine must be 'serial' or 'parallel', got {engine!r}")
        if cls is ClusterController and engine == "parallel":
            from .parallel import ParallelClusterController
            return super().__new__(ParallelClusterController)
        return super().__new__(cls)

    def __init__(self, jobs: list[ClusterJob], devices: int, *,
                 engine: str = "serial",
                 workers: int = 0,
                 policy: str = "Tally",
                 config: RunConfig | None = None,
                 placement: Placement | None = None,
                 arrival_rate: float | None = None,
                 faults: FaultConfig | None = None,
                 fail_device: tuple[tuple[int, float], ...] = (),
                 drain: tuple[tuple[int, float], ...] = (),
                 tracer: Tracer | None = None,
                 check: bool = False,
                 compute_budget: float = 1.25,
                 capacity_bytes: int | None = None,
                 admission_limit: int = 8,
                 flap_threshold: int = 3,
                 migration_downtime: float = 0.05,
                 autoscale: AutoscalerConfig | None = None,
                 standby: int = 0) -> None:
        if devices < 1:
            raise HarnessError("need at least one device")
        if not jobs:
            raise HarnessError("no jobs to serve")
        if migration_downtime < 0:
            raise HarnessError("migration_downtime must be >= 0")
        if standby < 0 or standby >= devices:
            raise HarnessError(
                f"standby count {standby} must leave at least one of "
                f"{devices} device(s) active")
        if standby > 0 and autoscale is None:
            raise HarnessError(
                "standby devices need autoscale= to ever activate")
        self.config = config if config is not None else RunConfig(
            duration=6.0, warmup=1.0)
        self.policy_name = policy
        self.jobs = list(jobs)
        self.placement = placement
        self.faults = faults
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.check_enabled = bool(check)
        self.compute_budget = compute_budget
        self.capacity_bytes = (capacity_bytes if capacity_bytes is not None
                               else A100_MEMORY_BYTES)
        self.admission_limit = admission_limit
        self.flap_threshold = flap_threshold
        self.migration_downtime = migration_downtime
        self.arrival_rate = arrival_rate

        duration = self.config.duration
        for index, when in fail_device:
            if not 0 <= index < devices:
                raise HarnessError(
                    f"--fail-device index {index} outside 0..{devices - 1}")
            if not 0 <= when < duration:
                raise HarnessError(
                    f"--fail-device time {when} outside the run "
                    f"[0, {duration})")
        self.fail_device = tuple(fail_device)
        for index, when in drain:
            if not 0 <= index < devices:
                raise HarnessError(
                    f"drain index {index} outside 0..{devices - 1}")
        self.drain_schedule = tuple(drain)

        self.engine_mode = engine
        self.workers = workers
        self.engine = EventLoop()
        self.shards = [self._make_shard(i) for i in range(devices)]
        self.autoscale = autoscale
        # the LAST `standby` shards form the elastic pool: they accept
        # nothing until a scale-up decision finishes their warm-up
        for shard in self.shards[devices - standby:]:
            shard.standby = True
            shard.accepting = False
        self._scaler_rng = random.Random(
            f"{self.config.trace_seed}/autoscaler")
        self._breach_ticks = 0
        self._calm_ticks = 0
        self._last_scale = float("-inf")
        self.scale_ups = 0
        self.scale_downs = 0

        self._client_counters: Counter[str] = Counter()
        self._tenants: list[_Tenant] = []
        self._admission_queue: deque[tuple[ClusterJob, float]] = deque()
        self._downtimes: list[float] = []
        self.admitted = 0
        self.jobs_shed = 0
        self.jobs_evicted = 0
        self._fault_counts: Counter[str] = Counter()
        self._ran = False

    # ------------------------------------------------------------------
    # Shard-op hooks
    #
    # Every touch of live simulation state (devices, policies, servers,
    # drivers) goes through one of these.  The serial controller calls
    # the objects directly on its shared loop; the parallel controller
    # overrides each hook to issue the equivalent cross-shard operation
    # to a worker.  Decision logic above this surface is shared verbatim
    # — that sharing is what makes the bit-identity guarantee credible.
    # ------------------------------------------------------------------
    def _make_shard(self, index: int) -> _ShardState:
        return _Shard(
            index, self.engine, self.config, self.policy_name,
            self.tracer,
            InvariantChecker() if self.check_enabled else None,
            FaultInjector(self.faults) if self.faults is not None else None)

    def _note_control(self, time: float, hint) -> None:
        """Register a scheduled control event's shard-touch hint.

        ``hint`` is an iterable of shard indices the event may operate
        on, ``None`` for "could touch anything", or a zero-arg callable
        returning either (evaluated lazily at the barrier).  The serial
        engine has no barriers, so this is a no-op; the parallel
        coordinator uses hints to decide which shards may speculate
        past the event.  Hints are best-effort: a wrong hint costs a
        rollback, never correctness.
        """

    def _device_fault_schedule(self, index: int):
        shard = self.shards[index]
        if shard.injector is None:
            return ()
        return shard.injector.device_fault_schedule(
            index, self.config.duration)

    def _op_admit(self, shard: _ShardState, spec: JobSpec,
                  client_id: str):
        """Build the driver and connect the client; returns the driver."""
        driver = _build_driver(self.config, spec, shard.policy, client_id)
        shard.server.connect(client_id, spec.effective_priority)
        return driver

    def _op_start(self, tenant: _Tenant, shard: _ShardState) -> None:
        if tenant.role == "training":
            tenant.driver.start()
        else:
            tenant.driver.start(since=self.engine.now)

    def _op_depart(self, tenant: _Tenant) -> None:
        if tenant.role == "training":
            tenant.driver.stop()
        else:
            tenant.driver.close()

    def _op_set_speed(self, shard: _ShardState, factor: float) -> None:
        shard.device.set_speed_factor(factor)

    def _op_checkpoint(self, tenant: _Tenant, source: _ShardState) -> None:
        tenant.driver.checkpoint()

    def _op_detach(self, tenant: _Tenant, source: _ShardState) -> int:
        """Disconnect from the source policy; report pending requests."""
        source.policy.disconnect(tenant.client_id)
        if tenant.role == "inference":
            return tenant.driver.pending_requests
        return 0

    def _op_transfer(self, tenant: _Tenant, source: _ShardState,
                     target: _ShardState) -> None:
        migrate_client(source.server, target.server, tenant.client_id,
                       ts=self.engine.now)

    def _op_restore(self, tenant: _Tenant, target: _ShardState) -> None:
        tenant.driver.restore(target.policy)

    def _op_evict(self, tenant: _Tenant, owner: _ShardState) -> None:
        tenant.driver.crash()
        owner.policy.disconnect(tenant.client_id)
        owner.server.disconnect(tenant.client_id, ts=self.engine.now)

    def _pending_of(self, tenant: _Tenant) -> int:
        return tenant.driver.pending_requests

    def _hp_window_tails(self, tenants: "list[_Tenant]", since: float,
                         until: float) -> dict[str, float]:
        """Windowed p99 per latency-critical tenant (absent = no data)."""
        tails: dict[str, float] = {}
        for tenant in tenants:
            latencies = _tenant_latencies(tenant, since, until)
            if latencies:
                tails[tenant.client_id] = LatencySummary.of(latencies).p99
        return tails

    def _tenant_report(self, tenant: _Tenant) -> dict:
        """Final per-tenant read-out used by :meth:`_collect`."""
        start, end = self.config.window
        report: dict = {
            "ledger": self._ledger(tenant),
            "completed": tenant.driver.completions_in(start, end),  # type: ignore[attr-defined]
        }
        if tenant.latency_critical:
            report["latencies"] = _tenant_latencies(tenant, start, end)
            report["post_latencies"] = (
                _tenant_latencies(tenant, tenant.restored_at, end)
                if tenant.restored_at is not None else None)
        return report

    def _gather_shard_stats(self) -> tuple[Counter, int, int]:
        """(non-device fault counts, invariant checks, events processed)."""
        injected: Counter[str] = Counter()
        checks = 0
        for shard in self.shards:
            if shard.injector is not None:
                injected.update(
                    {kind: count for kind, count
                     in shard.injector.injected.items()
                     if not kind.startswith("device_")})
            if shard.checker is not None:
                checks += shard.checker.checks_run
        return injected, checks, self.engine.events_processed

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run(self) -> ClusterResult:
        """Run the scenario to ``config.duration`` and collect metrics."""
        if self._ran:
            raise HarnessError("controller already ran; build a fresh one")
        self._ran = True
        self._schedule_initial_jobs()
        self._schedule_device_faults()
        for index, when in self.drain_schedule:
            self._note_control(when, None)
            self.engine.schedule_at(
                when, lambda i=index: self.drain(i))
        self._arm_slot_faults()
        if self.autoscale is not None:
            self._note_control(self.autoscale.interval, self._tick_hint)
            self.engine.schedule_at(self.autoscale.interval,
                                    self._autoscale_tick)
        self.engine.run_until(self.config.duration)
        return self._collect()

    def _schedule_initial_jobs(self) -> None:
        engine = self.engine
        if self.placement is not None and self.arrival_rate is None:
            # Static start: every job admitted to its placement bin at
            # t=0 (bin order), then the run continues online.
            for gpu_index, gpu_jobs in enumerate(self.placement.bins):
                for job in gpu_jobs:
                    shard = self.shards[gpu_index]
                    self._note_control(0.0, (gpu_index,))
                    engine.schedule_at(
                        0.0, lambda j=job, s=shard: self._admit(j, s))
            return
        if self.arrival_rate is None:
            for job in self.jobs:
                self._note_control(0.0, None)
                engine.schedule_at(
                    0.0, lambda j=job: self._on_job_arrival(j))
            return
        times = schedule_arrivals(len(self.jobs), self.arrival_rate,
                                  seed=self.config.trace_seed)
        for job, when in zip(self.jobs, times):
            if when >= self.config.duration:
                continue  # arrived after the run window; never existed
            self._note_control(when, None)
            engine.schedule_at(
                when, lambda j=job: self._on_job_arrival(j))

    def _schedule_device_faults(self) -> None:
        duration = self.config.duration
        for shard in self.shards:
            for event in self._device_fault_schedule(shard.index):
                # a crash migrates tenants to unpredictable targets; a
                # plain degrade/recover only touches its own device
                hint = (None if event.kind == "crash" or event.flapping
                        else (shard.index,))
                self._note_control(min(event.time, duration), hint)
                self.engine.schedule_at(
                    min(event.time, duration),
                    lambda s=shard, e=event: self._on_device_fault(s, e))
        for index, when in self.fail_device:
            shard = self.shards[index]
            crash = DeviceFaultEvent(when, "crash")
            self._note_control(when, None)
            self.engine.schedule_at(
                when, lambda s=shard, e=crash: self._on_device_fault(s, e))

    def _arm_slot_faults(self) -> None:
        if self.faults is None or self.faults.slot_fault_rate <= 0:
            return
        from ..faults import arm_slot_faults

        for shard in self.shards:
            arm_slot_faults(shard.device, self.engine, shard.injector,
                            self.config.duration, tracer=self.tracer)

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    def _find_shard(self, job_demand: float, job_memory: int,
                    is_high: bool, *,
                    exclude: "_Shard | None" = None) -> "_Shard | None":
        for shard in self.shards:
            if shard is exclude:
                continue
            if shard.fits(job_demand, job_memory, is_high,
                          budget=self.compute_budget,
                          capacity=self.capacity_bytes):
                return shard
        return None

    def _on_job_arrival(self, job: ClusterJob) -> None:
        shard = self._find_shard(job.demand(self.config.spec), job.memory(),
                                 job.latency_critical)
        if shard is not None:
            self._admit(job, shard)
            return
        if len(self._admission_queue) < self.admission_limit:
            self._admission_queue.append((job, self.engine.now))
            self._emit_admission(job.model, "queued")
            return
        self.jobs_shed += 1
        self._emit_admission(job.model, "shed")

    def _drain_admission_queue(self) -> None:
        """Capacity freed: try to admit queued jobs, FIFO."""
        admitted_any = True
        while admitted_any and self._admission_queue:
            admitted_any = False
            job, _arrived = self._admission_queue[0]
            shard = self._find_shard(job.demand(self.config.spec),
                                     job.memory(), job.latency_critical)
            if shard is not None:
                self._admission_queue.popleft()
                self._admit(job, shard)
                admitted_any = True

    def _admit(self, job: ClusterJob, shard: _Shard) -> None:
        spec = _to_jobspec(job)
        n = self._client_counters[job.model]
        self._client_counters[job.model] += 1
        client_id = f"{job.model}#{n}"
        now = self.engine.now
        if job.depart_at is not None and spec.role == "llm":
            raise HarnessError(
                f"LLM tenant {job.model!r}: depart_at is not supported "
                "(LLM endpoints have no graceful-close surface yet)")
        driver = self._op_admit(shard, spec, client_id)
        tenant = _Tenant(
            job=job, spec=spec, driver=driver, client_id=client_id,
            role=spec.role, demand=job.demand(self.config.spec),
            memory=job.memory(), device=shard.index, admitted_at=now,
        )
        shard.add(tenant)
        self._tenants.append(tenant)
        self.admitted += 1
        self._emit_admission(client_id, "admitted", device=shard.index)
        self._op_start(tenant, shard)
        if job.depart_at is not None:
            # a departure frees capacity: the queue drain may admit
            # anywhere, so no shard hint
            self._note_control(max(now, job.depart_at), None)
            self.engine.schedule_at(max(now, job.depart_at),
                                    lambda t=tenant: self._depart(t))

    def _emit_admission(self, client_id: str, action: str, *,
                        device: int = -1) -> None:
        if self.tracer.enabled:
            self.tracer.emit(AdmissionDecision(
                ts=self.engine.now, client_id=client_id, kernel="",
                action=action, device=device,
                queue_depth=len(self._admission_queue),
            ))

    def _depart(self, tenant: _Tenant) -> None:
        """Graceful online departure: drain the tenant, free capacity."""
        if tenant.evicted or tenant.departed:
            return
        tenant.departed = True
        self._op_depart(tenant)
        shard = self.shards[tenant.device]
        if tenant.client_id in shard.tenants:
            shard.remove(tenant)
        self._drain_admission_queue()

    # ------------------------------------------------------------------
    # Device faults
    # ------------------------------------------------------------------
    def _on_device_fault(self, shard: _Shard, event: DeviceFaultEvent) -> None:
        if not shard.alive:
            return  # the device is already dead; nothing left to break
        self._fault_counts[f"device_{event.kind}"] += 1
        if self.tracer.enabled:
            self.tracer.emit(DeviceFault(
                ts=self.engine.now, client_id="", kernel="",
                device=shard.index, fault=event.kind,
                factor=event.factor, flapping=event.flapping,
            ))
        if event.kind == "crash":
            self._fail_device(shard)
        elif event.kind == "degrade":
            self._op_set_speed(shard, event.factor)
            if event.flapping:
                shard.flap_transitions += 1
                if (shard.flap_transitions >= self.flap_threshold
                        and shard.accepting):
                    self._quarantine(shard)
        elif event.kind == "recover":
            self._op_set_speed(shard, 1.0)

    def _fail_device(self, shard: _Shard) -> None:
        """Reactive failover: the device died, everyone must move."""
        shard.alive = False
        shard.accepting = False
        # Latency-critical tenants recover first: they contend for the
        # same spare capacity as the best-effort re-pack that follows.
        tenants = sorted(shard.tenants.values(),
                         key=lambda t: 0 if t.latency_critical else 1)
        for tenant in tenants:
            reason = "failover" if tenant.latency_critical else "repack"
            self._migrate(tenant, shard, reason=reason)
        self._drain_admission_queue()

    def _quarantine(self, shard: _Shard) -> None:
        """A flapping device is unstable: stop admissions, move HP off.

        Best-effort tenants stay — they tolerate the slow windows, and
        moving them would churn the rest of the fleet.
        """
        shard.accepting = False
        # a flapping device leaves the elastic pool for good: the
        # autoscaler must never re-activate what quarantine fenced off
        shard.standby = False
        for tenant in [t for t in shard.tenants.values()
                       if t.latency_critical]:
            self._migrate(tenant, shard, reason="flapping")

    def drain(self, device_index: int) -> None:
        """Gracefully drain a device for scale-down: migrate everyone."""
        shard = self.shards[device_index]
        if not shard.alive:
            return
        shard.accepting = False
        tenants = sorted(shard.tenants.values(),
                         key=lambda t: 0 if t.latency_critical else 1)
        migrated = 0
        for tenant in tenants:
            self._migrate(tenant, shard, reason="drain")
            if not tenant.evicted and tenant.device != shard.index:
                migrated += 1
        if self.tracer.enabled:
            self.tracer.emit(DeviceDrain(
                ts=self.engine.now, client_id="", kernel="",
                device=shard.index, migrated=migrated,
            ))

    # ------------------------------------------------------------------
    # Load-signal autoscaling
    # ------------------------------------------------------------------
    def _active_count(self) -> int:
        """Devices serving or committed to serve (warm-up counts)."""
        return sum(1 for s in self.shards
                   if s.alive and (s.accepting or s.warming))

    def _p99_pressure(self, now: float) -> float:
        """Worst windowed p99-vs-SLO ratio across live HP tenants.

        1.0 means the worst tenant's recent p99 sits exactly at its SLO
        threshold (``sla_factor`` × standalone p99); tenants with no
        completions inside the window contribute nothing — an empty
        window is silence, not breach (queue depth covers total stall).
        """
        since = max(0.0, now - self.autoscale.signal_window)
        live = [t for t in self._tenants
                if not (t.evicted or t.departed) and t.latency_critical]
        tails = self._hp_window_tails(live, since, now)
        worst = 0.0
        for tenant in live:
            tail = tails.get(tenant.client_id)
            if tail is None:
                continue
            baseline_tail = _baseline_tail(
                standalone(tenant.spec, self.config))
            threshold = tenant.job.sla_factor * baseline_tail
            if not 0 < threshold < float("inf"):
                continue
            worst = max(worst, tail / threshold)
        return worst

    def _tick_hint(self):
        """Shards the next autoscale tick could touch (lazy hint).

        A tick can only act when a hysteresis counter is one step from
        its trigger; otherwise it merely samples signals — touching
        nothing.  (Cooldown is ignored: an over-broad hint is safe.)
        """
        cfg = self.autoscale
        armed = (self._breach_ticks + 1 >= cfg.up_ticks
                 or self._calm_ticks + 1 >= cfg.down_ticks)
        return None if armed else ()

    def _autoscale_tick(self) -> None:
        cfg = self.autoscale
        now = self.engine.now
        if now + cfg.interval < self.config.duration:
            self._note_control(now + cfg.interval, self._tick_hint)
            self.engine.schedule_at(now + cfg.interval,
                                    self._autoscale_tick)
        queue_depth = len(self._admission_queue)
        pressure = self._p99_pressure(now)
        if queue_depth >= cfg.queue_high or pressure >= cfg.p99_high:
            self._breach_ticks += 1
            self._calm_ticks = 0
        elif queue_depth <= cfg.queue_low and pressure <= cfg.p99_low:
            self._calm_ticks += 1
            self._breach_ticks = 0
        else:
            self._breach_ticks = 0
            self._calm_ticks = 0
        if now - self._last_scale < cfg.cooldown:
            return
        if self._breach_ticks >= cfg.up_ticks:
            reason = ("queue-depth" if queue_depth >= cfg.queue_high
                      else "p99-over-slo")
            self._scale_up(reason, queue_depth)
        elif self._calm_ticks >= cfg.down_ticks:
            self._scale_down(queue_depth)

    def _scale_up(self, reason: str, queue_depth: int) -> None:
        spare = next((s for s in self.shards
                      if s.standby and s.alive
                      and not s.accepting and not s.warming), None)
        if spare is None:
            return  # elastic pool exhausted; keep riding the breach
        cfg = self.autoscale
        now = self.engine.now
        spare.warming = True
        self.scale_ups += 1
        self._breach_ticks = 0
        self._last_scale = now
        if self.tracer.enabled:
            self.tracer.emit(ScaleDecision(
                ts=now, client_id="", kernel="",
                action="scale_up", device=spare.index,
                active=self._active_count(), reason=reason,
                queue_depth=queue_depth,
            ))
        delay = cfg.warmup_min + self._scaler_rng.uniform(
            0.0, cfg.warmup_max - cfg.warmup_min)
        # warm-up completion touches no shard directly, but its queue
        # drain can admit anywhere — hint lazily on queue depth
        self._note_control(
            now + delay,
            lambda: None if self._admission_queue else ())
        self.engine.schedule_at(
            now + delay, lambda s=spare: self._finish_warmup(s))

    def _finish_warmup(self, shard: _Shard) -> None:
        shard.warming = False
        if not shard.alive:
            return  # crashed mid-warm-up; the pool lost a spare
        shard.accepting = True
        self._drain_admission_queue()

    def _scale_down(self, queue_depth: int) -> None:
        cfg = self.autoscale
        if self._active_count() <= cfg.min_active:
            return
        # only elastic-pool shards drain back; the base fleet is fixed
        candidates = [s for s in self.shards
                      if s.standby and s.alive and s.accepting]
        if not candidates:
            return
        victim = min(candidates, key=lambda s: (s.demand, s.index))
        now = self.engine.now
        self.scale_downs += 1
        self._calm_ticks = 0
        self._last_scale = now
        if self.tracer.enabled:
            self.tracer.emit(ScaleDecision(
                ts=now, client_id="", kernel="",
                action="scale_down", device=victim.index,
                active=self._active_count() - 1, reason="idle",
                queue_depth=queue_depth,
            ))
        self.drain(victim.index)

    # ------------------------------------------------------------------
    # Live migration
    # ------------------------------------------------------------------
    def _migrate(self, tenant: _Tenant, source: _Shard, *,
                 reason: str) -> None:
        now = self.engine.now
        if tenant.role == "llm":
            # LLM endpoints have no driver-level checkpoint surface yet
            # (the functional KV image migrates fine — the continuous-
            # batching driver state does not).  On a dead device the
            # endpoint is lost; on a draining/flapping one it rides out.
            if not source.alive:
                self._evict(tenant, source,
                            pending=self._pending_of(tenant))
            return
        self._op_checkpoint(tenant, source)
        if tenant.paused_since is None:
            tenant.paused_since = now
        tenant.move_seq += 1
        pending = self._op_detach(tenant, source)
        source.remove(tenant)
        if tenant.departed and tenant.role == "training":
            # A stopped trainer has nothing left to run; don't re-place.
            return
        target = self._find_shard(tenant.demand, tenant.memory,
                                  tenant.latency_critical, exclude=source)
        if target is None and tenant.latency_critical:
            target = self._make_room(tenant, exclude=source)
        if target is None:
            if self.tracer.enabled:
                self.tracer.emit(MigrationStart(
                    ts=now, client_id=tenant.client_id, kernel="",
                    source=source.index, target=-1, reason=reason,
                    pending=pending,
                ))
            self._evict(tenant, source, pending=pending)
            return
        if self.tracer.enabled:
            self.tracer.emit(MigrationStart(
                ts=now, client_id=tenant.client_id, kernel="",
                source=source.index, target=target.index, reason=reason,
                pending=pending,
            ))
        self._op_transfer(tenant, source, target)
        target.add(tenant)
        tenant.device = target.index
        seq = tenant.move_seq
        self._note_control(now + self.migration_downtime, (target.index,))
        self.engine.schedule_at(
            now + self.migration_downtime,
            lambda: self._complete_restore(tenant, target, seq))

    def _make_room(self, tenant: _Tenant,
                   exclude: _Shard) -> "_Shard | None":
        """Re-pack: displace best-effort tenants so a HP tenant fits.

        Scans healthy shards for one whose best-effort tenants, moved
        elsewhere (or evicted as a last resort — priority means
        something), free enough compute and memory for ``tenant``.
        """
        for shard in self.shards:
            if shard is exclude or not (shard.alive and shard.accepting):
                continue
            if shard.has_high and tenant.latency_critical:
                continue
            victims: list[_Tenant] = []
            demand = shard.demand
            memory = shard.memory
            for candidate in sorted(
                    (t for t in shard.tenants.values()
                     if not t.latency_critical),
                    key=lambda t: t.demand):
                if (demand + tenant.demand <= self.compute_budget
                        and memory + tenant.memory <= self.capacity_bytes):
                    break
                victims.append(candidate)
                demand -= candidate.demand
                memory -= candidate.memory
            if (demand + tenant.demand > self.compute_budget
                    or memory + tenant.memory > self.capacity_bytes):
                continue  # even emptying the BE tenants wouldn't fit
            for victim in victims:
                self._migrate(victim, shard, reason="repack")
            return shard
        return None

    def _complete_restore(self, tenant: _Tenant, target: _Shard,
                          seq: int) -> None:
        if tenant.evicted or seq != tenant.move_seq:
            return  # superseded by a later migration leg (or eviction)
        if not target.alive:
            # The target died inside the downtime window; the crash
            # handler has already re-migrated the checkpointed tenant.
            return
        downtime = self.engine.now - (tenant.paused_since
                                      if tenant.paused_since is not None
                                      else self.engine.now)
        self._op_restore(tenant, target)
        tenant.paused_since = None
        tenant.restored_at = self.engine.now
        tenant.downtime += downtime
        tenant.migrations += 1
        self._downtimes.append(downtime)
        if self.tracer.enabled:
            self.tracer.emit(MigrationComplete(
                ts=self.engine.now, client_id=tenant.client_id, kernel="",
                target=target.index, downtime=downtime,
            ))

    def _evict(self, tenant: _Tenant, owner: _Shard, *,
               pending: int) -> None:
        """No capacity anywhere: the tenant dies, its work is shed."""
        tenant.evicted = True
        tenant.device = -1
        self.jobs_evicted += 1
        self._op_evict(tenant, owner)
        owner.remove(tenant)

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def _ledger(self, tenant: _Tenant) -> ServiceLedger | None:
        driver = tenant.driver
        if tenant.role == "inference":
            assert isinstance(driver, InferenceJob)
            return ServiceLedger(
                client_id=tenant.client_id,
                arrivals=driver.arrivals_total,
                completed=len(driver.records),
                pending=driver.pending_requests,
                shed=driver.shed_requests,
            )
        if tenant.role == "llm":
            assert isinstance(driver, LLMServingJob)
            arrivals = len(driver.requests)
            completed = sum(1 for r in driver.requests if r.completed)
            # evictions, TTFT-deadline sheds, and work stranded by a
            # device crash are all "shed" for conservation purposes
            dropped = sum(1 for r in driver.requests
                          if r.evicted or r.deadline_shed)
            pending = driver.pending_requests
            stranded = arrivals - completed - dropped - pending
            return ServiceLedger(
                client_id=tenant.client_id, arrivals=arrivals,
                completed=completed, pending=pending,
                shed=dropped + stranded,
            )
        return None  # training has no request ledger

    def _collect(self) -> ClusterResult:
        config = self.config
        start, end = config.window
        span = end - start
        reports = {tenant.client_id: self._tenant_report(tenant)
                   for tenant in self._tenants}
        ledgers = [report["ledger"] for report in reports.values()
                   if report["ledger"] is not None]
        audits = check_request_conservation(ledgers)
        services: list[ServiceOutcome] = []
        recoveries: list[ServiceRecovery] = []
        total_throughput = 0.0
        requests_shed = 0
        for tenant in self._tenants:
            report = reports[tenant.client_id]
            ledger = report["ledger"]
            if ledger is not None:
                requests_shed += ledger.shed
            baseline = standalone(tenant.spec, config)
            completed = report["completed"]
            if baseline.rate > 0:
                total_throughput += (completed / span) / baseline.rate
            if not tenant.latency_critical:
                continue
            baseline_tail = _baseline_tail(baseline)
            latencies = report["latencies"]
            tail = (LatencySummary.of(latencies).p99 if latencies
                    else float("inf"))  # zero completions: worst outcome
            threshold = tenant.job.sla_factor * baseline_tail
            attainment = (sum(1 for lat in latencies if lat <= threshold)
                          / len(latencies) if latencies else float("nan"))
            post = report["post_latencies"]
            if post is not None:
                post_attainment = (
                    sum(1 for lat in post if lat <= threshold) / len(post)
                    if post else float("nan"))
            else:
                post_attainment = float("nan")
            services.append(ServiceOutcome(
                model=tenant.job.model,
                gpu=tenant.device,
                p99_ratio=tail / baseline_tail,
                sla_factor=tenant.job.sla_factor,
            ))
            recoveries.append(ServiceRecovery(
                client_id=tenant.client_id,
                model=tenant.job.model,
                device=tenant.device,
                migrations=tenant.migrations,
                downtime=tenant.downtime,
                slo_attainment=attainment,
                post_recovery_attainment=post_attainment,
                evicted=tenant.evicted,
            ))
        injected, shard_checks, events = self._gather_shard_stats()
        self._fault_counts.update(injected)
        report = RecoveryReport(
            services=tuple(recoveries),
            migrations=len(self._downtimes),
            jobs_shed=self.jobs_shed,
            jobs_evicted=self.jobs_evicted,
            requests_shed=requests_shed,
            mttr=(sum(self._downtimes) / len(self._downtimes)
                  if self._downtimes else float("nan")),
            device_faults=dict(self._fault_counts),
            scale_ups=self.scale_ups,
            scale_downs=self.scale_downs,
        )
        checks = audits + shard_checks
        return ClusterResult(
            policy=self.policy_name,
            gpus_used=len(self.shards),
            services=services,
            total_normalized_throughput=total_throughput,
            events=events,
            recovery=report,
            invariant_checks=checks,
        )


def _baseline_tail(baseline) -> float:
    if baseline.latency is not None:
        return baseline.latency.p99
    if baseline.serving is not None and baseline.serving.ttft is not None:
        return baseline.serving.ttft.p99
    return float("inf")


def _tenant_latencies(tenant: _Tenant, since: float,
                      until: float) -> list[float]:
    driver = tenant.driver
    if tenant.role == "inference":
        assert isinstance(driver, InferenceJob)
        return driver.latencies(since=since, until=until)
    assert isinstance(driver, LLMServingJob)
    return [r.ttft for r in driver.requests
            if r.first_token is not None
            and since <= r.first_token < until]


def _tenant_tail(tenant: _Tenant, since: float, until: float) -> float:
    latencies = _tenant_latencies(tenant, since, until)
    if not latencies:
        return float("inf")  # zero completions: the worst SLA outcome
    return LatencySummary.of(latencies).p99


# ---------------------------------------------------------------------------
# Parallel sweep over control-plane cases
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ClusterCase:
    """One fully described, picklable control-plane run.

    Lives here rather than in :mod:`repro.harness.sweep` because the
    cluster package already imports the harness (the reverse import
    would be circular); the worker-pool mechanics are shared.
    """

    jobs: tuple[ClusterJob, ...]
    devices: int
    policy: str = "Tally"
    config: RunConfig | None = None
    label: str = ""
    check: bool = False
    faults: FaultConfig | None = None
    arrival_rate: float | None = None
    fail_device: tuple[tuple[int, float], ...] = ()
    drain: tuple[tuple[int, float], ...] = ()
    admission_limit: int = 8
    flap_threshold: int = 3
    migration_downtime: float = 0.05
    autoscale: AutoscalerConfig | None = None
    standby: int = 0
    engine: str = "serial"
    workers: int = 0


def _run_cluster_case(case: ClusterCase) -> ClusterResult:
    controller = ClusterController(
        list(case.jobs), case.devices, policy=case.policy,
        config=case.config, arrival_rate=case.arrival_rate,
        faults=case.faults, fail_device=case.fail_device,
        drain=case.drain, check=case.check,
        admission_limit=case.admission_limit,
        flap_threshold=case.flap_threshold,
        migration_downtime=case.migration_downtime,
        autoscale=case.autoscale, standby=case.standby,
        engine=case.engine, workers=case.workers,
    )
    return controller.run()


def run_cluster_sweep(cases: list[ClusterCase], *,
                      jobs: int = 1) -> list[ClusterResult]:
    """Run control-plane cases, optionally over worker processes.

    Every case is an independent simulation with its own event loop and
    seeded schedules, so ``jobs=N`` is bit-identical to ``jobs=1`` —
    workers receive configs (never live injectors or drivers) and start
    with the parent's transform-memo warm snapshot, exactly like
    :func:`repro.harness.run_sweep`.
    """
    import os
    from concurrent.futures import ProcessPoolExecutor

    from ..harness.sweep import _init_worker
    from ..transform.memo import warm_snapshot

    cases = list(cases)
    if jobs <= 1 or len(cases) <= 1:
        return [_run_cluster_case(case) for case in cases]
    workers = min(jobs, len(cases), os.cpu_count() or 1)
    with ProcessPoolExecutor(max_workers=workers,
                             initializer=_init_worker,
                             initargs=(warm_snapshot(),)) as pool:
        return list(pool.map(_run_cluster_case, cases))


def run_controlplane(jobs: list[ClusterJob] | None = None,
                     devices: int | None = None, *,
                     placement: Placement | None = None,
                     policy: str = "Tally",
                     config: RunConfig | None = None,
                     arrival_rate: float | None = None,
                     faults: FaultConfig | None = None,
                     fail_device: tuple[tuple[int, float], ...] = (),
                     drain: tuple[tuple[int, float], ...] = (),
                     tracer: Tracer | None = None,
                     check: bool = False,
                     compute_budget: float = 1.25,
                     capacity_bytes: int | None = None,
                     admission_limit: int = 8,
                     flap_threshold: int = 3,
                     migration_downtime: float = 0.05,
                     autoscale: AutoscalerConfig | None = None,
                     standby: int = 0,
                     engine: str = "serial",
                     workers: int = 0) -> ClusterResult:
    """Run one online control-plane scenario and return its result.

    Two entry shapes:

    * ``placement=`` — start from a validated (e.g. packed) placement:
      every job begins on its assigned device at t=0 and the run
      continues online from there (the failover scenario);
    * ``jobs=`` + ``devices=`` — fully online: jobs are admitted
      first-fit as they arrive (all at t=0, or Poisson-spaced when
      ``arrival_rate`` is given).

    ``engine="parallel"`` runs device shards on the time-warp engine
    (:mod:`repro.engine`) with ``workers`` processes (``workers<=1``
    uses the in-process backend); committed results are bit-identical
    to the serial engine.
    """
    if placement is not None:
        job_list = placement.jobs()
        device_count = placement.gpus_used if devices is None else devices
    else:
        if jobs is None or devices is None:
            raise HarnessError(
                "run_controlplane needs either placement= or jobs= and "
                "devices=")
        job_list = list(jobs)
        device_count = devices
    controller = ClusterController(
        job_list, device_count, policy=policy, config=config,
        placement=placement if arrival_rate is None else None,
        arrival_rate=arrival_rate, faults=faults,
        fail_device=fail_device, drain=drain, tracer=tracer, check=check,
        compute_budget=compute_budget, capacity_bytes=capacity_bytes,
        admission_limit=admission_limit, flap_threshold=flap_threshold,
        migration_downtime=migration_downtime,
        autoscale=autoscale, standby=standby,
        engine=engine, workers=workers,
    )
    return controller.run()
