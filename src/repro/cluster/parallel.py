"""Time-warp parallel cluster engine: sharded control-plane execution.

The serial :class:`~repro.cluster.controlplane.ClusterController` runs
every device shard on one shared event loop.  This module runs the same
control plane over the optimistic engine in :mod:`repro.engine`: each
shard (device + policy + server + drivers) lives in its own
:class:`ClusterShardDomain` with a private loop, the coordinator keeps
the *decision* half (admission, migration targeting, autoscaling — the
exact code, inherited unchanged), and all cross-shard effects travel as
timestamped ops.

The coordinator's loop holds only control events, so its next event
time is a *horizon*: every shard may run exclusively up to it.  Beyond
the horizon, shards speculate into an open window bounded by the
minimum cross-shard latency (migration downtime, autoscaler interval,
mean arrival spacing) and clamped by *hints* — each scheduled control
event declares which shards it might touch (``None`` = anything).  An
op landing in a shard's speculated past triggers deterministic
coast-forward rollback (:class:`~repro.engine.shard.ShardCell`), so a
wrong hint costs time, never correctness.

Committed metrics, trace summaries and invariant audits are
bit-identical to the serial engine across the fault chaos matrix — the
test suite asserts it for inline and process backends alike.  Select
with ``ClusterController(..., engine="parallel", workers=N)`` or
``--parallel-shards`` on the cluster CLIs; see ``docs/performance.md``
for measured speedups.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..check import InvariantChecker, ServiceLedger
from ..engine import CommitTracer, InlineBackend, Op, ProcessBackend
from ..engine.shard import ShardProgram
from ..errors import HarnessError
from ..faults import FaultConfig, FaultInjector, arm_slot_faults
from ..gpu import EventLoop
from ..harness import JobSpec, RunConfig
from ..metrics import LatencySummary
from ..trace import NULL_TRACER
from ..workloads import InferenceJob, TrainingJob, get_model
from ..harness.colocate import _traffic_for
from .controlplane import (
    ClusterController,
    _build_driver,
    _Shard,
    _ShardState,
    _Tenant,
)

__all__ = [
    "ClusterShardDomain",
    "ClusterShardProgram",
    "ParallelClusterController",
]


class _BufferTracer:
    """Tracer-shaped sink appending into a shard's output buffer."""

    enabled = True

    def __init__(self, outputs: list) -> None:
        self._outputs = outputs

    def emit(self, event) -> None:
        self._outputs.append(event)


@dataclass(frozen=True)
class ClusterShardProgram(ShardProgram):
    """Picklable genesis for one cluster shard (configs only)."""

    config: RunConfig
    policy: str
    check: bool
    faults: FaultConfig | None
    traced: bool

    def build(self, index: int) -> "ClusterShardDomain":
        return ClusterShardDomain(index, self)


class ClusterShardDomain:
    """Worker-side shard: live device/policy/server plus its drivers.

    Implements the engine's domain contract (``loop`` / ``apply`` /
    ``query`` / ``outputs`` / ``finalize``).  Every op handler mirrors
    one serial ``_op_*`` hook of :class:`ClusterController` — same
    calls, same order, same simulated instant.
    """

    def __init__(self, index: int, program: ClusterShardProgram) -> None:
        self.index = index
        self.config = program.config
        self.loop = EventLoop()
        self.outputs: list = []
        tracer = (_BufferTracer(self.outputs) if program.traced
                  else NULL_TRACER)
        self.checker = InvariantChecker() if program.check else None
        self.injector = (FaultInjector(program.faults)
                         if program.faults is not None else None)
        self.shard = _Shard(index, self.loop, program.config,
                            program.policy, tracer, self.checker,
                            self.injector)
        self.drivers: dict[str, object] = {}
        self.roles: dict[str, str] = {}
        if (program.faults is not None
                and program.faults.slot_fault_rate > 0):
            arm_slot_faults(self.shard.device, self.loop, self.injector,
                            program.config.duration, tracer=tracer)

    # -- engine contract -----------------------------------------------
    def apply(self, kind: str, payload, at: float):
        shard = self.shard
        if kind == "admit":
            client_id, spec = payload
            driver = _build_driver(self.config, spec, shard.policy,
                                   client_id)
            shard.server.connect(client_id, spec.effective_priority)
            self.drivers[client_id] = driver
            self.roles[client_id] = spec.role
            return None
        if kind == "start":
            driver = self.drivers[payload]
            if self.roles[payload] == "training":
                driver.start()
            else:
                driver.start(since=at)
            return None
        if kind == "depart":
            driver = self.drivers[payload]
            if self.roles[payload] == "training":
                driver.stop()
            else:
                driver.close()
            return None
        if kind == "speed":
            shard.device.set_speed_factor(payload)
            return None
        if kind == "checkpoint":
            self.drivers[payload].checkpoint()
            return None
        if kind == "detach":
            shard.policy.disconnect(payload)
            if self.roles[payload] == "inference":
                return self.drivers[payload].pending_requests
            return 0
        if kind == "export":
            ckpt = shard.server.checkpoint(payload)
            frozen = self.drivers[payload].freeze_state()
            return (ckpt, frozen)
        if kind == "import":
            client_id, spec, (ckpt, frozen) = payload
            shard.server.restore(ckpt)
            driver = _thaw_driver(self.config, spec, shard.policy, frozen)
            self.drivers[client_id] = driver
            self.roles[client_id] = spec.role
            return None
        if kind == "finish_export":
            shard.server.disconnect(payload, ts=at)
            self.drivers.pop(payload)
            self.roles.pop(payload)
            return None
        if kind == "restore":
            self.drivers[payload].restore(shard.policy)
            return None
        if kind == "evict":
            self.drivers[payload].crash()
            shard.policy.disconnect(payload)
            shard.server.disconnect(payload, ts=at)
            return None
        raise HarnessError(f"unknown shard op {kind!r}")

    def query(self, kind: str, payload):
        if kind == "tails":
            client_ids, since, until = payload
            return {cid: self._window_latencies(cid, since, until)
                    for cid in client_ids}
        raise HarnessError(f"unknown shard query {kind!r}")

    def finalize(self, at: float) -> dict:
        self.loop.run_until(at)
        start, end = self.config.window
        clients: dict[str, dict] = {}
        for client_id, driver in self.drivers.items():
            role = self.roles[client_id]
            clients[client_id] = {
                "ledger": self._ledger_fields(client_id),
                "completed": driver.completions_in(start, end),
                "lat": self._latency_samples(client_id),
            }
        return {
            "clients": clients,
            "injected": (dict(self.injector.injected)
                         if self.injector is not None else {}),
            "checks_run": (self.checker.checks_run
                           if self.checker is not None else 0),
        }

    # -- read-outs ------------------------------------------------------
    def _window_latencies(self, client_id: str, since: float,
                          until: float) -> list[float]:
        driver = self.drivers[client_id]
        if self.roles[client_id] == "inference":
            return driver.latencies(since=since, until=until)
        return [r.ttft for r in driver.requests
                if r.first_token is not None
                and since <= r.first_token < until]

    def _latency_samples(self, client_id: str):
        """Raw ``(window key, latency)`` pairs for coordinator windowing."""
        driver = self.drivers[client_id]
        role = self.roles[client_id]
        if role == "inference":
            return [(r.completed, r.latency) for r in driver.records]
        if role == "llm":
            return [(r.first_token, r.ttft) for r in driver.requests
                    if r.first_token is not None]
        return None

    def _ledger_fields(self, client_id: str):
        """(arrivals, completed, pending, shed) — mirrors ``_ledger``."""
        driver = self.drivers[client_id]
        role = self.roles[client_id]
        if role == "inference":
            return (driver.arrivals_total, len(driver.records),
                    driver.pending_requests, driver.shed_requests)
        if role == "llm":
            arrivals = len(driver.requests)
            completed = sum(1 for r in driver.requests if r.completed)
            dropped = sum(1 for r in driver.requests
                          if r.evicted or r.deadline_shed)
            pending = driver.pending_requests
            stranded = arrivals - completed - dropped - pending
            return (arrivals, completed, pending, dropped + stranded)
        return None


def _thaw_driver(config: RunConfig, spec: JobSpec, policy, frozen: dict):
    """Rebuild a frozen driver on the target shard's loop.

    The trace and traffic are regenerated from (config, spec) exactly
    as :func:`_build_driver` builds them — both are pure functions of
    seeds, so the thawed driver is byte-equivalent to the serial
    engine's still-live driver object at the same instant.
    """
    model = get_model(spec.model)
    trace = model.build_trace(config.spec, seed=config.trace_seed)
    if spec.role == "inference":
        traffic = _traffic_for(spec, trace.duration, config)
        return InferenceJob.thaw(trace, traffic, policy, frozen)
    return TrainingJob.thaw(trace, policy, frozen)


class ParallelClusterController(ClusterController):
    """The serial control plane's decision core over the sharded engine.

    Every ``_op_*`` hook issues a timestamped op instead of touching a
    live object; everything above the hook surface — placement logic,
    hysteresis, conservation accounting — is inherited unchanged, which
    is what makes "bit-identical committed metrics" a structural claim
    rather than a hopeful one.
    """

    def __init__(self, jobs, devices, *, engine: str = "parallel",
                 workers: int = 0, **kwargs) -> None:
        self._hints: dict[float, list] = {}
        super().__init__(jobs, devices, engine=engine, workers=workers,
                         **kwargs)
        self._commit = CommitTracer(self.tracer)
        self.tracer = self._commit
        self._fault_source = (FaultInjector(self.faults)
                              if self.faults is not None else None)
        program = ClusterShardProgram(
            config=self.config, policy=self.policy_name,
            check=self.check_enabled, faults=self.faults,
            traced=self._commit.sink.enabled)
        n = len(self.shards)
        if workers > 1:
            self._backend = InlineBackend(program, n) if n == 1 else \
                ProcessBackend(program, n, workers)
        else:
            self._backend = InlineBackend(program, n)
        self._seq = 0
        self._final_reports: dict = {}
        self._final_clients: dict = {}
        self._shard_stats: dict = {}
        self.rollbacks = 0

    # -- op plumbing ----------------------------------------------------
    def _issue(self, shard_index: int, kind: str, payload=None, *,
               want_result: bool = False):
        self._seq += 1
        return self._backend.op(Op(
            seq=self._seq, shard=shard_index, at=self.engine.now,
            kind=kind, payload=payload, want_result=want_result))

    # -- hook overrides: shard construction & hints ---------------------
    def _make_shard(self, index: int) -> _ShardState:
        return _ShardState(index)

    def _note_control(self, time: float, hint) -> None:
        self._hints.setdefault(time, []).append(hint)

    def _device_fault_schedule(self, index: int):
        if self._fault_source is None:
            return ()
        return self._fault_source.device_fault_schedule(
            index, self.config.duration)

    # -- hook overrides: shard operations -------------------------------
    def _op_admit(self, shard: _ShardState, spec: JobSpec,
                  client_id: str):
        self._issue(shard.index, "admit", (client_id, spec))
        return None  # the driver lives in the worker

    def _op_start(self, tenant: _Tenant, shard: _ShardState) -> None:
        self._issue(shard.index, "start", tenant.client_id)

    def _op_depart(self, tenant: _Tenant) -> None:
        self._issue(tenant.device, "depart", tenant.client_id)

    def _op_set_speed(self, shard: _ShardState, factor: float) -> None:
        self._issue(shard.index, "speed", factor)

    def _op_checkpoint(self, tenant: _Tenant,
                       source: _ShardState) -> None:
        self._issue(source.index, "checkpoint", tenant.client_id)

    def _op_detach(self, tenant: _Tenant, source: _ShardState) -> int:
        if tenant.role == "inference":
            return self._issue(source.index, "detach", tenant.client_id,
                               want_result=True)
        self._issue(source.index, "detach", tenant.client_id)
        return 0

    def _op_transfer(self, tenant: _Tenant, source: _ShardState,
                     target: _ShardState) -> None:
        image = self._issue(source.index, "export", tenant.client_id,
                            want_result=True)
        self._issue(target.index, "import",
                    (tenant.client_id, tenant.spec, image))
        self._issue(source.index, "finish_export", tenant.client_id)

    def _op_restore(self, tenant: _Tenant, target: _ShardState) -> None:
        self._issue(target.index, "restore", tenant.client_id)

    def _op_evict(self, tenant: _Tenant, owner: _ShardState) -> None:
        self._issue(owner.index, "evict", tenant.client_id)

    def _pending_of(self, tenant: _Tenant) -> int:
        return 0  # feeds only the unused `pending` arg of the LLM path

    # -- hook overrides: reads ------------------------------------------
    def _hp_window_tails(self, tenants, since: float,
                         until: float) -> dict[str, float]:
        by_shard: dict[int, list[str]] = {}
        for tenant in tenants:
            by_shard.setdefault(tenant.device, []).append(
                tenant.client_id)
        tails: dict[str, float] = {}
        for index in sorted(by_shard):
            answer = self._backend.query(
                index, "tails", (by_shard[index], since, until))
            for client_id, latencies in answer.items():
                if latencies:
                    tails[client_id] = LatencySummary.of(latencies).p99
        return tails

    def _tenant_report(self, tenant: _Tenant) -> dict:
        data = self._final_clients[tenant.client_id]
        start, end = self.config.window
        ledger = None
        if data["ledger"] is not None:
            arrivals, completed, pending, shed = data["ledger"]
            ledger = ServiceLedger(
                client_id=tenant.client_id, arrivals=arrivals,
                completed=completed, pending=pending, shed=shed)
        report: dict = {"ledger": ledger, "completed": data["completed"]}
        if tenant.latency_critical:
            pairs = data["lat"] or []
            report["latencies"] = [lat for key, lat in pairs
                                   if start <= key < end]
            report["post_latencies"] = (
                [lat for key, lat in pairs
                 if tenant.restored_at <= key < end]
                if tenant.restored_at is not None else None)
        return report

    def _gather_shard_stats(self):
        injected: Counter[str] = Counter()
        checks = 0
        events = self.engine.events_processed
        for report in self._final_reports.values():
            injected.update(
                {kind: count for kind, count
                 in report["injected"].items()
                 if not kind.startswith("device_")})
            checks += report["checks_run"]
        for shard_events, _rollbacks in self._shard_stats.values():
            events += shard_events
        return injected, checks, events

    # -- the barrier loop -----------------------------------------------
    def _lookahead(self) -> float:
        """Minimum cross-shard latency = safe speculation depth."""
        candidates = [self.migration_downtime]
        if self.autoscale is not None:
            candidates.append(self.autoscale.interval)
        if self.arrival_rate:
            candidates.append(1.0 / self.arrival_rate)
        positive = [c for c in candidates if c > 0]
        return min(positive) if positive else self.config.duration

    def _speculation_plan(self, grant: float,
                          limit: float) -> tuple[float, frozenset[int]]:
        """Clamp the window and hold back shards using control hints."""
        spec_target = limit
        holdback: set[int] = set()
        for time in sorted(self._hints):
            if time < grant:
                del self._hints[time]  # already fired
                continue
            if time >= spec_target:
                break
            clamped = False
            for hint in self._hints[time]:
                shards = hint() if callable(hint) else hint
                if shards is None:
                    # this event may touch anything: nobody speculates
                    # at or past it
                    spec_target = time
                    clamped = True
                    break
                holdback.update(shards)
            if clamped:
                break
        return spec_target, frozenset(holdback)

    def run(self):
        if self._ran:
            raise HarnessError("controller already ran; build a fresh one")
        self._ran = True
        duration = self.config.duration
        backend = self._backend
        backend.start()
        try:
            self._schedule_initial_jobs()
            self._schedule_device_faults()
            for index, when in self.drain_schedule:
                self._note_control(when, None)
                self.engine.schedule_at(
                    when, lambda i=index: self.drain(i))
            # slot faults are armed inside each worker's domain build
            if self.autoscale is not None:
                self._note_control(self.autoscale.interval,
                                   self._tick_hint)
                self.engine.schedule_at(self.autoscale.interval,
                                        self._autoscale_tick)
            lookahead = self._lookahead()
            engine = self.engine
            commit = self._commit
            while True:
                grant = engine.peek_time()
                if grant is None or grant > duration:
                    break
                spec_target, holdback = self._speculation_plan(
                    grant, min(grant + lookahead, duration))
                outputs = backend.advance(grant, spec_target, holdback)
                for index in sorted(outputs):
                    commit.add_shard_events(index, outputs[index])
                commit.commit(grant)
                # run every control event at the horizon (ops land on
                # shards sitting exactly there, or roll them back)
                engine.advance_to(grant, inclusive=True)
            reports, outputs, stats = backend.finalize(duration)
            engine.advance_to(duration)
            for index in sorted(outputs):
                commit.add_shard_events(index, outputs[index])
            commit.close()
            self._final_reports = reports
            self._final_clients = {
                client_id: data
                for report in reports.values()
                for client_id, data in report["clients"].items()}
            self._shard_stats = stats
            self.rollbacks = sum(r for _, r in stats.values())
            return self._collect()
        finally:
            backend.stop()
