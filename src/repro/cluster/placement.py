"""Cluster-level job placement.

The paper's motivation (§1) is cluster-scale: production DL clusters
run many low-utilization jobs, and the Alibaba study estimates that an
effective GPU-sharing mechanism could cut the required GPU count by
~50 %.  This module provides the two placement strategies needed to
check that claim against our simulated Tally:

* **dedicated** — one job per GPU (today's common practice for
  SLA-bound services);
* **packed** — greedy first-fit-decreasing bin packing with sharing
  constraints: at most one high-priority service per GPU, a compute
  budget per GPU, and the memory-footprint model of
  :mod:`repro.workloads.memory`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import HarnessError
from ..gpu import A100_SXM4_40GB, GPUSpec
from ..workloads import LLM_MODELS, WorkloadKind, get_model
from ..workloads.memory import A100_MEMORY_BYTES, footprint_of

__all__ = ["ClusterJob", "Placement", "dedicated_placement",
           "packed_placement"]


@dataclass(frozen=True)
class ClusterJob:
    """One job to place on the cluster."""

    model: str
    #: inference only: offered load
    load: float = 0.5
    #: latency SLA as a multiple of the isolated p99 (online inference)
    sla_factor: float = 1.25
    #: offline/batch inference tolerates latency and runs best-effort,
    #: so it can share a GPU with an online service (the Fig. 6a setup)
    offline: bool = False
    traffic_seed: int = 0
    #: online control plane only: simulated time at which the job
    #: gracefully departs the cluster (None = stays the whole run)
    depart_at: float | None = None

    @property
    def role(self) -> str:
        if self.model in LLM_MODELS:
            return "llm"
        kind = get_model(self.model).kind
        return "inference" if kind is WorkloadKind.INFERENCE else "training"

    @property
    def latency_critical(self) -> bool:
        return self.role in ("inference", "llm") and not self.offline

    def demand(self, spec: GPUSpec = A100_SXM4_40GB) -> float:
        """Estimated fraction of one GPU's time the job keeps busy."""
        if self.role in ("inference", "llm"):
            # Load is defined against serial (batch-of-one) service
            # time; continuous batching only lowers the true demand.
            return self.load
        model = get_model(self.model)
        trace = model.build_trace(spec)
        return trace.gpu_time / trace.duration

    def memory(self) -> int:
        return footprint_of(self.model).total


@dataclass
class Placement:
    """An assignment of jobs to GPUs."""

    bins: list[list[ClusterJob]] = field(default_factory=list)

    @property
    def gpus_used(self) -> int:
        return len(self.bins)

    def jobs(self) -> list[ClusterJob]:
        return [job for gpu in self.bins for job in gpu]

    def validate(self, capacity_bytes: int = A100_MEMORY_BYTES) -> None:
        """Check structural constraints of the placement."""
        for i, gpu in enumerate(self.bins):
            if not gpu:
                raise HarnessError(f"GPU {i} has no jobs")
            high = [j for j in gpu if j.latency_critical]
            if len(high) > 1:
                raise HarnessError(
                    f"GPU {i} hosts {len(high)} latency-critical services; "
                    "Tally supports one high-priority task per GPU"
                )
            memory = sum(j.memory() for j in gpu)
            if memory > capacity_bytes:
                footprints = ", ".join(
                    f"{j.model}={j.memory() / 1024 ** 3:.2f} GiB"
                    for j in gpu
                )
                raise HarnessError(
                    f"GPU {i} memory over-committed: "
                    f"{memory / 1024 ** 3:.2f} GiB placed on a "
                    f"{capacity_bytes / 1024 ** 3:.2f} GiB device "
                    f"({footprints})"
                )


def dedicated_placement(jobs: list[ClusterJob]) -> Placement:
    """One GPU per job."""
    if not jobs:
        raise HarnessError("no jobs to place")
    return Placement(bins=[[job] for job in jobs])


def packed_placement(jobs: list[ClusterJob], *,
                     spec: GPUSpec = A100_SXM4_40GB,
                     compute_budget: float = 1.25,
                     capacity_bytes: int = A100_MEMORY_BYTES) -> Placement:
    """Greedy first-fit-decreasing packing under sharing constraints.

    ``compute_budget`` is the allowed sum of job demand fractions per
    GPU; values slightly above 1.0 are reasonable because best-effort
    jobs absorb whatever the high-priority service leaves idle.
    """
    if not jobs:
        raise HarnessError("no jobs to place")
    if compute_budget <= 0:
        raise HarnessError("compute_budget must be > 0")

    order = sorted(jobs, key=lambda j: j.demand(spec), reverse=True)
    bins: list[list[ClusterJob]] = []
    bin_demand: list[float] = []
    bin_memory: list[int] = []
    bin_has_high: list[bool] = []

    for job in order:
        demand = job.demand(spec)
        memory = job.memory()
        is_high = job.latency_critical
        placed = False
        for i in range(len(bins)):
            if is_high and bin_has_high[i]:
                continue
            if bin_demand[i] + demand > compute_budget:
                continue
            if bin_memory[i] + memory > capacity_bytes:
                continue
            bins[i].append(job)
            bin_demand[i] += demand
            bin_memory[i] += memory
            bin_has_high[i] = bin_has_high[i] or is_high
            placed = True
            break
        if not placed:
            bins.append([job])
            bin_demand.append(demand)
            bin_memory.append(memory)
            bin_has_high.append(is_high)

    placement = Placement(bins=bins)
    placement.validate(capacity_bytes)
    return placement
