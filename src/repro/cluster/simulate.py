"""Cluster-consolidation evaluation.

Given a placement, run each GPU's job set through the co-location
simulator under a sharing policy and report: GPUs used, SLA compliance
of every latency-critical service, and aggregate normalized throughput.
Comparing a dedicated placement against a Tally-packed one reproduces
the paper's motivating claim that sharing can substantially shrink the
GPU count of a cluster without violating service SLAs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines import Priority
from ..errors import HarnessError
from ..harness import (JobSpec, RunConfig, SweepCase, run_colocation,
                       run_sweep, standalone)
from ..metrics.recovery import RecoveryReport
from .placement import ClusterJob, Placement

__all__ = ["ServiceOutcome", "ClusterResult", "evaluate_placement"]


@dataclass(frozen=True)
class ServiceOutcome:
    """SLA outcome of one latency-critical service."""

    model: str
    gpu: int
    p99_ratio: float
    sla_factor: float

    @property
    def meets_sla(self) -> bool:
        return self.p99_ratio <= self.sla_factor


@dataclass
class ClusterResult:
    """Outcome of one placement under one sharing policy."""

    policy: str
    gpus_used: int
    services: list[ServiceOutcome]
    total_normalized_throughput: float
    #: simulation events processed across every GPU's run
    events: int = 0
    #: recovery metrics — downtime per service, MTTR, shed/evicted
    #: counts, SLO attainment through the fault window; populated by
    #: the online control plane, None for static evaluations
    recovery: RecoveryReport | None = None
    #: invariant audits performed across the run (0 when unchecked)
    invariant_checks: int = 0

    @property
    def sla_violations(self) -> int:
        return sum(1 for s in self.services if not s.meets_sla)

    @property
    def worst_p99_ratio(self) -> float:
        if not self.services:
            return float("nan")
        return max(s.p99_ratio for s in self.services)


def _to_jobspec(job: ClusterJob) -> JobSpec:
    if job.role in ("inference", "llm"):
        priority = Priority.BEST_EFFORT if job.offline else Priority.HIGH
        factory = JobSpec.llm if job.role == "llm" else JobSpec.inference
        return factory(job.model, load=job.load, priority=priority,
                       traffic_seed=job.traffic_seed)
    return JobSpec.training(job.model, traffic_seed=job.traffic_seed)


def _tail_p99(job_result) -> float:
    """The service's tail metric: request p99, or TTFT p99 for LLMs.

    A latency-critical service that completed *zero* requests in the
    window (crashed via ``JobSpec.crash_at``, or killed by a device
    fault) has no tail — that is the worst possible SLA outcome, not a
    configuration error, so it reports ``inf`` (an unconditional SLA
    violation) instead of aborting the whole cluster evaluation.
    """
    if job_result.latency is not None:
        return job_result.latency.p99
    if job_result.serving is not None and job_result.serving.ttft is not None:
        return job_result.serving.ttft.p99
    return float("inf")


def evaluate_placement(placement: Placement, policy: str,
                       config: RunConfig | None = None, *,
                       tracer=None, check: bool = False,
                       faults=None, jobs: int = 1) -> ClusterResult:
    """Simulate every GPU of ``placement`` under ``policy``.

    A :class:`~repro.trace.Tracer` records every GPU's run into one
    stream; per-GPU timelines overlap in time, so filter by client id
    when analyzing.  ``check=True`` runs every GPU with the invariant
    checker enabled (see ``docs/validation.md``).  ``faults`` (a
    :class:`~repro.faults.FaultConfig`) enables the same seeded fault
    injection on every GPU (see ``docs/fault_tolerance.md``); each GPU
    gets its own injector so per-GPU fault streams are independent of
    bin ordering.  ``jobs`` fans the per-GPU simulations out over that
    many worker processes — every GPU is an independent simulation, so
    results are bit-identical to the serial run (``docs/performance.md``
    covers the speedup).  A tracer cannot cross process boundaries, so
    ``jobs > 1`` with a tracer is rejected.
    """
    if not placement.bins:
        raise HarnessError("empty placement")
    if jobs > 1 and tracer is not None:
        raise HarnessError(
            "tracing is per-process state: use jobs=1 when tracing"
        )
    config = config if config is not None else RunConfig(duration=6.0,
                                                         warmup=1.0)
    per_gpu_specs = [[_to_jobspec(job) for job in gpu_jobs]
                     for gpu_jobs in placement.bins]
    if jobs > 1:
        cases = [SweepCase(policy=policy, jobs=tuple(specs), config=config,
                           label=f"gpu {index}", check=check, faults=faults)
                 for index, specs in enumerate(per_gpu_specs)]
        results = run_sweep(cases, jobs=jobs)
    else:
        results = [run_colocation(policy, specs, config, tracer=tracer,
                                  check=check, faults=faults)
                   for specs in per_gpu_specs]
    services: list[ServiceOutcome] = []
    total_throughput = 0.0
    total_events = 0
    for gpu_index, gpu_jobs in enumerate(placement.bins):
        specs = per_gpu_specs[gpu_index]
        # Offline (best-effort) duplicates of an online service need
        # distinct traffic seeds; placement already carries them.
        result = results[gpu_index]
        total_events += result.events
        counters: dict[str, int] = {}
        for job, spec in zip(gpu_jobs, specs):
            baseline = standalone(spec, config)
            # Client ids are assigned per model in submission order.
            n = counters.get(job.model, 0)
            counters[job.model] = n + 1
            job_result = result.job(f"{job.model}#{n}")
            if baseline.rate > 0:
                total_throughput += job_result.rate / baseline.rate
            if job.latency_critical:
                services.append(ServiceOutcome(
                    model=job.model,
                    gpu=gpu_index,
                    p99_ratio=_tail_p99(job_result) / _tail_p99(baseline),
                    sla_factor=job.sla_factor,
                ))
    return ClusterResult(
        policy=policy,
        gpus_used=placement.gpus_used,
        services=services,
        total_normalized_throughput=total_throughput,
        events=total_events,
    )
