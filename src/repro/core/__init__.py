"""Tally core: transformation service, profiler, and scheduler.

Two halves share the transformation machinery:

* the **functional path** (:class:`TallyServer`, :func:`connect_runtime`)
  proves non-intrusiveness — unmodified applications execute through
  the virtualization layer with transformed kernels and identical
  results;
* the **timing path** (:class:`Tally`) runs the paper's priority-aware
  block-level scheduling algorithm over the discrete-event GPU and
  produces the evaluation numbers.
"""

from .candidates import SchedConfig, SchedKind, generate_candidates
from .client import connect_runtime
from .config import DEFAULT_TURNAROUND_BOUND, TallyConfig
from .profiler import Measurement, TransparentProfiler
from .scheduler import Tally, TallyStats
from .server import ClientCheckpoint, TallyServer, migrate_client
from .transformer import ExecMode, ExecPlan, KernelTransformer

__all__ = [
    "DEFAULT_TURNAROUND_BOUND",
    "ClientCheckpoint",
    "ExecMode",
    "ExecPlan",
    "KernelTransformer",
    "Measurement",
    "SchedConfig",
    "SchedKind",
    "Tally",
    "TallyConfig",
    "TallyServer",
    "TallyStats",
    "TransparentProfiler",
    "connect_runtime",
    "generate_candidates",
    "migrate_client",
]
