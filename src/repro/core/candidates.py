"""Candidate launch-configuration generation (paper §4.2).

For each best-effort kernel the scheduler considers both primitives:

* **preemption** — worker counts that are "multiples of the number of
  SMs that fit within the thread limit";
* **slicing** — slice sizes covering "different percentages of the
  total blocks".

:func:`generate_candidates` enumerates the deduplicated candidate set
for a kernel on a given GPU; the transparent profiler measures each and
the scheduler picks the best one under the turnaround bound.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import SchedulerError
from ..gpu.kernel import KernelDescriptor
from ..gpu.specs import GPUSpec
from .config import TallyConfig

__all__ = ["SchedKind", "SchedConfig", "generate_candidates"]


class SchedKind(enum.Enum):
    """How a best-effort kernel is scheduled."""

    ORIGINAL = "original"
    SLICED = "sliced"
    PTB = "ptb"


@dataclass(frozen=True)
class SchedConfig:
    """One scheduling configuration of a best-effort kernel."""

    kind: SchedKind
    #: blocks per slice (SLICED) — 0 otherwise
    blocks_per_slice: int = 0
    #: persistent worker blocks (PTB) — 0 otherwise
    workers: int = 0

    def __post_init__(self) -> None:
        if self.kind is SchedKind.SLICED and self.blocks_per_slice < 1:
            raise SchedulerError("SLICED config needs blocks_per_slice >= 1")
        if self.kind is SchedKind.PTB and self.workers < 1:
            raise SchedulerError("PTB config needs workers >= 1")

    def describe(self) -> str:
        """Short human-readable form for reports."""
        if self.kind is SchedKind.SLICED:
            return f"sliced({self.blocks_per_slice})"
        if self.kind is SchedKind.PTB:
            return f"ptb({self.workers})"
        return "original"


ORIGINAL_CONFIG = SchedConfig(SchedKind.ORIGINAL)


def generate_candidates(descriptor: KernelDescriptor, spec: GPUSpec,
                        config: TallyConfig) -> list[SchedConfig]:
    """All candidate configurations for a best-effort kernel.

    Candidates are ordered cheapest-footprint first (fewest workers /
    smallest slices), which is also the profiling order.  Kernels too
    small to subdivide get only the ORIGINAL configuration — a kernel of
    a handful of short blocks already has block-level turnaround.
    """
    candidates: list[SchedConfig] = []
    seen: set[tuple] = set()

    capacity = descriptor.capacity(spec)
    for multiple in config.worker_sm_multiples:
        workers = multiple * spec.num_sms
        if workers > capacity:
            break
        if workers >= descriptor.num_blocks:
            # More workers than work: PTB degenerates to the original
            # launch with added overhead; skip.
            break
        key = ("ptb", workers)
        if key not in seen:
            seen.add(key)
            candidates.append(SchedConfig(SchedKind.PTB, workers=workers))

    for fraction in config.slice_fractions:
        blocks = max(1, int(descriptor.num_blocks * fraction))
        if blocks >= descriptor.num_blocks:
            continue  # one slice == original launch
        key = ("sliced", blocks)
        if key not in seen:
            seen.add(key)
            candidates.append(
                SchedConfig(SchedKind.SLICED, blocks_per_slice=blocks)
            )

    if not candidates:
        candidates.append(ORIGINAL_CONFIG)
    return candidates
