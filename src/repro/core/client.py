"""Client-side convenience: attach an application to a Tally server.

``connect_runtime`` builds a :class:`~repro.runtime.api.CudaRuntime`
whose backend forwards through the virtualization layer to a
:class:`~repro.core.server.TallyServer` — the LD_PRELOAD moment.  An
application written against ``CudaRuntime`` needs no change to run
under Tally; swapping this constructor for a plain ``CudaRuntime()``
switches between native and virtualized execution.
"""

from __future__ import annotations

from ..baselines.base import Priority
from ..runtime.api import CudaRuntime
from ..virt.channel import ChannelConfig, SHARED_MEMORY
from ..virt.interposer import InterposedBackend
from .server import TallyServer
from .transformer import ExecPlan

__all__ = ["connect_runtime"]


def connect_runtime(server: TallyServer, client_id: str,
                    priority: Priority = Priority.BEST_EFFORT, *,
                    plan: ExecPlan | None = None,
                    channel_config: ChannelConfig = SHARED_MEMORY) -> CudaRuntime:
    """A CUDA runtime whose device calls are served by ``server``."""
    channel = server.connect(client_id, priority, plan=plan,
                             channel_config=channel_config)
    backend = InterposedBackend(channel, client_id)
    return CudaRuntime(backend)
