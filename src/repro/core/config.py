"""Tally configuration.

The single tunable the paper highlights is the **turnaround latency
threshold**: the maximum time a scheduled best-effort kernel may take
to release the GPU once a high-priority kernel arrives.  The paper's
sweep (Fig. 6c) selects 0.0316 ms as the default.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SchedulerError

__all__ = ["TallyConfig", "DEFAULT_TURNAROUND_BOUND"]

#: The paper's default turnaround-latency threshold (seconds).
DEFAULT_TURNAROUND_BOUND = 0.0316e-3


@dataclass(frozen=True)
class TallyConfig:
    """Knobs of the Tally server."""

    #: max acceptable turnaround latency of best-effort kernels (s)
    turnaround_latency_bound: float = DEFAULT_TURNAROUND_BOUND
    #: apply slicing/PTB transformations to best-effort kernels; turning
    #: this off yields the paper's "scheduling w/o transformation"
    #: ablation (priority-aware kernel-level scheduling only)
    use_transformations: bool = True
    #: candidate slice sizes, as fractions of the kernel's total blocks
    slice_fractions: tuple[float, ...] = (0.02, 0.05, 0.10, 0.25, 0.50)
    #: candidate PTB worker counts are these multiples of the SM count
    worker_sm_multiples: tuple[int, ...] = (1, 2, 4, 6, 8)
    #: priority value used for best-effort device launches
    best_effort_priority: int = 1
    #: seed the profiler with analytic estimates so short simulations
    #: behave like a long-running server with a warm profile cache;
    #: runtime measurements still refine the estimates (EWMA).  Set
    #: False for pure on-the-fly profiling from a cold cache.
    prewarm_profiles: bool = True
    #: preemption-ack deadline (seconds) for the watchdog; None (the
    #: default) disables it, keeping fault-free runs byte-identical to
    #: the pre-watchdog scheduler.  Fault-injected runs should set it
    #: to a few turnaround bounds.
    preempt_deadline: float | None = None
    #: when the deadline passes: True forces a REEF-style reset of the
    #: stuck launch; False raises PreemptTimeout (strict debugging mode)
    watchdog_escalate: bool = True

    def __post_init__(self) -> None:
        if self.turnaround_latency_bound <= 0:
            raise SchedulerError("turnaround_latency_bound must be > 0")
        if self.preempt_deadline is not None and self.preempt_deadline <= 0:
            raise SchedulerError("preempt_deadline must be > 0 (or None)")
        if not self.slice_fractions and not self.worker_sm_multiples:
            raise SchedulerError("need at least one candidate family")
        for fraction in self.slice_fractions:
            if not 0 < fraction <= 1:
                raise SchedulerError(
                    f"slice fraction {fraction} outside (0, 1]"
                )
        for multiple in self.worker_sm_multiples:
            if multiple < 1:
                raise SchedulerError(f"worker multiple {multiple} < 1")

    def with_bound(self, bound: float) -> "TallyConfig":
        """A copy with a different turnaround bound (for sweeps)."""
        from dataclasses import replace

        return replace(self, turnaround_latency_bound=bound)
