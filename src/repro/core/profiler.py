"""Tally's transparent profiler (paper §4.2).

Tally cannot require offline profiling (its criticism of Orion), so it
measures candidate launch configurations *on the fly*: the first
executions of a best-effort kernel each try one candidate and record
two quantities —

* **turnaround latency**: how quickly the configuration releases the
  GPU on preemption (a slice's completion time, or a PTB launch's
  per-iteration time via the paper's ``kernel_latency /
  (total_blocks / worker_blocks)`` heuristic);
* **duration**: the kernel's total execution time under the
  configuration (the best-effort throughput cost).

Once every candidate has a measurement, :meth:`TransparentProfiler.
choose` returns the fastest configuration whose turnaround meets the
bound, falling back to the lowest-turnaround one if none qualifies.
Repeat measurements update an exponential moving average, so the
profile adapts if co-location conditions shift.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SchedulerError
from ..gpu.kernel import KernelDescriptor
from ..gpu.specs import GPUSpec
from .candidates import ORIGINAL_CONFIG, SchedConfig, generate_candidates
from .config import TallyConfig

__all__ = ["Measurement", "TransparentProfiler"]

#: EWMA weight of a new sample.
_ALPHA = 0.3


@dataclass
class Measurement:
    """Running measurement of one (kernel, configuration) pair."""

    turnaround: float
    duration: float
    samples: int = 1

    def update(self, turnaround: float, duration: float) -> None:
        """Fold in one more sample (exponential moving average)."""
        self.turnaround += _ALPHA * (turnaround - self.turnaround)
        self.duration += _ALPHA * (duration - self.duration)
        self.samples += 1


class TransparentProfiler:
    """Runtime measurement cache for best-effort launch configurations."""

    def __init__(self, spec: GPUSpec, config: TallyConfig) -> None:
        self.spec = spec
        self.config = config
        # Keyed on the full (frozen, hashable) descriptor, never the
        # bare name: two kernels sharing a name with different launch
        # geometry (blocks, threads, shared memory) have different
        # candidate sets and must not inherit each other's profile.
        self._candidates: dict[KernelDescriptor, list[SchedConfig]] = {}
        self._measurements: dict[
            tuple[KernelDescriptor, SchedConfig], Measurement] = {}
        self._prewarmed: set[KernelDescriptor] = set()
        self.profiling_runs = 0
        self.decisions = 0

    # ------------------------------------------------------------------
    def prewarm(self, descriptor: KernelDescriptor) -> None:
        """Seed every candidate with the analytic cost model's estimate.

        Models a server whose profile cache is already warm; runtime
        measurements keep refining the entries.
        """
        if descriptor in self._prewarmed:
            return
        self._prewarmed.add(descriptor)
        from .candidates import SchedKind

        for candidate in self.candidates(descriptor):
            key = (descriptor, candidate)
            if key in self._measurements:
                continue
            if candidate.kind is SchedKind.SLICED:
                turnaround = descriptor.slice_duration(
                    self.spec, candidate.blocks_per_slice)
                duration = descriptor.sliced_duration(
                    self.spec, candidate.blocks_per_slice)
            elif candidate.kind is SchedKind.PTB:
                turnaround = descriptor.ptb_iteration_duration()
                duration = descriptor.ptb_duration(candidate.workers)
            else:
                turnaround = descriptor.duration(self.spec)
                duration = turnaround
            self._measurements[key] = Measurement(turnaround, duration)

    # ------------------------------------------------------------------
    def candidates(self, descriptor: KernelDescriptor) -> list[SchedConfig]:
        """Candidate configurations for ``descriptor`` (cached per descriptor)."""
        cached = self._candidates.get(descriptor)
        if cached is None:
            cached = generate_candidates(descriptor, self.spec, self.config)
            self._candidates[descriptor] = cached
        return cached

    def lookup(self, descriptor: KernelDescriptor,
               config: SchedConfig) -> Measurement | None:
        """The stored measurement, or None if never profiled."""
        return self._measurements.get((descriptor, config))

    def record(self, descriptor: KernelDescriptor, config: SchedConfig,
               turnaround: float, duration: float) -> None:
        """Store one measurement sample."""
        if turnaround < 0 or duration < 0:
            raise SchedulerError("measurements must be non-negative")
        key = (descriptor, config)
        existing = self._measurements.get(key)
        if existing is None:
            self._measurements[key] = Measurement(turnaround, duration)
        else:
            existing.update(turnaround, duration)

    # ------------------------------------------------------------------
    def choose(self, descriptor: KernelDescriptor) -> tuple[SchedConfig, bool]:
        """Pick the launch configuration for one best-effort execution.

        Returns ``(config, is_profiling_run)``.  While unmeasured
        candidates remain, each execution profiles the next one; after
        that, the best measured configuration is used (paper Fig. 3,
        ``launch_and_profile``).
        """
        if self.config.prewarm_profiles:
            self.prewarm(descriptor)
        candidates = self.candidates(descriptor)
        for candidate in candidates:
            if (descriptor, candidate) not in self._measurements:
                self.profiling_runs += 1
                return candidate, True

        self.decisions += 1
        bound = self.config.turnaround_latency_bound
        feasible: list[tuple[float, float, SchedConfig]] = []
        fallback: list[tuple[float, float, SchedConfig]] = []
        for candidate in candidates:
            m = self._measurements[(descriptor, candidate)]
            fallback.append((m.turnaround, m.duration, candidate))
            if m.turnaround <= bound:
                feasible.append((m.duration, m.turnaround, candidate))
        if feasible:
            return min(feasible, key=lambda item: item[:2])[2], False
        # Nothing meets the bound.  Chasing the absolute minimum
        # turnaround can be ruinous (a sub-capacity slice releases the
        # GPU marginally sooner than a PTB launch but serializes partial
        # waves, multiplying the kernel's duration), so accept any
        # config within 2x of the best turnaround and take the fastest.
        best_turnaround = min(item[0] for item in fallback)
        pool = [item for item in fallback
                if item[0] <= 2.0 * best_turnaround]
        return min(pool, key=lambda item: (item[1], item[0]))[2], False

    def best_known(self, descriptor: KernelDescriptor) -> SchedConfig:
        """The configuration :meth:`choose` would settle on (no profiling)."""
        candidates = self.candidates(descriptor)
        measured = [
            c for c in candidates
            if (descriptor, c) in self._measurements
        ]
        if not measured:
            return candidates[0] if candidates else ORIGINAL_CONFIG
        bound = self.config.turnaround_latency_bound
        feasible = [
            c for c in measured
            if self._measurements[(descriptor, c)].turnaround <= bound
        ]
        if feasible:
            return min(feasible, key=lambda c: (
                self._measurements[(descriptor, c)].duration,
                self._measurements[(descriptor, c)].turnaround,
            ))
        best_turnaround = min(
            self._measurements[(descriptor, c)].turnaround
            for c in measured
        )
        pool = [
            c for c in measured
            if self._measurements[(descriptor, c)].turnaround
            <= 2.0 * best_turnaround
        ]
        return min(pool, key=lambda c: (
            self._measurements[(descriptor, c)].duration,
            self._measurements[(descriptor, c)].turnaround,
        ))
