"""Tally's priority-aware scheduler (paper §4.2, Figure 3).

The scheduling policy is opportunistic and strictly priority-enforced:

* kernels from the high-priority client dispatch **immediately** at
  device priority 0, and every active best-effort execution is
  preempted (PTB launches via their flag; sliced launches by not
  starting the next slice);
* best-effort kernels execute only while the high-priority client is
  inactive, under the launch configuration selected by the transparent
  profiler (slicing degree or PTB worker count meeting the turnaround
  bound);
* preempted best-effort work resumes exactly where it stopped — the
  next slice offset, or the PTB task counter.

With ``use_transformations=False`` best-effort kernels launch whole and
unpreemptible, reproducing the paper's "scheduling w/o transformation"
ablation (Fig. 6b).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from ..baselines.base import ClientInfo, Priority, SharingPolicy
from ..errors import PreemptTimeout, SchedulerError
from ..gpu.device import DeviceLaunch, GPUDevice, LaunchStatus
from ..gpu.engine import EventLoop
from ..gpu.kernel import KernelDescriptor, LaunchConfig, LaunchKind
from ..trace import (
    PreemptRequest,
    PtbDispatch,
    Resume,
    SchedDecision,
    SliceDispatch,
    TransformDegrade,
    WatchdogReset,
)
from .candidates import ORIGINAL_CONFIG, SchedConfig, SchedKind, generate_candidates
from .config import TallyConfig
from .profiler import TransparentProfiler

__all__ = ["Tally", "TallyStats"]


@dataclass
class TallyStats:
    """Scheduler activity counters."""

    hp_kernels: int = 0
    be_kernels: int = 0
    preemptions: int = 0
    slices_launched: int = 0
    ptb_launches: int = 0
    resumes: int = 0
    #: preemption-watchdog escalations to a forced reset
    watchdog_resets: int = 0
    #: degradation-ladder steps after failed transformations
    transform_fallbacks: int = 0


@dataclass
class _BEExecution:
    """One best-effort kernel making its way through the scheduler."""

    descriptor: KernelDescriptor
    on_done: Callable[[], None]
    config: SchedConfig | None = None
    profiling: bool = False
    launch: DeviceLaunch | None = None  # in-flight device launch
    #: sliced: the in-flight slice is already held at its boundary, so
    #: further high-priority arrivals must not re-announce the hold
    hold_noted: bool = False
    #: this launch has been asked to preempt (counted & watchdog armed
    #: once, even when the flag delivery is lost and re-attempted)
    preempt_pending: bool = False
    next_block: int = 0  # sliced: first block of the next slice
    tasks_remaining: int = 0  # ptb: logical blocks still to run
    active_time: float = 0.0  # accumulated execution time
    slice_times: list[float] = field(default_factory=list)
    segments: int = 0  # ptb: launch segments (resume count)


class Tally(SharingPolicy):
    """The Tally server's scheduling policy over the timing simulator."""

    name = "Tally"

    def __init__(self, device: GPUDevice, engine: EventLoop,
                 config: TallyConfig | None = None) -> None:
        super().__init__(device, engine)
        self.config = config if config is not None else TallyConfig()
        self.profiler = TransparentProfiler(device.spec, self.config)
        self.stats = TallyStats()
        self._hp_outstanding = 0
        self._executions: dict[str, _BEExecution] = {}  # client -> active exec

    # ------------------------------------------------------------------
    # Submission entry point
    # ------------------------------------------------------------------
    def _submit(self, info: ClientInfo, descriptor: KernelDescriptor,
                on_done: Callable[[], None]) -> None:
        if info.priority is Priority.HIGH:
            self._submit_high_priority(info, descriptor, on_done)
        else:
            self._submit_best_effort(info, descriptor, on_done)

    def _submit_high_priority(self, info: ClientInfo,
                              descriptor: KernelDescriptor,
                              on_done: Callable[[], None]) -> None:
        self.stats.hp_kernels += 1
        self._hp_outstanding += 1
        self._preempt_best_effort()
        self._launch_high_priority(info, descriptor, on_done,
                                   blocks=descriptor.num_blocks,
                                   block_offset=0)

    def _launch_high_priority(self, info: ClientInfo,
                              descriptor: KernelDescriptor,
                              on_done: Callable[[], None], *,
                              blocks: int, block_offset: int) -> None:
        launch = DeviceLaunch(
            descriptor,
            client_id=info.client_id,
            priority=0,
            blocks=blocks,
            block_offset=block_offset,
            on_complete=lambda l: self._high_priority_done(
                info, descriptor, on_done, l),
        )
        self.device.submit(launch)

    def _high_priority_done(self, info: ClientInfo,
                            descriptor: KernelDescriptor,
                            on_done: Callable[[], None],
                            launch: DeviceLaunch) -> None:
        remaining = launch.total_blocks - launch.blocks_done
        if launch.status is LaunchStatus.PREEMPTED and remaining > 0:
            # Only a device slot fault can stop a high-priority launch
            # (the scheduler never preempts them); relaunch the
            # destroyed remainder so the client still gets its result.
            self._launch_high_priority(
                info, descriptor, on_done, blocks=remaining,
                block_offset=launch.block_offset + launch.blocks_done)
            return
        self._hp_outstanding -= 1
        on_done()  # the client may submit its next kernel synchronously
        if self._hp_outstanding == 0:
            self._resume_best_effort()

    def _submit_best_effort(self, info: ClientInfo,
                            descriptor: KernelDescriptor,
                            on_done: Callable[[], None]) -> None:
        if info.client_id in self._executions:
            raise SchedulerError(
                f"client {info.client_id!r} submitted a kernel while one "
                "is still executing (clients are stream-ordered)"
            )
        self.stats.be_kernels += 1
        execution = _BEExecution(descriptor, on_done)
        execution.tasks_remaining = descriptor.num_blocks
        self._executions[info.client_id] = execution
        self._advance(info.client_id, execution)

    # ------------------------------------------------------------------
    # Priority enforcement
    # ------------------------------------------------------------------
    @property
    def high_priority_active(self) -> bool:
        return self._hp_outstanding > 0

    def _preempt_best_effort(self) -> None:
        """Stop every best-effort execution at block granularity.

        Idempotent per launch: a burst of high-priority submissions
        while one best-effort launch is still draining preempts (and
        counts, and traces) that launch exactly once.
        """
        for client_id, execution in self._executions.items():
            launch = execution.launch
            if launch is None or launch.done:
                continue
            if launch.config.kind is LaunchKind.PTB:
                if not launch.preempt_requested:
                    # preempt() returns False when fault injection loses
                    # the flag write; the scheduler cannot observe that
                    # (only the missing ack), so it counts and arms the
                    # watchdog on the FIRST attempt either way, and a
                    # later high-priority arrival retries the write.
                    self.device.preempt(launch)
                    if not execution.preempt_pending:
                        execution.preempt_pending = True
                        self.stats.preemptions += 1
                        self._arm_watchdog(client_id, launch)
            elif (execution.config is not None
                  and execution.config.kind is SchedKind.SLICED
                  and not execution.hold_noted):
                # Held at the next slice boundary: the slice in flight
                # completes normally, so the device never acks this.
                execution.hold_noted = True
                if self.tracer.enabled:
                    self.tracer.emit(PreemptRequest(
                        ts=self.engine.now, client_id=launch.client_id,
                        kernel=launch.descriptor.name, launch_seq=launch.seq,
                        mechanism="slice-boundary",
                    ))
            # Sliced executions stop by not launching the next slice;
            # the slice in flight completes (bounded by the profiled
            # turnaround).  ORIGINAL launches cannot be stopped — that
            # is exactly the no-transformation ablation's weakness.

    def _arm_watchdog(self, client_id: str, launch: DeviceLaunch) -> None:
        """Escalate to a forced reset if the ack misses its deadline.

        Disabled unless ``preempt_deadline`` is configured, so fault-
        free runs behave exactly as before the watchdog existed.
        """
        deadline = self.config.preempt_deadline
        if deadline is None:
            return
        requested_at = self.engine.now
        self.engine.schedule(
            deadline,
            lambda: self._watchdog_fire(client_id, launch, requested_at))

    def _watchdog_fire(self, client_id: str, launch: DeviceLaunch,
                       requested_at: float) -> None:
        if launch.done:
            return  # the ack arrived in time; nothing to do
        waited = self.engine.now - requested_at
        if not self.config.watchdog_escalate:
            raise PreemptTimeout(
                f"launch {launch.seq} of {launch.descriptor.name!r} "
                f"(client {client_id!r}) missed its preemption deadline "
                f"({waited * 1e3:.3f} ms > {self.config.preempt_deadline * 1e3:.3f} ms)"
            )
        self.stats.watchdog_resets += 1
        if self.tracer.enabled:
            self.tracer.emit(WatchdogReset(
                ts=self.engine.now, client_id=client_id,
                kernel=launch.descriptor.name, launch_seq=launch.seq,
                deadline=self.config.preempt_deadline, waited=waited,
            ))
        # REEF-style reset: in-flight blocks are discarded; _ptb_done
        # sees a PREEMPTED retirement and resumes from the task counter
        # once the high-priority burst ends.
        self.device.kill(launch)

    def _resume_best_effort(self) -> None:
        for client_id in list(self._executions):
            execution = self._executions.get(client_id)
            if execution is not None and execution.launch is None:
                self.stats.resumes += 1
                if self.tracer.enabled:
                    self.tracer.emit(Resume(
                        ts=self.engine.now, client_id=client_id,
                        kernel=execution.descriptor.name,
                        next_block=execution.next_block,
                        tasks_remaining=execution.tasks_remaining,
                        transform=(execution.config.describe()
                                   if execution.config is not None
                                   else "undecided"),
                    ))
                self._advance(client_id, execution)

    # ------------------------------------------------------------------
    # Best-effort execution state machine
    # ------------------------------------------------------------------
    def _advance(self, client_id: str, execution: _BEExecution) -> None:
        """Start or continue a best-effort execution if allowed."""
        if self.high_priority_active or execution.launch is not None:
            return

        if execution.config is None:
            if self.config.use_transformations:
                execution.config, execution.profiling = (
                    self.profiler.choose(execution.descriptor)
                )
                reason = ("profiling unmeasured candidate"
                          if execution.profiling
                          else "best measured config under turnaround bound")
            else:
                execution.config, execution.profiling = ORIGINAL_CONFIG, False
                reason = "transformations disabled"
            if self.device.faults.enabled:
                degraded = self._degrade(client_id, execution)
                if degraded:
                    reason = f"{reason}; degraded after transform fault"
                    execution.profiling = False
            if self.tracer.enabled:
                self.tracer.emit(SchedDecision(
                    ts=self.engine.now, client_id=client_id,
                    kernel=execution.descriptor.name,
                    transform=execution.config.describe(),
                    reason=reason, profiling=execution.profiling,
                ))

        kind = execution.config.kind
        if kind is SchedKind.SLICED:
            self._launch_slice(client_id, execution)
        elif kind is SchedKind.PTB:
            self._launch_ptb(client_id, execution)
        else:
            self._launch_original(client_id, execution)

    def _degrade(self, client_id: str, execution: _BEExecution) -> bool:
        """Walk the degradation ladder past faulted transformations.

        PTB falls to the smallest sliced candidate; sliced falls to the
        original kernel, which needs no transformation and so always
        works — at that rung the kernel is still *priority-aware*
        time-sliced (best-effort launches only reach the device while
        the high-priority client is idle), it merely loses intra-kernel
        preemptibility.  Injected transform faults are memoized per
        (kernel, mode), so the ladder settles to a stable rung.
        """
        assert execution.config is not None
        faults = self.device.faults
        descriptor = execution.descriptor
        degraded = False
        config = execution.config
        if (config.kind is SchedKind.PTB
                and faults.transform_fault(descriptor.name, "ptb")):
            fallback = next(
                (c for c in generate_candidates(descriptor, self.device.spec,
                                                self.config)
                 if c.kind is SchedKind.SLICED), ORIGINAL_CONFIG)
            self._note_degrade(client_id, descriptor, config, fallback,
                               "ptb transformation failed")
            config, degraded = fallback, True
        if (config.kind is SchedKind.SLICED
                and faults.transform_fault(descriptor.name, "sliced")):
            self._note_degrade(client_id, descriptor, config, ORIGINAL_CONFIG,
                               "sliced transformation failed")
            config, degraded = ORIGINAL_CONFIG, True
        execution.config = config
        return degraded

    def _note_degrade(self, client_id: str, descriptor: KernelDescriptor,
                      from_config: SchedConfig,
                      to_config: SchedConfig, reason: str) -> None:
        self.stats.transform_fallbacks += 1
        if self.tracer.enabled:
            self.tracer.emit(TransformDegrade(
                ts=self.engine.now, client_id=client_id,
                kernel=descriptor.name,
                from_transform=from_config.describe(),
                to_transform=to_config.describe(), reason=reason,
            ))

    def _launch_original(self, client_id: str,
                         execution: _BEExecution) -> None:
        # ``next_block`` is 0 on the first launch (the whole grid); it
        # advances only when a device fault destroys a launch partway,
        # in which case the relaunch covers just the remainder.
        remaining = execution.descriptor.num_blocks - execution.next_block
        launch = DeviceLaunch(
            execution.descriptor,
            client_id=client_id,
            priority=self.config.best_effort_priority,
            blocks=remaining,
            block_offset=execution.next_block,
            on_complete=lambda l: self._original_done(client_id, execution, l),
        )
        execution.launch = launch
        self.device.submit(launch)

    def _original_done(self, client_id: str, execution: _BEExecution,
                       launch: DeviceLaunch) -> None:
        execution.launch = None
        execution.preempt_pending = False
        execution.active_time += self._elapsed(launch)
        execution.next_block += launch.blocks_done
        execution.tasks_remaining = (
            execution.descriptor.num_blocks - execution.next_block
        )
        if execution.next_block >= execution.descriptor.num_blocks:
            self._finish(client_id, execution)
        elif not self.high_priority_active:
            # A slot fault reset the launch mid-grid; re-run the rest.
            self._launch_original(client_id, execution)
        # else: paused; _resume_best_effort continues from next_block.

    def _launch_slice(self, client_id: str, execution: _BEExecution) -> None:
        assert execution.config is not None
        execution.hold_noted = False  # a new slice starts a new episode
        remaining = execution.descriptor.num_blocks - execution.next_block
        blocks = min(execution.config.blocks_per_slice, remaining)
        launch = DeviceLaunch(
            execution.descriptor,
            client_id=client_id,
            priority=self.config.best_effort_priority,
            blocks=blocks,
            block_offset=execution.next_block,
            on_complete=lambda l: self._slice_done(client_id, execution, l),
        )
        execution.launch = launch
        self.stats.slices_launched += 1
        if self.tracer.enabled:
            self.tracer.emit(SliceDispatch(
                ts=self.engine.now, client_id=client_id,
                kernel=execution.descriptor.name, launch_seq=launch.seq,
                slice_index=len(execution.slice_times), blocks=blocks,
                block_offset=execution.next_block,
            ))
        self.device.submit(launch)

    def _slice_done(self, client_id: str, execution: _BEExecution,
                    launch: DeviceLaunch) -> None:
        execution.launch = None
        execution.preempt_pending = False
        elapsed = self._elapsed(launch)
        execution.active_time += elapsed + self.device.spec.kernel_launch_overhead
        execution.slice_times.append(elapsed)
        # blocks_done, not total_blocks: a fault-killed slice completes
        # only part of its range, and the next slice must re-cover the
        # destroyed blocks
        execution.next_block += launch.blocks_done
        execution.tasks_remaining = (
            execution.descriptor.num_blocks - execution.next_block
        )
        if execution.next_block >= execution.descriptor.num_blocks:
            self._record_sliced(execution)
            self._finish(client_id, execution)
        elif not self.high_priority_active:
            self._launch_slice(client_id, execution)
        # else: paused; _resume_best_effort continues from next_block.

    def _launch_ptb(self, client_id: str, execution: _BEExecution) -> None:
        assert execution.config is not None
        launch = DeviceLaunch(
            execution.descriptor,
            LaunchConfig(LaunchKind.PTB, workers=execution.config.workers),
            client_id=client_id,
            priority=self.config.best_effort_priority,
            blocks=execution.tasks_remaining,
            block_offset=(execution.descriptor.num_blocks
                          - execution.tasks_remaining),
            on_complete=lambda l: self._ptb_done(client_id, execution, l),
        )
        execution.launch = launch
        execution.segments += 1
        self.stats.ptb_launches += 1
        if self.tracer.enabled:
            self.tracer.emit(PtbDispatch(
                ts=self.engine.now, client_id=client_id,
                kernel=execution.descriptor.name, launch_seq=launch.seq,
                workers=execution.config.workers,
                tasks_remaining=execution.tasks_remaining,
                segment=execution.segments,
            ))
        self.device.submit(launch)

    def _ptb_done(self, client_id: str, execution: _BEExecution,
                  launch: DeviceLaunch) -> None:
        execution.launch = None
        execution.preempt_pending = False
        execution.active_time += self._elapsed(launch)
        execution.tasks_remaining -= launch.tasks_done
        if launch.status is LaunchStatus.COMPLETED:
            self._record_ptb(execution)
            self._finish(client_id, execution)
        elif not self.high_priority_active:
            # Preempted, but the high-priority burst already ended.
            self._launch_ptb(client_id, execution)
        # else: resumed by _resume_best_effort from the task counter.

    # ------------------------------------------------------------------
    def _on_disconnect(self, info: ClientInfo) -> int:
        """Drop a crashed client's execution and kill its launch.

        A crashed high-priority client simply stops submitting (its
        launches have no scheduler-side state beyond the completion
        chain, which dies with the driver); a best-effort client may
        have an execution in flight whose launch must be killed so the
        device's slots return to the pool.
        """
        execution = self._executions.pop(info.client_id, None)
        cancelled = 0
        launch = execution.launch if execution is not None else None
        if launch is not None and not launch.done:
            # nobody is left to take the completion; sever it before the
            # kill so _ptb_done/_slice_done don't touch dead state
            launch.on_complete = None
            self.device.kill(launch)
            cancelled += 1
        for stray in self.device.resident_for(info.client_id):
            stray.on_complete = None
            self.device.kill(stray)
            cancelled += 1
            if info.priority is Priority.HIGH and self._hp_outstanding > 0:
                # its completion chain is severed, so account for it now
                self._hp_outstanding -= 1
        if (info.priority is Priority.HIGH and cancelled
                and self._hp_outstanding == 0):
            self._resume_best_effort()
        return cancelled

    # ------------------------------------------------------------------
    def _finish(self, client_id: str, execution: _BEExecution) -> None:
        del self._executions[client_id]
        execution.on_done()

    @staticmethod
    def _elapsed(launch: DeviceLaunch) -> float:
        if math.isnan(launch.started_at):
            return 0.0
        return launch.finished_at - launch.started_at

    # ------------------------------------------------------------------
    # Profiling measurements (paper §4.2)
    # ------------------------------------------------------------------
    def _record_sliced(self, execution: _BEExecution) -> None:
        assert execution.config is not None
        if not execution.slice_times:
            return
        turnaround = max(execution.slice_times)
        self.profiler.record(
            execution.descriptor, execution.config,
            turnaround=turnaround, duration=execution.active_time,
        )

    def _record_ptb(self, execution: _BEExecution) -> None:
        assert execution.config is not None
        workers = execution.config.workers
        total = execution.descriptor.num_blocks
        iterations = max(1, math.ceil(total / workers))
        # The paper's heuristic: turnaround = kernel latency divided by
        # blocks per worker, i.e. the per-iteration time.
        turnaround = execution.active_time / iterations
        self.profiler.record(
            execution.descriptor, execution.config,
            turnaround=turnaround, duration=execution.active_time,
        )
