"""The Tally server (functional path).

One server process owns the device and executes work on behalf of all
client processes.  Each client keeps its own address space (memory
image, registered device code); the server transforms and runs kernels
transparently — clients cannot tell whether their kernels ran original,
sliced, or as persistent thread blocks.

This module is the functional-correctness half of Tally; the timing
half (priority-aware scheduling over the discrete-event GPU) is
:mod:`repro.core.scheduler`.  They share the transformation machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..baselines.base import Priority
from ..errors import ReproError, VirtError
from ..ptx.interpreter import Interpreter
from ..runtime.memory import MemoryManager
from ..runtime.registration import ModuleRegistry
from ..virt.channel import Channel, ChannelConfig, SHARED_MEMORY
from ..virt.protocol import (
    FreeRequest,
    LaunchKernelRequest,
    MallocRequest,
    MemcpyD2HRequest,
    MemcpyH2DRequest,
    RegisterBinaryRequest,
    Request,
    Response,
    SynchronizeRequest,
)
from .transformer import ExecMode, ExecPlan, KernelTransformer

__all__ = ["ClientState", "TallyServer"]


@dataclass
class ClientState:
    """Server-side state of one connected client process."""

    client_id: str
    priority: Priority
    plan: ExecPlan
    registry: ModuleRegistry = field(default_factory=ModuleRegistry)
    memory_manager: MemoryManager = field(default_factory=MemoryManager)
    interpreter: Interpreter = field(init=False)
    launches: int = 0

    def __post_init__(self) -> None:
        self.interpreter = Interpreter(self.memory_manager.memory)


class TallyServer:
    """Handles the virtualization protocol and executes device work."""

    def __init__(self, *,
                 best_effort_plan: ExecPlan = ExecPlan(ExecMode.PTB)) -> None:
        self.best_effort_plan = best_effort_plan
        self.transformer = KernelTransformer()
        self._clients: dict[str, ClientState] = {}
        self.requests_handled = 0

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def connect(self, client_id: str,
                priority: Priority = Priority.BEST_EFFORT, *,
                plan: ExecPlan | None = None,
                channel_config: ChannelConfig = SHARED_MEMORY) -> Channel:
        """Register a client and return its communication channel.

        High-priority clients always execute original kernels; best-
        effort clients execute under ``plan`` (default: the server-wide
        best-effort plan) — the client cannot observe the difference.
        """
        if client_id in self._clients:
            raise VirtError(f"client {client_id!r} already connected")
        if priority is Priority.HIGH:
            effective = ExecPlan(ExecMode.ORIGINAL)
        else:
            effective = plan if plan is not None else self.best_effort_plan
        self._clients[client_id] = ClientState(client_id, priority, effective)
        return Channel(self.handle, channel_config)

    def client(self, client_id: str) -> ClientState:
        try:
            return self._clients[client_id]
        except KeyError:
            raise VirtError(f"unknown client {client_id!r}") from None

    # ------------------------------------------------------------------
    # Protocol handling
    # ------------------------------------------------------------------
    def handle(self, request: Request) -> Response:
        """Process one protocol request; never raises (errors go in the
        response, exactly like a real RPC server)."""
        self.requests_handled += 1
        try:
            return Response.success(self._dispatch(request))
        except ReproError as exc:
            return Response.failure(str(exc))

    def _dispatch(self, request: Request) -> Any:
        state = self.client(request.client_id)
        if isinstance(request, RegisterBinaryRequest):
            state.registry.register(request.binary)
            return None
        if isinstance(request, MallocRequest):
            return state.memory_manager.malloc(request.num_elements,
                                               request.dtype)
        if isinstance(request, FreeRequest):
            state.memory_manager.free(request.ref)
            return None
        if isinstance(request, MemcpyH2DRequest):
            state.memory_manager.memcpy_h2d(request.dst, request.data)
            return None
        if isinstance(request, MemcpyD2HRequest):
            return state.memory_manager.memcpy_d2h(request.src,
                                                   request.num_elements)
        if isinstance(request, LaunchKernelRequest):
            kernel = state.registry.lookup(request.kernel_name)
            self.transformer.execute(
                state.interpreter, kernel, request.grid, request.block,
                request.args, state.plan,
            )
            state.launches += 1
            return None
        if isinstance(request, SynchronizeRequest):
            return None  # execution is synchronous on the functional path
        raise VirtError(f"unknown request type {type(request).__name__}")
