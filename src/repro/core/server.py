"""The Tally server (functional path).

One server process owns the device and executes work on behalf of all
client processes.  Each client keeps its own address space (memory
image, registered device code); the server transforms and runs kernels
transparently — clients cannot tell whether their kernels ran original,
sliced, or as persistent thread blocks.

This module is the functional-correctness half of Tally; the timing
half (priority-aware scheduling over the discrete-event GPU) is
:mod:`repro.core.scheduler`.  They share the transformation machinery.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable

from ..baselines.base import Priority
from ..errors import ExecutionError, MigrationError, VirtError
from ..faults.injector import NULL_INJECTOR
from ..ptx.interpreter import Interpreter
from ..runtime.memory import MemoryManager, MemorySnapshot
from ..runtime.registration import FatBinary, ModuleRegistry
from ..trace.events import ClientGC, DeadlineShed
from ..trace.tracer import NULL_TRACER
from ..transform.memo import transform_memo
from ..virt.channel import Channel, ChannelConfig, SHARED_MEMORY
from ..virt.protocol import (
    Envelope,
    FreeRequest,
    LaunchKernelRequest,
    MallocRequest,
    MemcpyD2HRequest,
    MemcpyH2DRequest,
    RegisterBinaryRequest,
    Request,
    Response,
    SynchronizeRequest,
    checksum_of,
)
from .transformer import ExecMode, ExecPlan, KernelTransformer

__all__ = ["ClientCheckpoint", "ClientState", "TallyServer", "migrate_client"]

#: replies remembered per server for idempotent replay of retried or
#: duplicated envelopes; old entries evict in arrival order
REPLY_CACHE_SIZE = 256


@dataclass
class ClientState:
    """Server-side state of one connected client process."""

    client_id: str
    priority: Priority
    plan: ExecPlan
    registry: ModuleRegistry = field(default_factory=ModuleRegistry)
    memory_manager: MemoryManager = field(default_factory=MemoryManager)
    interpreter: Interpreter = field(init=False)
    launches: int = 0

    def __post_init__(self) -> None:
        self.interpreter = Interpreter(self.memory_manager.memory)


@dataclass(frozen=True)
class ClientCheckpoint:
    """Replayable server-side state of one client, for live migration.

    Everything :meth:`TallyServer.restore` needs to resume the client on
    another server with no observable difference: execution plan,
    registered device code, the full memory image (which *is* the LLM
    KV-cache occupancy — KV blocks are ordinary ``MemoryManager``
    allocations), and the client's cached replies so a request retried
    across the migration replays idempotently instead of re-executing.
    """

    client_id: str
    priority: Priority
    plan: ExecPlan
    binaries: tuple[FatBinary, ...]
    memory: MemorySnapshot
    replies: tuple[tuple[int, Response], ...]  # request_id -> cached reply
    launches: int = 0

    @property
    def live_elements(self) -> int:
        """Device-memory footprint carried by this checkpoint."""
        return self.memory.live_elements


class TallyServer:
    """Handles the virtualization protocol and executes device work."""

    def __init__(self, *,
                 best_effort_plan: ExecPlan = ExecPlan(ExecMode.PTB),
                 faults: Any = NULL_INJECTOR,
                 tracer: Any = NULL_TRACER,
                 clock: Callable[[], float] | None = None) -> None:
        self.best_effort_plan = best_effort_plan
        # Servers share the process-wide transform memo: a kernel any
        # server already compiled (same content hash) is reused across
        # repeated workloads, chaos cells, and reconnecting clients.
        self.transformer = KernelTransformer(memo=transform_memo(),
                                             tracer=tracer)
        self.faults = faults
        self.tracer = tracer
        # Deadline propagation needs a notion of "now"; without an
        # injected clock (e.g. an EventLoop's ``now``) the server cannot
        # tell whether an envelope's deadline has passed and never sheds.
        self.clock = clock
        self._clients: dict[str, ClientState] = {}
        self._replies: OrderedDict[tuple[str, int], Response] = OrderedDict()
        self.requests_handled = 0
        self.replay_hits = 0
        self.clients_collected = 0
        self.clients_restored = 0
        #: envelopes refused because their propagated deadline had passed
        self.deadline_sheds = 0

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def connect(self, client_id: str,
                priority: Priority = Priority.BEST_EFFORT, *,
                plan: ExecPlan | None = None,
                channel_config: ChannelConfig = SHARED_MEMORY) -> Channel:
        """Register a client and return its communication channel.

        High-priority clients always execute original kernels; best-
        effort clients execute under ``plan`` (default: the server-wide
        best-effort plan) — the client cannot observe the difference.
        """
        if client_id in self._clients:
            raise VirtError(f"client {client_id!r} already connected")
        if priority is Priority.HIGH:
            effective = ExecPlan(ExecMode.ORIGINAL)
        else:
            effective = plan if plan is not None else self.best_effort_plan
        self._clients[client_id] = ClientState(client_id, priority, effective)
        return Channel(self.handle, channel_config, faults=self.faults,
                       tracer=self.tracer, client_id=client_id,
                       clock=self.clock)

    def client(self, client_id: str) -> ClientState:
        try:
            return self._clients[client_id]
        except KeyError:
            raise VirtError(f"unknown client {client_id!r}") from None

    def disconnect(self, client_id: str, *, ts: float = 0.0) -> ClientState | None:
        """Garbage-collect a dead client's server-side state.

        Frees every live device allocation, drops the module registry
        and interpreter, and forgets cached replies — surviving clients
        are untouched.  Idempotent: disconnecting an unknown (or
        already-collected) client is a no-op returning ``None``.
        """
        state = self._clients.pop(client_id, None)
        if state is None:
            return None
        freed_bytes = state.memory_manager.live_bytes()
        buffers = state.memory_manager.live_buffers()
        state.memory_manager.release_all()
        for key in [k for k in self._replies if k[0] == client_id]:
            del self._replies[key]
        self.clients_collected += 1
        if self.tracer.enabled:
            self.tracer.emit(ClientGC(
                ts=ts, client_id=client_id, kernel="", scope="server",
                freed_bytes=freed_bytes, buffers_freed=buffers,
            ))
        return state

    # ------------------------------------------------------------------
    # Checkpoint/restore (live migration)
    # ------------------------------------------------------------------
    def checkpoint(self, client_id: str) -> ClientCheckpoint:
        """Serialize ``client_id``'s replayable state for migration.

        The source server keeps serving the client until
        :meth:`disconnect` garbage-collects it — callers migrating a
        live client should checkpoint, restore on the target, then
        disconnect here (:func:`migrate_client` does exactly that).
        """
        state = self._clients.get(client_id)
        if state is None:
            raise MigrationError(
                f"cannot checkpoint unknown client {client_id!r}")
        return ClientCheckpoint(
            client_id=client_id,
            priority=state.priority,
            plan=state.plan,
            binaries=tuple(state.registry.binaries()),
            memory=state.memory_manager.snapshot(),
            replies=tuple((rid, reply) for (cid, rid), reply
                          in self._replies.items() if cid == client_id),
            launches=state.launches,
        )

    def restore(self, ckpt: ClientCheckpoint, *,
                channel_config: ChannelConfig = SHARED_MEMORY) -> Channel:
        """Recreate a checkpointed client on this server.

        Rebuilds the memory image (buffer names preserved, so every
        handle the client holds stays valid), re-registers its device
        code, and reinstalls its cached replies so retried envelopes
        still replay.  Returns the client's new channel, with its
        request-id sequence advanced past every migrated reply — a
        fresh request must never collide with a cached id, or the cache
        would answer it with another call's stale reply.
        """
        if ckpt.client_id in self._clients:
            raise MigrationError(
                f"client {ckpt.client_id!r} is already registered on the "
                "restore target")
        state = ClientState(
            ckpt.client_id, ckpt.priority, ckpt.plan,
            memory_manager=MemoryManager.from_snapshot(ckpt.memory),
        )
        for binary in ckpt.binaries:
            state.registry.register(binary)
        state.launches = ckpt.launches
        self._clients[ckpt.client_id] = state
        for rid, reply in ckpt.replies:
            self._replies[(ckpt.client_id, rid)] = reply
        while len(self._replies) > REPLY_CACHE_SIZE:
            self._replies.popitem(last=False)
        self.clients_restored += 1
        channel = Channel(self.handle, channel_config, faults=self.faults,
                          tracer=self.tracer, client_id=ckpt.client_id,
                          clock=self.clock)
        channel.resume_sequence(max((rid for rid, _ in ckpt.replies),
                                    default=0))
        return channel

    # ------------------------------------------------------------------
    # Protocol handling
    # ------------------------------------------------------------------
    def handle(self, request: Request | Envelope) -> Response:
        """Process one protocol request; never raises (errors go in the
        response, exactly like a real RPC server).

        Envelope-framed requests get the reliability extras: the payload
        checksum is verified (a mismatch is answered with a *retryable*
        failure, never executed) and replies are cached by (client,
        request id) so a retried or duplicated envelope replays the
        original reply instead of re-executing the operation.  An
        envelope whose propagated deadline has already passed (by the
        server's injected clock) is *shed* — answered with a
        non-retryable failure without executing, sparing capacity the
        caller can no longer benefit from.
        """
        self.requests_handled += 1
        if isinstance(request, Envelope):
            key = (request.client_id, request.request_id)
            cached = self._replies.get(key)
            if cached is not None:
                self.replay_hits += 1
                return cached
            if checksum_of(request.payload) != request.checksum:
                return Response.transport_failure(
                    "request checksum mismatch (corrupted in transit)")
            if (request.deadline is not None and self.clock is not None
                    and self.clock() >= request.deadline):
                return self._shed_past_deadline(request)
            response = self._execute(request.payload)
            self._replies[key] = response
            while len(self._replies) > REPLY_CACHE_SIZE:
                self._replies.popitem(last=False)
            return response
        return self._execute(request)

    def _shed_past_deadline(self, envelope: Envelope) -> Response:
        now = self.clock() if self.clock is not None else 0.0
        self.deadline_sheds += 1
        if self.tracer.enabled:
            self.tracer.emit(DeadlineShed(
                ts=now,
                client_id=envelope.client_id,
                kernel="",
                scope="server",
                deadline=envelope.deadline or 0.0,
                lateness=now - (envelope.deadline or 0.0),
            ))
        return Response.failure(
            f"deadline {envelope.deadline:.6f} already passed at "
            f"{now:.6f}; request shed")

    def _execute(self, request: Request) -> Response:
        try:
            return Response.success(self._dispatch(request))
        except Exception as exc:  # noqa: BLE001 - the server must survive
            # any request, malformed ones included; the error travels
            # back in the response like a real RPC failure
            return Response.failure(f"{type(exc).__name__}: {exc}")

    def _dispatch(self, request: Request) -> Any:
        client_id = getattr(request, "client_id", None)
        if not isinstance(client_id, str):
            raise VirtError(
                f"malformed request {type(request).__name__}: no client_id")
        state = self.client(client_id)
        if isinstance(request, RegisterBinaryRequest):
            state.registry.register(request.binary)
            return None
        if isinstance(request, MallocRequest):
            return state.memory_manager.malloc(request.num_elements,
                                               request.dtype)
        if isinstance(request, FreeRequest):
            state.memory_manager.free(request.ref)
            return None
        if isinstance(request, MemcpyH2DRequest):
            state.memory_manager.memcpy_h2d(request.dst, request.data)
            return None
        if isinstance(request, MemcpyD2HRequest):
            return state.memory_manager.memcpy_d2h(request.src,
                                                   request.num_elements)
        if isinstance(request, LaunchKernelRequest):
            kernel = state.registry.lookup(request.kernel_name)
            if self.faults.enabled and self.faults.kernel_fault():
                raise ExecutionError(
                    f"injected device fault while executing "
                    f"{request.kernel_name!r}")
            self.transformer.execute(
                state.interpreter, kernel, request.grid, request.block,
                request.args, state.plan, faults=self.faults,
            )
            state.launches += 1
            return None
        if isinstance(request, SynchronizeRequest):
            return None  # execution is synchronous on the functional path
        raise VirtError(f"unknown request type {type(request).__name__}")


def migrate_client(source: TallyServer, target: TallyServer,
                   client_id: str, *, ts: float = 0.0,
                   channel_config: ChannelConfig = SHARED_MEMORY) -> Channel:
    """Move ``client_id`` from ``source`` to ``target`` atomically.

    Checkpoint on the source, restore on the target, then garbage-
    collect the source copy — the order matters: if restore raises
    (e.g. the id is taken on the target) the source copy is untouched
    and the client keeps running where it was.
    """
    ckpt = source.checkpoint(client_id)
    channel = target.restore(ckpt, channel_config=channel_config)
    source.disconnect(client_id, ts=ts)
    return channel
