"""Server-side kernel transformer (functional path).

The Tally server holds every client's registered device code (captured
at fatbinary registration) and rewrites kernels on demand through the
cached :class:`~repro.transform.TransformPipeline`.  This module
executes a kernel launch under a chosen execution mode on the
functional interpreter — original, sliced, or preemptible — and is what
makes the end-to-end "application runs unmodified under Tally and
computes the same results" property testable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Mapping

from ..errors import TransformError
from ..ptx.interpreter import Interpreter
from ..ptx.ir import Dim3, KernelIR
from ..transform import TransformPipeline, plan_slices

__all__ = ["ExecMode", "ExecPlan", "KernelTransformer"]


class ExecMode(enum.Enum):
    """How the server materializes a kernel launch."""

    ORIGINAL = "original"
    SLICED = "sliced"
    PTB = "ptb"


@dataclass(frozen=True)
class ExecPlan:
    """An execution mode plus its parameter."""

    mode: ExecMode = ExecMode.ORIGINAL
    blocks_per_slice: int = 4
    workers: int = 4

    def __post_init__(self) -> None:
        if self.blocks_per_slice < 1:
            raise TransformError("blocks_per_slice must be >= 1")
        if self.workers < 1:
            raise TransformError("workers must be >= 1")


class KernelTransformer:
    """Transforms and executes kernels for the functional server."""

    def __init__(self) -> None:
        self.pipeline = TransformPipeline()
        self.executions = 0

    def execute(self, interpreter: Interpreter, kernel: KernelIR,
                grid: Dim3, block: Dim3, args: Mapping[str, Any],
                plan: ExecPlan) -> None:
        """Run one launch under ``plan``; semantics must match original."""
        self.executions += 1
        if plan.mode is ExecMode.ORIGINAL:
            interpreter.launch(kernel, grid, block, args)
            return
        if plan.mode is ExecMode.SLICED:
            sliced = self.pipeline.sliced(kernel)
            for launch in plan_slices(grid, plan.blocks_per_slice):
                slice_args = sliced.args_for(args, grid, launch.offset)
                interpreter.launch(sliced.kernel, launch.grid, block,
                                   slice_args)
            return
        # PTB: fresh control state per launch; workers drain the grid.
        preemptible = self.pipeline.preemptible(kernel)
        control = preemptible.make_control(interpreter.memory)
        try:
            ptb_args = preemptible.args_for(args, grid, control)
            workers = min(plan.workers, grid.total)
            interpreter.launch(preemptible.kernel,
                               preemptible.worker_grid(workers), block,
                               ptb_args)
            if control.tasks_started() < grid.total:
                raise TransformError(
                    f"PTB execution of {kernel.name!r} stopped early "
                    f"({control.tasks_started()}/{grid.total} tasks)"
                )
        finally:
            interpreter.memory.free(control.counter)
            interpreter.memory.free(control.flag)
