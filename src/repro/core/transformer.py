"""Server-side kernel transformer (functional path).

The Tally server holds every client's registered device code (captured
at fatbinary registration) and rewrites kernels on demand through the
cached :class:`~repro.transform.TransformPipeline`.  This module
executes a kernel launch under a chosen execution mode on the
functional interpreter — original, sliced, or preemptible — and is what
makes the end-to-end "application runs unmodified under Tally and
computes the same results" property testable.
"""

from __future__ import annotations

import enum
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from ..errors import TransformError, TransformFallback, ValidationError
from ..faults.injector import NULL_INJECTOR
from ..ptx.interpreter import Interpreter
from ..ptx.ir import Dim3, KernelIR
from ..trace.tracer import NULL_TRACER
from ..transform import TransformPipeline, plan_slices
from ..transform.memo import TransformMemo

__all__ = ["ExecMode", "ExecPlan", "KernelTransformer", "FALLBACK_LADDER"]

#: graceful-degradation order when a transformation fails: each mode
#: falls to the next, ending at ORIGINAL, which always works (it is the
#: client's own kernel, untransformed) — the paper's own fallback
FALLBACK_LADDER = {
    "ptb": "sliced",
    "sliced": "original",
}


class ExecMode(enum.Enum):
    """How the server materializes a kernel launch."""

    ORIGINAL = "original"
    SLICED = "sliced"
    PTB = "ptb"


@dataclass(frozen=True)
class ExecPlan:
    """An execution mode plus its parameter."""

    mode: ExecMode = ExecMode.ORIGINAL
    blocks_per_slice: int = 4
    workers: int = 4

    def __post_init__(self) -> None:
        if self.blocks_per_slice < 1:
            raise TransformError("blocks_per_slice must be >= 1")
        if self.workers < 1:
            raise TransformError("workers must be >= 1")


class KernelTransformer:
    """Transforms and executes kernels for the functional server.

    ``memo`` selects the transformed-kernel store: ``None`` (default)
    keeps a private cache; pass
    :func:`repro.transform.transform_memo`'s process-wide store (what
    :class:`~repro.core.server.TallyServer` does) so every server in
    the process shares compiled variants.  ``tracer`` receives
    :class:`~repro.trace.events.TransformCache` hit/miss/evict events.
    """

    def __init__(self, *, memo: TransformMemo | None = None,
                 tracer: Any = NULL_TRACER) -> None:
        self.pipeline = TransformPipeline(memo=memo, tracer=tracer)
        self.executions = 0
        #: degradation-ladder steps taken after failed transformations
        self.fallbacks = 0

    def execute(self, interpreter: Interpreter, kernel: KernelIR,
                grid: Dim3, block: Dim3, args: Mapping[str, Any],
                plan: ExecPlan, *, faults: Any = NULL_INJECTOR) -> str:
        """Run one launch under ``plan``; semantics must match original.

        Returns the mode actually used (``"ptb"``/``"sliced"``/
        ``"original"``).  When the *transformation step* fails — the
        rewrite or its validation, never the execution itself — the
        launch degrades down :data:`FALLBACK_LADDER` with a
        :class:`~repro.errors.TransformFallback` warning per rung, so a
        kernel the pipeline cannot handle still executes (original form)
        instead of failing the client's call.  Execution errors are
        *not* caught: by the time the kernel runs it may have side
        effects, and re-running a lower rung could apply them twice.
        """
        self.executions += 1
        mode = plan.mode.value
        while True:
            try:
                run = self._prepare(interpreter, kernel, grid, block,
                                    args, plan, mode, faults)
            except (TransformError, ValidationError) as exc:
                fallback = FALLBACK_LADDER.get(mode)
                if fallback is None:
                    raise
                warnings.warn(TransformFallback(
                    f"{mode} transformation of {kernel.name!r} failed "
                    f"({exc}); degrading to {fallback}"
                ), stacklevel=2)
                self.fallbacks += 1
                mode = fallback
                continue
            run()
            return mode

    def _prepare(self, interpreter: Interpreter, kernel: KernelIR,
                 grid: Dim3, block: Dim3, args: Mapping[str, Any],
                 plan: ExecPlan, mode: str,
                 faults: Any) -> Callable[[], None]:
        """Do the fallible transformation work; return the execution.

        Everything that can legitimately fail for a given kernel — the
        rewrite, validation, an injected transformation fault — happens
        here, before any thread runs.
        """
        if faults.enabled and mode != "original" \
                and faults.transform_fault(kernel.name, mode):
            raise TransformError(
                f"injected {mode} transformation fault for {kernel.name!r}")
        if mode == "original":
            return lambda: interpreter.launch(kernel, grid, block, args)
        if mode == "sliced":
            sliced = self.pipeline.sliced(kernel)

            def run_sliced() -> None:
                for launch in plan_slices(grid, plan.blocks_per_slice):
                    slice_args = sliced.args_for(args, grid, launch.offset)
                    interpreter.launch(sliced.kernel, launch.grid, block,
                                       slice_args)
            return run_sliced
        # PTB: fresh control state per launch; workers drain the grid.
        preemptible = self.pipeline.preemptible(kernel)

        def run_ptb() -> None:
            control = preemptible.make_control(interpreter.memory)
            try:
                ptb_args = preemptible.args_for(args, grid, control)
                workers = min(plan.workers, grid.total)
                interpreter.launch(preemptible.kernel,
                                   preemptible.worker_grid(workers), block,
                                   ptb_args)
                if control.tasks_started() < grid.total:
                    raise TransformError(
                        f"PTB execution of {kernel.name!r} stopped early "
                        f"({control.tasks_started()}/{grid.total} tasks)"
                    )
            finally:
                interpreter.memory.free(control.counter)
                interpreter.memory.free(control.flag)
        return run_ptb
