"""Optimistic (time-warp) parallel simulation engine.

One large simulation — the cluster control plane, a retry storm — is a
set of *shards* (device + policy + server + drivers) whose events are
almost entirely shard-local: cross-shard interaction happens only at
*control operations* (admissions, migrations, fault reactions,
autoscaler ticks) issued by a coordinator at times it already knows.
This package exploits that structure:

* each shard owns a **private** :class:`~repro.gpu.engine.EventLoop`
  and advances independently;
* the coordinator grants a conservative **horizon** ``H`` — the time of
  its next control operation — and every shard advances *exclusively*
  to ``H`` (:meth:`~repro.gpu.engine.EventLoop.advance_to`), so
  operations at ``H`` always apply before same-time local events;
* beyond the horizon shards **speculate** up to a lookahead bound
  derived from the minimum cross-shard latency (arrival dispatch,
  migration downtime, autoscaler tick);
* an operation landing in a shard's speculated past is a *straggler*:
  the shard **rolls back** by deterministic replay — rebuild the shard
  from genesis, re-apply its logged operations in order, and advance to
  the straggler's timestamp (coast-forward).  Replay *is* the
  anti-message: every speculated event past the straggler is cancelled
  wholesale.  Queued-but-unsent operations are annihilated in the
  outbox (:class:`~repro.engine.ops.OpQueue`), and
  :class:`~repro.engine.ops.Revoke` cancels an already-applied one;
* **GVT** (global virtual time) is the last fully acknowledged grant:
  outputs (trace events) below it are committed in a deterministic
  merge order (:class:`~repro.engine.sync.CommitTracer`) and their
  buffers fossil-collected.

Backends: :class:`~repro.engine.backends.InlineBackend` runs every
shard in-process (deterministic, used by tests and ``workers<=1``);
:class:`~repro.engine.backends.ProcessBackend` runs shard groups in
worker processes — the configuration that actually buys wall-clock
speedup.  Both speak the identical protocol, and both are validated
bit-identical to the serial engine (see ``docs/performance.md``).
"""

from .backends import EngineBackend, InlineBackend, ProcessBackend
from .ops import Op, OpQueue, Revoke
from .shard import ShardCell, ShardProgram, WorkerHost
from .sync import CommitTracer

__all__ = [
    "CommitTracer",
    "EngineBackend",
    "InlineBackend",
    "Op",
    "OpQueue",
    "ProcessBackend",
    "Revoke",
    "ShardCell",
    "ShardProgram",
    "WorkerHost",
]
