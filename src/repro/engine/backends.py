"""Execution backends: one protocol, inline or process workers.

A backend owns the shard side of the engine: the coordinator talks to
it through five verbs —

``advance(grant, spec_target, holdback)``
    barrier: every shard advances exclusively to ``grant`` (raising any
    quarantined speculation error whose time is now committed history),
    ships its outputs below the grant, and is told how far it may
    speculate before the next barrier (``grant`` itself for shards in
    the ``holdback`` hint set — the coordinator knows an op at exactly
    the grant is coming for them, so speculating past it would only
    buy a rollback);
``op(op)``
    deliver one cross-shard operation; ``want_result`` ops are
    synchronous round trips, the rest ride a per-worker outbox that is
    flushed before any blocking exchange;
``revoke(seq, shard, at)``
    anti-message — annihilated in the outbox when the op never left,
    else a worker-side log strike + rollback;
``query(shard, kind, payload)``
    read-only question answered from at-or-below committed time;
``finalize(at)``
    run every shard inclusively to ``at`` and return
    ``(reports, outputs, stats)``.

:class:`InlineBackend` executes everything in-process and, crucially,
speculates each shard *all the way to its target* after every barrier —
so every op issued at the next barrier lands in a speculated past and
the rollback/replay machinery is exercised on every run of the
bit-identity suite, not just under process-timing luck.

:class:`ProcessBackend` is the same protocol over ``multiprocessing``
pipes: shards are dealt round-robin across workers (the standby tail a
cluster autoscaler wakes late lives at the high indices — striding
spreads it), and each worker speculates between messages: it polls its
pipe, runs a bounded slice of shard events when nothing is pending,
and only blocks on the pipe once every shard is out of speculation
room.  Useful parallel work therefore happens precisely in the window
where the coordinator is busy deciding what to do next.
"""

from __future__ import annotations

import pickle
import traceback
from abc import ABC, abstractmethod

from .ops import Op, OpQueue
from .shard import ShardProgram, WorkerHost

__all__ = ["EngineBackend", "InlineBackend", "ProcessBackend"]

#: events per speculation slice between pipe polls (worker side)
SPECULATE_BUDGET = 512


class EngineBackend(ABC):
    """Coordinator-facing protocol over a set of shard cells."""

    @abstractmethod
    def start(self) -> None: ...

    @abstractmethod
    def advance(self, grant: float, spec_target: float,
                holdback: frozenset[int]) -> dict[int, list]: ...

    @abstractmethod
    def op(self, op: Op): ...

    @abstractmethod
    def revoke(self, seq: int, shard: int, at: float) -> bool: ...

    @abstractmethod
    def query(self, shard: int, kind: str, payload): ...

    @abstractmethod
    def finalize(self, at: float) -> tuple[dict, dict, dict]: ...

    @abstractmethod
    def stop(self) -> None: ...


class InlineBackend(EngineBackend):
    """All shards in-process, speculated to the hilt between barriers.

    Used for ``workers <= 1`` and by the test suite: deterministic,
    picklability-free, and — because every shard is always speculated
    as far as its target allows — maximally adversarial toward the
    rollback path while remaining bit-reproducible.
    """

    def __init__(self, program: ShardProgram, shards: int) -> None:
        self.program = program
        self.shards = shards
        self.host: WorkerHost | None = None
        self._outbox = OpQueue()

    def start(self) -> None:
        self.host = WorkerHost(self.program, list(range(self.shards)))

    def _flush(self) -> None:
        for op in self._outbox.drain():
            self.host.apply(op)

    def advance(self, grant, spec_target, holdback):
        self._flush()
        outputs = self.host.advance(grant, spec_target, holdback)
        # deterministic full speculation: every cell runs to its target
        while self.host.speculate_slice(SPECULATE_BUDGET):
            pass
        return outputs

    def op(self, op: Op):
        if op.want_result:
            self._flush()
            return self.host.apply(op)
        self._outbox.push(op)
        return None

    def revoke(self, seq, shard, at):
        if self._outbox.annihilate(seq):
            return True
        self._flush()
        return self.host.revoke(seq, shard, at)

    def query(self, shard, kind, payload):
        self._flush()
        return self.host.query(shard, kind, payload)

    def finalize(self, at):
        self._flush()
        reports = self.host.finalize(at)
        outputs = self.host.drain_outputs(float("inf"))
        return reports, outputs, self.host.stats()

    def stop(self) -> None:
        self.host = None


# ---------------------------------------------------------------------------
# process backend
# ---------------------------------------------------------------------------

def _portable(exc: BaseException) -> BaseException:
    """Make an exception safe to ship over a pipe."""
    try:
        pickle.dumps(exc)
        return exc
    except Exception:
        return RuntimeError(
            f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}")


def _handle(host: WorkerHost, msg: tuple):
    kind = msg[0]
    if kind == "advance":
        return host.advance(msg[1], msg[2], msg[3])
    if kind == "ops":
        for op in msg[1]:
            host.apply(op)
        return None
    if kind == "op":
        return host.apply(msg[1])
    if kind == "revoke":
        return host.revoke(msg[1], msg[2], msg[3])
    if kind == "query":
        return host.query(msg[1], msg[2], msg[3])
    if kind == "finalize":
        reports = host.finalize(msg[1])
        outputs = host.drain_outputs(float("inf"))
        return reports, outputs, host.stats()
    raise RuntimeError(f"unknown engine message {kind!r}")


def _worker_main(conn, program: ShardProgram, indices: list[int],
                 snapshot) -> None:
    """Worker process entry point: serve the pipe, speculate when idle."""
    from ..transform.memo import load_snapshot
    load_snapshot(snapshot)
    host = WorkerHost(program, indices)
    try:
        while True:
            # speculate while the pipe is quiet; block once out of work
            while not conn.poll():
                if host.speculate_slice(SPECULATE_BUDGET) == 0:
                    break
            msg = conn.recv()
            if msg[0] == "stop":
                conn.send(("ok", None))
                return
            try:
                conn.send(("ok", _handle(host, msg)))
            except Exception as exc:
                conn.send(("error", _portable(exc)))
    except (EOFError, BrokenPipeError, KeyboardInterrupt):
        return


class ProcessBackend(EngineBackend):
    """Shard groups in worker processes, ops batched per pipe write.

    Replies arrive in request order on each pipe, so batched op acks
    are simply *deferred*: ``_inflight`` counts them, and any blocking
    exchange with a worker first drains (and error-checks) the backlog.
    """

    def __init__(self, program: ShardProgram, shards: int,
                 workers: int) -> None:
        if workers < 1:
            raise ValueError("ProcessBackend needs at least one worker")
        self.program = program
        self.shards = shards
        self.workers = min(workers, shards)
        self._conns: list = []
        self._procs: list = []
        self._outboxes: list[OpQueue] = []
        self._inflight: list[int] = []

    def _worker_of(self, shard: int) -> int:
        return shard % self.workers

    def start(self) -> None:
        import multiprocessing as mp
        from ..transform.memo import warm_snapshot
        try:
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-posix fallback
            ctx = mp.get_context()
        snapshot = warm_snapshot()
        for w in range(self.workers):
            indices = list(range(w, self.shards, self.workers))
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child, self.program, indices, snapshot),
                daemon=True)
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)
            self._outboxes.append(OpQueue())
            self._inflight.append(0)

    # -- pipe plumbing --------------------------------------------------
    @staticmethod
    def _check(reply):
        status, value = reply
        if status == "error":
            raise value
        return value

    def _flush(self, w: int) -> None:
        batch = self._outboxes[w].drain()
        if batch:
            self._conns[w].send(("ops", batch))
            self._inflight[w] += 1

    def _sync(self, w: int) -> None:
        """Drain deferred op-batch acks (errors surface here)."""
        conn = self._conns[w]
        while self._inflight[w]:
            self._inflight[w] -= 1
            self._check(conn.recv())

    def _rpc(self, w: int, msg: tuple):
        self._flush(w)
        self._sync(w)
        conn = self._conns[w]
        conn.send(msg)
        return self._check(conn.recv())

    # -- protocol -------------------------------------------------------
    def advance(self, grant, spec_target, holdback):
        # post to every worker first, then collect — the barrier overlaps
        for w in range(self.workers):
            self._flush(w)
            self._conns[w].send(("advance", grant, spec_target, holdback))
        outputs: dict[int, list] = {}
        for w in range(self.workers):
            self._sync(w)
            outputs.update(self._check(self._conns[w].recv()))
        return outputs

    def op(self, op: Op):
        w = self._worker_of(op.shard)
        if op.want_result:
            return self._rpc(w, ("op", op))
        self._outboxes[w].push(op)
        return None

    def revoke(self, seq, shard, at):
        w = self._worker_of(shard)
        if self._outboxes[w].annihilate(seq):
            return True
        return self._rpc(w, ("revoke", seq, shard, at))

    def query(self, shard, kind, payload):
        return self._rpc(self._worker_of(shard), ("query", shard, kind,
                                                  payload))

    def finalize(self, at):
        for w in range(self.workers):
            self._flush(w)
            self._conns[w].send(("finalize", at))
        reports: dict = {}
        outputs: dict = {}
        stats: dict = {}
        for w in range(self.workers):
            self._sync(w)
            r, o, s = self._check(self._conns[w].recv())
            reports.update(r)
            outputs.update(o)
            stats.update(s)
        return reports, outputs, stats

    def stop(self) -> None:
        for w, conn in enumerate(self._conns):
            try:
                self._sync(w)
                conn.send(("stop",))
                self._check(conn.recv())
            except (OSError, EOFError, BrokenPipeError):
                pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
        self._conns, self._procs = [], []
        self._outboxes, self._inflight = [], []
