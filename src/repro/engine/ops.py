"""Cross-shard operations and anti-message bookkeeping.

An :class:`Op` is the only way coordinator state reaches a shard: a
timestamped, sequenced, picklable instruction.  Ops without results are
buffered in an :class:`OpQueue` outbox and flushed lazily (before any
blocking exchange), which keeps one coordinator decision burst to one
pipe write — and gives in-flight operations a window in which a
:meth:`OpQueue.annihilate` can cancel them *for free*, the classic
anti-message fast path.  Once an op has crossed to a worker, the
matching anti-message is a :class:`Revoke`: the worker strikes the op
from the shard's log and rolls the shard back to the op's timestamp,
replaying history without it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Op", "OpQueue", "Revoke"]


@dataclass(frozen=True)
class Op:
    """One timestamped cross-shard operation."""

    seq: int            #: coordinator-wide monotone sequence number
    shard: int          #: target shard index
    at: float           #: logical application time (the issuing horizon)
    kind: str           #: domain-defined verb ("admit", "export", ...)
    payload: object = None
    #: True when the coordinator blocks on the result (e.g. a
    #: checkpoint image); False ops are batched through the outbox
    want_result: bool = False


@dataclass(frozen=True)
class Revoke:
    """Anti-message for an op that already crossed to a worker."""

    seq: int
    shard: int
    at: float


@dataclass
class OpQueue:
    """Coordinator-side outbox of not-yet-sent ops."""

    _pending: list[Op] = field(default_factory=list)

    def push(self, op: Op) -> None:
        self._pending.append(op)

    def annihilate(self, seq: int) -> bool:
        """Cancel a queued op before it is ever sent.

        Returns True when the op was still in the outbox (annihilated
        in place — the cheap anti-message); False when it already went
        out and the caller must send a :class:`Revoke` instead.
        """
        for i, op in enumerate(self._pending):
            if op.seq == seq:
                del self._pending[i]
                return True
        return False

    def drain(self) -> list[Op]:
        """Take every buffered op, in push order."""
        out = self._pending
        self._pending = []
        return out

    def __len__(self) -> int:
        return len(self._pending)
