"""Shard execution: private event loops, speculation, rollback.

A *domain* is the simulated content of one shard.  The engine is
domain-agnostic; anything that provides the small duck-typed surface
below can run under it (the cluster control plane and the retry-storm
scenario both do):

``loop``
    the shard's private :class:`~repro.gpu.engine.EventLoop`;
``apply(kind, payload, at) -> picklable``
    execute one cross-shard op at ``at`` (the loop clock is already
    there); must be deterministic — replay depends on it;
``query(kind, payload) -> picklable``
    a read-only question (latency windows, ledgers); answers must
    depend only on state at-or-below the last granted horizon, so a
    speculated shard answers exactly;
``outputs``
    an append-only list of emitted trace events (drained by the cell);
``finalize(at) -> picklable``
    run inclusively to ``at`` and report terminal state.

Everything here runs *inside a worker* (or inline, in-process — the
code is identical).  Rollback is deterministic replay: the repo-wide
invariant that a fixed seed replays bit-identically means a shard's
state is a pure function of (genesis, applied ops, clock), so instead
of snapshotting entangled event heaps we rebuild the domain from its
program and coast-forward through the op log.  Replay cancels every
speculated event past the straggler — the anti-message, wholesale.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from .ops import Op

__all__ = ["ShardCell", "ShardProgram", "WorkerHost"]


class ShardProgram(ABC):
    """Picklable factory for shard domains.

    Must be cheap to pickle (configs only, never live objects): the
    process backend ships one copy to every worker, and every rollback
    calls :meth:`build` again.
    """

    @abstractmethod
    def build(self, index: int):
        """Construct shard ``index``'s domain at simulated time zero."""


class SpeculationError:
    """An exception raised by a *speculated* event, held in quarantine.

    Speculated events may be cancelled by a later straggler op, so an
    error they raise is not yet real.  It becomes real the moment the
    horizon passes the failure time (the event is then committed
    history); a rollback below the failure time discards it.
    """

    __slots__ = ("time", "error")

    def __init__(self, time: float, error: BaseException) -> None:
        self.time = time
        self.error = error


class ShardCell:
    """One shard: domain + op log + speculation/rollback state."""

    def __init__(self, program: ShardProgram, index: int) -> None:
        self.program = program
        self.index = index
        self.domain = program.build(index)
        self.op_log: list[Op] = []
        #: horizon granted by the coordinator: no op below it will ever
        #: arrive, so outputs below it are final
        self.granted = 0.0
        #: speculation bound for the current round (== granted when the
        #: coordinator issued a holdback hint for this shard)
        self.spec_target = 0.0
        #: outputs below this time were already shipped (post-rollback
        #: regenerated duplicates are suppressed against it)
        self.shipped_upto = 0.0
        self.rollbacks = 0
        self._spec_error: SpeculationError | None = None

    # -- time advancement ----------------------------------------------
    def advance(self, grant: float, spec_target: float) -> None:
        """Advance exclusively to ``grant`` (committed history)."""
        self.granted = grant
        self.spec_target = max(spec_target, grant)
        if self._spec_error is not None and self._spec_error.time < grant:
            raise self._spec_error.error
        if self.domain.loop.now < grant:
            self.domain.loop.advance_to(grant)

    def speculate(self, budget: int) -> int:
        """Run up to ``budget`` events inside ``(granted, spec_target)``.

        Events at exactly ``granted`` stay pending — ops at the horizon
        must apply first (control-first ordering) — and events at or
        beyond ``spec_target`` wait for the next grant.  Returns the
        number of events executed (0 = nothing left to speculate).
        """
        if self._spec_error is not None:
            return 0
        loop = self.domain.loop
        granted = self.granted
        target = self.spec_target
        done = 0
        while done < budget:
            when = loop.peek_time()
            if when is None or when <= granted or when >= target:
                break
            try:
                loop.step()
            except Exception as exc:  # quarantined until committed
                self._spec_error = SpeculationError(loop.now, exc)
                break
            done += 1
        return done

    # -- operations -----------------------------------------------------
    def apply(self, op: Op):
        """Apply one op at ``op.at``, rolling back a speculated past."""
        loop = self.domain.loop
        if loop.now > op.at:
            self.rollback(op.at)
            loop = self.domain.loop
        elif loop.now < op.at:
            loop.advance_to(op.at)
        self.op_log.append(op)
        return self.domain.apply(op.kind, op.payload, op.at)

    def revoke(self, seq: int, at: float) -> bool:
        """Strike an applied op from history (the late anti-message).

        Rolls back to the op's timestamp and replays without it.
        Returns False when no such op was ever applied here.
        """
        for i, logged in enumerate(self.op_log):
            if logged.seq == seq:
                del self.op_log[i]
                self.rollback(at)
                return True
        return False

    def rollback(self, to_time: float) -> None:
        """Coast-forward replay: rebuild genesis, re-apply the op log.

        The replacement domain is byte-equivalent to committed history
        at ``to_time`` — determinism is an audited repo invariant —
        and every speculated event past ``to_time`` simply never
        happens in it.
        """
        self.rollbacks += 1
        self._spec_error = None
        domain = self.program.build(self.index)
        for op in self.op_log:
            if op.at > to_time:
                raise RuntimeError(
                    f"op log corrupt: op at {op.at} beyond rollback "
                    f"target {to_time}")
            if domain.loop.now < op.at:
                domain.loop.advance_to(op.at)
            domain.apply(op.kind, op.payload, op.at)
        if domain.loop.now < to_time:
            domain.loop.advance_to(to_time)
        self.domain = domain

    # -- outputs / collection ------------------------------------------
    def drain_outputs(self, upto: float) -> list:
        """Ship outputs with ``shipped_upto <= ts < upto``, in order.

        The lower bound suppresses duplicates a rollback regenerated;
        shipping advances the watermark — this is the engine's fossil
        collection (shipped buffers are freed, and the grant guarantees
        nothing below the watermark can ever be emitted again).
        """
        buf = self.domain.outputs
        if not buf:
            self.shipped_upto = max(self.shipped_upto, upto)
            return []
        floor = self.shipped_upto
        ship = [e for e in buf if floor <= e.ts < upto]
        keep = [e for e in buf if e.ts >= upto]
        buf[:] = keep
        self.shipped_upto = max(floor, upto)
        return ship

    def finalize(self, at: float):
        """Commit the tail of the run: everything through ``at``."""
        if self._spec_error is not None and self._spec_error.time <= at:
            raise self._spec_error.error
        return self.domain.finalize(at)

    @property
    def events_processed(self) -> int:
        return self.domain.loop.events_processed


class WorkerHost:
    """A group of shard cells driven by one protocol endpoint.

    The same class backs both execution modes: the inline backend holds
    one host in-process; the process backend builds one per worker from
    the pickled program.
    """

    def __init__(self, program: ShardProgram, indices: list[int]) -> None:
        self.cells = {i: ShardCell(program, i) for i in indices}
        self._spec_ring = list(indices)
        self._spec_pos = 0

    def advance(self, grant: float, spec_target: float,
                holdback: frozenset[int]) -> dict[int, list]:
        """Advance every cell to the grant; return shipped outputs."""
        outputs: dict[int, list] = {}
        for index, cell in self.cells.items():
            cell.advance(grant,
                         grant if index in holdback else spec_target)
            shipped = cell.drain_outputs(grant)
            if shipped:
                outputs[index] = shipped
        return outputs

    def apply(self, op: Op):
        return self.cells[op.shard].apply(op)

    def revoke(self, seq: int, shard: int, at: float) -> bool:
        return self.cells[shard].revoke(seq, at)

    def query(self, shard: int, kind: str, payload):
        return self.cells[shard].domain.query(kind, payload)

    def speculate_slice(self, budget: int) -> int:
        """Round-robin one bounded speculation slice; 0 = all idle."""
        ring = self._spec_ring
        if not ring:
            return 0
        done = 0
        for _ in range(len(ring)):
            cell = self.cells[ring[self._spec_pos]]
            self._spec_pos = (self._spec_pos + 1) % len(ring)
            done += cell.speculate(budget)
            if done >= budget:
                break
        return done

    def finalize(self, at: float) -> dict[int, object]:
        """Finalize every cell; returns per-shard domain reports."""
        return {i: cell.finalize(at) for i, cell in self.cells.items()}

    def drain_outputs(self, upto: float) -> dict[int, list]:
        outputs: dict[int, list] = {}
        for index, cell in self.cells.items():
            shipped = cell.drain_outputs(upto)
            if shipped:
                outputs[index] = shipped
        return outputs

    def stats(self) -> dict[int, tuple[int, int]]:
        """Per-shard ``(events_processed, rollbacks)``."""
        return {i: (cell.events_processed, cell.rollbacks)
                for i, cell in self.cells.items()}
