"""GVT commit: deterministic trace ordering across shards.

Shards emit trace events into private buffers; the coordinator emits
its own control events.  Neither order is globally meaningful until
GVT — the last horizon every shard acknowledged — passes an event's
timestamp: below GVT no rollback can cancel it and no earlier event
can still appear.  :class:`CommitTracer` buffers both streams and
flushes them to the real tracer in a deterministic merge order:

``(ts, source, arrival)`` — timestamp first; the coordinator (source
``-1``) before shards at equal timestamps (control events schedule the
work shards then perform — the serial engine runs them first for the
same reason); per-source arrival order last.  Cross-source ties at
*identical float timestamps* are measure-zero between continuous
processes, so this normalized order reproduces the serial trace up to
same-timestamp permutation — summaries (which count, not order) are
bit-identical, and the bit-identity suite asserts exactly that.
"""

from __future__ import annotations

__all__ = ["CommitTracer"]

#: merge rank of coordinator-emitted events (before any shard)
COORDINATOR_SOURCE = -1


class CommitTracer:
    """A :class:`~repro.trace.Tracer`-shaped buffer with GVT commit."""

    def __init__(self, sink) -> None:
        self.sink = sink
        self._pending: list[tuple[float, int, int, object]] = []
        self._arrivals = 0
        self.gvt = 0.0
        self.committed = 0

    @property
    def enabled(self) -> bool:
        return self.sink.enabled

    def emit(self, event) -> None:
        """Buffer a coordinator-side event (source rank -1)."""
        self._pending.append(
            (event.ts, COORDINATOR_SOURCE, self._arrivals, event))
        self._arrivals += 1

    def add_shard_events(self, shard: int, events: list) -> None:
        """Buffer a batch of shard outputs (already final below GVT)."""
        for event in events:
            self._pending.append((event.ts, shard, self._arrivals, event))
            self._arrivals += 1

    def commit(self, gvt: float) -> int:
        """Flush every buffered event with ``ts < gvt`` to the sink.

        Returns the number committed.  Buffers at-or-above ``gvt``
        survive to the next round; committed entries are freed — the
        coordinator half of fossil collection.
        """
        self.gvt = max(self.gvt, gvt)
        if not self._pending:
            return 0
        ready = [e for e in self._pending if e[0] < gvt]
        if not ready:
            return 0
        self._pending = [e for e in self._pending if e[0] >= gvt]
        ready.sort()
        if self.sink.enabled:
            emit = self.sink.emit
            for _ts, _src, _idx, event in ready:
                emit(event)
        self.committed += len(ready)
        return len(ready)

    def close(self) -> int:
        """Commit everything (end of run)."""
        return self.commit(float("inf"))
