"""Exception hierarchy for the Tally reproduction.

Every error raised by this package derives from :class:`ReproError` so
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class PTXError(ReproError):
    """Base class for errors in the mini-PTX substrate."""


class ValidationError(PTXError):
    """Raised when a kernel IR fails structural validation."""


class ParseError(PTXError):
    """Raised when textual mini-PTX cannot be parsed."""


class ExecutionError(PTXError):
    """Raised when the functional interpreter hits an illegal state."""


class SyncDivergenceError(ExecutionError):
    """Raised when threads of a block synchronize at divergent points.

    This models the "infinite kernel stall" the paper attributes to
    divergent synchronization (Section 4.1): some threads of a block wait
    at a barrier while others have returned or wait at a different
    barrier.  Real hardware hangs; the interpreter raises instead.
    """


class InstructionLimitExceeded(ExecutionError):
    """Raised when a thread executes more instructions than allowed."""


class MemoryError_(ExecutionError):
    """Raised on out-of-bounds or wrongly-typed memory accesses."""


class TransformError(ReproError):
    """Raised when a kernel transformation cannot be applied."""


class GPUSimError(ReproError):
    """Base class for errors in the timing simulator."""


class InvariantViolation(GPUSimError):
    """Raised by :mod:`repro.check` when a simulator invariant breaks.

    The message lists every violated invariant with the simulated time
    and the device state that exposed it; a violation always indicates
    a bug in the simulator or a policy, never in the workload.
    """


class RuntimeAPIError(ReproError):
    """Raised by the CUDA-like runtime API on misuse."""


class VirtError(ReproError):
    """Raised by the virtualization layer (channels, interposer)."""


class FaultError(ReproError):
    """Base class for failures surfaced by the fault-tolerance layer.

    These model *environment* failures (a peer process dying, a message
    never arriving), not programming errors; see
    ``docs/fault_tolerance.md`` for which component raises which.
    """


class ClientCrashed(FaultError):
    """Raised client-side when the client process dies mid-protocol.

    The virtualization channel raises this at the protocol step where
    an injected crash takes effect; whoever owns the process reports
    the death to the server, which garbage-collects the client's
    server-side state (:meth:`repro.core.server.TallyServer.disconnect`).
    """


class ChannelTimeout(FaultError):
    """Raised when a channel request exhausts its retry attempts.

    Every attempt (the original send plus each exponential-backoff
    retry) was lost, corrupted, or otherwise unanswered.
    """


class RetryBudgetExhausted(ChannelTimeout):
    """Raised when a channel call needs a retry but the per-client
    token-bucket retry budget is empty.

    Failing fast here is the point: budgets cap the fleet-wide retry
    load at a fixed fraction of fresh traffic, so a degraded server is
    never held underwater by synchronized retry storms (the metastable-
    failure mode; see ``docs/fault_tolerance.md``).  Subclasses
    :class:`ChannelTimeout` so existing retry-exhaustion handling
    treats it as the same terminal outcome.
    """


class CircuitOpen(FaultError):
    """Raised when a channel call is refused by an open circuit breaker.

    The breaker observed enough consecutive failures against its target
    to presume it unhealthy; calls fail fast (no send, no retries)
    until the seeded probe timer moves the breaker to half-open and a
    probe call is allowed through.
    """


class DeadlineExceeded(FaultError):
    """Raised client-side when a call's absolute deadline has already
    passed before the request is sent.

    With deadline propagation the work would be shed at the server
    anyway (the envelope carries the deadline); giving up locally
    spares the channel and the server the doomed round trip.
    """


class PreemptTimeout(FaultError):
    """Raised when a preemption ack misses its deadline and escalation
    is disabled.

    With ``watchdog_escalate=True`` (the default) the scheduler's
    watchdog forces a reset instead of raising; this error is the
    strict-mode alternative for debugging lost-ack conditions.
    """


class DeviceLost(FaultError):
    """Raised when an operation targets a simulated device that crashed.

    The cluster control plane marks a device lost when its injected
    crash fires; submissions against it fail fast with this error and
    latency-critical tenants are recovered by checkpoint/restore live
    migration (:mod:`repro.cluster.controlplane`).
    """


class MigrationError(FaultError):
    """Raised when checkpoint/restore live migration cannot complete.

    Examples: checkpointing a client the server does not know, restoring
    onto a device without enough free memory, or restoring a checkpoint
    whose client id is already registered on the target.
    """


class SchedulerError(ReproError):
    """Raised by scheduling policies on inconsistent state."""


class WorkloadError(ReproError):
    """Raised when a workload definition is invalid."""


class HarnessError(ReproError):
    """Raised by the experiment harness on bad configuration."""


class TransformFallback(UserWarning):
    """Warning issued when a kernel transformation cannot be applied and
    the server degrades to the next rung of the fallback ladder
    (PTB -> sliced -> original; see ``docs/fault_tolerance.md``).

    A warning, not an error: the launch still executes correctly, just
    with weaker preemptibility — exactly the paper's own fallback of
    launching the original kernel when a transformation fails.
    """
