"""Exception hierarchy for the Tally reproduction.

Every error raised by this package derives from :class:`ReproError` so
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class PTXError(ReproError):
    """Base class for errors in the mini-PTX substrate."""


class ValidationError(PTXError):
    """Raised when a kernel IR fails structural validation."""


class ParseError(PTXError):
    """Raised when textual mini-PTX cannot be parsed."""


class ExecutionError(PTXError):
    """Raised when the functional interpreter hits an illegal state."""


class SyncDivergenceError(ExecutionError):
    """Raised when threads of a block synchronize at divergent points.

    This models the "infinite kernel stall" the paper attributes to
    divergent synchronization (Section 4.1): some threads of a block wait
    at a barrier while others have returned or wait at a different
    barrier.  Real hardware hangs; the interpreter raises instead.
    """


class InstructionLimitExceeded(ExecutionError):
    """Raised when a thread executes more instructions than allowed."""


class MemoryError_(ExecutionError):
    """Raised on out-of-bounds or wrongly-typed memory accesses."""


class TransformError(ReproError):
    """Raised when a kernel transformation cannot be applied."""


class GPUSimError(ReproError):
    """Base class for errors in the timing simulator."""


class InvariantViolation(GPUSimError):
    """Raised by :mod:`repro.check` when a simulator invariant breaks.

    The message lists every violated invariant with the simulated time
    and the device state that exposed it; a violation always indicates
    a bug in the simulator or a policy, never in the workload.
    """


class RuntimeAPIError(ReproError):
    """Raised by the CUDA-like runtime API on misuse."""


class VirtError(ReproError):
    """Raised by the virtualization layer (channels, interposer)."""


class SchedulerError(ReproError):
    """Raised by scheduling policies on inconsistent state."""


class WorkloadError(ReproError):
    """Raised when a workload definition is invalid."""


class HarnessError(ReproError):
    """Raised by the experiment harness on bad configuration."""
