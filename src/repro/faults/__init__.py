"""Seeded fault injection and the recovery machinery it exercises.

Two halves (see ``docs/fault_tolerance.md``):

* :mod:`repro.faults.config` / :mod:`repro.faults.injector` — a frozen
  :class:`FaultConfig` describing which faults a run suffers, and a
  :class:`FaultInjector` that makes every individual injection decision
  from one seeded RNG, so a fault schedule replays bit-identically.
  The disabled default :data:`NULL_INJECTOR` mirrors ``NULL_TRACER`` /
  ``NULL_CHECKER`` — fault-free runs are unchanged.
* :mod:`repro.faults.scenarios` — harness-side helpers that arm
  device slot faults and client crashes against a running colocation.
* :mod:`repro.faults.storm` — the retry-storm chaos scenario: a
  degrade window against a capacity-limited server, run with and
  without the overload-resilience layer (:mod:`repro.virt.resilience`).

``scenarios`` and ``storm`` are imported lazily: the device imports
this package for :data:`NULL_INJECTOR`, and those layers import the
harness/virt stack, which imports the policies, which import the
device.
"""

from __future__ import annotations

from .config import FaultConfig
from .injector import (
    NULL_INJECTOR,
    DeviceFaultEvent,
    FaultInjector,
    NullInjector,
)

__all__ = [
    "DeviceFaultEvent",
    "FaultConfig",
    "FaultInjector",
    "NULL_INJECTOR",
    "NullInjector",
    # lazily loaded from .scenarios:
    "arm_slot_faults",
    "schedule_client_crash",
    # lazily loaded from .storm:
    "StormConfig",
    "StormResult",
    "run_storm",
    "run_storm_sweep",
    "storm_pair",
]

_SCENARIOS = {
    "arm_slot_faults",
    "schedule_client_crash",
}

_STORM = {
    "StormConfig",
    "StormResult",
    "run_storm",
    "run_storm_sweep",
    "storm_pair",
}


def __getattr__(name: str):
    if name in _SCENARIOS:
        from . import scenarios

        return getattr(scenarios, name)
    if name in _STORM:
        from . import storm

        return getattr(storm, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
