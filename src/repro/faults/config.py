"""Fault-injection configuration.

One :class:`FaultConfig` describes *which* faults a run is subjected to
and *how often*; a :class:`~repro.faults.injector.FaultInjector` seeded
from it makes every individual injection decision deterministically.
The same config + seed therefore reproduces the same fault schedule —
chaos runs replay bit-identically, which is what lets the chaos suite
assert recovery instead of merely surviving.

Configs are CLI-friendly: ``FaultConfig.parse("seed=7,lost_ack=1,
slot_fault_rate=2")`` builds one from the ``--faults`` argument of
``colocate``/``cluster``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from ..errors import HarnessError

__all__ = ["FaultConfig"]

#: probability fields, validated to lie in [0, 1]
_RATE_FIELDS = ("drop", "duplicate", "corrupt", "delay", "kernel_fault",
                "transform_fail_rate", "lost_ack")


@dataclass(frozen=True)
class FaultConfig:
    """Seeded description of the faults injected into one run.

    All probabilities are per *opportunity* (per message direction, per
    launch, per preempt request, ...); ``0.0`` disables that fault.
    """

    #: seed of the injector's RNG — the whole fault schedule follows
    seed: int = 0

    # -- channel faults (virtualization layer, per message direction) --
    #: P(message lost in transit; the sender times out and retries)
    drop: float = 0.0
    #: P(request delivered twice; the server's replay cache dedupes)
    duplicate: float = 0.0
    #: P(payload corrupted; detected via checksum, answered retryable)
    corrupt: float = 0.0
    #: P(message delayed by ``delay_time`` seconds of transport time)
    delay: float = 0.0
    #: extra modelled latency of a delayed message (seconds)
    delay_time: float = 200e-6
    #: client process dies at this protocol call (0-based); None = never
    crash_after_calls: int | None = None

    # -- server / interpreter faults (functional path) --
    #: P(an injected execution fault aborts a kernel launch)
    kernel_fault: float = 0.0
    #: P(a transformation kind is unusable for a kernel); sampled once
    #: per (kernel, kind) and cached, so the ladder settles
    transform_fail_rate: float = 0.0

    # -- scheduler / device faults (timing path) --
    #: P(a PTB preempt-flag delivery is lost; the ack never arrives)
    lost_ack: float = 0.0
    #: expected device slot faults (spurious resets of a resident
    #: launch) per simulated second (Poisson arrivals)
    slot_fault_rate: float = 0.0
    #: simulated time at which the best-effort client crashes (CLI
    #: convenience; harness users set JobSpec.crash_at directly)
    crash_at: float | None = None

    # -- cluster / device faults (control plane) --
    #: expected device crashes per simulated second (per device);
    #: the first arrival kills the device for the rest of the run
    device_crash_rate: float = 0.0
    #: expected transient-degradation windows per simulated second
    #: (per device; thermal throttling, noisy host neighbours)
    device_degraded_rate: float = 0.0
    #: block-duration multiplier while a device is degraded
    degraded_factor: float = 4.0
    #: length of one degradation window (seconds)
    degraded_duration: float = 0.5
    #: expected flapping bursts per simulated second (per device) — a
    #: burst is ``flap_count`` short degrade/recover cycles in a row
    device_flap_rate: float = 0.0
    #: degrade/recover cycles per flapping burst
    flap_count: int = 4
    #: spacing of flap cycles (each degraded for half the period)
    flap_period: float = 0.2

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise HarnessError(f"fault rate {name}={value} outside [0, 1]")
        if self.delay_time < 0:
            raise HarnessError("delay_time must be >= 0")
        if self.slot_fault_rate < 0:
            raise HarnessError("slot_fault_rate must be >= 0")
        if self.crash_after_calls is not None and self.crash_after_calls < 0:
            raise HarnessError("crash_after_calls must be >= 0")
        if self.crash_at is not None and self.crash_at < 0:
            raise HarnessError("crash_at must be >= 0")
        for name in ("device_crash_rate", "device_degraded_rate",
                     "device_flap_rate"):
            if getattr(self, name) < 0:
                raise HarnessError(f"{name} must be >= 0")
        if self.degraded_factor < 1.0:
            raise HarnessError("degraded_factor must be >= 1.0")
        if self.degraded_duration <= 0:
            raise HarnessError("degraded_duration must be > 0")
        if self.flap_count < 1:
            raise HarnessError("flap_count must be >= 1")
        if self.flap_period <= 0:
            raise HarnessError("flap_period must be > 0")

    @property
    def any_channel_faults(self) -> bool:
        return (self.drop > 0 or self.duplicate > 0 or self.corrupt > 0
                or self.delay > 0 or self.crash_after_calls is not None)

    @property
    def any_device_faults(self) -> bool:
        """Whether any cluster-level device fault kind is enabled."""
        return (self.device_crash_rate > 0 or self.device_degraded_rate > 0
                or self.device_flap_rate > 0)

    @staticmethod
    def parse(spec: str) -> "FaultConfig":
        """Build a config from a ``key=value,key=value`` CLI string.

        Keys are the dataclass field names; values are parsed by the
        field's type (``seed=7,drop=0.01,crash_at=2.5``).
        """
        known = {f.name: f for f in fields(FaultConfig)}
        values: dict[str, object] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, raw = part.partition("=")
            key = key.strip()
            if not sep or key not in known:
                raise HarnessError(
                    f"bad --faults entry {part!r}; known keys: "
                    f"{', '.join(sorted(known))}"
                )
            try:
                if key in ("seed", "crash_after_calls", "flap_count"):
                    values[key] = int(raw)
                else:
                    values[key] = float(raw)
            except ValueError:
                raise HarnessError(
                    f"bad --faults value {raw!r} for {key}"
                ) from None
        return FaultConfig(**values)  # type: ignore[arg-type]
