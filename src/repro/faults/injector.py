"""Deterministic fault injector.

A :class:`FaultInjector` turns a :class:`~repro.faults.config.FaultConfig`
into concrete injection decisions, one seeded RNG draw per fault
*opportunity*.  Determinism rules:

- every opportunity of a given kind consumes exactly one draw from the
  injector's private ``random.Random(seed)``, so the decision sequence
  depends only on (seed, order of opportunities) — and the simulator's
  event order is itself deterministic;
- transformation faults are memoized per ``(kernel, mode)`` so the
  degradation ladder settles instead of flapping between rungs;
- slot-fault arrival times are precomputed for the whole run
  (exponential inter-arrival gaps), so they do not interleave draws
  with per-message faults.

The null object :data:`NULL_INJECTOR` mirrors ``NULL_TRACER`` /
``NULL_CHECKER``: ``enabled`` is False and every query answers "no
fault", so hot paths guard with ``if injector.enabled:`` and fault-free
runs stay byte-identical to the pre-fault simulator.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass

from .config import FaultConfig

__all__ = ["DeviceFaultEvent", "FaultInjector", "NullInjector",
           "NULL_INJECTOR"]

#: outcomes of one channel-message draw
NO_FAULT = "none"
DROP = "drop"
DUPLICATE = "duplicate"
CORRUPT = "corrupt"
DELAY = "delay"


@dataclass(frozen=True)
class DeviceFaultEvent:
    """One scheduled device-level fault transition.

    ``kind`` is ``"crash"`` (the device dies for good), ``"degrade"``
    (block durations multiply by ``factor`` until the matching
    ``"recover"``), or ``"recover"``.  ``flapping`` marks transitions
    belonging to a flap burst so the control plane can distinguish an
    unstable device from one long throttling window.
    """

    time: float
    kind: str          # "crash" | "degrade" | "recover"
    factor: float = 1.0
    flapping: bool = False


class FaultInjector:
    """Makes every injection decision for one run, deterministically."""

    enabled = True

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        self._rng = random.Random(config.seed)
        #: injected-fault counts by kind, for reporting and assertions
        self.injected: Counter[str] = Counter()
        self._transform_cache: dict[tuple[str, str], bool] = {}
        self._calls = 0

    # ------------------------------------------------------------- channel

    def channel_fault(self, direction: str) -> str:
        """Draw the fate of one message (``direction`` is request/response).

        Returns one of ``none/drop/duplicate/corrupt/delay``.  A single
        uniform draw is compared against cumulative probabilities so each
        message costs exactly one draw regardless of which rates are on.
        """
        cfg = self.config
        total = cfg.drop + cfg.duplicate + cfg.corrupt + cfg.delay
        if total == 0:
            return NO_FAULT
        u = self._rng.random()
        edge = cfg.drop
        if u < edge:
            self.injected[f"{direction}_drop"] += 1
            return DROP
        edge += cfg.duplicate
        if u < edge:
            self.injected[f"{direction}_duplicate"] += 1
            return DUPLICATE
        edge += cfg.corrupt
        if u < edge:
            self.injected[f"{direction}_corrupt"] += 1
            return CORRUPT
        edge += cfg.delay
        if u < edge:
            self.injected[f"{direction}_delay"] += 1
            return DELAY
        return NO_FAULT

    def crash_now(self) -> bool:
        """True when the client's injected crash point has been reached.

        Counts protocol calls; fires once ``crash_after_calls`` calls
        have completed (0 crashes the very first call).
        """
        if self.config.crash_after_calls is None:
            return False
        crash = self._calls >= self.config.crash_after_calls
        self._calls += 1
        if crash:
            self.injected["client_crash"] += 1
        return crash

    # -------------------------------------------------- server / transform

    def kernel_fault(self) -> bool:
        """True when this kernel execution should abort with a fault."""
        if self.config.kernel_fault == 0:
            return False
        hit = self._rng.random() < self.config.kernel_fault
        if hit:
            self.injected["kernel_fault"] += 1
        return hit

    def transform_fault(self, kernel: str, mode: str) -> bool:
        """True when transformation ``mode`` is unusable for ``kernel``.

        Memoized per (kernel, mode): a transformation either works for a
        kernel or it doesn't — retrying the same rung cannot succeed, so
        the ladder's choice is stable across launches.
        """
        if self.config.transform_fail_rate == 0:
            return False
        key = (kernel, mode)
        if key not in self._transform_cache:
            hit = self._rng.random() < self.config.transform_fail_rate
            self._transform_cache[key] = hit
            if hit:
                self.injected["transform_fault"] += 1
        return self._transform_cache[key]

    # ------------------------------------------------- scheduler / device

    def lost_preempt_ack(self) -> bool:
        """True when this PTB preempt-flag delivery should be lost."""
        if self.config.lost_ack == 0:
            return False
        hit = self._rng.random() < self.config.lost_ack
        if hit:
            self.injected["lost_ack"] += 1
        return hit

    def slot_fault_times(self, duration: float) -> list[float]:
        """Poisson arrival times of device slot faults over ``duration``.

        Precomputed in one burst from a dedicated sub-RNG so the number
        of per-message draws elsewhere cannot shift the fault schedule.
        """
        rate = self.config.slot_fault_rate
        if rate <= 0 or duration <= 0:
            return []
        rng = random.Random(f"{self.config.seed}/slot_faults")
        times: list[float] = []
        t = rng.expovariate(rate)
        while t < duration:
            times.append(t)
            t += rng.expovariate(rate)
        return times

    # --------------------------------------------------- cluster / device
    def device_fault_schedule(self, device_index: int,
                              duration: float) -> list[DeviceFaultEvent]:
        """Precompute every device-level fault for one device.

        Drawn from a sub-RNG keyed ``{seed}/device/{index}``, so the
        schedule depends only on (seed, device index, duration) — never
        on how many per-message draws other fault kinds consumed.  Three
        independent processes are merged and time-sorted:

        - **crash** — Poisson first-arrival at ``device_crash_rate``;
          the device stays dead, so later events are pruned;
        - **degrade** — Poisson windows at ``device_degraded_rate``,
          each ``degraded_duration`` long at ``degraded_factor``;
        - **flapping** — Poisson bursts at ``device_flap_rate``, each a
          train of ``flap_count`` degrade/recover cycles spaced
          ``flap_period`` apart (degraded for half of each period).
        """
        cfg = self.config
        if duration <= 0 or not cfg.any_device_faults:
            return []
        rng = random.Random(f"{cfg.seed}/device/{device_index}")
        events: list[DeviceFaultEvent] = []
        # One process at a time, in a fixed order, so enabling one fault
        # kind never shifts another kind's arrival times.
        if cfg.device_crash_rate > 0:
            t = rng.expovariate(cfg.device_crash_rate)
            if t < duration:
                events.append(DeviceFaultEvent(t, "crash"))
        if cfg.device_degraded_rate > 0:
            t = rng.expovariate(cfg.device_degraded_rate)
            while t < duration:
                events.append(DeviceFaultEvent(
                    t, "degrade", factor=cfg.degraded_factor))
                events.append(DeviceFaultEvent(
                    min(t + cfg.degraded_duration, duration), "recover"))
                t += cfg.degraded_duration + rng.expovariate(
                    cfg.device_degraded_rate)
        if cfg.device_flap_rate > 0:
            t = rng.expovariate(cfg.device_flap_rate)
            while t < duration:
                for i in range(cfg.flap_count):
                    start = t + i * cfg.flap_period
                    if start >= duration:
                        break
                    events.append(DeviceFaultEvent(
                        start, "degrade", factor=cfg.degraded_factor,
                        flapping=True))
                    events.append(DeviceFaultEvent(
                        min(start + cfg.flap_period / 2, duration),
                        "recover", flapping=True))
                t += (cfg.flap_count * cfg.flap_period
                      + rng.expovariate(cfg.device_flap_rate))
        events.sort(key=lambda e: e.time)
        crash_at = next((e.time for e in events if e.kind == "crash"),
                        None)
        if crash_at is not None:
            events = [e for e in events
                      if e.time < crash_at or e.kind == "crash"]
        for event in events:
            self.injected[f"device_{event.kind}"] += 1
        return events


class NullInjector:
    """No-op injector; every query answers "no fault"."""

    enabled = False
    config = FaultConfig()
    injected: Counter[str] = Counter()

    def channel_fault(self, direction: str) -> str:
        return NO_FAULT

    def crash_now(self) -> bool:
        return False

    def kernel_fault(self) -> bool:
        return False

    def transform_fault(self, kernel: str, mode: str) -> bool:
        return False

    def lost_preempt_ack(self) -> bool:
        return False

    def slot_fault_times(self, duration: float) -> list[float]:
        return []

    def device_fault_schedule(self, device_index: int,
                              duration: float) -> list[DeviceFaultEvent]:
        return []


NULL_INJECTOR = NullInjector()
