"""Harness-level fault scenarios: slot faults and client crashes.

The :class:`~repro.faults.injector.FaultInjector` decides *whether* and
*when* faults fire; this module turns those decisions into simulated
events.  Two scenarios live at the harness layer because they need
objects no single component owns:

* **slot faults** — a device-level reset of one resident launch (an ECC
  error, an MMU fault on the victim's slot).  The device kills the
  launch; its owning policy sees an ordinary ``PREEMPTED`` completion
  and re-runs the lost work, so recovery exercises the same paths as
  preemption.
* **client crashes** — a workload process dying mid-run.  The driver
  stops submitting, and the policy's
  :meth:`~repro.baselines.base.SharingPolicy.disconnect` garbage-
  collects device-side state so survivors are not wedged behind a
  ghost client.

Both emit typed trace events (see ``docs/fault_tolerance.md``).
"""

from __future__ import annotations

from typing import Protocol

from ..gpu.device import GPUDevice
from ..gpu.engine import EventLoop
from ..trace import ClientCrash, NULL_TRACER, SlotFault, Tracer
from .injector import FaultInjector

__all__ = ["arm_slot_faults", "schedule_client_crash"]


class _Crashable(Protocol):
    def crash(self) -> None: ...


class _Disconnectable(Protocol):
    def disconnect(self, client_id: str) -> None: ...


def _slot_fault_victim(device: GPUDevice):
    """Pick the launch a slot fault hits (deterministically).

    Faults bias toward the launch occupying the most slots for the
    longest — modelled as the lowest-priority, oldest resident launch
    (best-effort kernels occupy the device for whole iterations, so
    they present the largest cross-section).  Ties cannot occur:
    ``seq`` is unique.
    """
    candidates = [l for l in device.resident_launches if not l.done]
    if not candidates:
        return None
    return max(candidates, key=lambda l: (l.priority, -l.seq))


def arm_slot_faults(device: GPUDevice, engine: EventLoop,
                    faults: FaultInjector, duration: float, *,
                    tracer: Tracer = NULL_TRACER) -> int:
    """Schedule the injector's slot-fault arrivals over ``duration``.

    Returns the number of faults armed.  Each firing kills one resident
    launch (chosen by :func:`_slot_fault_victim`); firings that find an
    idle device are no-ops, so the armed count is an upper bound on the
    faults actually injected (``faults.injected["slot_fault"]`` is the
    exact count).
    """
    times = faults.slot_fault_times(duration)
    for when in times:
        engine.schedule_at(when, lambda: _fire_slot_fault(
            device, engine, faults, tracer))
    return len(times)


def _fire_slot_fault(device: GPUDevice, engine: EventLoop,
                     faults: FaultInjector, tracer: Tracer) -> None:
    victim = _slot_fault_victim(device)
    if victim is None:
        return  # device idle; the fault hit an empty slot
    blocks_lost = victim.blocks_inflight
    faults.injected["slot_fault"] += 1
    if tracer.enabled:
        tracer.emit(SlotFault(
            ts=engine.now, client_id=victim.client_id,
            kernel=victim.descriptor.name, launch_seq=victim.seq,
            blocks_lost=blocks_lost,
        ))
    device.kill(victim)


def schedule_client_crash(engine: EventLoop, when: float,
                          driver: _Crashable, policy: _Disconnectable,
                          client_id: str, *,
                          tracer: Tracer = NULL_TRACER) -> None:
    """Arrange for ``client_id`` to die at simulated time ``when``.

    At the deadline the driver's :meth:`crash` stops all future
    submissions, then the policy's :meth:`disconnect` reclaims the
    crashed client's device-side state (killing severed launches,
    dropping queues) so surviving clients keep making progress.
    """
    def fire() -> None:
        if tracer.enabled:
            tracer.emit(ClientCrash(
                ts=engine.now, client_id=client_id, kernel="",
                reason="injected",
            ))
        driver.crash()
        policy.disconnect(client_id)

    engine.schedule_at(when, fire)
