"""Retry-storm chaos scenario: metastable overload, with and without
the resilience layer.

The classic metastable failure: a server degrades for a bounded window,
every client retries every failed call, and the retries consume the
capacity that fresh work needed — so the overload outlives the fault
that triggered it.  This scenario reproduces that shape deterministically
and measures whether the overload-resilience layer
(:mod:`repro.virt.resilience`: token-bucket retry budgets + circuit
breakers) actually bounds it.

The model: ``clients`` channels issue calls at seeded Poisson times
against one capacity-limited server on a shared
:class:`~repro.gpu.engine.EventLoop`.  Every *attempt* — including one
that is about to fail — consumes ``1/capacity`` seconds of server time,
because a degraded server still burns cycles on requests whose replies
are lost.  During ``[degrade_start, degrade_end)`` the server answers
every attempt with a retryable transport failure:

* **without resilience** every fresh call fans out into
  ``max_attempts`` sends; the amplified load builds a service backlog
  far larger than the window itself, and post-window latencies stay
  over the SLO until the backlog drains — attainment collapses *after*
  the fault is gone (the storm signature);
* **with resilience** the per-client retry budget caps the fan-out,
  terminal failures open the breakers, and in-window calls are refused
  client-side without a single send — the server never builds the
  backlog, and breakers re-close within their jittered probe windows.

Everything is seeded: arrival times come from per-client sub-RNGs and
breaker probe windows from the channel's seeded jitter stream, so a
run (and the process-parallel :func:`run_storm_sweep`) replays
bit-identically.  With ``check=True`` the per-client call ledgers are
audited by :func:`~repro.check.check_request_conservation` — every
fresh call must end as exactly one success or one counted shed/failure.

``StormConfig.shards`` models a *sharded* service: total capacity is
split evenly across that many independent server replicas, clients are
dealt round-robin (keeping their global ids and seed streams), and the
degrade window hits every replica — the correlated-fault shape of a bad
deploy.  Each shard is a self-contained seeded simulation, so shards
run serially or across worker processes (``run_storm(..., jobs=N)``)
with a deterministic merge: counters sum,
:meth:`~repro.metrics.OverloadReport.merged` recomputes amplification
and the breaker timeline, and trace events commit through the
engine's :class:`~repro.engine.CommitTracer` in ``(ts, shard,
arrival)`` order.  ``shards=1`` is exactly the legacy single-server
storm.  See ``docs/fault_tolerance.md``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from ..check import ServiceLedger, check_request_conservation
from ..errors import (
    ChannelTimeout,
    CircuitOpen,
    DeadlineExceeded,
    HarnessError,
    VirtError,
)
from ..gpu import EventLoop
from ..metrics import OverloadReport, attainment_through_window
from ..trace import NULL_TRACER
from ..virt import Channel, ChannelConfig, ResilienceConfig, SHARED_MEMORY
from ..virt.protocol import Envelope, Response, SynchronizeRequest

__all__ = [
    "StormConfig",
    "StormResult",
    "run_storm",
    "run_storm_sweep",
    "storm_pair",
]


@dataclass(frozen=True)
class StormConfig:
    """One fully described, picklable retry-storm run."""

    clients: int = 8
    #: fresh calls per client per second (Poisson)
    call_rate: float = 40.0
    #: server attempts per second; every attempt costs 1/capacity
    capacity: float = 600.0
    duration: float = 6.0
    #: the degrade window: every attempt inside it fails retryably
    degrade_start: float = 2.0
    degrade_end: float = 4.0
    #: per-call latency SLO, seconds (queue wait + transport + retries)
    slo: float = 0.02
    seed: int = 0
    #: None = raw retries (the storm); set to bound it
    resilience: ResilienceConfig | None = None
    channel: ChannelConfig = field(default=SHARED_MEMORY)
    check: bool = False
    label: str = ""
    #: independent server replicas; capacity splits evenly, clients are
    #: dealt round-robin, 1 = the legacy single-server storm
    shards: int = 1

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise HarnessError("need at least one client")
        if self.shards < 1:
            raise HarnessError("need at least one shard")
        if self.call_rate <= 0 or self.capacity <= 0:
            raise HarnessError("call_rate and capacity must be > 0")
        if not 0 <= self.degrade_start < self.degrade_end <= self.duration:
            raise HarnessError(
                "need 0 <= degrade_start < degrade_end <= duration")
        if self.slo <= 0:
            raise HarnessError("slo must be > 0")


@dataclass(frozen=True)
class StormResult:
    """Outcome of one retry-storm run."""

    label: str
    overload: OverloadReport
    successes: int
    failures: int
    #: SLO attainment of *served* calls before / during / after the
    #: degrade window (shed work is reported in ``overload.sheds``, not
    #: here: a fast refusal is the bounded outcome, a served call that
    #: blows the SLO is the metastable one); empty windows are 1.0
    attainment_before: float
    attainment_during: float
    attainment_after: float
    #: worst service backlog the server ever carried, seconds
    peak_backlog: float
    invariant_checks: int
    events: int

    @property
    def amplification(self) -> float:
        return self.overload.amplification

    def format(self) -> str:
        lines = [
            f"{self.label or 'storm'}: "
            f"ok={self.successes} failed={self.failures}  "
            f"peak backlog={self.peak_backlog * 1e3:.0f}ms",
            f"attainment: before={self.attainment_before:.1%}  "
            f"during={self.attainment_during:.1%}  "
            f"after={self.attainment_after:.1%}",
            self.overload.format(),
        ]
        return "\n".join(lines)


class _SaturableServer:
    """A fixed-capacity server that still burns cycles while degraded."""

    def __init__(self, engine: EventLoop, config: StormConfig, *,
                 capacity: float | None = None) -> None:
        self.engine = engine
        self.config = config
        self.service_time = 1.0 / (capacity if capacity is not None
                                   else config.capacity)
        self.busy_until = 0.0
        self.attempts = 0
        self.peak_backlog = 0.0
        #: queue wait the most recent attempt paid (read by the caller)
        self.last_wait = 0.0

    def handle(self, envelope: Envelope) -> Response:
        now = self.engine.now
        self.attempts += 1
        start = max(now, self.busy_until)
        self.last_wait = start - now
        self.busy_until = start + self.service_time
        self.peak_backlog = max(self.peak_backlog, self.busy_until - now)
        if self.config.degrade_start <= now < self.config.degrade_end:
            return Response.transport_failure(
                "server degraded; reply lost")
        return Response.success()


@dataclass(frozen=True)
class _StormCell:
    """Picklable outcome of one service shard (merged by run_storm)."""

    overload: OverloadReport
    successes: int
    failures: int
    samples: tuple[tuple[float, float], ...]
    peak_backlog: float
    checks: int
    events: int
    trace_events: tuple = ()


class _CellBuffer:
    """Tracer-shaped buffer: shard events queue for the GVT merge."""

    enabled = True

    def __init__(self) -> None:
        self.events: list = []

    def emit(self, event) -> None:
        self.events.append(event)


def _storm_cell(config: StormConfig, shard: int,
                collect_events: bool = False) -> _StormCell:
    """Run one service shard: a self-contained seeded simulation.

    Shard ``shard`` of ``config.shards`` owns the clients with global
    index ``i % shards == shard`` (ids and seed streams keep the global
    index, so a client's arrival process is the same under any shard
    count) and a server replica with ``capacity / shards``.
    """
    tracer = _CellBuffer() if collect_events else NULL_TRACER
    engine = EventLoop()
    server = _SaturableServer(
        engine, config, capacity=config.capacity / config.shards)
    indices = [i for i in range(config.clients)
               if i % config.shards == shard]
    channels = [
        Channel(server.handle, config.channel,
                client_id=f"storm#{i}", seed=config.seed,
                clock=lambda: engine.now, tracer=tracer,
                resilience=config.resilience)
        for i in indices
    ]
    # arrivals counts every issued call — including breaker fast-fails,
    # which never become a "fresh call" because they are refused before
    # an envelope exists; the conservation audit balances against it
    arrivals = [0] * len(channels)
    successes = [0] * len(channels)
    failures = [0] * len(channels)
    #: (completion ts, latency) per *served* call — the storm signature
    #: is served work blowing the SLO long after the fault cleared
    samples: list[tuple[float, float]] = []

    def call(pos: int) -> None:
        channel = channels[pos]
        arrivals[pos] += 1
        before = channel.stats.simulated_time
        now = engine.now
        try:
            channel.call(SynchronizeRequest(client_id=channel.client_id))
        except (ChannelTimeout, CircuitOpen, DeadlineExceeded, VirtError):
            failures[pos] += 1
        else:
            successes[pos] += 1
            latency = ((channel.stats.simulated_time - before)
                       + server.last_wait)
            samples.append((now, latency))

    for pos, index in enumerate(indices):
        rng = random.Random(f"{config.seed}/storm/{index}")
        t = 0.0
        while True:
            t += rng.expovariate(config.call_rate)
            if t >= config.duration:
                break
            engine.schedule_at(t, lambda p=pos: call(p))
    engine.run_until(config.duration)

    checks = 0
    if config.check:
        ledgers = [
            ServiceLedger(
                client_id=channels[pos].client_id,
                arrivals=arrivals[pos],
                completed=successes[pos], pending=0, shed=failures[pos],
            )
            for pos in range(len(channels))
        ]
        checks = check_request_conservation(ledgers)

    return _StormCell(
        overload=OverloadReport.of(channels),
        successes=sum(successes),
        failures=sum(failures),
        samples=tuple(samples),
        peak_backlog=server.peak_backlog,
        checks=checks,
        events=engine.events_processed,
        trace_events=tuple(tracer.events) if collect_events else (),
    )


def run_storm(config: StormConfig, *, tracer=None,
              jobs: int = 1) -> StormResult:
    """Run one retry-storm scenario and measure the damage.

    With ``config.shards > 1`` the shard cells are independent seeded
    simulations; ``jobs=N`` runs them over worker processes and is
    bit-identical to ``jobs=1`` because the merge is deterministic
    (counters sum, trace events commit in ``(ts, shard, arrival)``
    order).
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    shards = config.shards
    want_events = bool(getattr(tracer, "enabled", False))
    if jobs <= 1 or shards <= 1:
        cells = [_storm_cell(config, shard, want_events)
                 for shard in range(shards)]
    else:
        import os
        from concurrent.futures import ProcessPoolExecutor

        from ..harness.sweep import _init_worker
        from ..transform.memo import warm_snapshot

        workers = min(jobs, shards, os.cpu_count() or 1)
        with ProcessPoolExecutor(max_workers=workers,
                                 initializer=_init_worker,
                                 initargs=(warm_snapshot(),)) as pool:
            cells = list(pool.map(_storm_cell, [config] * shards,
                                  range(shards),
                                  [want_events] * shards))

    if want_events:
        from ..engine import CommitTracer
        commit = CommitTracer(tracer)
        for shard, cell in enumerate(cells):
            commit.add_shard_events(shard, list(cell.trace_events))
        commit.close()

    samples = [s for cell in cells for s in cell.samples]
    return StormResult(
        label=config.label,
        overload=OverloadReport.merged([cell.overload for cell in cells]),
        successes=sum(cell.successes for cell in cells),
        failures=sum(cell.failures for cell in cells),
        attainment_before=attainment_through_window(
            samples, config.slo, (0.0, config.degrade_start)),
        attainment_during=attainment_through_window(
            samples, config.slo, (config.degrade_start,
                                  config.degrade_end)),
        attainment_after=attainment_through_window(
            samples, config.slo, (config.degrade_end, config.duration)),
        peak_backlog=max(cell.peak_backlog for cell in cells),
        invariant_checks=sum(cell.checks for cell in cells),
        events=sum(cell.events for cell in cells),
    )


def storm_pair(config: StormConfig | None = None, *,
               resilience: ResilienceConfig | None = None
               ) -> tuple[StormConfig, StormConfig]:
    """The canonical A/B: the same storm without and with the layer."""
    base = config if config is not None else StormConfig()
    return (
        replace(base, resilience=None, label="unbounded"),
        replace(base,
                resilience=(resilience if resilience is not None
                            else ResilienceConfig()),
                label="resilient"),
    )


def run_storm_sweep(configs: list[StormConfig], *,
                    jobs: int = 1) -> list[StormResult]:
    """Run storm cases, optionally over worker processes.

    Each case is an independent seeded simulation, so ``jobs=N`` is
    bit-identical to ``jobs=1`` (same discipline as
    :func:`repro.cluster.run_cluster_sweep`).
    """
    import os
    from concurrent.futures import ProcessPoolExecutor

    from ..harness.sweep import _init_worker
    from ..transform.memo import warm_snapshot

    configs = list(configs)
    if jobs <= 1 or len(configs) <= 1:
        return [run_storm(config) for config in configs]
    workers = min(jobs, len(configs), os.cpu_count() or 1)
    with ProcessPoolExecutor(max_workers=workers,
                             initializer=_init_worker,
                             initargs=(warm_snapshot(),)) as pool:
        return list(pool.map(run_storm, configs))
