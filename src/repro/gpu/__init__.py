"""Timing substrate: discrete-event GPU simulator.

:class:`EventLoop` drives simulated time; :class:`GPUDevice` models an
SM-slot GPU over a :class:`GPUSpec`; kernels are described by
:class:`KernelDescriptor` and launched with a :class:`LaunchConfig`.
"""

from .device import DeviceLaunch, GPUDevice, LaunchStatus
from .engine import Event, EventLoop
from .kernel import KernelDescriptor, LaunchConfig, LaunchKind
from .specs import A100_SXM4_40GB, GPUSpec, RTX_3090, V100_SXM2_16GB

__all__ = [
    "A100_SXM4_40GB",
    "DeviceLaunch",
    "Event",
    "EventLoop",
    "GPUDevice",
    "GPUSpec",
    "KernelDescriptor",
    "LaunchConfig",
    "LaunchKind",
    "LaunchStatus",
    "RTX_3090",
    "V100_SXM2_16GB",
]
