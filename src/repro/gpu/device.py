"""Discrete-event GPU device model.

The device is a pool of resident-block slots and threads (per
:class:`~repro.gpu.specs.GPUSpec`).  Submitted launches dispatch thread
blocks into free slots in (priority, submission) order — exactly the
mechanism by which a long-running best-effort kernel delays a
high-priority kernel on real hardware: the high-priority blocks must
wait for resident blocks to drain.

Two launch kinds are modelled:

* ``ORIGINAL`` — every grid block is dispatched once; blocks that start
  together complete together (one event per wave-batch), which keeps
  the event count proportional to waves, not blocks.
* ``PTB`` — ``workers`` persistent blocks hold their slots and consume
  one logical block per iteration; a preemption request makes workers
  exit after the iteration in flight, bounding turnaround at one
  block's duration.  Iterations are **batched into one event per
  uninterrupted run segment**: while nothing can change an iteration's
  duration or stop the workers, the remaining iterations complete as a
  single simulation event, and any preemption request or co-location
  change *truncates* the batch at the next iteration boundary — so the
  observable timing is identical to per-iteration events while the
  event count collapses (see ``docs/performance.md``).

Slicing is realized above the device as a chain of ORIGINAL launches
over block sub-ranges (see :mod:`repro.core.scheduler`).

A mild ``colocation_slowdown`` factor inflates block durations while
blocks of more than one client are resident, standing in for memory
bandwidth and L2 contention that the slot model does not capture.
"""

from __future__ import annotations

import enum
import itertools
import math
from bisect import insort
from typing import Callable

from ..check.invariants import InvariantChecker, NULL_CHECKER
from ..errors import GPUSimError
from ..faults.injector import FaultInjector, NULL_INJECTOR
from ..trace import (
    KernelComplete,
    KernelStart,
    KernelSubmit,
    NULL_TRACER,
    PreemptAck,
    PreemptLost,
    PreemptRequest,
    Tracer,
)
from .engine import Event, EventLoop
from .kernel import (
    KernelDescriptor,
    LaunchConfig,
    LaunchKind,
    PTB_ITERATION_OVERHEAD,
)
from .specs import GPUSpec

__all__ = ["LaunchStatus", "DeviceLaunch", "GPUDevice"]


class LaunchStatus(enum.Enum):
    """Lifecycle of a device launch."""

    PENDING = "pending"  # submitted, not yet dispatched
    RUNNING = "running"
    COMPLETED = "completed"
    PREEMPTED = "preempted"  # stopped early; progress recorded


class _Batch:
    """A run of identical work intervals settled by one simulation event.

    Two flavours share this record and the truncation machinery:

    * a **PTB batch** — ``count`` persistent workers executing ``iters``
      iterations of ``iter_duration`` each;
    * an **ORIGINAL wave chain** — ``iters`` back-to-back full waves of
      ``count`` blocks each, only formed while the launch has the
      device to itself (so nothing can change a wave's size or price).

    The settlement event sits at ``started + iters * iter_duration``; a
    preemption request, a kill, a new arrival, or a co-location change
    truncates the batch at the next interval boundary (the interval in
    flight keeps the duration it started with, exactly as per-interval
    events would have priced it).
    """

    __slots__ = ("launch", "count", "threads", "started", "iter_duration",
                 "iters", "event")

    def __init__(self, launch: "DeviceLaunch", count: int, threads: int,
                 started: float, iter_duration: float, iters: int,
                 event: Event) -> None:
        self.launch = launch
        self.count = count
        self.threads = threads
        self.started = started
        self.iter_duration = iter_duration
        self.iters = iters
        self.event = event


class DeviceLaunch:
    """One kernel launch resident on (or queued for) the device."""

    __slots__ = (
        "descriptor", "config", "client_id", "priority", "on_complete",
        "total_blocks", "block_offset", "blocks_to_start", "blocks_inflight",
        "blocks_done", "tasks_done", "preempt_requested", "killed",
        "blocks_killed", "status", "submitted_at", "arrived_at",
        "started_at", "finished_at", "seq", "batches",
    )

    _seq = itertools.count()

    def __init__(
        self,
        descriptor: KernelDescriptor,
        config: LaunchConfig = LaunchConfig(),
        *,
        client_id: str = "default",
        priority: int = 0,
        on_complete: Callable[["DeviceLaunch"], None] | None = None,
        blocks: int | None = None,
        block_offset: int = 0,
    ) -> None:
        self.descriptor = descriptor
        self.config = config
        self.client_id = client_id
        self.priority = priority
        self.on_complete = on_complete
        self.total_blocks = (descriptor.num_blocks if blocks is None
                             else blocks)
        if self.total_blocks < 1:
            raise GPUSimError(f"{descriptor.name}: launch needs >= 1 block")
        self.block_offset = block_offset
        if config.kind is LaunchKind.PTB:
            self.blocks_to_start = min(config.workers, self.total_blocks)
        else:
            self.blocks_to_start = self.total_blocks
        self.blocks_inflight = 0
        self.blocks_done = 0
        self.tasks_done = 0
        self.preempt_requested = False
        self.killed = False
        self.blocks_killed = 0
        self.status = LaunchStatus.PENDING
        self.submitted_at = float("nan")
        self.arrived_at = float("nan")
        self.started_at = float("nan")
        self.finished_at = float("nan")
        self.seq = next(DeviceLaunch._seq)
        #: in-flight :class:`_Batch` records (PTB iteration batches or
        #: ORIGINAL wave chains)
        self.batches: list[_Batch] = []

    # ------------------------------------------------------------------
    @property
    def is_ptb(self) -> bool:
        return self.config.kind is LaunchKind.PTB

    @property
    def tasks_remaining(self) -> int:
        """Logical blocks not yet executed (PTB progress; for resume)."""
        if self.is_ptb:
            return self.total_blocks - self.tasks_done
        return self.total_blocks - self.blocks_done

    @property
    def done(self) -> bool:
        return self.status in (LaunchStatus.COMPLETED, LaunchStatus.PREEMPTED)

    def sort_key(self) -> tuple[int, int]:
        return (self.priority, self.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<DeviceLaunch {self.descriptor.name} {self.config.kind.value}"
                f" client={self.client_id} {self.status.value}>")


class GPUDevice:
    """The simulated GPU."""

    def __init__(self, spec: GPUSpec, engine: EventLoop, *,
                 colocation_slowdown: float = 1.15,
                 tracer: Tracer | None = None,
                 check: InvariantChecker | None = None,
                 faults: FaultInjector | None = None) -> None:
        if colocation_slowdown < 1.0:
            raise GPUSimError("colocation_slowdown must be >= 1.0")
        self.spec = spec
        self.engine = engine
        self.colocation_slowdown = colocation_slowdown
        #: transient health multiplier on block durations (1.0 = healthy);
        #: set by cluster-level fault injection via :meth:`set_speed_factor`
        self._speed_factor = 1.0
        #: shared observability channel; policies and drivers emit to
        #: ``device.tracer`` too, so one tracer sees the whole run
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: opt-in invariant checker (``repro.check``); the disabled
        #: default costs one attribute check per instrumentation site
        self.check = check if check is not None else NULL_CHECKER
        #: opt-in fault injector (``repro.faults``); same disabled
        #: default pattern, same zero-cost fault-free path
        self.faults = faults if faults is not None else NULL_INJECTOR
        self._total_threads = spec.total_threads
        self._threads_free = spec.total_threads
        self._slots_free = spec.total_block_slots
        self._resident: list[DeviceLaunch] = []  # sorted by (priority, seq)
        self._client_inflight: dict[str, int] = {}
        #: number of clients with at least one block in flight — kept
        #: incrementally so the co-location test is O(1), not a scan
        self._active_clients = 0
        #: launches submitted but still in their launch-overhead delay
        self._submitting: dict[str, int] = {}
        #: device-wide capacity per *occupancy key* — the full tuple of
        #: per-kernel quantities occupancy depends on in this model
        #: (threads per block, shared memory per block); keying on
        #: threads alone would alias kernels whose shared-memory
        #: pressure lowers their occupancy
        self._capacity_cache: dict[tuple[int, int], int] = {}
        #: multi-interval batches currently in flight — PTB iteration
        #: batches and ORIGINAL wave chains — truncated on arrivals and
        #: co-location transitions
        self._chains: list[_Batch] = []
        self._rr = 0  # round-robin cursor for same-priority fairness
        # Utilization accounting (thread-seconds of busy time).
        self._busy_thread_seconds = 0.0
        self._last_change = 0.0
        self.launches_completed = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def speed_factor(self) -> float:
        """Current health multiplier on block durations (1.0 = healthy)."""
        return self._speed_factor

    def set_speed_factor(self, factor: float) -> None:
        """Degrade (or restore) the device: blocks take ``factor``× longer.

        Models a transiently slow device — thermal throttling, ECC
        retirement storms, a noisy host neighbour — for cluster-level
        fault injection (:mod:`repro.faults`).  The factor follows the
        co-location pricing rule: intervals already in flight keep the
        price they started with, and batched schedules are truncated so
        their next interval boundary re-evaluates the new price.  Passing
        ``1.0`` restores full speed; runs that never call this method pay
        nothing on the hot path (a single ``!= 1.0`` test).
        """
        if factor <= 0.0:
            raise GPUSimError(f"speed factor must be > 0, got {factor!r}")
        if factor == self._speed_factor:
            return
        self._speed_factor = factor
        if self._chains:
            self._truncate_chains()

    def submit(self, launch: DeviceLaunch, *,
               launch_overhead: float | None = None) -> DeviceLaunch:
        """Queue a launch; it reaches the device after the launch overhead."""
        if launch.status is not LaunchStatus.PENDING or not math.isnan(
                launch.submitted_at):
            raise GPUSimError(f"launch {launch!r} already submitted")
        overhead = (self.spec.kernel_launch_overhead
                    if launch_overhead is None else launch_overhead)
        launch.submitted_at = self.engine.now
        if self.tracer.enabled:
            self.tracer.emit(KernelSubmit(
                ts=self.engine.now, client_id=launch.client_id,
                kernel=launch.descriptor.name, launch_seq=launch.seq,
                kind=launch.config.kind.value, priority=launch.priority,
                blocks=launch.total_blocks,
                block_offset=launch.block_offset,
                workers=launch.config.workers,
            ))
        self._submitting[launch.client_id] = (
            self._submitting.get(launch.client_id, 0) + 1
        )
        self.engine.schedule(overhead, lambda: self._arrive(launch))
        if self.check.enabled:
            self.check.verify(self)
        return launch

    def preempt(self, launch: DeviceLaunch) -> bool:
        """Request preemption: no new blocks start; in-flight blocks finish.

        For PTB launches workers exit after their current iteration, so
        the device is released within one block duration.  For ORIGINAL
        launches only not-yet-started blocks are cancelled (real GPUs
        cannot stop a running block), and progress is recorded so a
        sliced execution can continue from ``blocks_done``.

        Returns True when the request took effect.  Under fault
        injection a PTB flag write can be *lost* (the workers never see
        it): the device emits :class:`~repro.trace.PreemptLost` and
        returns False with the launch untouched — no ack will ever
        arrive, which is the condition the scheduler's watchdog exists
        to recover from.
        """
        if launch.done:
            return True
        if self.tracer.enabled and not launch.preempt_requested:
            self.tracer.emit(PreemptRequest(
                ts=self.engine.now, client_id=launch.client_id,
                kernel=launch.descriptor.name, launch_seq=launch.seq,
                mechanism="ptb-flag" if launch.is_ptb else "drain",
            ))
        if (self.faults.enabled and launch.is_ptb
                and launch.blocks_inflight > 0
                and not launch.preempt_requested
                and self.faults.lost_preempt_ack()):
            if self.tracer.enabled:
                self.tracer.emit(PreemptLost(
                    ts=self.engine.now, client_id=launch.client_id,
                    kernel=launch.descriptor.name, launch_seq=launch.seq,
                    mechanism="ptb-flag",
                ))
            return False
        launch.preempt_requested = True
        # Batched PTB iterations settle at the next boundary: the flag
        # write lands mid-iteration, workers exit when it completes.
        for batch in launch.batches:
            self._truncate_batch(batch)
        # If nothing is in flight and the launch has already reached the
        # device (it may have been starved of slots and never started),
        # retire it immediately; a launch still in its submission delay
        # is retired by _arrive instead.
        if launch.blocks_inflight == 0 and not math.isnan(launch.arrived_at):
            self._finalize(launch)
        if self.check.enabled:
            self.check.verify(self)
        return True

    def kill(self, launch: DeviceLaunch) -> None:
        """Reset-based preemption (REEF-style): discard in-flight work.

        All of the launch's resident blocks terminate immediately and
        their partial work is lost — only sound for *idempotent*
        kernels, which is exactly the applicability restriction the
        paper criticizes REEF for.  The launch retires as PREEMPTED with
        ``blocks_done`` counting only fully completed blocks, so a
        restart re-executes everything else.
        """
        if launch.done:
            return
        if self.tracer.enabled and not launch.preempt_requested:
            self.tracer.emit(PreemptRequest(
                ts=self.engine.now, client_id=launch.client_id,
                kernel=launch.descriptor.name, launch_seq=launch.seq,
                mechanism="kill",
            ))
        launch.preempt_requested = True
        launch.killed = True
        # Credit iterations that fully completed inside in-flight PTB
        # batches before discarding them (the iteration in flight is
        # lost, matching per-iteration accounting).
        for batch in launch.batches:
            self._settle_batch_progress(batch)
            batch.event.cancel()
            if batch in self._chains:
                self._chains.remove(batch)
        launch.batches.clear()
        if launch.blocks_inflight > 0:
            # The batch completion events still fire, but the resources
            # are returned now and the events become no-ops.
            self._account()
            tpb = launch.descriptor.threads_per_block
            self._threads_free += launch.blocks_inflight * tpb
            self._slots_free += launch.blocks_inflight
            self._sub_inflight(launch.client_id, launch.blocks_inflight)
            launch.blocks_killed += launch.blocks_inflight
            launch.blocks_inflight = 0
        if not math.isnan(launch.arrived_at):
            self._finalize(launch)
        if self.check.enabled:
            self.check.verify(self)

    def busy_for_client(self, client_id: str) -> bool:
        """Whether ``client_id`` has a launch resident **or** still in
        its submission delay.

        A launch between :meth:`submit` and its arrival on the device
        counts as busy, so policies polling this cannot double-dispatch
        a client during the launch-overhead window.
        """
        if self._submitting.get(client_id, 0) > 0:
            return True
        return any(l.client_id == client_id for l in self._resident)

    def resident_for(self, client_id: str) -> list[DeviceLaunch]:
        """The client's resident, unfinished launches (for cleanup)."""
        return [l for l in self._resident
                if l.client_id == client_id and not l.done]

    @property
    def threads_free(self) -> int:
        return self._threads_free

    @property
    def slots_free(self) -> int:
        return self._slots_free

    @property
    def resident_launches(self) -> tuple[DeviceLaunch, ...]:
        return tuple(self._resident)

    def utilization(self) -> float:
        """Mean fraction of thread capacity busy since t=0."""
        self._account()
        if self.engine.now <= 0:
            return 0.0
        return self._busy_thread_seconds / (
            self.engine.now * self._total_threads
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _account(self) -> None:
        now = self.engine.now
        last = self._last_change
        if now != last:
            busy = self._total_threads - self._threads_free
            if busy:
                self._busy_thread_seconds += busy * (now - last)
            self._last_change = now

    def _sub_inflight(self, client_id: str, count: int) -> None:
        """Decrement a client's in-flight blocks; track 0-transitions."""
        inflight = self._client_inflight
        left = inflight[client_id] - count
        inflight[client_id] = left
        if left == 0 and count > 0:
            self._active_clients -= 1
            if self._chains:
                self._reprice_batches(client_id)

    def _arrive(self, launch: DeviceLaunch) -> None:
        launch.arrived_at = self.engine.now
        self._submitting[launch.client_id] -= 1
        if self._chains:
            # The newcomer competes for resources from the next interval
            # boundary on; batched schedules stop being safe now.
            self._truncate_chains()
        insort(self._resident, launch, key=DeviceLaunch.sort_key)
        if launch.preempt_requested and launch.blocks_inflight == 0:
            # Preempted before it ever dispatched.
            self._finalize(launch)
        else:
            self._dispatch()
        if self.check.enabled:
            self.check.verify(self)

    def _capacity(self, threads_per_block: int,
                  shared_mem_per_block: int = 0) -> int:
        key = (threads_per_block, shared_mem_per_block)
        cached = self._capacity_cache.get(key)
        if cached is None:
            cached = self.spec.concurrent_blocks(threads_per_block,
                                                 shared_mem_per_block)
            self._capacity_cache[key] = cached
        return cached

    def _dispatch(self) -> None:
        """Start pending blocks: strict priority between levels, fair
        round-robin within a level (concurrent grids on real hardware
        interleave their blocks rather than strictly serializing)."""
        resident = self._resident
        if not resident or self._slots_free <= 0:
            return
        i = 0
        n = len(resident)
        while i < n and self._slots_free > 0:
            priority = resident[i].priority
            j = i
            first: DeviceLaunch | None = None
            group: list[DeviceLaunch] | None = None
            while j < n and resident[j].priority == priority:
                launch = resident[j]
                if launch.blocks_to_start > 0 and not launch.preempt_requested:
                    if first is None:
                        first = launch
                    elif group is None:
                        group = [first, launch]
                    else:
                        group.append(launch)
                j += 1
            if group is not None:
                self._dispatch_group(group)
            elif first is not None:
                self._dispatch_single(first)
            i = j

    def _dispatch_single(self, launch: DeviceLaunch) -> None:
        """Fast path: one launch wants blocks at this priority level."""
        descriptor = launch.descriptor
        tpb = descriptor.threads_per_block
        fit = self._threads_free // tpb
        if fit > self._slots_free:
            fit = self._slots_free
        if fit > launch.blocks_to_start:
            fit = launch.blocks_to_start
        if fit <= 0:
            return
        # Coalesce: avoid shredding big grids into slivers (each batch
        # is one simulation event).  Small remainders and small kernels
        # always go through.
        capacity = self._capacity(tpb, descriptor.shared_mem_per_block)
        min_chunk = capacity // 8
        if min_chunk > launch.blocks_to_start:
            min_chunk = launch.blocks_to_start
        if fit < min_chunk:
            return
        self._start_batch(launch, fit, solo=True)

    def _dispatch_group(self, group: list[DeviceLaunch]) -> None:
        self._rr = (self._rr + 1) % len(group)
        group = group[self._rr:] + group[:self._rr]
        progress = True
        while progress and self._slots_free > 0:
            progress = False
            pending = [l for l in group if l.blocks_to_start > 0]
            if not pending:
                return
            share = max(1, self._slots_free // len(pending))
            for launch in pending:
                tpb = launch.descriptor.threads_per_block
                fit = min(
                    self._threads_free // tpb,
                    self._slots_free,
                    launch.blocks_to_start,
                )
                if len(pending) > 1:
                    fit = min(fit, share)
                if fit <= 0:
                    continue
                min_chunk = min(
                    launch.blocks_to_start,
                    max(1, self._capacity(
                        tpb, launch.descriptor.shared_mem_per_block) // 8),
                )
                if fit < min_chunk:
                    continue
                self._start_batch(launch, fit)
                progress = True

    def _colocated(self, client_id: str) -> bool:
        active = self._active_clients
        if active == 0:
            return False
        if active > 1:
            return True
        return self._client_inflight.get(client_id, 0) == 0

    def _block_duration(self, launch: DeviceLaunch) -> float:
        duration = launch.descriptor.block_duration
        if self._colocated(launch.client_id):
            duration *= self.colocation_slowdown
        if self._speed_factor != 1.0:
            duration *= self._speed_factor
        return duration

    def _start_batch(self, launch: DeviceLaunch, count: int, *,
                     solo: bool = False) -> None:
        if self.check.enabled:
            self.check.verify_dispatch(self, launch)
        self._account()
        tpb = launch.descriptor.threads_per_block
        threads = count * tpb
        self._threads_free -= threads
        self._slots_free -= count
        launch.blocks_to_start -= count
        launch.blocks_inflight += count
        inflight = self._client_inflight
        prev = inflight.get(launch.client_id, 0)
        inflight[launch.client_id] = prev + count
        if prev == 0:
            self._active_clients += 1
            if self._chains:
                self._reprice_batches(launch.client_id)
        if launch.status is LaunchStatus.PENDING:
            launch.status = LaunchStatus.RUNNING
            launch.started_at = self.engine.now
            if self.tracer.enabled:
                self.tracer.emit(KernelStart(
                    ts=self.engine.now, client_id=launch.client_id,
                    kernel=launch.descriptor.name, launch_seq=launch.seq,
                    blocks=launch.total_blocks,
                ))

        if launch.is_ptb:
            self._start_ptb_batch(launch, count, threads)
        else:
            duration = self._block_duration(launch)
            if (solo and launch.blocks_to_start >= count
                    and launch.blocks_inflight == count
                    and self._alone_on_device(launch)):
                self._start_wave_chain(launch, count, threads, duration)
            else:
                self.engine.schedule(
                    duration,
                    lambda: self._finish_batch(launch, count, threads),
                )

    def _alone_on_device(self, launch: DeviceLaunch) -> bool:
        """Whether ``launch`` holds every claimed resource on the device
        and no other resident launch could start blocks before it
        finishes (the precondition for chaining its remaining waves)."""
        if (self._threads_free + launch.blocks_inflight
                * launch.descriptor.threads_per_block != self._total_threads):
            return False
        if self._slots_free + launch.blocks_inflight \
                != self.spec.total_block_slots:
            return False
        for other in self._resident:
            if (other is not launch and other.blocks_to_start > 0
                    and not other.preempt_requested):
                return False
        return True

    def _release(self, launch: DeviceLaunch, count: int, threads: int) -> None:
        self._account()
        self._threads_free += threads
        self._slots_free += count
        launch.blocks_inflight -= count
        self._sub_inflight(launch.client_id, count)

    def _finish_batch(self, launch: DeviceLaunch, count: int,
                      threads: int) -> None:
        if launch.killed:
            return  # resources already reclaimed by kill()
        self._release(launch, count, threads)
        launch.blocks_done += count
        finished = (launch.blocks_inflight == 0
                    and (launch.blocks_to_start == 0
                         or launch.preempt_requested))
        if finished:
            self._finalize(launch)
        else:
            self._dispatch()
        if self.check.enabled:
            self.check.verify(self)

    # ------------------------------------------------------------------
    # PTB iteration batching
    # ------------------------------------------------------------------
    def _ptb_iteration_duration(self, launch: DeviceLaunch) -> float:
        desc = launch.descriptor
        base = self._block_duration(launch)
        return base * (1.0 + desc.ptb_overhead_fraction) + PTB_ITERATION_OVERHEAD

    def _start_ptb_batch(self, launch: DeviceLaunch, count: int,
                         threads: int) -> None:
        """Schedule a run segment for ``count`` freshly placed workers.

        When this batch is the launch's *only* worker group (the common
        case — all workers placed at once), every remaining iteration is
        scheduled as one settlement event; otherwise concurrent worker
        groups consume tasks interleaved, so the batch advances one
        iteration at a time (exactly the pre-batching behaviour).
        """
        duration = self._ptb_iteration_duration(launch)
        if (launch.blocks_to_start == 0
                and launch.blocks_inflight == count
                and not launch.preempt_requested):
            remaining = launch.total_blocks - launch.tasks_done
            iters = -(-remaining // count)  # ceil
        else:
            iters = 1
        batch = _Batch(launch, count, threads, self.engine.now,
                       duration, iters, None)  # type: ignore[arg-type]
        batch.event = self.engine.schedule(
            duration * iters, lambda: self._ptb_batch_done(batch))
        launch.batches.append(batch)
        if iters > 1:
            self._chains.append(batch)

    def _start_wave_chain(self, launch: DeviceLaunch, count: int,
                          threads: int, duration: float) -> None:
        """Chain the remaining full waves of a solo ORIGINAL launch.

        The launch holds the whole device, so every subsequent wave
        starts the instant the previous one completes, with the same
        size and the same price — ``1 + blocks_to_start // count`` waves
        collapse into one settlement event (a sub-``count`` remainder
        wave, which occupies fewer threads, runs normally afterwards).
        Bookkeeping for the not-yet-started waves stays in
        ``blocks_to_start`` until settlement, so block conservation
        holds at every observable point.
        """
        extra = launch.blocks_to_start // count
        batch = _Batch(launch, count, threads, self.engine.now,
                       duration, 1 + extra, None)  # type: ignore[arg-type]
        batch.event = self.engine.schedule(
            duration * (1 + extra), lambda: self._wave_chain_done(batch))
        launch.batches.append(batch)
        self._chains.append(batch)

    def _settle(self, batch: _Batch, completed: int) -> None:
        """Credit ``completed`` fully elapsed intervals of ``batch`` and
        re-anchor it so repeated settlement never double-credits."""
        if completed <= 0:
            return
        launch = batch.launch
        if launch.is_ptb:
            remaining = launch.total_blocks - launch.tasks_done
            consumed = min(completed * batch.count, remaining)
            launch.tasks_done += consumed
            launch.blocks_done = launch.tasks_done
        else:
            # Completed waves moved blocks straight from blocks_to_start
            # to blocks_done (the chain's in-flight wave stays the only
            # contribution to blocks_inflight throughout).
            launch.blocks_done += completed * batch.count
            launch.blocks_to_start -= completed * batch.count
        batch.started += completed * batch.iter_duration
        batch.iters -= completed

    def _settle_batch_progress(self, batch: _Batch) -> None:
        """Credit intervals of ``batch`` that have fully completed,
        for a batch ending early on a kill: the interval in flight is
        lost, but intervals whose boundary has passed were real work —
        per-interval events would have credited them as they fired.
        """
        elapsed = self.engine.now - batch.started
        if elapsed <= 0 or batch.iter_duration <= 0:
            return
        completed = int(elapsed / batch.iter_duration + 1e-9)
        cap = batch.iters if batch.launch.is_ptb else batch.iters - 1
        self._settle(batch, min(completed, cap))

    def _truncate_batch(self, batch: _Batch) -> None:
        """Shrink ``batch`` to settle at the next interval boundary.

        Fully elapsed intervals are credited immediately (so the
        launch's counters are exact from this point on — the world is
        about to change, and dispatch may consult them).  If the batch
        sits exactly on an interval boundary, it settles *now* — the
        per-interval event chain had an event at this very timestamp —
        otherwise the interval in flight runs out at the duration it
        started with.  Either way the settlement handler re-evaluates
        the world (preemption flag, co-location pricing, free
        resources) when it fires, exactly as per-interval events did at
        every boundary.
        """
        if batch.iters <= 1:
            return
        q = (self.engine.now - batch.started) / batch.iter_duration
        completed = int(q + 1e-9)
        if completed >= batch.iters:
            return  # the settlement event is due at this very instant
        # Exactly on a boundary (and not at the batch's own start): the
        # per-interval chain had an event at this very timestamp.
        at_boundary = completed >= 1 and q - completed <= 1e-9
        self._settle(batch, completed)
        batch.event.cancel()
        fn = (self._ptb_batch_done if batch.launch.is_ptb
              else self._wave_chain_done)
        if at_boundary:
            batch.iters = 0
            when = self.engine.now
        else:
            batch.iters = 1
            when = batch.started + batch.iter_duration
            if when < self.engine.now:
                when = self.engine.now
        batch.event = self.engine.schedule_at(when, lambda: fn(batch))

    def _reprice_batches(self, changed_client: str) -> None:
        """A client's residency flipped: other clients' batched
        intervals may now be priced wrong — truncate them so the next
        boundary re-evaluates the co-location factor."""
        for batch in list(self._chains):
            if batch.launch.client_id != changed_client:
                self._truncate_batch(batch)

    def _truncate_chains(self) -> None:
        """A new launch reached the device: every batched schedule may
        now face competition for resources (and re-pricing), so all of
        them settle at their next interval boundary."""
        for batch in list(self._chains):
            self._truncate_batch(batch)

    def _wave_chain_done(self, batch: _Batch) -> None:
        launch = batch.launch
        if batch in self._chains:
            self._chains.remove(batch)
        if launch.killed:
            return  # resources already reclaimed by kill()
        if batch in launch.batches:
            launch.batches.remove(batch)
        count = batch.count
        launch.blocks_done += batch.iters * count
        launch.blocks_to_start -= (batch.iters - 1) * count
        self._release(launch, count, batch.threads)
        finished = (launch.blocks_inflight == 0
                    and (launch.blocks_to_start == 0
                         or launch.preempt_requested))
        if finished:
            self._finalize(launch)
        else:
            self._dispatch()
        if self.check.enabled:
            self.check.verify(self)

    def _ptb_batch_done(self, batch: _Batch) -> None:
        launch = batch.launch
        if batch in self._chains:
            self._chains.remove(batch)
        if launch.killed:
            return  # resources already reclaimed by kill()
        if batch in launch.batches:
            launch.batches.remove(batch)
        workers = batch.count
        remaining = launch.total_blocks - launch.tasks_done
        consumed = min(batch.iters * workers, remaining)
        launch.tasks_done += consumed
        launch.blocks_done = launch.tasks_done
        stop = (launch.preempt_requested
                or launch.tasks_done >= launch.total_blocks)
        if stop:
            self._release(launch, workers, batch.threads)
            if launch.blocks_inflight == 0:
                self._finalize(launch)
            else:
                self._dispatch()
        else:
            # Workers hold their slots and start the next run segment
            # under the current co-location pricing.
            self._start_ptb_batch(launch, workers, batch.threads)
        if self.check.enabled:
            self.check.verify(self)

    # ------------------------------------------------------------------
    def _finalize(self, launch: DeviceLaunch) -> None:
        completed = launch.tasks_remaining <= 0
        launch.status = (LaunchStatus.COMPLETED if completed
                         else LaunchStatus.PREEMPTED)
        launch.finished_at = self.engine.now
        if self.tracer.enabled:
            started = (None if math.isnan(launch.started_at)
                       else launch.started_at)
            self.tracer.emit(KernelComplete(
                ts=self.engine.now, client_id=launch.client_id,
                kernel=launch.descriptor.name, launch_seq=launch.seq,
                status=launch.status.value, blocks_done=launch.blocks_done,
                started_at=started,
                duration=(None if started is None
                          else self.engine.now - started),
            ))
            if launch.status is LaunchStatus.PREEMPTED:
                self.tracer.emit(PreemptAck(
                    ts=self.engine.now, client_id=launch.client_id,
                    kernel=launch.descriptor.name, launch_seq=launch.seq,
                    blocks_done=launch.blocks_done,
                    blocks_lost=launch.blocks_killed,
                ))
        try:
            self._resident.remove(launch)
        except ValueError:
            pass
        self.launches_completed += 1
        self._dispatch()
        if self.check.enabled:
            self.check.verify(self)
        if launch.on_complete is not None:
            launch.on_complete(launch)
