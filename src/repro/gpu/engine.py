"""Discrete-event simulation engine.

A minimal, fast event loop.  All simulated time is in **seconds**
(floats).  The engine is deliberately free of domain knowledge — the
GPU device, schedulers, and workload drivers all build on it.

Hot-path design (see ``docs/performance.md``):

* heap entries are ``(time, seq, event)`` **tuples**, so every heap
  sift compares in C (tuple comparison) instead of calling a Python
  ``__lt__`` — on real runs this removes millions of interpreted calls;
* :class:`Event` handles are slotted and carry only what cancellation
  needs; the heap never compares them (the ``(time, seq)`` prefix is
  unique);
* cancellation is O(1) and lazy, with an in-place compaction sweep once
  dead entries dominate, so drivers polling :attr:`EventLoop.pending`
  never spin over a graveyard.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Callable

from ..errors import GPUSimError

__all__ = ["Event", "EventLoop"]


class Event:
    """A scheduled callback; cancellable until it fires."""

    __slots__ = ("time", "seq", "fn", "cancelled", "loop")

    def __init__(self, time: float, seq: int, fn: Callable[[], None],
                 loop: "EventLoop | None" = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False
        self.loop = loop

    def cancel(self) -> None:
        """Prevent the event from firing (O(1); removed lazily)."""
        if not self.cancelled:
            self.cancelled = True
            if self.loop is not None:
                self.loop._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.9f}{state}>"


class EventLoop:
    """A deterministic discrete-event loop.

    Ties are broken by scheduling order, so runs are reproducible.
    """

    #: cancelled-event count past which the heap is compacted in place
    #: (only when at least half the queue is dead), so drivers polling
    #: :attr:`pending` never spin over an ever-growing graveyard
    COMPACT_THRESHOLD = 64

    def __init__(self) -> None:
        self.now = 0.0
        #: heap of ``(time, seq, Event)`` — C-speed tuple comparisons
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._cancelled = 0  # cancelled events still sitting in the heap
        self.events_processed = 0

    def schedule_at(self, time: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run at absolute simulation time ``time``."""
        if time < self.now:
            raise GPUSimError(
                f"cannot schedule event at {time:.9f} before now ({self.now:.9f})"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, fn, self)
        heappush(self._heap, (time, seq, event))
        return event

    def schedule(self, delay: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise GPUSimError(f"negative delay {delay!r}")
        return self.schedule_at(self.now + delay, fn)

    def call_soon(self, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` at the current time (after pending same-time events)."""
        return self.schedule_at(self.now, fn)

    def _note_cancel(self) -> None:
        self._cancelled += 1
        heap = self._heap
        if (self._cancelled >= self.COMPACT_THRESHOLD
                and self._cancelled * 2 >= len(heap)):
            # Rebuild in place: run loops hold a reference to the list.
            heap[:] = [entry for entry in heap if not entry[2].cancelled]
            heapify(heap)
            self._cancelled = 0

    @property
    def pending(self) -> int:
        """Number of *live* (non-cancelled) events still queued."""
        return len(self._heap) - self._cancelled

    def peek_time(self) -> float | None:
        """Time of the next live event, or None if the queue is empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heappop(heap)
            self._cancelled -= 1
        return heap[0][0] if heap else None

    def step(self) -> bool:
        """Run the next event; return False if none remain."""
        heap = self._heap
        while heap:
            time, _seq, event = heappop(heap)
            if event.cancelled:
                self._cancelled -= 1
                continue
            self.now = time
            self.events_processed += 1
            event.fn()
            return True
        return False

    def run_until(self, time: float, *, max_events: int | None = None) -> None:
        """Run all events up to and including ``time``.

        The clock is advanced to ``time`` afterwards even if the queue
        drained earlier.
        """
        heap = self._heap
        pop = heappop
        processed = 0
        unbounded = max_events is None
        while heap:
            when = heap[0][0]
            if when > time:
                break
            _when, _seq, event = pop(heap)
            if event.cancelled:
                self._cancelled -= 1
                continue
            self.now = when
            self.events_processed += 1
            event.fn()
            processed += 1
            if not unbounded and processed >= max_events:
                raise GPUSimError(
                    f"exceeded {max_events} events before reaching t={time}"
                )
        if time > self.now:
            self.now = time

    def run(self, *, max_events: int = 50_000_000) -> None:
        """Run until the event queue drains."""
        heap = self._heap
        pop = heappop
        processed = 0
        while heap:
            when, _seq, event = pop(heap)
            if event.cancelled:
                self._cancelled -= 1
                continue
            self.now = when
            self.events_processed += 1
            event.fn()
            processed += 1
            if processed >= max_events:
                raise GPUSimError(f"exceeded {max_events} events")
