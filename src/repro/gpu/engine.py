"""Discrete-event simulation engine.

A minimal, fast event loop: events are ``(time, seq, callback)`` triples
in a binary heap.  All simulated time is in **seconds** (floats).  The
engine is deliberately free of domain knowledge — the GPU device,
schedulers, and workload drivers all build on it.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from ..errors import GPUSimError

__all__ = ["Event", "EventLoop"]


class Event:
    """A scheduled callback; cancellable until it fires."""

    __slots__ = ("time", "seq", "fn", "cancelled", "loop")

    def __init__(self, time: float, seq: int, fn: Callable[[], None],
                 loop: "EventLoop | None" = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False
        self.loop = loop

    def cancel(self) -> None:
        """Prevent the event from firing (O(1); removed lazily)."""
        if not self.cancelled:
            self.cancelled = True
            if self.loop is not None:
                self.loop._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.9f}{state}>"


class EventLoop:
    """A deterministic discrete-event loop.

    Ties are broken by scheduling order, so runs are reproducible.
    """

    #: cancelled-event count past which the heap is compacted in place
    #: (only when at least half the queue is dead), so drivers polling
    #: :attr:`pending` never spin over an ever-growing graveyard
    COMPACT_THRESHOLD = 64

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._cancelled = 0  # cancelled events still sitting in the heap
        self.events_processed = 0

    def schedule_at(self, time: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run at absolute simulation time ``time``."""
        if time < self.now:
            raise GPUSimError(
                f"cannot schedule event at {time:.9f} before now ({self.now:.9f})"
            )
        event = Event(time, next(self._seq), fn, self)
        heapq.heappush(self._heap, event)
        return event

    def schedule(self, delay: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise GPUSimError(f"negative delay {delay!r}")
        return self.schedule_at(self.now + delay, fn)

    def call_soon(self, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` at the current time (after pending same-time events)."""
        return self.schedule_at(self.now, fn)

    def _note_cancel(self) -> None:
        self._cancelled += 1
        heap = self._heap
        if (self._cancelled >= self.COMPACT_THRESHOLD
                and self._cancelled * 2 >= len(heap)):
            # Rebuild in place: run loops hold a reference to the list.
            heap[:] = [e for e in heap if not e.cancelled]
            heapq.heapify(heap)
            self._cancelled = 0

    @property
    def pending(self) -> int:
        """Number of *live* (non-cancelled) events still queued."""
        return len(self._heap) - self._cancelled

    def peek_time(self) -> float | None:
        """Time of the next live event, or None if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._cancelled -= 1
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Run the next event; return False if none remain."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)
            if event.cancelled:
                self._cancelled -= 1
                continue
            self.now = event.time
            self.events_processed += 1
            event.fn()
            return True
        return False

    def run_until(self, time: float, *, max_events: int | None = None) -> None:
        """Run all events up to and including ``time``.

        The clock is advanced to ``time`` afterwards even if the queue
        drained earlier.
        """
        heap = self._heap
        processed = 0
        while heap:
            event = heap[0]
            if event.time > time:
                break
            heapq.heappop(heap)
            if event.cancelled:
                self._cancelled -= 1
                continue
            self.now = event.time
            self.events_processed += 1
            event.fn()
            processed += 1
            if max_events is not None and processed >= max_events:
                raise GPUSimError(
                    f"exceeded {max_events} events before reaching t={time}"
                )
        if time > self.now:
            self.now = time

    def run(self, *, max_events: int = 50_000_000) -> None:
        """Run until the event queue drains."""
        processed = 0
        while self.step():
            processed += 1
            if processed >= max_events:
                raise GPUSimError(f"exceeded {max_events} events")
