"""Discrete-event simulation engine.

A minimal, fast event loop.  All simulated time is in **seconds**
(floats).  The engine is deliberately free of domain knowledge — the
GPU device, schedulers, and workload drivers all build on it.

Hot-path design (see ``docs/performance.md``):

* heap entries are ``(time, seq, event)`` **tuples**, so every heap
  sift compares in C (tuple comparison) instead of calling a Python
  ``__lt__`` — on real runs this removes millions of interpreted calls;
* :class:`Event` handles are slotted and carry only what cancellation
  needs; the heap never compares them (the ``(time, seq)`` prefix is
  unique);
* cancellation is O(1) and lazy, with an in-place compaction sweep once
  dead entries dominate, so drivers polling :attr:`EventLoop.pending`
  never spin over a graveyard;
* a **sorted-run fast path**: while every ``schedule_at`` so far has
  been non-decreasing in time, the backing array *is* the sorted event
  order (a monotone ``heappush`` never sifts), which is exactly
  ``heappop``'s worst case — each pop moves the array's largest entry
  to the root and sifts it all the way back down.  The loop tracks that
  monotone run and drains it by index instead, so fanout-shaped phases
  (many pre-scheduled timers) cost the same per event as a
  self-rescheduling chain.  The first out-of-order push compacts and
  re-heapifies, falling back to classic heap behaviour.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Callable

from ..errors import GPUSimError

__all__ = ["Event", "EventLoop"]


class Event:
    """A scheduled callback; cancellable until it fires."""

    __slots__ = ("time", "seq", "fn", "cancelled", "loop")

    def __init__(self, time: float, seq: int, fn: Callable[[], None],
                 loop: "EventLoop | None" = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False
        self.loop = loop

    def cancel(self) -> None:
        """Prevent the event from firing (O(1); removed lazily)."""
        if not self.cancelled:
            self.cancelled = True
            if self.loop is not None:
                self.loop._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.9f}{state}>"


class EventLoop:
    """A deterministic discrete-event loop.

    Ties are broken by scheduling order, so runs are reproducible.
    """

    #: cancelled-event count past which the heap is compacted in place
    #: (only when at least half the queue is dead), so drivers polling
    #: :attr:`pending` never spin over an ever-growing graveyard
    COMPACT_THRESHOLD = 64
    #: live sorted-run length below which draining falls back to the
    #: classic heap loop — index iteration only pays for itself once
    #: heappop's sift depth (log n) dominates the per-event bookkeeping
    SORTED_DRAIN_MIN = 64

    def __init__(self) -> None:
        self.now = 0.0
        #: heap of ``(time, seq, Event)`` — C-speed tuple comparisons.
        #: While ``_sorted`` is True the array is fully sorted and
        #: ``_head`` entries at the front have already been consumed.
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._cancelled = 0  # cancelled events still sitting in the heap
        self._sorted = True  # every push so far non-decreasing in time
        self._head = 0       # consumed prefix length (sorted mode only)
        self.events_processed = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(self, time: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run at absolute simulation time ``time``."""
        if time < self.now:
            raise GPUSimError(
                f"cannot schedule event at {time:.9f} before now ({self.now:.9f})"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, fn, self)
        heap = self._heap
        if self._sorted:
            # Monotone run: a push at/after the current tail keeps the
            # array sorted, so it is a plain append (no sift at all).
            if not heap or len(heap) == self._head or time >= heap[-1][0]:
                heap.append((time, seq, event))
            else:
                self._exit_sorted_mode()
                heappush(heap, (time, seq, event))
        else:
            heappush(heap, (time, seq, event))
        return event

    def schedule(self, delay: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise GPUSimError(f"negative delay {delay!r}")
        return self.schedule_at(self.now + delay, fn)

    def call_soon(self, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` at the current time (after pending same-time events)."""
        return self.schedule_at(self.now, fn)

    # ------------------------------------------------------------------
    # Internal bookkeeping
    # ------------------------------------------------------------------
    def _exit_sorted_mode(self) -> None:
        """An out-of-order push: drop the consumed prefix and re-heapify.

        A sorted array already satisfies the heap invariant, so the
        surviving suffix needs no sifting — but the consumed ``_head``
        prefix must go first or dead entries would resurface.
        """
        if self._head:
            del self._heap[:self._head]
            self._head = 0
        self._sorted = False

    def _note_cancel(self) -> None:
        self._cancelled += 1
        heap = self._heap
        if (self._cancelled >= self.COMPACT_THRESHOLD
                and self._cancelled * 2 >= len(heap) - self._head):
            # Rebuild in place: run loops hold a reference to the list.
            # A filtered sorted array stays sorted, so sorted mode (and
            # its no-sift pushes) survives the sweep.
            heap[:] = [entry for entry in heap[self._head:]
                       if not entry[2].cancelled]
            self._head = 0
            if not self._sorted:
                heapify(heap)
            self._cancelled = 0

    @property
    def pending(self) -> int:
        """Number of *live* (non-cancelled) events still queued."""
        return len(self._heap) - self._head - self._cancelled

    # ------------------------------------------------------------------
    # Inspection / draining
    # ------------------------------------------------------------------
    def peek_time(self) -> float | None:
        """Time of the next live event, or None if the queue is empty."""
        heap = self._heap
        if self._sorted:
            head = self._head
            while head < len(heap) and heap[head][2].cancelled:
                head += 1
                self._cancelled -= 1
            self._head = head
            if head == len(heap):
                del heap[:]
                self._head = 0
                self._cancelled = 0
                return None
            return heap[head][0]
        while heap and heap[0][2].cancelled:
            heappop(heap)
            self._cancelled -= 1
        if not heap:
            self._sorted = True
            self._cancelled = 0
            return None
        return heap[0][0]

    def _pop_next(self) -> tuple[float, Event] | None:
        """Remove and return the next live event, or None."""
        heap = self._heap
        if self._sorted:
            head = self._head
            n = len(heap)
            while head < n:
                time, _seq, event = heap[head]
                head += 1
                if event.cancelled:
                    self._cancelled -= 1
                    continue
                self._head = head
                return time, event
            del heap[:]
            self._head = 0
            self._cancelled = 0
            return None
        while heap:
            time, _seq, event = heappop(heap)
            if event.cancelled:
                self._cancelled -= 1
                continue
            return time, event
        self._sorted = True
        self._cancelled = 0
        return None

    def step(self) -> bool:
        """Run the next event; return False if none remain."""
        nxt = self._pop_next()
        if nxt is None:
            return False
        time, event = nxt
        self.now = time
        self.events_processed += 1
        event.fn()
        return True

    def _drain(self, limit: float | None, inclusive: bool,
               max_events: int | None) -> int:
        """Run events until ``limit`` (or forever when None).

        The single inner loop behind :meth:`advance_to`,
        :meth:`run_until`, and :meth:`run`, with both storage modes
        inlined — per-event overhead is what macro benchmarks measure.
        """
        heap = self._heap
        pop = heappop
        processed = 0
        bound = float("inf") if max_events is None else max_events
        while True:
            if self._sorted and len(heap) - self._head < self.SORTED_DRAIN_MIN:
                # Shallow queues drain faster through the classic heap
                # loop (heappop on a near-empty heap is pure C); convert
                # once and stay there until the queue fully drains.
                self._exit_sorted_mode()
            if self._sorted:
                head = self._head
                n = len(heap)
                while head < n:
                    when, _seq, event = heap[head]
                    if event.cancelled:
                        head += 1
                        self._cancelled -= 1
                        continue
                    if limit is not None and (
                            when > limit
                            or (when == limit and not inclusive)):
                        self._head = head
                        return processed
                    head += 1
                    self._head = head
                    self.now = when
                    self.events_processed += 1
                    event.fn()
                    processed += 1
                    if processed >= bound:
                        raise GPUSimError(
                            f"exceeded {max_events} events"
                            + (f" before reaching t={limit}"
                               if limit is not None else ""))
                    if not self._sorted:
                        break  # out-of-order push re-heapified the array
                    # callbacks may append events or trigger a
                    # compaction sweep; re-read both cursors
                    head = self._head
                    n = len(heap)
                else:
                    # drained the whole sorted run
                    del heap[:]
                    self._head = 0
                    self._cancelled = 0
                    return processed
                continue  # fell out via mode flip: enter the heap loop
            while heap:
                when = heap[0][0]
                if limit is not None and (
                        when > limit or (when == limit and not inclusive)):
                    return processed
                _w, _s, event = pop(heap)
                if event.cancelled:
                    self._cancelled -= 1
                    continue
                self.now = when
                self.events_processed += 1
                event.fn()
                processed += 1
                if processed >= bound:
                    raise GPUSimError(
                        f"exceeded {max_events} events"
                        + (f" before reaching t={limit}"
                           if limit is not None else ""))
            # fully drained: a fresh queue is a sorted run again
            self._sorted = True
            self._head = 0
            self._cancelled = 0
            return processed

    def advance_to(self, time: float, *, inclusive: bool = False,
                   max_events: int | None = None) -> int:
        """Run events below ``time`` and advance the clock to ``time``.

        The exclusive form (the default) leaves events at exactly
        ``time`` pending: the parallel engine's horizon grants advance a
        shard *to* a barrier without consuming barrier-time events, so
        cross-shard operations issued at the barrier always apply before
        same-time local events.  With ``inclusive=True`` events at
        ``time`` run too (:meth:`run_until` semantics).  Returns the
        number of events executed.
        """
        if time < self.now:
            raise GPUSimError(
                f"cannot advance to {time:.9f} before now ({self.now:.9f})")
        processed = self._drain(time, inclusive, max_events)
        if time > self.now:
            self.now = time
        return processed

    def run_until(self, time: float, *, max_events: int | None = None) -> None:
        """Run all events up to and including ``time``.

        The clock is advanced to ``time`` afterwards even if the queue
        drained earlier.
        """
        self.advance_to(time, inclusive=True, max_events=max_events)

    def run(self, *, max_events: int = 50_000_000) -> None:
        """Run until the event queue drains."""
        self._drain(None, True, max_events)
