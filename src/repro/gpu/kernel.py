"""Timing-level kernel descriptors and launch configurations.

The scheduling experiments operate on *kernel traces*: streams of
:class:`KernelDescriptor` objects carrying the quantities the timing
simulator needs (block count, threads per block, per-block duration).
This is deliberately distinct from the functional mini-PTX layer — the
paper's scheduling decisions depend only on these quantities, never on
what a kernel computes.

Analytic helpers on the descriptor implement the paper's cost model:
execution time in full-occupancy waves, slice execution time, and the
persistent-thread-block (PTB) iteration time including transformation
overhead.  Tally's transparent profiler measures the same quantities
from the simulator at runtime; these closed forms exist for tests and
for workload calibration.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from ..errors import GPUSimError
from .specs import GPUSpec

__all__ = ["KernelDescriptor", "LaunchKind", "LaunchConfig"]

#: Fixed cost added to every PTB worker iteration (flag check, fetch,
#: broadcast barrier) — seconds.
PTB_ITERATION_OVERHEAD = 2e-6


@dataclass(frozen=True)
class KernelDescriptor:
    """Timing description of one GPU kernel launch.

    ``block_duration`` is the time one thread block occupies one
    resident-block slot; a kernel's execution time on an idle device is
    ``waves * block_duration`` with ``waves = ceil(num_blocks /
    concurrent-block capacity)``.
    """

    name: str
    num_blocks: int
    threads_per_block: int
    block_duration: float  # seconds
    shared_mem_per_block: int = 0
    #: relative slowdown of each block under the PTB transformation
    #: (extra control flow + unified synchronization), typically 2-6 %.
    ptb_overhead_fraction: float = 0.03

    def __post_init__(self) -> None:
        if self.num_blocks < 1:
            raise GPUSimError(f"{self.name}: num_blocks must be >= 1")
        if self.threads_per_block < 1:
            raise GPUSimError(f"{self.name}: threads_per_block must be >= 1")
        if self.block_duration <= 0:
            raise GPUSimError(f"{self.name}: block_duration must be > 0")
        if self.ptb_overhead_fraction < 0:
            raise GPUSimError(f"{self.name}: ptb_overhead_fraction < 0")

    # ------------------------------------------------------------------
    # Analytic timing model
    # ------------------------------------------------------------------
    def capacity(self, spec: GPUSpec) -> int:
        """Device-wide resident-block capacity for this kernel."""
        return spec.concurrent_blocks(self.threads_per_block,
                                      self.shared_mem_per_block)

    def waves(self, spec: GPUSpec) -> int:
        """Full-occupancy waves needed on an idle device."""
        return -(-self.num_blocks // self.capacity(spec))

    def duration(self, spec: GPUSpec) -> float:
        """Execution time on an idle device (excluding launch overhead)."""
        return self.waves(spec) * self.block_duration

    def slice_duration(self, spec: GPUSpec, blocks_per_slice: int) -> float:
        """Execution time of one slice of ``blocks_per_slice`` blocks."""
        if blocks_per_slice < 1:
            raise GPUSimError("blocks_per_slice must be >= 1")
        waves = -(-min(blocks_per_slice, self.num_blocks)
                  // self.capacity(spec))
        return waves * self.block_duration

    def num_slices(self, blocks_per_slice: int) -> int:
        """Number of slices a sliced launch needs."""
        if blocks_per_slice < 1:
            raise GPUSimError("blocks_per_slice must be >= 1")
        return -(-self.num_blocks // blocks_per_slice)

    def sliced_duration(self, spec: GPUSpec, blocks_per_slice: int) -> float:
        """Total time of a fully sliced execution, launch overheads included."""
        n = self.num_slices(blocks_per_slice)
        return (n * spec.kernel_launch_overhead
                + n * self.slice_duration(spec, blocks_per_slice))

    def ptb_iteration_duration(self) -> float:
        """Time for one PTB worker to process one logical block."""
        return (self.block_duration * (1.0 + self.ptb_overhead_fraction)
                + PTB_ITERATION_OVERHEAD)

    def ptb_duration(self, workers: int) -> float:
        """Total PTB execution time with ``workers`` worker blocks."""
        if workers < 1:
            raise GPUSimError("workers must be >= 1")
        iterations = -(-self.num_blocks // workers)
        return iterations * self.ptb_iteration_duration()

    def ptb_turnaround_estimate(self, spec: GPUSpec, workers: int) -> float:
        """The paper's turnaround heuristic for a PTB launch.

        ``kernel_latency / (total_blocks / worker_blocks)`` — the expected
        wait for every worker to finish its current block.
        """
        if workers < 1:
            raise GPUSimError("workers must be >= 1")
        blocks_per_worker = max(1.0, self.num_blocks / workers)
        return self.ptb_duration(workers) / blocks_per_worker

    # ------------------------------------------------------------------
    @staticmethod
    def from_duration(name: str, duration: float, num_blocks: int,
                      threads_per_block: int, spec: GPUSpec,
                      **kwargs: object) -> "KernelDescriptor":
        """Build a descriptor whose idle-device execution time is ``duration``."""
        if duration <= 0:
            raise GPUSimError(f"{name}: duration must be > 0")
        probe = KernelDescriptor(name, num_blocks, threads_per_block, 1.0)
        waves = probe.waves(spec)
        return KernelDescriptor(
            name, num_blocks, threads_per_block, duration / waves,
            **kwargs,  # type: ignore[arg-type]
        )

    def scaled(self, factor: float) -> "KernelDescriptor":
        """A copy with the per-block duration scaled by ``factor``."""
        if factor <= 0:
            raise GPUSimError("scale factor must be > 0")
        return replace(self, block_duration=self.block_duration * factor)


class LaunchKind(enum.Enum):
    """How a kernel is materialized on the device."""

    ORIGINAL = "original"
    PTB = "ptb"


@dataclass(frozen=True)
class LaunchConfig:
    """Device-level launch configuration.

    ``ORIGINAL`` launches dispatch all grid blocks; ``PTB`` launches
    place ``workers`` persistent worker blocks that iterate over the
    grid and honour a preemption flag.  Slicing is realized above the
    device as a chain of ORIGINAL launches over block sub-ranges.
    """

    kind: LaunchKind = LaunchKind.ORIGINAL
    workers: int = 0

    def __post_init__(self) -> None:
        if self.kind is LaunchKind.PTB and self.workers < 1:
            raise GPUSimError("PTB launches need workers >= 1")
        if self.kind is LaunchKind.ORIGINAL and self.workers != 0:
            raise GPUSimError("ORIGINAL launches take no workers")


LaunchConfig.DEFAULT = LaunchConfig()  # type: ignore[attr-defined]
