"""GPU hardware specifications and the occupancy model.

The timing simulator treats the GPU as a pool of streaming
multiprocessors (SMs), each able to host a bounded number of resident
thread blocks limited by threads, block slots, and shared memory —
the same quantities the CUDA occupancy calculator uses.  Interference
between co-located workloads emerges from contention for these resident
slots, which is the mechanism the paper's block-level scheduling
argument rests on.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import GPUSimError

__all__ = ["GPUSpec", "A100_SXM4_40GB", "V100_SXM2_16GB", "RTX_3090"]


@dataclass(frozen=True)
class GPUSpec:
    """Static properties of a GPU model."""

    name: str
    num_sms: int
    max_threads_per_sm: int
    max_blocks_per_sm: int
    shared_mem_per_sm: int  # bytes
    registers_per_sm: int
    #: fixed host-side cost of one kernel launch (seconds)
    kernel_launch_overhead: float = 5e-6

    def __post_init__(self) -> None:
        if self.num_sms < 1:
            raise GPUSimError("num_sms must be >= 1")
        if self.max_threads_per_sm < 1 or self.max_blocks_per_sm < 1:
            raise GPUSimError("per-SM limits must be >= 1")

    # ------------------------------------------------------------------
    def blocks_per_sm(self, threads_per_block: int,
                      shared_mem_per_block: int = 0,
                      registers_per_thread: int = 32) -> int:
        """Occupancy: resident blocks one SM can host for this kernel."""
        if threads_per_block < 1:
            raise GPUSimError(
                f"threads_per_block must be >= 1, got {threads_per_block}"
            )
        if threads_per_block > self.max_threads_per_sm:
            raise GPUSimError(
                f"threads_per_block {threads_per_block} exceeds SM capacity "
                f"{self.max_threads_per_sm}"
            )
        by_threads = self.max_threads_per_sm // threads_per_block
        by_slots = self.max_blocks_per_sm
        by_smem = (self.shared_mem_per_sm // shared_mem_per_block
                   if shared_mem_per_block > 0 else by_slots)
        by_regs = (self.registers_per_sm //
                   max(1, registers_per_thread * threads_per_block))
        occupancy = min(by_threads, by_slots, by_smem, by_regs)
        if occupancy < 1:
            raise GPUSimError(
                f"kernel with {threads_per_block} threads/block and "
                f"{shared_mem_per_block} B smem cannot fit on {self.name}"
            )
        return occupancy

    def concurrent_blocks(self, threads_per_block: int,
                          shared_mem_per_block: int = 0,
                          registers_per_thread: int = 32) -> int:
        """Device-wide resident-block capacity for this kernel."""
        return self.num_sms * self.blocks_per_sm(
            threads_per_block, shared_mem_per_block, registers_per_thread
        )

    @property
    def total_threads(self) -> int:
        """Device-wide resident-thread capacity."""
        return self.num_sms * self.max_threads_per_sm

    @property
    def total_block_slots(self) -> int:
        """Device-wide resident-block-slot capacity."""
        return self.num_sms * self.max_blocks_per_sm

    def waves(self, num_blocks: int, threads_per_block: int,
              shared_mem_per_block: int = 0) -> int:
        """Number of full-occupancy waves a grid needs on an idle device."""
        capacity = self.concurrent_blocks(threads_per_block,
                                          shared_mem_per_block)
        return -(-num_blocks // capacity)


#: NVIDIA A100-SXM4-40GB — the paper's evaluation platform (p4d.24xlarge).
A100_SXM4_40GB = GPUSpec(
    name="A100-SXM4-40GB",
    num_sms=108,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    shared_mem_per_sm=164 * 1024,
    registers_per_sm=65536,
)

#: NVIDIA V100-SXM2-16GB — a common older datacenter GPU.
V100_SXM2_16GB = GPUSpec(
    name="V100-SXM2-16GB",
    num_sms=80,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    shared_mem_per_sm=96 * 1024,
    registers_per_sm=65536,
)

#: NVIDIA GeForce RTX 3090 — a consumer card, for spec-sensitivity tests.
RTX_3090 = GPUSpec(
    name="RTX-3090",
    num_sms=82,
    max_threads_per_sm=1536,
    max_blocks_per_sm=16,
    shared_mem_per_sm=100 * 1024,
    registers_per_sm=65536,
)
