"""Experiment harness: co-location runner and per-figure drivers."""

from .colocate import (
    JobResult,
    JobSpec,
    POLICY_NAMES,
    RunConfig,
    RunResult,
    clear_standalone_cache,
    make_policy,
    run_colocation,
    standalone,
)
from .regression import Drift, compare_results
from .serialize import (
    cluster_result_to_dict,
    load_result,
    result_to_dict,
    save_result,
)
from .sweep import SweepCase, run_sweep, seed_sweep

__all__ = [
    "SweepCase",
    "run_sweep",
    "seed_sweep",
    "JobResult",
    "JobSpec",
    "POLICY_NAMES",
    "RunConfig",
    "RunResult",
    "clear_standalone_cache",
    "make_policy",
    "run_colocation",
    "standalone",
    "Drift",
    "cluster_result_to_dict",
    "compare_results",
    "load_result",
    "result_to_dict",
    "save_result",
]
