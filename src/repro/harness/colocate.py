"""Co-location experiment runner.

Builds a simulated GPU, a sharing policy, and a set of workload drivers
(latency-critical inference services fed by traffic traces, best-effort
training loops), runs them together for a fixed window, and collects
the paper's metrics: p99 request latency and per-workload throughput
within the post-warmup measurement window.

Standalone (isolated) runs of each workload are cached per
configuration — they are the normalization baselines for every figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Literal

from ..baselines import (
    Ideal,
    MPS,
    MPSPriority,
    Priority,
    REEF,
    SharingPolicy,
    TGS,
    TimeSlicing,
)
from ..check import InvariantChecker
from ..core import Tally, TallyConfig
from ..errors import HarnessError
from ..faults import FaultConfig, FaultInjector
from ..gpu import A100_SXM4_40GB, EventLoop, GPUDevice, GPUSpec
from ..metrics import LatencySummary, ServingSLO, ServingSummary
from ..trace import Tracer
from ..traffic import TrafficTrace, bursty_trace, maf_trace, poisson_trace
from ..workloads import (
    InferenceJob,
    LLMServingJob,
    TrainingJob,
    get_llm_model,
    get_model,
)
from ..workloads.models import WorkloadKind

__all__ = [
    "POLICY_NAMES",
    "JobSpec",
    "RunConfig",
    "JobResult",
    "RunResult",
    "make_policy",
    "run_colocation",
    "standalone",
    "clear_standalone_cache",
]

POLICY_NAMES = ("Ideal", "Time-Slicing", "MPS", "MPS-Priority",
                "TGS", "REEF", "Tally")


def make_policy(name: str, device: GPUDevice, engine: EventLoop, *,
                tally_config: TallyConfig | None = None) -> SharingPolicy:
    """Instantiate a sharing policy by its paper name."""
    if name == "Ideal":
        return Ideal(device, engine)
    if name == "Time-Slicing":
        return TimeSlicing(device, engine)
    if name == "MPS":
        return MPS(device, engine)
    if name == "MPS-Priority":
        return MPSPriority(device, engine)
    if name == "TGS":
        return TGS(device, engine)
    if name == "REEF":
        return REEF(device, engine)
    if name == "Tally":
        return Tally(device, engine, tally_config)
    raise HarnessError(f"unknown policy {name!r}; choose from {POLICY_NAMES}")


@dataclass(frozen=True)
class JobSpec:
    """One workload in a co-location run."""

    model: str
    role: Literal["inference", "training", "llm"]
    #: inference/llm only: target offered load (fraction of busy time)
    load: float = 0.5
    #: None = role default (inference/llm HIGH, training BEST_EFFORT)
    priority: Priority | None = None
    traffic_seed: int = 0
    #: explicit traffic overrides the generated trace (Fig. 5b)
    traffic: TrafficTrace | None = None
    #: simulated time at which this client crashes (fault injection);
    #: None = the process survives the whole run
    crash_at: float | None = None

    @property
    def effective_priority(self) -> Priority:
        if self.priority is not None:
            return self.priority
        return (Priority.BEST_EFFORT if self.role == "training"
                else Priority.HIGH)

    @staticmethod
    def inference(model: str, load: float = 0.5, **kwargs) -> "JobSpec":
        return JobSpec(model=model, role="inference", load=load, **kwargs)

    @staticmethod
    def training(model: str, **kwargs) -> "JobSpec":
        return JobSpec(model=model, role="training", **kwargs)

    @staticmethod
    def llm(model: str, load: float = 0.5, **kwargs) -> "JobSpec":
        """An LLM serving endpoint (continuous batching; see
        :class:`~repro.workloads.llm.LLMServingJob`)."""
        return JobSpec(model=model, role="llm", load=load, **kwargs)


@dataclass(frozen=True)
class RunConfig:
    """Shared parameters of one co-location run."""

    spec: GPUSpec = A100_SXM4_40GB
    duration: float = 20.0
    warmup: float = 2.0
    colocation_slowdown: float = 1.08
    tally_config: TallyConfig | None = None
    traffic_kind: Literal["maf", "bursty", "poisson"] = "maf"
    burst_ratio: float = 20.0
    trace_seed: int = 0
    #: serving SLO applied to LLM jobs' goodput accounting; None keeps
    #: goodput == throughput (an unstated SLO rejects nothing)
    slo: ServingSLO | None = None
    #: validate that the co-located models' memory footprints fit the
    #: GPU (GPU sharing is memory-gated before it is compute-gated)
    check_memory: bool = True
    memory_capacity_bytes: int | None = None  # None = A100 40 GiB

    def __post_init__(self) -> None:
        if self.duration <= self.warmup:
            raise HarnessError("duration must exceed warmup")

    @property
    def window(self) -> tuple[float, float]:
        return (self.warmup, self.duration)


@dataclass
class JobResult:
    """Measured outcome of one workload in a run."""

    client_id: str
    model: str
    role: str
    completed: int  # requests or iterations within the window
    rate: float  # per second within the window
    latency: LatencySummary | None = None  # inference only
    pending: int = 0  # inference backlog at the end (overload indicator)
    #: arrival-to-start (inference) / arrival-to-admission (llm) delays
    queueing: LatencySummary | None = None
    #: llm only: windowed TTFT / inter-token / goodput metrics
    serving: ServingSummary | None = None
    #: llm only: requests shed for KV headroom within the window
    evicted: int = 0

    def normalized_rate(self, baseline: "JobResult") -> float:
        if baseline.rate <= 0:
            raise HarnessError(
                f"standalone rate of {self.model} must be > 0"
            )
        return self.rate / baseline.rate


@dataclass
class RunResult:
    """Outcome of one co-location run."""

    policy: str
    config: RunConfig
    jobs: dict[str, JobResult]
    utilization: float
    events: int
    #: invariant audits performed (0 when the run was unchecked); a
    #: checked run that returns at all had zero violations
    invariant_checks: int = 0
    #: faults actually injected, by kind (empty for fault-free runs)
    fault_counts: dict[str, int] = field(default_factory=dict)
    #: the workload drivers, for post-hoc analysis beyond the window
    #: summaries (e.g. slicing latencies at a crash instant)
    drivers: dict[str, object] = field(default_factory=dict, repr=False)

    def job(self, client_id: str) -> JobResult:
        try:
            return self.jobs[client_id]
        except KeyError:
            raise HarnessError(
                f"no job {client_id!r} in run (have {sorted(self.jobs)})"
            ) from None

    def inference_results(self) -> list[JobResult]:
        return [j for j in self.jobs.values() if j.role == "inference"]

    def llm_results(self) -> list[JobResult]:
        return [j for j in self.jobs.values() if j.role == "llm"]

    def training_results(self) -> list[JobResult]:
        return [j for j in self.jobs.values() if j.role == "training"]


# ---------------------------------------------------------------------------

def _traffic_for(spec_: JobSpec, service_time: float,
                 config: RunConfig) -> TrafficTrace:
    if spec_.traffic is not None:
        return spec_.traffic
    if config.traffic_kind == "poisson":
        rate = spec_.load / service_time
        return poisson_trace(rate, config.duration, seed=spec_.traffic_seed)
    if config.traffic_kind == "bursty":
        return bursty_trace(
            spec_.load, service_time, config.duration,
            burst_ratio=config.burst_ratio, seed=spec_.traffic_seed,
        )
    return maf_trace(
        spec_.load, service_time, config.duration,
        spike_ratio=config.burst_ratio, seed=spec_.traffic_seed,
    )


def run_colocation(policy_name: str, jobs: list[JobSpec],
                   config: RunConfig | None = None, *,
                   tracer: Tracer | None = None,
                   check: "bool | InvariantChecker" = False,
                   faults: "FaultConfig | FaultInjector | None" = None,
                   ) -> RunResult:
    """Run ``jobs`` together under ``policy_name`` and collect metrics.

    Pass a :class:`~repro.trace.Tracer` to record the run's scheduler
    and device activity (see ``docs/observability.md``); tracing is
    off — and free — when ``tracer`` is None.

    ``check=True`` (or an :class:`~repro.check.InvariantChecker`)
    audits the device's accounting after every event and raises
    :class:`~repro.errors.InvariantViolation` on the first breach
    (see ``docs/validation.md``); checking is off — and free — by
    default.

    ``faults`` (a :class:`~repro.faults.FaultConfig` or a pre-built
    :class:`~repro.faults.FaultInjector`) enables seeded fault
    injection — device kernel faults, slot faults, client crashes —
    and arms the crash times on each :class:`JobSpec` (see
    ``docs/fault_tolerance.md``).  ``FaultConfig.crash_at`` without a
    per-job ``crash_at`` kills the first best-effort client, the
    common chaos scenario.  Injection is off — and free — by default.
    """
    if not jobs:
        raise HarnessError("need at least one job")
    config = config if config is not None else RunConfig()
    checker: InvariantChecker | None
    if check is True:
        checker = InvariantChecker()
    elif check:
        checker = check  # caller-supplied checker (e.g. collect mode)
    else:
        checker = None
    injector: FaultInjector | None
    if faults is None:
        injector = None
    elif isinstance(faults, FaultConfig):
        injector = FaultInjector(faults)
    else:
        injector = faults  # pre-built (possibly shared) injector

    if config.check_memory:
        from ..workloads.memory import A100_MEMORY_BYTES, check_memory_fit

        capacity = (config.memory_capacity_bytes
                    if config.memory_capacity_bytes is not None
                    else A100_MEMORY_BYTES)
        check_memory_fit([j.model for j in jobs], capacity)

    engine = EventLoop()
    device = GPUDevice(config.spec, engine,
                       colocation_slowdown=config.colocation_slowdown,
                       tracer=tracer, check=checker, faults=injector)
    policy = make_policy(policy_name, device, engine,
                         tally_config=config.tally_config)

    drivers: list[tuple[JobSpec, object]] = []
    counters: dict[str, int] = {}
    for job_spec in jobs:
        n = counters.get(job_spec.model, 0)
        counters[job_spec.model] = n + 1
        client_id = f"{job_spec.model}#{n}"
        if job_spec.role == "llm":
            llm_model = get_llm_model(job_spec.model)
            traffic = _traffic_for(job_spec, llm_model.mean_request_time(),
                                   config)
            driver: object = LLMServingJob(
                llm_model, traffic, policy, client_id,
                priority=job_spec.effective_priority,
                seed=job_spec.traffic_seed,
            )
            drivers.append((job_spec, driver))
            continue
        model = get_model(job_spec.model)
        expected = ("inference" if model.kind is WorkloadKind.INFERENCE
                    else "training")
        if expected != job_spec.role:
            raise HarnessError(
                f"model {job_spec.model!r} is a {expected} workload, "
                f"not {job_spec.role}"
            )
        trace = model.build_trace(config.spec, seed=config.trace_seed)
        if job_spec.role == "inference":
            traffic = _traffic_for(job_spec, trace.duration, config)
            driver = InferenceJob(
                trace, traffic, policy, client_id,
                priority=job_spec.effective_priority,
            )
        else:
            driver = TrainingJob(
                trace, policy, client_id,
                priority=job_spec.effective_priority,
            )
        drivers.append((job_spec, driver))

    if injector is not None:
        _arm_faults(injector, drivers, device, engine, policy, config,
                    tracer=tracer)

    for _spec, driver in drivers:
        driver.start()  # type: ignore[union-attr]
    engine.run_until(config.duration)

    start, end = config.window
    span = end - start
    results: dict[str, JobResult] = {}
    for job_spec, driver in drivers:
        if job_spec.role == "llm":
            assert isinstance(driver, LLMServingJob)
            serving = driver.serving_summary(since=start, until=end,
                                             slo=config.slo)
            results[driver.client_id] = JobResult(
                client_id=driver.client_id, model=job_spec.model,
                role="llm", completed=serving.completed,
                rate=serving.requests_per_s,
                pending=driver.pending_requests,
                queueing=driver.queueing_summary(since=start, until=end),
                serving=serving, evicted=serving.evicted,
            )
        elif job_spec.role == "inference":
            assert isinstance(driver, InferenceJob)
            latencies = driver.latencies(since=start, until=end)
            summary = LatencySummary.of(latencies) if latencies else None
            completed = driver.completions_in(start, end)
            results[driver.client_id] = JobResult(
                client_id=driver.client_id, model=job_spec.model,
                role="inference", completed=completed,
                rate=completed / span, latency=summary,
                pending=driver.pending_requests,
                queueing=driver.queueing_summary(since=start, until=end),
            )
        else:
            assert isinstance(driver, TrainingJob)
            completed = driver.completions_in(start, end)
            results[driver.client_id] = JobResult(
                client_id=driver.client_id, model=job_spec.model,
                role="training", completed=completed, rate=completed / span,
            )

    return RunResult(
        policy=policy_name, config=config, jobs=results,
        utilization=device.utilization(), events=engine.events_processed,
        invariant_checks=checker.checks_run if checker is not None else 0,
        fault_counts=(dict(injector.injected) if injector is not None
                      else {}),
        drivers={driver.client_id: driver  # type: ignore[attr-defined]
                 for _spec, driver in drivers},
    )


def _arm_faults(injector: FaultInjector, drivers: list[tuple[JobSpec, object]],
                device: GPUDevice, engine: EventLoop, policy: SharingPolicy,
                config: RunConfig, *, tracer: Tracer | None) -> None:
    """Schedule the run's slot faults and client crashes."""
    from ..faults import arm_slot_faults, schedule_client_crash

    event_tracer = tracer if tracer is not None else device.tracer
    arm_slot_faults(device, engine, injector, config.duration,
                    tracer=event_tracer)
    crash_specs: list[tuple[float, object, str]] = []
    for job_spec, driver in drivers:
        if job_spec.crash_at is not None:
            client_id = driver.client_id  # type: ignore[attr-defined]
            crash_specs.append((job_spec.crash_at, driver, client_id))
    if not crash_specs and injector.config.crash_at is not None:
        # CLI convenience: an un-targeted crash kills the first
        # best-effort client — the canonical chaos scenario (the
        # high-priority service must sail on unperturbed).
        for job_spec, driver in drivers:
            if job_spec.effective_priority is not Priority.HIGH:
                client_id = driver.client_id  # type: ignore[attr-defined]
                crash_specs.append(
                    (injector.config.crash_at, driver, client_id))
                break
    for when, driver, client_id in crash_specs:
        if when >= config.duration:
            raise HarnessError(
                f"crash_at={when} is beyond the run duration "
                f"({config.duration})"
            )
        injector.injected["client_crash"] += 1
        schedule_client_crash(engine, when, driver, policy, client_id,
                              tracer=event_tracer)


# ---------------------------------------------------------------------------
# Standalone baselines (cached)
# ---------------------------------------------------------------------------

# Each entry pins the explicit traffic object (when one was supplied)
# alongside the result: the key uses id(traffic), and without a strong
# reference a garbage-collected traffic list could recycle its id and
# alias a different workload's baseline.  The cache is per-process —
# sweep workers (see sweep.py) each warm their own, which only costs
# repeated baseline runs, never stale or cross-process state.
_STANDALONE_CACHE: dict[tuple, tuple[JobResult, object]] = {}

#: entry bound; oldest entries are evicted first (dict preserves
#: insertion order) so unbounded parameter sweeps can't grow it forever
_STANDALONE_CACHE_MAX = 256


def standalone(job: JobSpec, config: RunConfig | None = None) -> JobResult:
    """Isolated execution of one workload (the normalization baseline)."""
    config = config if config is not None else RunConfig()
    key = (
        job.model, job.role, round(job.load, 6), job.traffic_seed,
        id(job.traffic) if job.traffic is not None else None,
        config.spec.name, config.duration, config.warmup,
        config.traffic_kind, config.burst_ratio, config.trace_seed,
    )
    cached = _STANDALONE_CACHE.get(key)
    if cached is not None and cached[1] is job.traffic:
        return cached[0]
    solo = replace(job, priority=Priority.HIGH)
    result = run_colocation("Ideal", [solo], config)
    job_result = next(iter(result.jobs.values()))
    while len(_STANDALONE_CACHE) >= _STANDALONE_CACHE_MAX:
        _STANDALONE_CACHE.pop(next(iter(_STANDALONE_CACHE)))
    _STANDALONE_CACHE[key] = (job_result, job.traffic)
    return job_result


def clear_standalone_cache() -> None:
    """Drop cached standalone baselines (tests use this)."""
    _STANDALONE_CACHE.clear()
