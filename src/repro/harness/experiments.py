"""Per-table / per-figure experiment drivers.

One function per paper artefact (Table 1, Table 2, Figures 4, 5a, 5b,
6a, 6b, 6c).  Each returns a structured result object and can render a
paper-vs-measured text report; the ``benchmarks/`` tree wraps these in
pytest-benchmark targets.

All experiments accept a ``scale`` knob: ``"quick"`` runs a reduced
grid sized for CI (minutes), ``"full"`` the paper's complete grid.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Literal, Sequence

import numpy as np

from ..core import TallyConfig
from ..errors import HarnessError
from ..gpu import A100_SXM4_40GB, GPUSpec
from ..metrics import ServingSLO
from ..traffic import profile_trace
from ..workloads import INFERENCE_MODELS, TRAINING_MODELS, get_model
from ..workloads.models import Trace
from .colocate import (
    POLICY_NAMES,
    JobSpec,
    RunConfig,
    run_colocation,
    standalone,
)
from .reporting import format_ratio, format_seconds, format_table

__all__ = [
    "Scale",
    "turnaround_by_granularity",
    "Table1Result",
    "table1",
    "Table2Row",
    "table2",
    "Fig4Cell",
    "Fig4Result",
    "fig4",
    "Fig5aPoint",
    "fig5a",
    "Fig5bSeries",
    "fig5b",
    "Fig6aPoint",
    "fig6a",
    "Fig6bRow",
    "fig6b",
    "Fig6cPoint",
    "fig6c",
    "LLMColocationCell",
    "LLMColocationResult",
    "llm_colocation",
]

Scale = Literal["quick", "full"]

#: Modelled SM pipeline-drain time: the turnaround of thread-level
#: (REEF-style reset-based) scheduling, which stops kernels without
#: waiting for blocks to finish.
PIPELINE_DRAIN = 5e-6

SYSTEMS = ("Time-Slicing", "MPS", "MPS-Priority", "TGS", "Tally")

QUICK_INFERENCE = ("resnet50_infer", "bert_infer")
QUICK_TRAINING = ("resnet50_train", "gpt2_train", "whisper_train")


def _grid(scale: Scale) -> tuple[tuple[str, ...], tuple[str, ...]]:
    if scale == "full":
        return tuple(INFERENCE_MODELS), tuple(TRAINING_MODELS)
    return QUICK_INFERENCE, QUICK_TRAINING


def _duration_for(model_name: str, scale: Scale, *,
                  min_requests: int = 150, load: float = 0.5,
                  floor: float = 6.0) -> float:
    """A window long enough for a stable p99 at the given load."""
    model = get_model(model_name)
    trace = model.build_trace(A100_SXM4_40GB)
    if model.kind.value != "inference":
        return floor
    rate = load / trace.duration
    need = min_requests / rate
    cap = 60.0 if scale == "full" else 20.0
    return float(min(max(floor, need), cap))


# ---------------------------------------------------------------------------
# Table 1 — turnaround latency by scheduling granularity
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Table1Result:
    """Turnaround latencies of the four scheduling granularities."""

    training_model: str
    inference_model: str
    inference_latency: float
    iteration: float
    kernel: float
    block: float
    thread: float
    condensation: float
    paper = {
        "inference_latency": 3.93e-3,
        "iteration": 3.0,
        "kernel": 10e-3,
        "block": 304e-6,
        "thread": 38e-6,
    }

    def report(self) -> str:
        rows = [
            ("inference time", format_seconds(self.paper["inference_latency"]),
             format_seconds(self.inference_latency)),
            ("iteration-level", format_seconds(self.paper["iteration"]),
             format_seconds(self.iteration)),
            ("  (paper time-scale)", "",
             format_seconds(self.iteration * self.condensation)),
            ("kernel-level", format_seconds(self.paper["kernel"]),
             format_seconds(self.kernel)),
            ("block-level", format_seconds(self.paper["block"]),
             format_seconds(self.block)),
            ("thread-level", format_seconds(self.paper["thread"]),
             format_seconds(self.thread)),
        ]
        return format_table(
            ("granularity", "paper", "measured"), rows,
            title=(f"Table 1: turnaround latency "
                   f"({self.training_model} vs {self.inference_model})"),
        )


def turnaround_by_granularity(trace: Trace,
                              spec: GPUSpec = A100_SXM4_40GB) -> dict[str, float]:
    """Expected GPU-release latency at each scheduling granularity.

    A high-priority kernel arrives at a uniformly random point of the
    best-effort job's busy time; the turnaround is the expected wait
    until the in-flight unit (iteration / kernel / block) completes.
    For a unit of length ``d`` hit with probability proportional to
    ``d``, the mean residual is ``E[d^2] / (2 E[d])``.
    """
    durations = trace.kernel_durations(spec)
    if durations.size == 0:
        raise HarnessError("trace has no kernels")
    busy = durations.sum()

    def mean_residual(lengths: np.ndarray,
                      weights: np.ndarray | None = None) -> float:
        if weights is None:
            weights = lengths
        return float((weights * lengths).sum() / (2.0 * weights.sum()))

    block_durations = np.array([
        k.block_duration for k in trace.kernels
    ])
    kernel_busy = durations  # weight of each kernel in busy time
    return {
        # The whole iteration must finish before yielding.
        "iteration": trace.duration,
        # Residual time of the kernel in flight.
        "kernel": mean_residual(durations),
        # Residual time of the blocks in flight, weighted by how long
        # each kernel occupies the device.
        "block": mean_residual(block_durations, weights=kernel_busy),
        "thread": PIPELINE_DRAIN,
    }


def table1(training_model: str = "whisper_train",
           inference_model: str = "bert_infer",
           spec: GPUSpec = A100_SXM4_40GB) -> Table1Result:
    """Reproduce Table 1."""
    train = get_model(training_model)
    infer = get_model(inference_model)
    train_trace = train.build_trace(spec)
    infer_trace = infer.build_trace(spec)
    t = turnaround_by_granularity(train_trace, spec)
    return Table1Result(
        training_model=training_model,
        inference_model=inference_model,
        inference_latency=infer_trace.duration,
        iteration=t["iteration"],
        kernel=t["kernel"],
        block=t["block"],
        thread=t["thread"],
        condensation=train.condensation(train_trace),
    )


# ---------------------------------------------------------------------------
# Table 2 — standalone workload metrics
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Table2Row:
    """Standalone metrics of one workload."""

    model: str
    kind: str
    paper_value: float  # it/s for training, latency (s) for inference
    measured_value: float
    condensation: float

    @property
    def paper_scale_value(self) -> float:
        """Measured value rescaled to the paper's time scale."""
        if self.kind == "training":
            return self.measured_value / self.condensation
        return self.measured_value * self.condensation


def table2(scale: Scale = "quick",
           spec: GPUSpec = A100_SXM4_40GB) -> list[Table2Row]:
    """Reproduce Table 2: isolated latency/throughput of the suite."""
    rows: list[Table2Row] = []
    for name, model in {**TRAINING_MODELS, **INFERENCE_MODELS}.items():
        trace = model.build_trace(spec)
        cfg = RunConfig(
            spec=spec, warmup=1.0,
            duration=_duration_for(name, scale, min_requests=100),
        )
        if model.kind.value == "training":
            result = standalone(JobSpec.training(name), cfg)
            measured = result.rate
        else:
            result = standalone(JobSpec.inference(name, load=0.5), cfg)
            assert result.latency is not None
            measured = result.latency.mean
        rows.append(Table2Row(
            model=name, kind=model.kind.value,
            paper_value=model.paper_value, measured_value=measured,
            condensation=model.condensation(trace),
        ))
    return rows


def table2_report(rows: Sequence[Table2Row]) -> str:
    """Render Table 2 as text."""
    out = []
    for r in rows:
        if r.kind == "training":
            paper = f"{r.paper_value:.1f} it/s"
            measured = f"{r.measured_value:.1f} it/s"
            rescaled = f"{r.paper_scale_value:.2f} it/s"
        else:
            paper = format_seconds(r.paper_value)
            measured = format_seconds(r.measured_value)
            rescaled = format_seconds(r.paper_scale_value)
        out.append((r.model, r.kind, paper, measured, rescaled,
                    f"{r.condensation:.1f}x"))
    return format_table(
        ("model", "kind", "paper", "measured (condensed)",
         "measured (paper scale)", "condensation"),
        out, title="Table 2: standalone workload metrics",
    )


# ---------------------------------------------------------------------------
# Figure 4 — end-to-end p99 + system throughput over the workload grid
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig4Cell:
    """One (inference, training, system) measurement."""

    inference: str
    training: str
    system: str
    p99: float
    ideal_p99: float
    inference_norm: float
    training_norm: float

    @property
    def p99_ratio(self) -> float:
        return self.p99 / self.ideal_p99

    @property
    def overhead(self) -> float:
        return self.p99_ratio - 1.0

    @property
    def system_throughput(self) -> float:
        return self.inference_norm + self.training_norm


@dataclass
class Fig4Result:
    """All cells of the Figure 4 grid."""

    cells: list[Fig4Cell]

    def for_system(self, system: str) -> list[Fig4Cell]:
        return [c for c in self.cells if c.system == system]

    def mean_overhead(self, system: str) -> float:
        cells = self.for_system(system)
        return float(np.mean([c.overhead for c in cells]))

    def median_overhead(self, system: str) -> float:
        cells = self.for_system(system)
        return float(np.median([c.overhead for c in cells]))

    def mean_system_throughput(self, system: str) -> float:
        cells = self.for_system(system)
        return float(np.mean([c.system_throughput for c in cells]))

    def throughput_vs(self, system: str, reference: str) -> float:
        return (self.mean_system_throughput(system)
                / self.mean_system_throughput(reference))

    def report(self) -> str:
        rows = []
        for c in self.cells:
            rows.append((
                c.inference, c.training, c.system,
                format_seconds(c.p99), format_ratio(c.p99_ratio),
                f"{c.training_norm:.2f}", f"{c.system_throughput:.2f}",
            ))
        table = format_table(
            ("inference", "training", "system", "p99", "p99 vs ideal",
             "train norm", "sys thpt"),
            rows, title="Figure 4: end-to-end latency and throughput",
        )
        paper_overheads = {
            "Time-Slicing": 2.523, "MPS": 3.450, "MPS-Priority": 1.955,
            "TGS": 1.889, "Tally": 0.072,
        }
        summary = [
            (s,
             f"{paper_overheads[s] * 100:.1f}%",
             f"{self.mean_overhead(s) * 100:.1f}%",
             f"{self.median_overhead(s) * 100:.1f}%",
             f"{self.mean_system_throughput(s):.2f}")
            for s in SYSTEMS if self.for_system(s)
        ]
        summary_table = format_table(
            ("system", "paper mean p99 overhead", "measured mean",
             "measured median", "mean sys thpt"),
            summary, title="Figure 4 summary",
        )
        return table + "\n\n" + summary_table


def fig4(scale: Scale = "quick", *, load: float = 0.5,
         systems: Sequence[str] = SYSTEMS,
         spec: GPUSpec = A100_SXM4_40GB) -> Fig4Result:
    """Reproduce Figure 4 over the (inference x training) grid."""
    inference_models, training_models = _grid(scale)
    cells: list[Fig4Cell] = []
    for inf_name in inference_models:
        duration = _duration_for(inf_name, scale, load=load)
        cfg = RunConfig(spec=spec, duration=duration, warmup=1.0)
        inf = JobSpec.inference(inf_name, load=load)
        inf_base = standalone(inf, cfg)
        assert inf_base.latency is not None
        for train_name in training_models:
            train = JobSpec.training(train_name)
            train_base = standalone(train, cfg)
            for system in systems:
                result = run_colocation(system, [inf, train], cfg)
                j = result.job(f"{inf_name}#0")
                t = result.job(f"{train_name}#0")
                assert j.latency is not None
                cells.append(Fig4Cell(
                    inference=inf_name, training=train_name, system=system,
                    p99=j.latency.p99, ideal_p99=inf_base.latency.p99,
                    inference_norm=j.rate / inf_base.rate,
                    training_norm=(t.rate / train_base.rate
                                   if train_base.rate > 0 else 0.0),
                ))
    return Fig4Result(cells)


# ---------------------------------------------------------------------------
# Figure 5a — traffic load sensitivity
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig5aPoint:
    """One (inference, training, system, idle%) measurement."""

    inference: str
    training: str
    system: str
    idle_percent: int
    p99_ratio: float
    system_throughput: float


def fig5a(scale: Scale = "quick", *,
          systems: Sequence[str] = ("TGS", "Tally"),
          spec: GPUSpec = A100_SXM4_40GB) -> list[Fig5aPoint]:
    """Reproduce Figure 5a: p99 and throughput vs GPU idle fraction."""
    if scale == "full":
        inference_models = ("bert_infer", "llama2_infer")
        training_models = ("bert_train", "gpt2_train", "whisper_train")
        idle_points = (10, 30, 50, 70, 90)
    else:
        inference_models = ("bert_infer",)
        training_models = ("gpt2_train", "whisper_train")
        idle_points = (10, 50, 90)

    points: list[Fig5aPoint] = []
    for inf_name in inference_models:
        for idle in idle_points:
            load = (100 - idle) / 100.0
            duration = _duration_for(inf_name, scale, load=load)
            cfg = RunConfig(spec=spec, duration=duration, warmup=1.0)
            inf = JobSpec.inference(inf_name, load=load)
            inf_base = standalone(inf, cfg)
            assert inf_base.latency is not None
            for train_name in training_models:
                train = JobSpec.training(train_name)
                train_base = standalone(train, cfg)
                for system in systems:
                    result = run_colocation(system, [inf, train], cfg)
                    j = result.job(f"{inf_name}#0")
                    t = result.job(f"{train_name}#0")
                    assert j.latency is not None
                    points.append(Fig5aPoint(
                        inference=inf_name, training=train_name,
                        system=system, idle_percent=idle,
                        p99_ratio=j.latency.p99 / inf_base.latency.p99,
                        system_throughput=(
                            j.rate / inf_base.rate
                            + (t.rate / train_base.rate
                               if train_base.rate > 0 else 0.0)
                        ),
                    ))
    return points


def fig5a_report(points: Sequence[Fig5aPoint]) -> str:
    rows = [
        (p.inference, p.training, p.system, f"{p.idle_percent}%",
         format_ratio(p.p99_ratio), f"{p.system_throughput:.2f}")
        for p in points
    ]
    return format_table(
        ("inference", "training", "system", "idle", "p99 vs ideal",
         "sys thpt"),
        rows, title="Figure 5a: traffic load sensitivity",
    )


# ---------------------------------------------------------------------------
# Figure 5b — time-series under a condensed bursty trace
# ---------------------------------------------------------------------------

@dataclass
class Fig5bSeries:
    """Per-interval time series for one system."""

    system: str
    interval: float
    traffic: list[int]
    p99: list[float]
    train_throughput: list[float]


def fig5b(scale: Scale = "quick", *,
          systems: Sequence[str] = ("Time-Slicing", "MPS", "MPS-Priority",
                                    "TGS", "Tally"),
          spec: GPUSpec = A100_SXM4_40GB,
          seed: int = 7) -> tuple[list[Fig5bSeries], Fig5bSeries]:
    """Reproduce Figure 5b: real-time traffic, p99, and throughput.

    Returns ``(series, ideal)`` where ideal is the isolated reference.
    BERT inference is co-located with BERT training under a condensed
    MAF2-like rate profile (a daily curve squeezed into seconds).
    """
    model = get_model("bert_infer")
    trace = model.build_trace(spec)
    base_rate = 0.5 / trace.duration
    shape = [0.5, 0.8, 1.2, 0.9, 0.4, 0.2, 0.6, 1.4, 1.0, 0.5, 0.3, 0.7]
    if scale == "full":
        shape = shape * 2
    segment = 2.0
    rates = [base_rate * s for s in shape]
    horizon = segment * len(rates)
    traffic = profile_trace(rates, segment, seed=seed)

    cfg = RunConfig(spec=spec, duration=horizon, warmup=0.0)
    train = JobSpec.training("bert_train")
    train_base = standalone(train, replace(cfg, warmup=1.0))

    # The time series needs per-interval latencies, so drive the jobs
    # directly rather than through run_colocation's summaries.
    from ..gpu import EventLoop, GPUDevice
    from ..workloads import InferenceJob, TrainingJob
    from .colocate import make_policy

    out: list[Fig5bSeries] = []
    ideal_series: Fig5bSeries | None = None
    for system in list(systems) + ["Ideal"]:
        engine = EventLoop()
        device = GPUDevice(spec, engine,
                           colocation_slowdown=cfg.colocation_slowdown)
        policy = make_policy(system, device, engine)
        inf_trace = model.build_trace(spec)
        inference = InferenceJob(inf_trace, traffic, policy, "inf")
        training = None
        if system != "Ideal":
            train_trace = get_model("bert_train").build_trace(spec)
            training = TrainingJob(train_trace, policy, "train")
        inference.start()
        if training is not None:
            training.start()
        engine.run_until(horizon)

        n = len(rates)
        counts = [0] * n
        for t in traffic.arrivals:
            counts[min(n - 1, int(t // segment))] += 1
        p99s = []
        train_rates = []
        for i in range(n):
            lat = inference.latencies(since=i * segment,
                                      until=(i + 1) * segment)
            p99s.append(float(np.percentile(lat, 99)) if lat else float("nan"))
            if training is not None and train_base.rate > 0:
                completed = training.completions_in(i * segment,
                                                    (i + 1) * segment)
                train_rates.append(completed / segment / train_base.rate)
            else:
                train_rates.append(0.0)
        series = Fig5bSeries(system=system, interval=segment,
                             traffic=counts, p99=p99s,
                             train_throughput=train_rates)
        if system == "Ideal":
            ideal_series = series
        else:
            out.append(series)
    assert ideal_series is not None
    return out, ideal_series


# ---------------------------------------------------------------------------
# Figure 6a — scalability with the number of best-effort workloads
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig6aPoint:
    """One point of the scalability sweep."""

    best_effort_jobs: int
    p99: float
    ideal_p99: float
    requests_per_minute: float

    @property
    def p99_ratio(self) -> float:
        return self.p99 / self.ideal_p99


def fig6a(scale: Scale = "quick", *, load: float = 0.10,
          spec: GPUSpec = A100_SXM4_40GB) -> list[Fig6aPoint]:
    """Reproduce Figure 6a: 1 high-priority + N best-effort ResNet50
    inference services under Tally."""
    counts = range(0, 11) if scale == "full" else (0, 1, 2, 4, 6, 8, 10)
    duration = _duration_for("resnet50_infer", scale, load=load,
                             min_requests=300)
    cfg = RunConfig(spec=spec, duration=duration, warmup=1.0)
    hp = JobSpec.inference("resnet50_infer", load=load, traffic_seed=0)
    base = standalone(hp, cfg)
    assert base.latency is not None

    from ..baselines import Priority

    points: list[Fig6aPoint] = []
    for n in counts:
        jobs = [hp]
        for i in range(n):
            jobs.append(JobSpec.inference(
                "resnet50_infer", load=load,
                priority=Priority.BEST_EFFORT, traffic_seed=i + 1,
            ))
        result = run_colocation("Tally", jobs, cfg)
        hp_result = result.job("resnet50_infer#0")
        assert hp_result.latency is not None
        total_rate = sum(j.rate for j in result.inference_results())
        points.append(Fig6aPoint(
            best_effort_jobs=n,
            p99=hp_result.latency.p99,
            ideal_p99=base.latency.p99,
            requests_per_minute=total_rate * 60.0,
        ))
    return points


# ---------------------------------------------------------------------------
# Figure 6b — performance decomposition (ablation)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig6bRow:
    """p99 of BERT inference vs one training job, per ablation stage."""

    training: str
    ideal_p99: float
    no_scheduling: float
    scheduling_only: float
    full_tally: float


def fig6b(scale: Scale = "quick", *, load: float = 0.5,
          spec: GPUSpec = A100_SXM4_40GB) -> list[Fig6bRow]:
    """Reproduce Figure 6b.

    * "No-scheduling" = indiscriminate dispatch (MPS behaviour);
    * "Scheduling w/o transformation" = Tally's priority-aware scheduler
      with kernel-granularity launches;
    * "Scheduling with transformation" = full Tally.
    """
    training_models = (tuple(TRAINING_MODELS) if scale == "full"
                       else QUICK_TRAINING)
    duration = _duration_for("bert_infer", scale, load=load)
    cfg = RunConfig(spec=spec, duration=duration, warmup=1.0)
    inf = JobSpec.inference("bert_infer", load=load)
    base = standalone(inf, cfg)
    assert base.latency is not None

    no_transform = replace(
        cfg, tally_config=TallyConfig(use_transformations=False))

    rows: list[Fig6bRow] = []
    for train_name in training_models:
        train = JobSpec.training(train_name)

        def p99_of(system: str, config: RunConfig) -> float:
            result = run_colocation(system, [inf, train], config)
            latency = result.job("bert_infer#0").latency
            assert latency is not None
            return latency.p99

        rows.append(Fig6bRow(
            training=train_name,
            ideal_p99=base.latency.p99,
            no_scheduling=p99_of("MPS", cfg),
            scheduling_only=p99_of("Tally", no_transform),
            full_tally=p99_of("Tally", cfg),
        ))
    return rows


def fig6b_report(rows: Sequence[Fig6bRow]) -> str:
    table_rows = []
    for r in rows:
        table_rows.append((
            r.training,
            format_seconds(r.ideal_p99),
            format_ratio(r.no_scheduling / r.ideal_p99),
            format_ratio(r.scheduling_only / r.ideal_p99),
            format_ratio(r.full_tally / r.ideal_p99),
        ))
    return format_table(
        ("training", "ideal p99", "no-scheduling", "sched w/o transform",
         "full Tally"),
        table_rows,
        title="Figure 6b: performance decomposition (BERT inference p99)",
    )


# ---------------------------------------------------------------------------
# Figure 6c — turnaround latency threshold sweep
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig6cPoint:
    """One (threshold, training) measurement."""

    threshold: float
    training: str
    p99_ratio: float
    training_norm: float


def fig6c(scale: Scale = "quick", *, load: float = 0.5,
          spec: GPUSpec = A100_SXM4_40GB) -> list[Fig6cPoint]:
    """Reproduce Figure 6c: p99 and throughput vs the turnaround bound."""
    thresholds = ((0.01e-3, 0.0316e-3, 0.1e-3, 0.316e-3, 1e-3, 10e-3)
                  if scale == "full"
                  else (0.01e-3, 0.0316e-3, 0.316e-3, 10e-3))
    training_models = (tuple(TRAINING_MODELS) if scale == "full"
                       else ("gpt2_train", "whisper_train"))
    duration = _duration_for("bert_infer", scale, load=load)
    cfg = RunConfig(spec=spec, duration=duration, warmup=1.0)
    inf = JobSpec.inference("bert_infer", load=load)
    base = standalone(inf, cfg)
    assert base.latency is not None

    points: list[Fig6cPoint] = []
    for train_name in training_models:
        train = JobSpec.training(train_name)
        train_base = standalone(train, cfg)
        for threshold in thresholds:
            run_cfg = replace(
                cfg, tally_config=TallyConfig(
                    turnaround_latency_bound=threshold))
            result = run_colocation("Tally", [inf, train], run_cfg)
            j = result.job("bert_infer#0")
            t = result.job(f"{train_name}#0")
            assert j.latency is not None
            points.append(Fig6cPoint(
                threshold=threshold,
                training=train_name,
                p99_ratio=j.latency.p99 / base.latency.p99,
                training_norm=(t.rate / train_base.rate
                               if train_base.rate > 0 else 0.0),
            ))
    return points


def fig6c_report(points: Sequence[Fig6cPoint]) -> str:
    rows = [
        (format_seconds(p.threshold), p.training,
         format_ratio(p.p99_ratio), f"{p.training_norm:.2f}")
        for p in points
    ]
    return format_table(
        ("threshold", "training", "p99 vs ideal", "train norm"),
        rows, title="Figure 6c: turnaround latency threshold sweep",
    )


# ---------------------------------------------------------------------------
# LLM serving colocation — fig4-style grid with a serving-shaped tenant
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LLMColocationCell:
    """One (policy) measurement of the LLM serving colocation."""

    policy: str
    ttft_p99: float
    inter_token_p99: float
    ideal_ttft_p99: float
    ideal_inter_token_p99: float
    slo_attainment: float
    goodput: float
    evicted: int
    training_norm: float

    @property
    def ttft_ratio(self) -> float:
        return self.ttft_p99 / self.ideal_ttft_p99

    @property
    def inter_token_ratio(self) -> float:
        return self.inter_token_p99 / self.ideal_inter_token_p99


@dataclass
class LLMColocationResult:
    """All policies of the LLM serving colocation experiment."""

    llm_model: str
    training_model: str
    load: float
    slo: ServingSLO
    cells: list[LLMColocationCell]

    def for_policy(self, policy: str) -> LLMColocationCell:
        for cell in self.cells:
            if cell.policy == policy:
                return cell
        raise HarnessError(
            f"no cell for policy {policy!r} "
            f"(have {[c.policy for c in self.cells]})"
        )

    def report(self) -> str:
        rows = [
            (c.policy,
             format_seconds(c.ttft_p99), format_ratio(c.ttft_ratio),
             format_seconds(c.inter_token_p99),
             format_ratio(c.inter_token_ratio),
             f"{c.slo_attainment * 100:.0f}%",
             f"{c.goodput:.2f}/s", str(c.evicted),
             f"{c.training_norm:.2f}")
            for c in self.cells
        ]
        return format_table(
            ("policy", "ttft p99", "vs ideal", "itl p99", "vs ideal",
             "slo att", "goodput", "evicted", "train norm"),
            rows,
            title=(f"LLM serving colocation: {self.llm_model} (HP) vs "
                   f"{self.training_model} (BE), load={self.load:.0%}"),
        )


def llm_colocation(scale: Scale = "quick", *,
                   llm_model: str = "llama7b_serve",
                   training_model: str = "resnet50_train",
                   load: float = 0.5,
                   slo_slack: float = 2.0,
                   policies: Sequence[str] = POLICY_NAMES,
                   spec: GPUSpec = A100_SXM4_40GB,
                   seed: int = 0) -> LLMColocationResult:
    """LLM server as the high-priority tenant vs best-effort training.

    The serving SLO is anchored to the *isolated* run
    (:meth:`~repro.metrics.serving.ServingSLO.scaled_to_ideal` at
    ``slo_slack`` times the isolated p99s), mirroring the paper's
    relative isolation criterion: a policy attains the SLO exactly when
    colocation keeps TTFT and every token gap within a small factor of
    running alone.
    """
    duration = 30.0 if scale == "full" else 10.0
    cfg = RunConfig(spec=spec, duration=duration, warmup=1.0)
    llm = JobSpec.llm(llm_model, load=load, traffic_seed=seed)
    train = JobSpec.training(training_model)

    llm_base = standalone(llm, cfg)
    assert llm_base.serving is not None
    ideal = llm_base.serving
    assert ideal.ttft is not None and ideal.inter_token is not None
    slo = ServingSLO.scaled_to_ideal(ideal.ttft.p99, ideal.inter_token.p99,
                                     slack=slo_slack)
    scored = replace(cfg, slo=slo)
    train_base = standalone(train, cfg)

    cells: list[LLMColocationCell] = []
    for policy in policies:
        result = run_colocation(policy, [llm, train], scored)
        j = result.job(f"{llm_model}#0")
        t = result.job(f"{training_model}#0")
        assert j.serving is not None
        assert j.serving.ttft is not None
        assert j.serving.inter_token is not None
        cells.append(LLMColocationCell(
            policy=policy,
            ttft_p99=j.serving.ttft.p99,
            inter_token_p99=j.serving.inter_token.p99,
            ideal_ttft_p99=ideal.ttft.p99,
            ideal_inter_token_p99=ideal.inter_token.p99,
            slo_attainment=j.serving.slo_attainment,
            goodput=j.serving.goodput,
            evicted=j.evicted,
            training_norm=(t.rate / train_base.rate
                           if train_base.rate > 0 else 0.0),
        ))
    return LLMColocationResult(
        llm_model=llm_model, training_model=training_model, load=load,
        slo=slo, cells=cells,
    )
