"""ASCII plotting for benchmark reports.

The repository has no plotting dependency, so figure-style results are
rendered as unicode sparklines and block charts directly into the text
reports under ``results/`` — enough to eyeball the *shape* the paper's
figures show (flat Tally lines, baseline spikes, throughput ramps).
"""

from __future__ import annotations

import math
from typing import Sequence

from ..errors import HarnessError

__all__ = ["sparkline", "bar_chart", "series_panel"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], *, lo: float | None = None,
              hi: float | None = None) -> str:
    """Render values as a one-line unicode sparkline.

    NaNs render as spaces.  ``lo``/``hi`` pin the scale (for comparing
    several sparklines); by default the finite data range is used.
    """
    values = list(values)
    if not values:
        raise HarnessError("cannot sparkline zero values")
    finite = [v for v in values if not math.isnan(v)]
    if not finite:
        return " " * len(values)
    lo = min(finite) if lo is None else lo
    hi = max(finite) if hi is None else hi
    span = hi - lo
    chars = []
    for v in values:
        if math.isnan(v):
            chars.append(" ")
            continue
        if span <= 0:
            chars.append(_SPARK_LEVELS[0])
            continue
        t = (v - lo) / span
        index = min(len(_SPARK_LEVELS) - 1,
                    max(0, int(t * (len(_SPARK_LEVELS) - 1) + 0.5)))
        chars.append(_SPARK_LEVELS[index])
    return "".join(chars)


def bar_chart(labels: Sequence[str], values: Sequence[float], *,
              width: int = 40, unit: str = "") -> str:
    """Render labelled horizontal bars scaled to the maximum value."""
    if len(labels) != len(values):
        raise HarnessError("labels and values must have equal length")
    if not labels:
        raise HarnessError("cannot chart zero bars")
    peak = max(values)
    if peak <= 0:
        peak = 1.0
    label_width = max(len(str(l)) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        filled = int(round(width * value / peak))
        bar = "█" * filled or "▏"
        lines.append(f"{str(label).ljust(label_width)}  {bar} "
                     f"{value:.3g}{unit}")
    return "\n".join(lines)


def series_panel(title: str, rows: Sequence[tuple[str, Sequence[float]]], *,
                 shared_scale: bool = True) -> str:
    """Render named series as aligned sparklines with a min/max legend.

    With ``shared_scale`` all series use one scale, so relative height
    is comparable across rows (e.g. each system's p99 over time against
    the ideal line).
    """
    if not rows:
        raise HarnessError("cannot render an empty panel")
    lo = hi = None
    if shared_scale:
        finite = [v for _name, series in rows for v in series
                  if not math.isnan(v)]
        if finite:
            lo, hi = min(finite), max(finite)
    name_width = max(len(name) for name, _series in rows)
    lines = [title]
    for name, series in rows:
        finite = [v for v in series if not math.isnan(v)]
        legend = (f"  [{min(finite):.3g} .. {max(finite):.3g}]"
                  if finite else "  [no data]")
        lines.append(f"  {name.ljust(name_width)}  "
                     f"{sparkline(series, lo=lo, hi=hi)}{legend}")
    return "\n".join(lines)
