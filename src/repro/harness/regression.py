"""Result regression comparison.

Long-lived reproductions need to know when a code change moves the
numbers.  :func:`compare_results` diffs two serialized
:class:`~repro.harness.colocate.RunResult` payloads (same policy and
job set) within tolerances and reports every metric that moved — the
building block for a "save golden results, fail CI on drift" workflow:

    save_result(run_colocation(...), "golden/fig4_tally_bert_whisper.json")
    ...
    drifts = compare_results(load_result(golden), fresh_result)
    assert not drifts, "\\n".join(str(d) for d in drifts)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import HarnessError
from .colocate import RunResult

__all__ = ["Drift", "compare_results"]


@dataclass(frozen=True)
class Drift:
    """One metric that moved beyond tolerance."""

    job: str
    metric: str
    reference: float
    measured: float

    @property
    def relative(self) -> float:
        if self.reference == 0:
            return float("inf") if self.measured else 0.0
        return self.measured / self.reference - 1.0

    def __str__(self) -> str:
        return (f"{self.job}.{self.metric}: {self.reference:.6g} -> "
                f"{self.measured:.6g} ({self.relative:+.1%})")


def _check(drifts: list[Drift], job: str, metric: str, reference: float,
           measured: float, rel_tol: float) -> None:
    if reference == measured:
        return
    scale = max(abs(reference), abs(measured))
    if scale == 0:
        return
    if abs(measured - reference) / scale > rel_tol:
        drifts.append(Drift(job, metric, reference, measured))


def compare_results(reference: RunResult, measured: RunResult, *,
                    rate_tolerance: float = 0.10,
                    latency_tolerance: float = 0.15) -> list[Drift]:
    """Return the metrics of ``measured`` that drifted from ``reference``.

    Both results must come from the same policy over the same job set.
    Rates (throughput) and latencies get separate relative tolerances —
    tail latencies are noisier than counts.
    """
    if reference.policy != measured.policy:
        raise HarnessError(
            f"policy mismatch: {reference.policy!r} vs {measured.policy!r}"
        )
    if set(reference.jobs) != set(measured.jobs):
        raise HarnessError(
            f"job sets differ: {sorted(reference.jobs)} vs "
            f"{sorted(measured.jobs)}"
        )

    drifts: list[Drift] = []
    for client_id, ref_job in reference.jobs.items():
        new_job = measured.jobs[client_id]
        _check(drifts, client_id, "rate", ref_job.rate, new_job.rate,
               rate_tolerance)
        if (ref_job.latency is None) != (new_job.latency is None):
            drifts.append(Drift(client_id, "latency.presence",
                                float(ref_job.latency is not None),
                                float(new_job.latency is not None)))
            continue
        if ref_job.latency is not None and new_job.latency is not None:
            for metric in ("p50", "p99", "mean"):
                _check(drifts, client_id, f"latency.{metric}",
                       getattr(ref_job.latency, metric),
                       getattr(new_job.latency, metric),
                       latency_tolerance)
    _check(drifts, "<run>", "utilization", reference.utilization,
           measured.utilization, rate_tolerance)
    return drifts
