"""Plain-text tables for paper-vs-measured reporting.

Every experiment driver renders its results through these helpers so
benchmark output looks like the paper's tables: one row per
configuration, with the paper's reference value alongside the measured
one where available.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

__all__ = ["format_table", "format_seconds", "format_ratio", "Banner"]


def format_seconds(value: float) -> str:
    """Human-scale rendering of a duration."""
    if value != value:  # NaN
        return "-"
    if value >= 1.0:
        return f"{value:.3g} s"
    if value >= 1e-3:
        return f"{value * 1e3:.3g} ms"
    return f"{value * 1e6:.3g} us"


def format_ratio(value: float) -> str:
    """Render a slowdown/throughput ratio."""
    if value != value:
        return "-"
    return f"{value:.2f}x"


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[Any]],
                 title: str | None = None) -> str:
    """Render an aligned monospace table."""
    cells = [[str(h) for h in headers]]
    cells.extend([str(c) for c in row] for row in rows)
    widths = [max(len(row[i]) for row in cells if i < len(row))
              for i in range(len(headers))]

    def render(row: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), 8))
    lines.append(render(cells[0]))
    lines.append(render(["-" * w for w in widths]))
    lines.extend(render(row) for row in cells[1:])
    return "\n".join(lines)


@dataclass(frozen=True)
class Banner:
    """A titled block of text for benchmark output."""

    title: str
    body: str

    def __str__(self) -> str:
        bar = "#" * max(len(self.title) + 4, 12)
        return f"\n{bar}\n# {self.title}\n{bar}\n{self.body}\n"
