"""JSON serialization of experiment results.

Benchmarks and the CLI can persist structured results (not just text
reports) so downstream analysis — plotting, regression tracking,
paper-vs-measured tables — can consume them without re-running the
simulations.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any

from ..errors import HarnessError
from ..metrics import LatencySummary, ServingSummary
from .colocate import JobResult, RunConfig, RunResult

__all__ = ["cluster_result_to_dict", "result_to_dict", "dict_to_result",
           "save_result", "load_result"]

_FORMAT_VERSION = 1


def _serving_to_dict(serving: ServingSummary) -> dict[str, Any]:
    payload = dataclasses.asdict(serving)
    # Nested LatencySummary fields become plain dicts via asdict; keep
    # None as None so absence survives the roundtrip.
    return payload


def _serving_from_dict(payload: dict[str, Any]) -> ServingSummary:
    ttft = payload.get("ttft")
    inter_token = payload.get("inter_token")
    return ServingSummary(
        completed=payload["completed"],
        evicted=payload["evicted"],
        tokens=payload["tokens"],
        span=payload["span"],
        ttft=LatencySummary(**ttft) if ttft is not None else None,
        inter_token=(LatencySummary(**inter_token)
                     if inter_token is not None else None),
        good=payload["good"],
    )


def result_to_dict(result: RunResult) -> dict[str, Any]:
    """Convert a :class:`RunResult` into JSON-serializable form."""
    jobs = {}
    for client_id, job in result.jobs.items():
        payload: dict[str, Any] = {
            "client_id": job.client_id,
            "model": job.model,
            "role": job.role,
            "completed": job.completed,
            "rate": job.rate,
            "pending": job.pending,
            "evicted": job.evicted,
        }
        if job.latency is not None:
            payload["latency"] = dataclasses.asdict(job.latency)
        if job.queueing is not None:
            payload["queueing"] = dataclasses.asdict(job.queueing)
        if job.serving is not None:
            payload["serving"] = _serving_to_dict(job.serving)
        jobs[client_id] = payload
    return {
        "format_version": _FORMAT_VERSION,
        "policy": result.policy,
        "config": {
            "spec": result.config.spec.name,
            "duration": result.config.duration,
            "warmup": result.config.warmup,
            "colocation_slowdown": result.config.colocation_slowdown,
            "traffic_kind": result.config.traffic_kind,
            "burst_ratio": result.config.burst_ratio,
            "trace_seed": result.config.trace_seed,
        },
        "jobs": jobs,
        "utilization": result.utilization,
        "events": result.events,
    }


def dict_to_result(payload: dict[str, Any]) -> RunResult:
    """Rebuild a :class:`RunResult` from :func:`result_to_dict` output.

    The run *configuration* is restored for its recorded scalar fields;
    the GPU spec is looked up from the built-in catalog by name.
    """
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise HarnessError(
            f"unsupported result format version {version!r}"
        )
    from ..gpu import A100_SXM4_40GB, RTX_3090, V100_SXM2_16GB

    specs = {s.name: s for s in (A100_SXM4_40GB, V100_SXM2_16GB, RTX_3090)}
    cfg = payload["config"]
    spec = specs.get(cfg["spec"])
    if spec is None:
        raise HarnessError(f"unknown GPU spec {cfg['spec']!r}")
    config = RunConfig(
        spec=spec,
        duration=cfg["duration"],
        warmup=cfg["warmup"],
        colocation_slowdown=cfg["colocation_slowdown"],
        traffic_kind=cfg["traffic_kind"],
        burst_ratio=cfg["burst_ratio"],
        trace_seed=cfg["trace_seed"],
    )
    jobs: dict[str, JobResult] = {}
    for client_id, job in payload["jobs"].items():
        latency = None
        if "latency" in job:
            latency = LatencySummary(**job["latency"])
        queueing = None
        if "queueing" in job:
            queueing = LatencySummary(**job["queueing"])
        serving = None
        if "serving" in job:
            serving = _serving_from_dict(job["serving"])
        jobs[client_id] = JobResult(
            client_id=job["client_id"],
            model=job["model"],
            role=job["role"],
            completed=job["completed"],
            rate=job["rate"],
            latency=latency,
            pending=job["pending"],
            queueing=queueing,
            serving=serving,
            evicted=job.get("evicted", 0),
        )
    return RunResult(
        policy=payload["policy"],
        config=config,
        jobs=jobs,
        utilization=payload["utilization"],
        events=payload["events"],
    )


def cluster_result_to_dict(result: "Any") -> dict[str, Any]:
    """Convert a :class:`~repro.cluster.ClusterResult` to JSON form.

    Annotated loosely because the cluster package imports the harness —
    the reverse import would be circular.  Recovery metrics (when the
    result came from the online control plane) serialize with it;
    non-finite floats become strings so the payload stays valid JSON.
    """
    def _num(value: float) -> Any:
        if isinstance(value, float) and not (value == value
                                             and abs(value) != float("inf")):
            return str(value)  # "nan", "inf"
        return value

    payload: dict[str, Any] = {
        "format_version": _FORMAT_VERSION,
        "policy": result.policy,
        "gpus_used": result.gpus_used,
        "total_normalized_throughput": result.total_normalized_throughput,
        "events": result.events,
        "invariant_checks": result.invariant_checks,
        "services": [
            {
                "model": s.model,
                "gpu": s.gpu,
                "p99_ratio": _num(s.p99_ratio),
                "sla_factor": s.sla_factor,
                "meets_sla": s.meets_sla,
            }
            for s in result.services
        ],
    }
    recovery = result.recovery
    if recovery is not None:
        payload["recovery"] = {
            "migrations": recovery.migrations,
            "jobs_shed": recovery.jobs_shed,
            "jobs_evicted": recovery.jobs_evicted,
            "requests_shed": recovery.requests_shed,
            "mttr": _num(recovery.mttr),
            "total_downtime": _num(recovery.total_downtime),
            "device_faults": dict(recovery.device_faults),
            "services": [
                {
                    "client_id": s.client_id,
                    "model": s.model,
                    "device": s.device,
                    "migrations": s.migrations,
                    "downtime": _num(s.downtime),
                    "slo_attainment": _num(s.slo_attainment),
                    "post_recovery_attainment": _num(
                        s.post_recovery_attainment),
                    "evicted": s.evicted,
                }
                for s in recovery.services
            ],
        }
    return payload


def save_result(result: RunResult, path: str | pathlib.Path) -> None:
    """Write a result to a JSON file."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(result_to_dict(result), indent=2) + "\n")


def load_result(path: str | pathlib.Path) -> RunResult:
    """Read a result back from a JSON file."""
    path = pathlib.Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise HarnessError(f"cannot load result from {path}: {exc}") from exc
    return dict_to_result(payload)
