"""Parallel sweep runner: fan co-location runs out over processes.

A sweep is a list of :class:`SweepCase` — fully described, picklable
run requests (policy × jobs × config × seeds × faults).  Each case is
an **independent** simulation with its own event loop and seeded RNGs,
so cases can run in any order, in any process, and produce the same
:class:`~repro.harness.colocate.RunResult` — :func:`run_sweep` with
``jobs=N`` is guaranteed bit-identical to ``jobs=1`` (a property the
test suite asserts, including under invariant checking and fault
injection).

Two things make that guarantee hold:

* workers receive the :class:`~repro.faults.FaultConfig`, never a live
  injector — each child builds its own, so fault schedules depend only
  on the config's seed, not on which process runs the case;
* results come back with ``drivers`` stripped (simulation objects are
  neither picklable nor part of the sweep contract), and the serial
  path strips them too, so the two paths return the same object graph.

Worker processes additionally start with the parent's transform-memo
warm snapshot (:func:`repro.transform.warm_snapshot`): kernels the
parent already transformed are reused instead of recompiled.  The memo
is content-addressed, so warm workers stay bit-identical to cold ones.

Tracing is per-process mutable state and is deliberately not supported
here: trace a single :func:`~repro.harness.colocate.run_colocation`
instead.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from ..faults import FaultConfig
from ..transform.memo import load_snapshot, warm_snapshot
from .colocate import JobSpec, RunConfig, RunResult, run_colocation

__all__ = ["SweepCase", "run_sweep", "seed_sweep"]


def _init_worker(snapshot: object | None) -> None:
    """Pool-worker initializer: pre-load the transform memo.

    Workers start with a cold process-wide memo; shipping the parent's
    snapshot means any PTX variant the parent already compiled is reused
    instead of re-transformed.  Purely a warm-start: memo entries are
    content-addressed, so a warm and a cold worker produce bit-identical
    results (the sweep's jobs=N == jobs=1 guarantee is unaffected).
    """
    load_snapshot(snapshot)


@dataclass(frozen=True)
class SweepCase:
    """One fully described co-location run in a sweep."""

    policy: str
    jobs: tuple[JobSpec, ...]
    config: RunConfig
    #: free-form tag carried through to the report (e.g. "seed 3")
    label: str = ""
    #: audit device accounting after every event (raises on violation)
    check: bool = False
    #: fault-injection config; the injector is built inside the worker
    faults: FaultConfig | None = None


def _run_case(case: SweepCase) -> RunResult:
    result = run_colocation(case.policy, list(case.jobs), case.config,
                            check=case.check, faults=case.faults)
    # Drivers are live simulation objects: not picklable and not part
    # of the sweep contract.  The serial path drops them too, so both
    # paths return identical results.
    result.drivers = {}
    return result


def run_sweep(cases: Iterable[SweepCase], *, jobs: int = 1) -> list[RunResult]:
    """Run every case and return results in case order.

    ``jobs`` bounds the number of worker processes; ``jobs=1`` runs
    everything in-process.  Results are bit-identical either way.
    """
    cases = list(cases)
    if jobs <= 1 or len(cases) <= 1:
        return [_run_case(case) for case in cases]
    workers = min(jobs, len(cases), os.cpu_count() or 1)
    with ProcessPoolExecutor(max_workers=workers,
                             initializer=_init_worker,
                             initargs=(warm_snapshot(),)) as pool:
        # map() preserves input order regardless of completion order.
        return list(pool.map(_run_case, cases))


def seed_sweep(policy: str, jobs: Sequence[JobSpec], config: RunConfig,
               seeds: Sequence[int], *, check: bool = False,
               faults: FaultConfig | None = None) -> list[SweepCase]:
    """Replicate one experiment across traffic/trace/fault seeds.

    Case ``k`` re-seeds every randomness source from ``seeds[k]``: the
    per-job traffic seeds (offset by job index so co-located services
    stay decorrelated), the kernel-trace seed, and — when fault
    injection is on — the injector seed.
    """
    cases: list[SweepCase] = []
    for seed in seeds:
        seeded_jobs = tuple(
            replace(job, traffic_seed=seed * 1000 + index)
            for index, job in enumerate(jobs)
        )
        seeded_config = replace(config, trace_seed=seed)
        seeded_faults = (None if faults is None
                         else replace(faults, seed=faults.seed + seed))
        cases.append(SweepCase(
            policy=policy, jobs=seeded_jobs, config=seeded_config,
            label=f"seed {seed}", check=check, faults=seeded_faults,
        ))
    return cases
