"""Evaluation metrics: tail latency, serving SLOs, and throughput."""

from .latency import LatencySummary, percentile
from .serving import ServingSLO, ServingSummary
from .throughput import (
    ThroughputSample,
    normalized_throughput,
    system_throughput,
)

__all__ = [
    "LatencySummary",
    "ServingSLO",
    "ServingSummary",
    "ThroughputSample",
    "normalized_throughput",
    "percentile",
    "system_throughput",
]
