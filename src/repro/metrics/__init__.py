"""Evaluation metrics: tail latency, serving SLOs, and throughput."""

from .latency import LatencySummary, percentile
from .overload import BreakerEvent, OverloadReport
from .recovery import (
    RecoveryReport,
    ServiceRecovery,
    attainment_through_window,
)
from .serving import ServingSLO, ServingSummary
from .throughput import (
    ThroughputSample,
    normalized_throughput,
    system_throughput,
)

__all__ = [
    "BreakerEvent",
    "LatencySummary",
    "OverloadReport",
    "RecoveryReport",
    "ServiceRecovery",
    "ServingSLO",
    "ServingSummary",
    "ThroughputSample",
    "attainment_through_window",
    "normalized_throughput",
    "percentile",
    "system_throughput",
]
