"""Evaluation metrics: tail latency, serving SLOs, and throughput."""

from .latency import LatencySummary, percentile
from .recovery import RecoveryReport, ServiceRecovery
from .serving import ServingSLO, ServingSummary
from .throughput import (
    ThroughputSample,
    normalized_throughput,
    system_throughput,
)

__all__ = [
    "LatencySummary",
    "RecoveryReport",
    "ServiceRecovery",
    "ServingSLO",
    "ServingSummary",
    "ThroughputSample",
    "normalized_throughput",
    "percentile",
    "system_throughput",
]
