"""Evaluation metrics: tail latency and normalized/system throughput."""

from .latency import LatencySummary, percentile
from .throughput import (
    ThroughputSample,
    normalized_throughput,
    system_throughput,
)

__all__ = [
    "LatencySummary",
    "ThroughputSample",
    "normalized_throughput",
    "percentile",
    "system_throughput",
]
