"""Latency statistics (the paper's primary inference metric is p99)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import HarnessError

__all__ = ["LatencySummary", "percentile"]


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (q in [0, 100]) of ``samples``."""
    if not 0 <= q <= 100:
        raise HarnessError(f"percentile {q} outside [0, 100]")
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise HarnessError("cannot take a percentile of zero samples")
    return float(np.percentile(arr, q))


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics of a latency sample set (seconds)."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    max: float

    @staticmethod
    def of(samples: Sequence[float]) -> "LatencySummary":
        arr = np.asarray(samples, dtype=float)
        if arr.size == 0:
            raise HarnessError("cannot summarize zero latency samples")
        # Pairwise summation can put the mean a few ULPs outside
        # [min, max] on near-constant samples; clamp it back in.
        mean = min(max(float(arr.mean()), float(arr.min())),
                   float(arr.max()))
        return LatencySummary(
            count=int(arr.size),
            mean=mean,
            p50=float(np.percentile(arr, 50)),
            p90=float(np.percentile(arr, 90)),
            p99=float(np.percentile(arr, 99)),
            max=float(arr.max()),
        )

    def slowdown_vs(self, baseline: "LatencySummary") -> float:
        """p99 slowdown factor relative to ``baseline``."""
        if baseline.p99 <= 0:
            raise HarnessError("baseline p99 must be > 0")
        return self.p99 / baseline.p99

    def overhead_vs(self, baseline: "LatencySummary") -> float:
        """p99 overhead (fractional increase) relative to ``baseline``."""
        return self.slowdown_vs(baseline) - 1.0
