"""Overload-behaviour metrics: retry amplification, breaker timelines,
sheds by cause, and time-to-recover.

Steady-state latency percentiles say nothing about how a system behaves
*past* its knee.  The failure mode that matters there is metastability:
a transient fault triggers retries, the retries consume the capacity
that real work needed, and the overload outlives the fault that started
it.  :class:`OverloadReport` condenses the signals that distinguish a
bounded, self-limiting response (retry budgets + circuit breakers, see
:mod:`repro.virt.resilience`) from an unbounded retry storm:

- **amplification** — sends per fresh call, ``(fresh + retries) /
  fresh`` summed over all clients.  1.0 is no retries; a sustained
  value well above 1 during a fault window is the storm signature.
- **sheds by cause** — work refused *cheaply* instead of failing
  expensively: client-side deadline give-ups, empty retry budgets,
  breaker fast-fails, and server-side deadline sheds.
- **breaker timeline** — every circuit-breaker transition, merged
  across clients and time-ordered, so a run can be audited for the
  closed → open → half-open → closed recovery shape.
- **time to recover** — from the first breaker opening to the last
  breaker re-close (``0.0`` when no breaker ever opened; ``inf`` when
  one never recovered inside the run).

Build one with :meth:`OverloadReport.of` from the channels (and
optionally the server) of a finished run; see ``docs/fault_tolerance.md``.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

__all__ = ["BreakerEvent", "OverloadReport"]


@dataclass(frozen=True)
class BreakerEvent:
    """One circuit-breaker state transition, attributed to its client."""

    ts: float
    client_id: str
    from_state: str
    to_state: str
    reason: str


@dataclass(frozen=True)
class OverloadReport:
    """How a run behaved under (or without) overload."""

    #: first-attempt calls across all clients
    fresh_calls: int
    #: re-sends across all clients
    retries: int
    #: sends per fresh call (1.0 when nothing retried)
    amplification: float
    #: work refused cheaply, keyed by cause ("deadline-client",
    #: "deadline-server", "retry-budget", "breaker")
    sheds: dict[str, int] = field(default_factory=dict)
    #: time-ordered breaker transitions across every client
    breaker_timeline: tuple[BreakerEvent, ...] = ()
    #: first breaker open -> last breaker close (0.0 = never opened,
    #: inf = opened and never closed again)
    time_to_recover: float = 0.0

    @staticmethod
    def of(channels: Iterable, *,
           server_deadline_sheds: int = 0) -> "OverloadReport":
        """Condense the channels (and server counters) of one run.

        ``channels`` are :class:`~repro.virt.channel.Channel` objects;
        their stats provide the amplification numerator/denominator and
        the client-side shed counters, and their breakers (when
        resilience was enabled) provide the transition timeline.
        """
        fresh = retries = 0
        give_ups = budget = fast_fails = 0
        timeline: list[BreakerEvent] = []
        for channel in channels:
            stats = channel.stats
            fresh += stats.fresh_calls
            retries += stats.retries
            give_ups += stats.deadline_give_ups
            budget += stats.budget_exhausted
            fast_fails += stats.breaker_fast_fails
            if channel.breaker is not None:
                timeline.extend(
                    BreakerEvent(ts, channel.client_id, src, dst, why)
                    for ts, src, dst, why in channel.breaker.transitions)
        timeline.sort(key=lambda e: (e.ts, e.client_id))
        sheds = {cause: count for cause, count in (
            ("deadline-client", give_ups),
            ("deadline-server", server_deadline_sheds),
            ("retry-budget", budget),
            ("breaker", fast_fails),
        ) if count}
        amplification = ((fresh + retries) / fresh) if fresh else 1.0
        return OverloadReport(
            fresh_calls=fresh, retries=retries,
            amplification=amplification, sheds=sheds,
            breaker_timeline=tuple(timeline),
            time_to_recover=_time_to_recover(timeline),
        )

    @property
    def total_sheds(self) -> int:
        return sum(self.sheds.values())

    @staticmethod
    def merged(reports: Sequence["OverloadReport"]) -> "OverloadReport":
        """Deterministically merge per-shard reports into a fleet view.

        Counters sum, sheds sum per cause (in the canonical cause
        order, so the result is independent of shard order),
        amplification and time-to-recover are recomputed from the
        merged totals/timeline.  Used by sharded retry-storm runs
        (:mod:`repro.faults.storm`) where each service shard produces
        its own report.
        """
        fresh = sum(r.fresh_calls for r in reports)
        retries = sum(r.retries for r in reports)
        causes: dict[str, int] = {}
        timeline: list[BreakerEvent] = []
        for report in reports:
            for cause, count in report.sheds.items():
                causes[cause] = causes.get(cause, 0) + count
            timeline.extend(report.breaker_timeline)
        timeline.sort(key=lambda e: (e.ts, e.client_id))
        sheds = {cause: causes[cause] for cause in (
            "deadline-client", "deadline-server", "retry-budget",
            "breaker") if causes.get(cause)}
        sheds.update(kv for kv in sorted(causes.items())
                     if kv[0] not in sheds and kv[1])
        return OverloadReport(
            fresh_calls=fresh, retries=retries,
            amplification=((fresh + retries) / fresh) if fresh else 1.0,
            sheds=sheds, breaker_timeline=tuple(timeline),
            time_to_recover=_time_to_recover(timeline),
        )

    def format(self, *, max_transitions: int = 8) -> str:
        """Human-readable overload summary.

        The timeline is elided past ``max_transitions`` entries (a real
        storm produces hundreds); pass ``None`` to print all of them.
        """
        lines = [
            f"amplification={self.amplification:.2f}x  "
            f"(fresh={self.fresh_calls} retries={self.retries})"
        ]
        if self.sheds:
            causes = ", ".join(f"{cause}={count}" for cause, count
                               in sorted(self.sheds.items()))
            lines.append(f"sheds: {causes}")
        if self.breaker_timeline:
            recover = ("never" if math.isinf(self.time_to_recover)
                       else f"{self.time_to_recover * 1e3:.1f}ms")
            lines.append(
                f"breaker: {len(self.breaker_timeline)} transition(s), "
                f"recovered in {recover}")
            shown = (self.breaker_timeline if max_transitions is None
                     else self.breaker_timeline[:max_transitions])
            for event in shown:
                lines.append(
                    f"  {event.ts * 1e3:9.3f}ms  {event.client_id:<12} "
                    f"{event.from_state} -> {event.to_state}  "
                    f"({event.reason})")
            elided = len(self.breaker_timeline) - len(shown)
            if elided:
                lines.append(f"  ... {elided} more")
        return "\n".join(lines)


def _time_to_recover(timeline: Sequence[BreakerEvent]) -> float:
    """First open -> last close; 0.0 if never opened, inf if stuck."""
    opened_at = next((e.ts for e in timeline if e.to_state == "open"),
                     None)
    if opened_at is None:
        return 0.0
    # every breaker that transitioned must have ended back at closed
    last_state: dict[str, str] = {}
    last_close: dict[str, float] = {}
    for event in timeline:
        last_state[event.client_id] = event.to_state
        if event.to_state == "closed":
            last_close[event.client_id] = event.ts
    if any(state != "closed" for state in last_state.values()):
        return float("inf")
    return max(last_close.values()) - opened_at
