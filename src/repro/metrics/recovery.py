"""Recovery-centric cluster metrics.

When the online control plane (:mod:`repro.cluster.controlplane`)
injects device failures, steady-state metrics stop telling the story:
what matters is how long each latency-critical service was down, how
fast the cluster healed, how much work was shed, and whether the SLO
held *through* the fault window.  :class:`RecoveryReport` collects
those numbers; it rides on :class:`~repro.cluster.simulate.ClusterResult`
as the ``recovery`` field.

Definitions:

- **downtime** — summed wall-clock (simulated) seconds a service spent
  checkpointed between leaving a failed device and being restored on a
  healthy one; arrivals keep queueing through it, so downtime shows up
  in the service's tail latency as well.
- **MTTR** — mean time-to-recovery: average downtime per completed
  migration (``nan`` when nothing migrated).
- **shed vs evicted** — *shed* jobs were rejected at admission
  (load-shedding/backpressure); *evicted* jobs were admitted but killed
  by a failure with no capacity left to re-place them.  Shed *requests*
  are individual requests discarded by crashes or evictions — the
  explicit ledger the migration-conservation invariant balances
  against (see ``docs/cluster.md``).
- **SLO attainment** — fraction of a service's completed requests whose
  latency stayed within ``sla_factor`` times its standalone p99,
  measured over the whole post-warmup window (fault window included);
  ``post_recovery_attainment`` restricts that to requests completed
  after the service's last restore (``nan`` when it never migrated).
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass, field

__all__ = [
    "ServiceRecovery",
    "RecoveryReport",
    "attainment_through_window",
]


def attainment_through_window(
        samples: Sequence[tuple[float, float]], threshold: float,
        window: tuple[float, float]) -> float:
    """SLO attainment restricted to a ``(start, end)`` time window.

    ``samples`` are ``(completion_ts, latency)`` pairs; the result is
    the fraction of samples completing in ``[start, end)`` whose
    latency is at or under ``threshold``.  A zero-length (or inverted)
    window contains no completions, and an SLO with nothing due inside
    it is vacuously met — the result is ``1.0``, never ``nan``, so
    windowed comparisons (pre-fault vs through-fault vs post-recovery)
    stay total-ordered even when a window is empty.
    """
    start, end = window
    if end <= start:
        return 1.0
    inside = [lat for ts, lat in samples if start <= ts < end]
    if not inside:
        return 1.0
    return sum(1 for lat in inside if lat <= threshold) / len(inside)


@dataclass(frozen=True)
class ServiceRecovery:
    """Fault-window outcome of one latency-critical service."""

    client_id: str
    model: str
    #: device the service ended the run on (-1 if evicted)
    device: int
    migrations: int
    downtime: float
    #: fraction of windowed requests within the SLA (nan if none completed)
    slo_attainment: float
    #: attainment over requests completed after the last restore
    #: (nan when the service never migrated or completed nothing after)
    post_recovery_attainment: float
    evicted: bool = False


@dataclass(frozen=True)
class RecoveryReport:
    """Cluster-wide recovery outcome of one control-plane run."""

    services: tuple[ServiceRecovery, ...]
    #: completed checkpoint/restore migrations (failover + proactive + drain)
    migrations: int
    #: jobs rejected at admission (load-shedding)
    jobs_shed: int
    #: admitted jobs killed by a failure with nowhere to re-place them
    jobs_evicted: int
    #: individual requests discarded by crashes/evictions
    requests_shed: int
    #: mean time-to-recovery per migration (nan when none happened)
    mttr: float
    #: device-level fault transitions that fired, by kind
    device_faults: dict[str, int] = field(default_factory=dict)
    #: autoscaler decisions committed (0 when no autoscaler ran)
    scale_ups: int = 0
    scale_downs: int = 0

    @property
    def total_downtime(self) -> float:
        return sum(s.downtime for s in self.services)

    def service(self, client_id: str) -> ServiceRecovery:
        for entry in self.services:
            if entry.client_id == client_id:
                return entry
        raise KeyError(f"no recovery entry for service {client_id!r}")

    def format(self) -> str:
        """Human-readable recovery table."""
        lines = [
            f"migrations={self.migrations}  "
            f"mttr={_fmt_s(self.mttr)}  "
            f"jobs shed={self.jobs_shed} evicted={self.jobs_evicted}  "
            f"requests shed={self.requests_shed}"
        ]
        if self.device_faults:
            faults = ", ".join(f"{kind}={count}" for kind, count
                               in sorted(self.device_faults.items()))
            lines.append(f"device faults: {faults}")
        if self.scale_ups or self.scale_downs:
            lines.append(f"autoscaler: scale-ups={self.scale_ups}  "
                         f"scale-downs={self.scale_downs}")
        for entry in self.services:
            state = "evicted" if entry.evicted else f"gpu {entry.device}"
            lines.append(
                f"  {entry.client_id:<20} {state:>8}  "
                f"migrations={entry.migrations}  "
                f"downtime={_fmt_s(entry.downtime)}  "
                f"slo={_fmt_pct(entry.slo_attainment)}  "
                f"post-recovery={_fmt_pct(entry.post_recovery_attainment)}"
            )
        return "\n".join(lines)


def _fmt_s(value: float) -> str:
    return "n/a" if math.isnan(value) else f"{value * 1e3:.1f}ms"


def _fmt_pct(value: float) -> str:
    return "n/a" if math.isnan(value) else f"{value * 100:.1f}%"
