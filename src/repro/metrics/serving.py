"""SLO-aware serving metrics for request-driven (LLM) workloads.

Trace-model inference reports one number per request (end-to-end
latency, summarized by :class:`~repro.metrics.latency.LatencySummary`).
Autoregressive serving is judged on a finer clock — following the
GPU-Virt-Bench framing, an isolation system is scored on the metrics a
serving operator actually alarms on:

* **TTFT** (time to first token) — arrival to the first generated
  token, i.e. queueing + admission + prefill;
* **inter-token latency** (a.k.a. time between tokens) — the gap
  between consecutive tokens of one request during decode;
* **goodput under an SLO** — the rate of completed requests that met
  *both* bounds, which is the number capacity planning runs on
  (throughput alone rewards systems that starve the tail).

:class:`ServingSummary` aggregates a measurement window;
:class:`ServingSLO` carries the bounds.  The builders take plain
sample arrays so this module stays free of workload-driver imports —
:class:`~repro.workloads.llm.LLMServingJob` extracts the windowed
samples and calls :meth:`ServingSummary.of`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import HarnessError
from .latency import LatencySummary

__all__ = ["ServingSLO", "ServingSummary"]


@dataclass(frozen=True)
class ServingSLO:
    """Latency bounds a completed request must meet to count as good.

    Defaults are deliberately loose multiples of the built-in serving
    models' idle-device step times; experiments that quote goodput
    should set bounds relative to measured isolated behaviour (the
    harness uses ``scaled_to_ideal``).
    """

    #: time-to-first-token bound (seconds)
    ttft: float = 0.25
    #: per-gap inter-token latency bound (seconds); a request is good
    #: only if *every* token gap meets it (worst-gap semantics — one
    #: visible stall breaks the stream even if the p50 is fine)
    inter_token: float = 0.05

    def __post_init__(self) -> None:
        if self.ttft <= 0 or self.inter_token <= 0:
            raise HarnessError("SLO bounds must be > 0")

    def met_by(self, ttft: float, worst_gap: float) -> bool:
        """Did a request with these timings meet the SLO?"""
        return ttft <= self.ttft and worst_gap <= self.inter_token

    @staticmethod
    def scaled_to_ideal(ideal_ttft_p99: float, ideal_gap_p99: float,
                        slack: float = 1.5) -> "ServingSLO":
        """Bounds at ``slack`` times the isolated p99s.

        The paper's isolation criterion is relative (co-located tail
        within a small factor of isolated), so the serving SLO is
        anchored the same way.
        """
        if slack <= 1:
            raise HarnessError("slack must be > 1")
        return ServingSLO(ttft=ideal_ttft_p99 * slack,
                          inter_token=ideal_gap_p99 * slack)


@dataclass(frozen=True)
class ServingSummary:
    """Windowed serving metrics of one LLM service.

    ``ttft`` summarizes requests whose first token landed in the
    window; ``inter_token`` pools every token gap whose later token
    landed in the window (in-flight and evicted requests included, so
    a stall cannot hide by never finishing); ``completed`` / ``good``
    count requests that *finished* in the window.
    """

    completed: int
    evicted: int
    tokens: int
    span: float
    ttft: LatencySummary | None
    inter_token: LatencySummary | None
    #: completed requests that met the SLO (== completed when no SLO
    #: was supplied — an unstated SLO rejects nothing)
    good: int

    def __post_init__(self) -> None:
        if self.span <= 0:
            raise HarnessError("span must be > 0")
        if self.good > self.completed:
            raise HarnessError("good requests cannot exceed completed")

    @property
    def tokens_per_s(self) -> float:
        return self.tokens / self.span

    @property
    def requests_per_s(self) -> float:
        return self.completed / self.span

    @property
    def goodput(self) -> float:
        """SLO-compliant completed requests per second."""
        return self.good / self.span

    @property
    def slo_attainment(self) -> float:
        """Fraction of completed requests that met the SLO (nan if none)."""
        if self.completed == 0:
            return float("nan")
        return self.good / self.completed

    @staticmethod
    def of(*, ttfts: Sequence[float], gaps: Sequence[float],
           request_timings: Sequence[tuple[float, float]],
           evicted: int, tokens: int, span: float,
           slo: ServingSLO | None = None) -> "ServingSummary":
        """Build a summary from windowed sample arrays.

        ``request_timings`` holds one ``(ttft, worst_gap)`` pair per
        *completed* request — the quantities the SLO is checked
        against.  ``ttfts`` and ``gaps`` are the pooled sample arrays
        described on the class.
        """
        if span <= 0:
            raise HarnessError("span must be > 0")
        good = len(request_timings) if slo is None else sum(
            1 for ttft, worst in request_timings if slo.met_by(ttft, worst)
        )
        return ServingSummary(
            completed=len(request_timings),
            evicted=evicted,
            tokens=tokens,
            span=span,
            ttft=LatencySummary.of(ttfts) if len(ttfts) else None,
            inter_token=LatencySummary.of(gaps) if len(gaps) else None,
            good=good,
        )
