"""Throughput metrics.

The paper measures each workload's throughput (samples processed per
unit time), normalizes it by the workload's isolated throughput, and
reports **system throughput** — the sum of normalized throughputs of
the co-located workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..errors import HarnessError

__all__ = ["ThroughputSample", "normalized_throughput", "system_throughput"]


@dataclass(frozen=True)
class ThroughputSample:
    """Completed work units over an interval."""

    completed: int
    interval: float

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise HarnessError("interval must be > 0")
        if self.completed < 0:
            raise HarnessError("completed must be >= 0")

    @property
    def rate(self) -> float:
        return self.completed / self.interval


def normalized_throughput(measured: ThroughputSample,
                          standalone: ThroughputSample) -> float:
    """Measured rate relative to isolated execution (1.0 = no loss)."""
    if standalone.rate <= 0:
        raise HarnessError("standalone rate must be > 0")
    return measured.rate / standalone.rate


def system_throughput(normalized: Mapping[str, float]) -> float:
    """Aggregate normalized throughput of co-located workloads."""
    if not normalized:
        raise HarnessError("no workloads to aggregate")
    return sum(normalized.values())
