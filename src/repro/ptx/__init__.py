"""Mini-PTX substrate: IR, builder, validation, printing, interpretation.

This package models the device-code surface that Tally's kernel
transformations operate on.  See :mod:`repro.ptx.ir` for the instruction
set and :mod:`repro.ptx.interpreter` for the execution semantics.
"""

from .builder import KernelBuilder
from .hash import canonical_form, ir_hash
from .interpreter import (
    DeviceMemory,
    GlobalRef,
    Interpreter,
    LaunchResult,
    SharedRef,
    launch_kernel,
)
from .ir import (
    Axis,
    CompareOp,
    Dim3,
    Imm,
    Instr,
    KernelIR,
    Opcode,
    Param,
    ParamKind,
    ParamRef,
    Reg,
    SharedDecl,
    SMemAddr,
    Special,
    SpecialKind,
)
from .library import KernelCase, case_names, make_case
from .parser import parse_kernel, parse_operand
from .printer import format_instr, format_kernel
from .validate import validate_kernel

__all__ = [
    "Axis",
    "CompareOp",
    "Dim3",
    "DeviceMemory",
    "GlobalRef",
    "Imm",
    "Instr",
    "Interpreter",
    "KernelBuilder",
    "KernelCase",
    "KernelIR",
    "LaunchResult",
    "Opcode",
    "Param",
    "ParamKind",
    "ParamRef",
    "Reg",
    "SharedDecl",
    "SharedRef",
    "SMemAddr",
    "Special",
    "SpecialKind",
    "canonical_form",
    "case_names",
    "format_instr",
    "format_kernel",
    "ir_hash",
    "launch_kernel",
    "make_case",
    "parse_kernel",
    "parse_operand",
    "validate_kernel",
]
