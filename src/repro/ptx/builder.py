"""Fluent construction of mini-PTX kernels.

:class:`KernelBuilder` lets kernels be written as straight-line Python
with automatic virtual-register allocation::

    b = KernelBuilder("vecadd")
    a, x, y = b.ptr_param("a"), b.ptr_param("x"), b.ptr_param("y")
    n = b.i32_param("n")
    i = b.global_thread_id_x()
    p = b.setp(CompareOp.GE, i, n)
    b.ret(pred=p)
    b.st(y, i, b.add(b.ld(a, i), b.ld(x, i)))
    b.ret()
    kernel = b.build()
"""

from __future__ import annotations

from typing import Sequence, Union

from ..errors import ValidationError
from .ir import (
    Axis,
    CompareOp,
    Imm,
    Instr,
    KernelIR,
    Opcode,
    Operand,
    Param,
    ParamKind,
    ParamRef,
    Reg,
    SharedDecl,
    SMemAddr,
    Special,
    SpecialKind,
)

__all__ = ["KernelBuilder", "as_operand"]

OperandLike = Union[Operand, int, float, bool]


def as_operand(value: OperandLike) -> Operand:
    """Coerce a Python literal into an :class:`Imm`, pass operands through."""
    if isinstance(value, (Reg, Imm, ParamRef, Special, SMemAddr)):
        return value
    if isinstance(value, (int, float, bool)):
        return Imm(value)
    raise TypeError(f"cannot use {value!r} as an operand")


class KernelBuilder:
    """Incrementally builds a :class:`~repro.ptx.ir.KernelIR`."""

    def __init__(self, name: str):
        self.name = name
        self._params: list[Param] = []
        self._shared: list[SharedDecl] = []
        self._body: list[Instr] = []
        self._next_reg = 0
        self._next_label = 0
        self._pending_label: str | None = None

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def param(self, name: str, kind: ParamKind) -> ParamRef:
        """Declare a kernel parameter and return a reference to it."""
        if any(p.name == name for p in self._params):
            raise ValidationError(f"duplicate parameter {name!r}")
        self._params.append(Param(name, kind))
        return ParamRef(name)

    def ptr_param(self, name: str) -> ParamRef:
        """Declare a device-pointer parameter."""
        return self.param(name, ParamKind.PTR)

    def i32_param(self, name: str) -> ParamRef:
        """Declare a 32-bit integer parameter."""
        return self.param(name, ParamKind.I32)

    def f32_param(self, name: str) -> ParamRef:
        """Declare a 32-bit float parameter."""
        return self.param(name, ParamKind.F32)

    def shared_buffer(self, name: str, size: int) -> SMemAddr:
        """Declare a shared-memory buffer of ``size`` elements."""
        if any(s.name == name for s in self._shared):
            raise ValidationError(f"duplicate shared buffer {name!r}")
        if size < 1:
            raise ValidationError(f"shared buffer {name!r} must have size >= 1")
        self._shared.append(SharedDecl(name, size))
        return SMemAddr(name)

    # ------------------------------------------------------------------
    # Registers and labels
    # ------------------------------------------------------------------
    def reg(self, stem: str = "r") -> Reg:
        """Allocate a fresh virtual register."""
        r = Reg(f"{stem}{self._next_reg}")
        self._next_reg += 1
        return r

    def fresh_label(self, stem: str = "L") -> str:
        """Allocate a fresh label name (without attaching it)."""
        label = f"{stem}{self._next_label}"
        self._next_label += 1
        return label

    def label(self, name: str | None = None) -> str:
        """Attach a label to the *next* emitted instruction."""
        if name is None:
            name = self.fresh_label()
        if self._pending_label is not None:
            # Two labels on one spot: emit a NOP to carry the first.
            self._emit(Instr(Opcode.NOP))
        self._pending_label = name
        return name

    # ------------------------------------------------------------------
    # Special registers
    # ------------------------------------------------------------------
    def special(self, kind: SpecialKind, axis: Axis) -> Special:
        """Return a special-register operand."""
        return Special(kind, axis)

    def tid(self, axis: Axis = Axis.X) -> Special:
        """threadIdx along ``axis``."""
        return Special(SpecialKind.TID, axis)

    def ntid(self, axis: Axis = Axis.X) -> Special:
        """blockDim along ``axis``."""
        return Special(SpecialKind.NTID, axis)

    def ctaid(self, axis: Axis = Axis.X) -> Special:
        """blockIdx along ``axis``."""
        return Special(SpecialKind.CTAID, axis)

    def nctaid(self, axis: Axis = Axis.X) -> Special:
        """gridDim along ``axis``."""
        return Special(SpecialKind.NCTAID, axis)

    def global_thread_id_x(self) -> Reg:
        """Emit ``ctaid.x * ntid.x + tid.x`` and return the result."""
        return self.mad(self.ctaid(), self.ntid(), self.tid())

    # ------------------------------------------------------------------
    # Instruction emission
    # ------------------------------------------------------------------
    def _emit(self, instr: Instr) -> Instr:
        if self._pending_label is not None:
            instr.label = self._pending_label
            self._pending_label = None
        self._body.append(instr)
        return instr

    def emit_raw(self, instr: Instr) -> Instr:
        """Append a pre-built instruction (used by transformation passes).

        A pending :meth:`label` is attached unless the instruction already
        carries its own label, in which case a NOP carries the pending one.
        """
        if self._pending_label is not None and instr.label is not None:
            self._emit(Instr(Opcode.NOP))
        return self._emit(instr)

    def declare_param(self, param: Param) -> ParamRef:
        """Append an existing parameter declaration."""
        if any(p.name == param.name for p in self._params):
            raise ValidationError(f"duplicate parameter {param.name!r}")
        self._params.append(param)
        return ParamRef(param.name)

    def declare_shared(self, decl: SharedDecl) -> SMemAddr:
        """Append an existing shared-buffer declaration."""
        if any(s.name == decl.name for s in self._shared):
            raise ValidationError(f"duplicate shared buffer {decl.name!r}")
        self._shared.append(decl)
        return SMemAddr(decl.name)

    def _binary(
        self, op: Opcode, a: OperandLike, b: OperandLike, dst: Reg | None
    ) -> Reg:
        dst = dst or self.reg()
        self._emit(Instr(op, dst=dst, srcs=(as_operand(a), as_operand(b))))
        return dst

    def mov(self, src: OperandLike, dst: Reg | None = None, *,
            pred: Reg | None = None, pred_negate: bool = False) -> Reg:
        """Copy ``src`` into a register (optionally predicated)."""
        dst = dst or self.reg()
        self._emit(
            Instr(Opcode.MOV, dst=dst, srcs=(as_operand(src),),
                  pred=pred, pred_negate=pred_negate)
        )
        return dst

    def add(self, a: OperandLike, b: OperandLike, dst: Reg | None = None) -> Reg:
        """dst = a + b (pointer arithmetic allowed on the left operand)."""
        return self._binary(Opcode.ADD, a, b, dst)

    def sub(self, a: OperandLike, b: OperandLike, dst: Reg | None = None) -> Reg:
        """dst = a - b."""
        return self._binary(Opcode.SUB, a, b, dst)

    def mul(self, a: OperandLike, b: OperandLike, dst: Reg | None = None) -> Reg:
        """dst = a * b."""
        return self._binary(Opcode.MUL, a, b, dst)

    def div(self, a: OperandLike, b: OperandLike, dst: Reg | None = None) -> Reg:
        """dst = a / b (integer division truncates toward zero)."""
        return self._binary(Opcode.DIV, a, b, dst)

    def rem(self, a: OperandLike, b: OperandLike, dst: Reg | None = None) -> Reg:
        """dst = a % b."""
        return self._binary(Opcode.REM, a, b, dst)

    def min_(self, a: OperandLike, b: OperandLike, dst: Reg | None = None) -> Reg:
        """dst = min(a, b)."""
        return self._binary(Opcode.MIN, a, b, dst)

    def max_(self, a: OperandLike, b: OperandLike, dst: Reg | None = None) -> Reg:
        """dst = max(a, b)."""
        return self._binary(Opcode.MAX, a, b, dst)

    def and_(self, a: OperandLike, b: OperandLike, dst: Reg | None = None) -> Reg:
        """dst = a & b (logical on predicates)."""
        return self._binary(Opcode.AND, a, b, dst)

    def or_(self, a: OperandLike, b: OperandLike, dst: Reg | None = None) -> Reg:
        """dst = a | b (logical on predicates)."""
        return self._binary(Opcode.OR, a, b, dst)

    def xor(self, a: OperandLike, b: OperandLike, dst: Reg | None = None) -> Reg:
        """dst = a ^ b."""
        return self._binary(Opcode.XOR, a, b, dst)

    def shl(self, a: OperandLike, b: OperandLike, dst: Reg | None = None) -> Reg:
        """dst = a << b."""
        return self._binary(Opcode.SHL, a, b, dst)

    def shr(self, a: OperandLike, b: OperandLike, dst: Reg | None = None) -> Reg:
        """dst = a >> b."""
        return self._binary(Opcode.SHR, a, b, dst)

    def mad(self, a: OperandLike, b: OperandLike, c: OperandLike,
            dst: Reg | None = None) -> Reg:
        """dst = a * b + c."""
        dst = dst or self.reg()
        self._emit(
            Instr(Opcode.MAD, dst=dst,
                  srcs=(as_operand(a), as_operand(b), as_operand(c)))
        )
        return dst

    def not_(self, a: OperandLike, dst: Reg | None = None) -> Reg:
        """dst = not a (logical)."""
        dst = dst or self.reg()
        self._emit(Instr(Opcode.NOT, dst=dst, srcs=(as_operand(a),)))
        return dst

    def sqrt(self, a: OperandLike, dst: Reg | None = None) -> Reg:
        """dst = sqrt(a)."""
        dst = dst or self.reg()
        self._emit(Instr(Opcode.SQRT, dst=dst, srcs=(as_operand(a),)))
        return dst

    def exp(self, a: OperandLike, dst: Reg | None = None) -> Reg:
        """dst = exp(a)."""
        dst = dst or self.reg()
        self._emit(Instr(Opcode.EXP, dst=dst, srcs=(as_operand(a),)))
        return dst

    def abs_(self, a: OperandLike, dst: Reg | None = None) -> Reg:
        """dst = abs(a)."""
        dst = dst or self.reg()
        self._emit(Instr(Opcode.ABS, dst=dst, srcs=(as_operand(a),)))
        return dst

    def cvt_int(self, a: OperandLike, dst: Reg | None = None) -> Reg:
        """dst = int(a), truncating toward zero (PTX ``cvt.s32``)."""
        dst = dst or self.reg()
        self._emit(Instr(Opcode.CVT_INT, dst=dst, srcs=(as_operand(a),)))
        return dst

    def setp(self, cmp: CompareOp, a: OperandLike, b: OperandLike,
             dst: Reg | None = None) -> Reg:
        """dst = a <cmp> b, producing a predicate register."""
        dst = dst or self.reg("p")
        self._emit(
            Instr(Opcode.SETP, dst=dst, cmp=cmp,
                  srcs=(as_operand(a), as_operand(b)))
        )
        return dst

    def selp(self, a: OperandLike, b: OperandLike, pred: OperandLike,
             dst: Reg | None = None) -> Reg:
        """dst = pred ? a : b."""
        dst = dst or self.reg()
        self._emit(
            Instr(Opcode.SELP, dst=dst,
                  srcs=(as_operand(a), as_operand(b), as_operand(pred)))
        )
        return dst

    def bra(self, target: str, *, pred: Reg | None = None,
            negate: bool = False) -> Instr:
        """Branch to ``target``; optionally guarded by ``pred``."""
        return self._emit(
            Instr(Opcode.BRA, target=target, pred=pred, pred_negate=negate)
        )

    def brx(self, targets: Sequence[str], index: OperandLike) -> Instr:
        """Indirect branch: jump to ``targets[index]``."""
        return self._emit(
            Instr(Opcode.BRX, targets=tuple(targets), srcs=(as_operand(index),))
        )

    def ld(self, base: OperandLike, offset: OperandLike = 0,
           dst: Reg | None = None) -> Reg:
        """dst = memory[base + offset]."""
        dst = dst or self.reg()
        self._emit(
            Instr(Opcode.LD, dst=dst, srcs=(as_operand(base), as_operand(offset)))
        )
        return dst

    def st(self, base: OperandLike, offset: OperandLike, src: OperandLike, *,
           pred: Reg | None = None, pred_negate: bool = False) -> Instr:
        """memory[base + offset] = src (optionally predicated)."""
        return self._emit(
            Instr(Opcode.ST,
                  srcs=(as_operand(base), as_operand(offset), as_operand(src)),
                  pred=pred, pred_negate=pred_negate)
        )

    def atom_add(self, base: OperandLike, offset: OperandLike, value: OperandLike,
                 dst: Reg | None = None) -> Reg:
        """Atomically add ``value`` at ``base + offset``; dst gets the old value."""
        dst = dst or self.reg()
        self._emit(
            Instr(Opcode.ATOM_ADD, dst=dst,
                  srcs=(as_operand(base), as_operand(offset), as_operand(value)))
        )
        return dst

    def atom_cas(self, base: OperandLike, offset: OperandLike,
                 compare: OperandLike, value: OperandLike,
                 dst: Reg | None = None) -> Reg:
        """Atomic compare-and-swap; dst gets the old value."""
        dst = dst or self.reg()
        self._emit(
            Instr(Opcode.ATOM_CAS, dst=dst,
                  srcs=(as_operand(base), as_operand(offset),
                        as_operand(compare), as_operand(value)))
        )
        return dst

    def atom_exch(self, base: OperandLike, offset: OperandLike,
                  value: OperandLike, dst: Reg | None = None) -> Reg:
        """Atomic exchange; dst gets the old value."""
        dst = dst or self.reg()
        self._emit(
            Instr(Opcode.ATOM_EXCH, dst=dst,
                  srcs=(as_operand(base), as_operand(offset), as_operand(value)))
        )
        return dst

    def bar(self) -> Instr:
        """Block-wide barrier (``bar.sync 0``)."""
        return self._emit(Instr(Opcode.BAR))

    def ret(self, *, pred: Reg | None = None, negate: bool = False) -> Instr:
        """Return from the kernel (optionally predicated)."""
        return self._emit(Instr(Opcode.RET, pred=pred, pred_negate=negate))

    def nop(self) -> Instr:
        """No-op (useful as a label carrier)."""
        return self._emit(Instr(Opcode.NOP))

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def build(self, *, validate: bool = True) -> KernelIR:
        """Finish the kernel, validating by default."""
        if self._pending_label is not None:
            self._emit(Instr(Opcode.NOP))
        body = list(self._body)
        if not body or body[-1].op is not Opcode.RET or body[-1].pred is not None:
            body.append(Instr(Opcode.RET))
        kernel = KernelIR(
            name=self.name,
            params=list(self._params),
            shared=list(self._shared),
            body=body,
        )
        if validate:
            from .validate import validate_kernel

            validate_kernel(kernel)
        return kernel
