"""Content hashing of mini-PTX kernels.

:func:`ir_hash` digests a :class:`~repro.ptx.ir.KernelIR` into a short
hex string that depends only on the kernel's *structure* — its name,
signature, shared-memory declarations, and instruction stream.  Two
kernels built independently (different objects, different processes,
different declaration order of parameters or shared buffers) hash
identically exactly when a Tally transformation would produce the same
output for both.

This is what makes transformed-kernel caching content-addressed: the
transform memo (:mod:`repro.transform.memo`) keys on ``(ir_hash,
transform, params)`` instead of ``id(kernel)``, so a garbage-collected
kernel whose ``id()`` CPython later reuses can never alias another
kernel's cached variant, and warm caches can be pickled between
processes.

Properties the digest guarantees:

* **identity-free** — depends only on content, never on ``id()``;
* **declaration-order-free** — parameters and shared buffers are
  referenced by name, so their declaration order is canonicalized away
  (instruction order *is* semantic and is hashed in order);
* **process-stable** — built on BLAKE2b over a deterministic
  encoding, never on Python's per-process salted ``hash()``.
"""

from __future__ import annotations

import hashlib

from .ir import (
    Imm,
    Instr,
    KernelIR,
    Operand,
    ParamRef,
    Reg,
    SMemAddr,
    Special,
)

__all__ = ["canonical_form", "ir_hash"]

#: BLAKE2b digest length in bytes (32 hex chars — ample for a cache key)
_DIGEST_SIZE = 16


def _operand_form(operand: Operand) -> tuple:
    """A primitive, deterministic encoding of one operand."""
    if isinstance(operand, Reg):
        return ("reg", operand.name)
    if isinstance(operand, Imm):
        # repr() alone conflates 1 / 1.0 / True; tag with the type.
        return ("imm", type(operand.value).__name__, repr(operand.value))
    if isinstance(operand, ParamRef):
        return ("param", operand.name)
    if isinstance(operand, Special):
        return ("special", operand.kind.value, operand.axis.value)
    if isinstance(operand, SMemAddr):
        return ("smem", operand.buffer)
    raise TypeError(f"unhashable operand type {type(operand).__name__}")


def _instr_form(instr: Instr) -> tuple:
    """A primitive, deterministic encoding of one instruction."""
    return (
        instr.op.value,
        instr.dst.name if instr.dst is not None else None,
        tuple(_operand_form(src) for src in instr.srcs),
        instr.target,
        instr.targets,
        instr.cmp.value if instr.cmp is not None else None,
        instr.label,
        instr.pred.name if instr.pred is not None else None,
        instr.pred_negate,
    )


def canonical_form(kernel: KernelIR) -> tuple:
    """The kernel reduced to nested tuples of primitives.

    Parameters and shared declarations are sorted by name (they are
    referenced by name, so declaration order is not semantic); the
    instruction body keeps its order (it is).  Equal canonical forms
    mean the transformations produce equal output.
    """
    return (
        kernel.name,
        tuple(sorted((p.name, p.kind.value) for p in kernel.params)),
        tuple(sorted((s.name, s.size) for s in kernel.shared)),
        tuple(_instr_form(instr) for instr in kernel.body),
    )


def ir_hash(kernel: KernelIR) -> str:
    """Stable hex content digest of ``kernel`` (see module docstring)."""
    payload = repr(canonical_form(kernel)).encode("utf-8")
    return hashlib.blake2b(payload, digest_size=_DIGEST_SIZE).hexdigest()
