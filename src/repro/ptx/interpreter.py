"""Functional interpreter for mini-PTX kernels.

The interpreter executes a :class:`~repro.ptx.ir.KernelIR` over simulated
device memory with CUDA-faithful block/thread semantics:

* thread blocks execute independently and may run in any order;
* threads within a block make independent progress between barriers;
* ``bar.sync`` releases only when *all* live threads of the block wait at
  the *same* barrier — divergent synchronization (some threads returned,
  or waiting at a different barrier) raises
  :class:`~repro.errors.SyncDivergenceError`, modelling the infinite
  stall the paper describes for unsafe transformed kernels;
* atomics on global and shared memory are sequentially consistent.

This is a *functional* model: it computes what a kernel writes, not how
long it takes.  Timing belongs to :mod:`repro.gpu`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..errors import (
    ExecutionError,
    InstructionLimitExceeded,
    MemoryError_,
    SyncDivergenceError,
)
from .ir import (
    CompareOp,
    Dim3,
    Imm,
    Instr,
    KernelIR,
    Opcode,
    Operand,
    ParamRef,
    Reg,
    SMemAddr,
    Special,
    SpecialKind,
)

__all__ = [
    "GlobalRef",
    "SharedRef",
    "DeviceMemory",
    "LaunchResult",
    "Interpreter",
    "launch_kernel",
]


@dataclass(frozen=True)
class GlobalRef:
    """A pointer into a named global-memory buffer (element offset)."""

    buffer: str
    offset: int = 0

    def advanced(self, delta: int) -> "GlobalRef":
        """Return a pointer ``delta`` elements further on."""
        return GlobalRef(self.buffer, self.offset + delta)

    def __str__(self) -> str:
        return f"&{self.buffer}[{self.offset}]"


@dataclass(frozen=True)
class SharedRef:
    """A pointer into a per-block shared-memory buffer (element offset)."""

    buffer: str
    offset: int = 0

    def advanced(self, delta: int) -> "SharedRef":
        """Return a pointer ``delta`` elements further on."""
        return SharedRef(self.buffer, self.offset + delta)

    def __str__(self) -> str:
        return f"&shared.{self.buffer}[{self.offset}]"


class DeviceMemory:
    """Simulated global device memory: named, bounds-checked buffers."""

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}
        self._next_anon = 0

    def alloc(self, size: int, dtype: Any = np.float64,
              name: str | None = None) -> GlobalRef:
        """Allocate a zero-initialized buffer and return a pointer to it."""
        if size < 1:
            raise MemoryError_(f"allocation size must be >= 1, got {size}")
        if name is None:
            name = f"buf{self._next_anon}"
            self._next_anon += 1
        if name in self._buffers:
            raise MemoryError_(f"buffer {name!r} already allocated")
        self._buffers[name] = np.zeros(size, dtype=dtype)
        return GlobalRef(name, 0)

    def bind(self, name: str, array: np.ndarray) -> GlobalRef:
        """Expose an existing 1-D array as a device buffer."""
        if array.ndim != 1:
            raise MemoryError_("only 1-D arrays can be bound as device buffers")
        if name in self._buffers:
            raise MemoryError_(f"buffer {name!r} already allocated")
        self._buffers[name] = array
        return GlobalRef(name, 0)

    def free(self, ref: GlobalRef) -> None:
        """Release a buffer."""
        if ref.buffer not in self._buffers:
            raise MemoryError_(f"no buffer named {ref.buffer!r}")
        del self._buffers[ref.buffer]

    def array(self, ref: GlobalRef) -> np.ndarray:
        """Return the backing array of ``ref``'s buffer."""
        try:
            return self._buffers[ref.buffer]
        except KeyError:
            raise MemoryError_(f"no buffer named {ref.buffer!r}") from None

    def _slot(self, ref: GlobalRef, offset: int) -> tuple[np.ndarray, int]:
        arr = self.array(ref)
        index = ref.offset + offset
        if not 0 <= index < arr.shape[0]:
            raise MemoryError_(
                f"out-of-bounds access at {ref.buffer}[{index}] "
                f"(size {arr.shape[0]})"
            )
        return arr, index

    def read(self, ref: GlobalRef, offset: int = 0) -> int | float:
        """Load one element."""
        arr, index = self._slot(ref, offset)
        return arr[index].item()

    def write(self, ref: GlobalRef, offset: int, value: int | float) -> None:
        """Store one element."""
        arr, index = self._slot(ref, offset)
        arr[index] = value

    def atomic_add(self, ref: GlobalRef, offset: int,
                   value: int | float) -> int | float:
        """Atomic fetch-and-add; returns the previous value."""
        arr, index = self._slot(ref, offset)
        old = arr[index].item()
        arr[index] = old + value
        return old

    def atomic_cas(self, ref: GlobalRef, offset: int, compare: int | float,
                   value: int | float) -> int | float:
        """Atomic compare-and-swap; returns the previous value."""
        arr, index = self._slot(ref, offset)
        old = arr[index].item()
        if old == compare:
            arr[index] = value
        return old

    def atomic_exch(self, ref: GlobalRef, offset: int,
                    value: int | float) -> int | float:
        """Atomic exchange; returns the previous value."""
        arr, index = self._slot(ref, offset)
        old = arr[index].item()
        arr[index] = value
        return old


class _SharedSpace:
    """Shared-memory buffers of one thread block."""

    def __init__(self, decls: Sequence[tuple[str, int]]):
        self._buffers = {name: np.zeros(size, dtype=np.float64)
                         for name, size in decls}

    def _slot(self, ref: SharedRef, offset: int) -> tuple[np.ndarray, int]:
        try:
            arr = self._buffers[ref.buffer]
        except KeyError:
            raise MemoryError_(f"no shared buffer named {ref.buffer!r}") from None
        index = ref.offset + offset
        if not 0 <= index < arr.shape[0]:
            raise MemoryError_(
                f"out-of-bounds shared access at {ref.buffer}[{index}] "
                f"(size {arr.shape[0]})"
            )
        return arr, index

    def read(self, ref: SharedRef, offset: int) -> float:
        arr, index = self._slot(ref, offset)
        return arr[index].item()

    def write(self, ref: SharedRef, offset: int, value: int | float) -> None:
        arr, index = self._slot(ref, offset)
        arr[index] = value

    def atomic_add(self, ref: SharedRef, offset: int,
                   value: int | float) -> float:
        arr, index = self._slot(ref, offset)
        old = arr[index].item()
        arr[index] = old + value
        return old

    def atomic_cas(self, ref: SharedRef, offset: int, compare: int | float,
                   value: int | float) -> float:
        arr, index = self._slot(ref, offset)
        old = arr[index].item()
        if old == compare:
            arr[index] = value
        return old

    def atomic_exch(self, ref: SharedRef, offset: int,
                    value: int | float) -> float:
        arr, index = self._slot(ref, offset)
        old = arr[index].item()
        arr[index] = value
        return old


@dataclass
class _ThreadState:
    """Execution state of one thread within a block."""

    tid: tuple[int, int, int]
    pc: int = 0
    regs: dict[str, Any] = field(default_factory=dict)
    finished: bool = False
    barrier_pc: int | None = None
    instructions: int = 0


@dataclass
class LaunchResult:
    """Summary of a completed kernel launch."""

    kernel: str
    grid: Dim3
    block: Dim3
    blocks_run: int
    instructions: int


def _as_int(value: Any, what: str) -> int:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    raise ExecutionError(f"{what} must be an integer, got {value!r}")


_COMPARES: dict[CompareOp, Callable[[Any, Any], bool]] = {
    CompareOp.LT: lambda a, b: a < b,
    CompareOp.LE: lambda a, b: a <= b,
    CompareOp.GT: lambda a, b: a > b,
    CompareOp.GE: lambda a, b: a >= b,
    CompareOp.EQ: lambda a, b: a == b,
    CompareOp.NE: lambda a, b: a != b,
}


class Interpreter:
    """Executes mini-PTX kernels over a :class:`DeviceMemory`.

    Parameters
    ----------
    memory:
        The global memory image kernels read and write.
    max_instructions_per_thread:
        Safety valve against runaway loops; exceeded -> raise.
    instr_hook / hook_interval:
        Optional callback invoked every ``hook_interval`` executed
        instructions (across all threads).  Tests use it to flip a
        preemption flag in global memory mid-kernel.
    """

    def __init__(
        self,
        memory: DeviceMemory | None = None,
        *,
        max_instructions_per_thread: int = 1_000_000,
        instr_hook: Callable[["Interpreter"], None] | None = None,
        hook_interval: int = 1000,
    ) -> None:
        self.memory = memory if memory is not None else DeviceMemory()
        self.max_instructions_per_thread = max_instructions_per_thread
        self.instr_hook = instr_hook
        self.hook_interval = hook_interval
        self.instructions_executed = 0
        self._hook_due = hook_interval

    # ------------------------------------------------------------------
    def launch(
        self,
        kernel: KernelIR,
        grid: Dim3 | int | Sequence[int],
        block: Dim3 | int | Sequence[int],
        args: Mapping[str, Any],
        *,
        block_order: Sequence[int] | None = None,
        shuffle_blocks: random.Random | None = None,
    ) -> LaunchResult:
        """Run ``kernel`` over the full grid and return launch stats.

        ``block_order`` (linear block indices) or ``shuffle_blocks`` (an
        RNG) override the default row-major block execution order; CUDA
        guarantees correctness under any order, and property tests use
        this to check that the stock kernels and all transformed kernels
        honour that guarantee.
        """
        grid = Dim3.of(grid)
        block = Dim3.of(block)
        missing = [p.name for p in kernel.params if p.name not in args]
        if missing:
            raise ExecutionError(
                f"kernel {kernel.name!r} launched without arguments: {missing}"
            )

        labels = kernel.labels()
        order = list(range(grid.total)) if block_order is None else list(block_order)
        if shuffle_blocks is not None:
            shuffle_blocks.shuffle(order)
        if sorted(order) != list(range(grid.total)):
            raise ExecutionError("block_order must be a permutation of the grid")

        start_instrs = self.instructions_executed
        for linear in order:
            ctaid = grid.delinearize(linear)
            self._run_block(kernel, labels, grid, block, ctaid, args)

        return LaunchResult(
            kernel=kernel.name,
            grid=grid,
            block=block,
            blocks_run=grid.total,
            instructions=self.instructions_executed - start_instrs,
        )

    # ------------------------------------------------------------------
    def _run_block(
        self,
        kernel: KernelIR,
        labels: dict[str, int],
        grid: Dim3,
        block: Dim3,
        ctaid: tuple[int, int, int],
        args: Mapping[str, Any],
    ) -> None:
        shared = _SharedSpace([(d.name, d.size) for d in kernel.shared])
        threads = [
            _ThreadState(tid=(tx, ty, tz))
            for tz in range(block.z)
            for ty in range(block.y)
            for tx in range(block.x)
        ]

        while True:
            for thread in threads:
                if thread.finished or thread.barrier_pc is not None:
                    continue
                self._run_thread(kernel, labels, grid, block, ctaid, args,
                                 shared, thread)

            if all(t.finished for t in threads):
                return

            # All live threads are now waiting at a barrier.  Modern GPUs
            # (sm_70+) release a barrier once every *non-exited* thread
            # has arrived, so finished threads are excluded.  Live threads
            # waiting at *different* barriers is the divergent
            # synchronization the paper describes: the hardware stalls
            # forever; the interpreter raises instead.
            waiting = [t for t in threads if t.barrier_pc is not None]
            pcs = {t.barrier_pc for t in waiting}
            if len(pcs) != 1:
                raise SyncDivergenceError(
                    f"kernel {kernel.name!r} block {ctaid}: threads wait at "
                    f"divergent barriers (pcs {sorted(pcs)})"  # type: ignore[type-var]
                )
            release_pc = waiting[0].barrier_pc
            assert release_pc is not None
            for t in waiting:
                t.barrier_pc = None
                t.pc = release_pc + 1

    # ------------------------------------------------------------------
    def _run_thread(
        self,
        kernel: KernelIR,
        labels: dict[str, int],
        grid: Dim3,
        block: Dim3,
        ctaid: tuple[int, int, int],
        args: Mapping[str, Any],
        shared: _SharedSpace,
        thread: _ThreadState,
    ) -> None:
        """Advance one thread until it returns or blocks at a barrier."""
        body = kernel.body
        n = len(body)
        while True:
            if not 0 <= thread.pc < n:
                raise ExecutionError(
                    f"kernel {kernel.name!r}: pc {thread.pc} out of range"
                )
            instr = body[thread.pc]
            thread.instructions += 1
            self.instructions_executed += 1
            if thread.instructions > self.max_instructions_per_thread:
                raise InstructionLimitExceeded(
                    f"thread {thread.tid} of kernel {kernel.name!r} exceeded "
                    f"{self.max_instructions_per_thread} instructions"
                )
            if self.instr_hook is not None:
                self._hook_due -= 1
                if self._hook_due <= 0:
                    self._hook_due = self.hook_interval
                    self.instr_hook(self)

            op = instr.op
            if op is Opcode.BAR:
                thread.barrier_pc = thread.pc
                return
            if op is Opcode.RET:
                if instr.pred is None or self._guard(instr, thread):
                    thread.finished = True
                    return
                thread.pc += 1
                continue
            if op is Opcode.BRA:
                if instr.pred is None or self._guard(instr, thread):
                    thread.pc = labels[instr.target]  # type: ignore[index]
                else:
                    thread.pc += 1
                continue
            if op is Opcode.BRX:
                idx = _as_int(
                    self._eval(instr.srcs[0], thread, grid, block, ctaid, args),
                    "brx index",
                )
                if not 0 <= idx < len(instr.targets):
                    raise ExecutionError(
                        f"brx index {idx} out of range "
                        f"(table size {len(instr.targets)})"
                    )
                thread.pc = labels[instr.targets[idx]]
                continue

            self._execute(instr, thread, grid, block, ctaid, args, shared)
            thread.pc += 1

    # ------------------------------------------------------------------
    def _guard(self, instr: Instr, thread: _ThreadState) -> bool:
        assert instr.pred is not None
        try:
            value = thread.regs[instr.pred.name]
        except KeyError:
            raise ExecutionError(
                f"read of undefined predicate register {instr.pred}"
            ) from None
        truth = bool(value)
        return (not truth) if instr.pred_negate else truth

    def _eval(
        self,
        operand: Operand,
        thread: _ThreadState,
        grid: Dim3,
        block: Dim3,
        ctaid: tuple[int, int, int],
        args: Mapping[str, Any],
    ) -> Any:
        if isinstance(operand, Reg):
            try:
                return thread.regs[operand.name]
            except KeyError:
                raise ExecutionError(
                    f"read of undefined register {operand}"
                ) from None
        if isinstance(operand, Imm):
            return operand.value
        if isinstance(operand, ParamRef):
            return args[operand.name]
        if isinstance(operand, SMemAddr):
            return SharedRef(operand.buffer, 0)
        if isinstance(operand, Special):
            axis = {"x": 0, "y": 1, "z": 2}[operand.axis.value]
            if operand.kind is SpecialKind.TID:
                return thread.tid[axis]
            if operand.kind is SpecialKind.NTID:
                return (block.x, block.y, block.z)[axis]
            if operand.kind is SpecialKind.CTAID:
                return ctaid[axis]
            if operand.kind is SpecialKind.NCTAID:
                return (grid.x, grid.y, grid.z)[axis]
        raise ExecutionError(f"cannot evaluate operand {operand!r}")

    # ------------------------------------------------------------------
    def _execute(
        self,
        instr: Instr,
        thread: _ThreadState,
        grid: Dim3,
        block: Dim3,
        ctaid: tuple[int, int, int],
        args: Mapping[str, Any],
        shared: _SharedSpace,
    ) -> None:
        op = instr.op
        ev = lambda i: self._eval(instr.srcs[i], thread, grid, block, ctaid, args)

        if op is Opcode.NOP:
            return
        if op is Opcode.MOV:
            if instr.pred is not None and not self._guard(instr, thread):
                return
            thread.regs[instr.dst.name] = ev(0)  # type: ignore[union-attr]
            return
        if op is Opcode.SETP:
            a, b = ev(0), ev(1)
            thread.regs[instr.dst.name] = _COMPARES[instr.cmp](a, b)  # type: ignore[index,union-attr]
            return
        if op is Opcode.SELP:
            a, b, p = ev(0), ev(1), ev(2)
            thread.regs[instr.dst.name] = a if bool(p) else b  # type: ignore[union-attr]
            return
        if op is Opcode.NOT:
            thread.regs[instr.dst.name] = not bool(ev(0))  # type: ignore[union-attr]
            return
        if op is Opcode.CVT_INT:
            value = ev(0)
            if isinstance(value, bool):
                value = int(value)
            thread.regs[instr.dst.name] = int(math.trunc(value))  # type: ignore[union-attr]
            return
        if op in (Opcode.SQRT, Opcode.EXP, Opcode.ABS):
            a = ev(0)
            if op is Opcode.SQRT:
                result: Any = math.sqrt(a)
            elif op is Opcode.EXP:
                result = math.exp(a)
            else:
                result = abs(a)
            thread.regs[instr.dst.name] = result  # type: ignore[union-attr]
            return
        if op is Opcode.MAD:
            a, b, c = ev(0), ev(1), ev(2)
            thread.regs[instr.dst.name] = a * b + c  # type: ignore[union-attr]
            return
        if op in (Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.REM,
                  Opcode.MIN, Opcode.MAX, Opcode.AND, Opcode.OR, Opcode.XOR,
                  Opcode.SHL, Opcode.SHR):
            a, b = ev(0), ev(1)
            thread.regs[instr.dst.name] = _arith(op, a, b)  # type: ignore[union-attr]
            return
        if op is Opcode.LD:
            base, offset = ev(0), _as_int(ev(1), "load offset")
            thread.regs[instr.dst.name] = self._load(base, offset, shared)  # type: ignore[union-attr]
            return
        if op is Opcode.ST:
            if instr.pred is not None and not self._guard(instr, thread):
                return
            base, offset, value = ev(0), _as_int(ev(1), "store offset"), ev(2)
            self._store(base, offset, value, shared)
            return
        if op is Opcode.ATOM_ADD:
            base, offset, value = ev(0), _as_int(ev(1), "atomic offset"), ev(2)
            thread.regs[instr.dst.name] = self._atomic(  # type: ignore[union-attr]
                "add", base, offset, shared, value)
            return
        if op is Opcode.ATOM_EXCH:
            base, offset, value = ev(0), _as_int(ev(1), "atomic offset"), ev(2)
            thread.regs[instr.dst.name] = self._atomic(  # type: ignore[union-attr]
                "exch", base, offset, shared, value)
            return
        if op is Opcode.ATOM_CAS:
            base = ev(0)
            offset = _as_int(ev(1), "atomic offset")
            compare, value = ev(2), ev(3)
            thread.regs[instr.dst.name] = self._atomic(  # type: ignore[union-attr]
                "cas", base, offset, shared, compare, value)
            return
        raise ExecutionError(f"unhandled opcode {op.value}")

    # ------------------------------------------------------------------
    def _load(self, base: Any, offset: int, shared: _SharedSpace) -> Any:
        if isinstance(base, GlobalRef):
            return self.memory.read(base, offset)
        if isinstance(base, SharedRef):
            return shared.read(base, offset)
        raise MemoryError_(f"load from non-pointer value {base!r}")

    def _store(self, base: Any, offset: int, value: Any,
               shared: _SharedSpace) -> None:
        if isinstance(base, GlobalRef):
            self.memory.write(base, offset, value)
            return
        if isinstance(base, SharedRef):
            shared.write(base, offset, value)
            return
        raise MemoryError_(f"store to non-pointer value {base!r}")

    def _atomic(self, kind: str, base: Any, offset: int,
                shared: _SharedSpace, *operands: Any) -> Any:
        if isinstance(base, GlobalRef):
            space: Any = self.memory
        elif isinstance(base, SharedRef):
            space = shared
        else:
            raise MemoryError_(f"atomic on non-pointer value {base!r}")
        if kind == "add":
            return space.atomic_add(base, offset, operands[0])
        if kind == "exch":
            return space.atomic_exch(base, offset, operands[0])
        return space.atomic_cas(base, offset, operands[0], operands[1])


def _arith(op: Opcode, a: Any, b: Any) -> Any:
    """Binary arithmetic with pointer support on ADD/SUB."""
    if isinstance(a, (GlobalRef, SharedRef)):
        if op is Opcode.ADD:
            return a.advanced(_as_int(b, "pointer offset"))
        if op is Opcode.SUB:
            return a.advanced(-_as_int(b, "pointer offset"))
        raise ExecutionError(f"{op.value} not supported on pointers")
    if isinstance(b, (GlobalRef, SharedRef)):
        if op is Opcode.ADD:
            return b.advanced(_as_int(a, "pointer offset"))
        raise ExecutionError(f"{op.value} not supported on pointers")

    if op is Opcode.ADD:
        return a + b
    if op is Opcode.SUB:
        return a - b
    if op is Opcode.MUL:
        return a * b
    if op is Opcode.DIV:
        if isinstance(a, int) and isinstance(b, int):
            if b == 0:
                raise ExecutionError("integer division by zero")
            return int(math.trunc(a / b)) if (a < 0) != (b < 0) else a // b
        return a / b
    if op is Opcode.REM:
        if isinstance(a, int) and isinstance(b, int):
            if b == 0:
                raise ExecutionError("integer remainder by zero")
            return a - _arith(Opcode.DIV, a, b) * b
        return math.fmod(a, b)
    if op is Opcode.MIN:
        return min(a, b)
    if op is Opcode.MAX:
        return max(a, b)
    if op is Opcode.AND:
        return a & b
    if op is Opcode.OR:
        return a | b
    if op is Opcode.XOR:
        return a ^ b
    if op is Opcode.SHL:
        return _as_int(a, "shift operand") << _as_int(b, "shift amount")
    if op is Opcode.SHR:
        return _as_int(a, "shift operand") >> _as_int(b, "shift amount")
    raise ExecutionError(f"unhandled arithmetic opcode {op.value}")


def launch_kernel(
    kernel: KernelIR,
    grid: Dim3 | int | Sequence[int],
    block: Dim3 | int | Sequence[int],
    args: Mapping[str, Any],
    memory: DeviceMemory,
    **kwargs: Any,
) -> LaunchResult:
    """Convenience wrapper: run ``kernel`` once on ``memory``."""
    return Interpreter(memory).launch(kernel, grid, block, args, **kwargs)
