"""Mini-PTX intermediate representation.

This module defines a small PTX-like kernel IR that carries just enough
of the real instruction set for Tally's kernel transformations to apply:
virtual registers, predicated branches, indirect branches, barriers,
global/shared loads and stores, atomics, and the CUDA special registers
(``tid``, ``ntid``, ``ctaid``, ``nctaid``).

Kernels built in this IR are *executable* through
:mod:`repro.ptx.interpreter`, which is what lets the test suite check
that the slicing / unified-synchronization / preemption transformations
of :mod:`repro.transform` preserve functional semantics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Sequence, Union

__all__ = [
    "Axis",
    "SpecialKind",
    "CompareOp",
    "Opcode",
    "Reg",
    "Imm",
    "ParamRef",
    "Special",
    "SMemAddr",
    "Operand",
    "Param",
    "ParamKind",
    "SharedDecl",
    "Instr",
    "KernelIR",
    "Dim3",
]


class Axis(str, enum.Enum):
    """A coordinate axis of the CUDA thread hierarchy."""

    X = "x"
    Y = "y"
    Z = "z"


class SpecialKind(str, enum.Enum):
    """Special (read-only) registers exposed to kernels."""

    TID = "tid"  # threadIdx
    NTID = "ntid"  # blockDim
    CTAID = "ctaid"  # blockIdx
    NCTAID = "nctaid"  # gridDim


class CompareOp(str, enum.Enum):
    """Comparison operators accepted by ``setp``."""

    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"
    EQ = "eq"
    NE = "ne"


class Opcode(str, enum.Enum):
    """Instruction opcodes of the mini-PTX ISA."""

    MOV = "mov"
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    MIN = "min"
    MAX = "max"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    MAD = "mad"  # dst = a * b + c
    NOT = "not"  # logical negation (predicates)
    SETP = "setp"
    SELP = "selp"
    BRA = "bra"
    BRX = "brx"  # indirect branch through a label table
    LD = "ld"
    ST = "st"
    ATOM_ADD = "atom.add"
    ATOM_CAS = "atom.cas"
    ATOM_EXCH = "atom.exch"
    CVT_INT = "cvt.s32"  # truncate to integer
    BAR = "bar.sync"
    RET = "ret"
    NOP = "nop"

    # Math helpers used by the stock kernel library.
    SQRT = "sqrt"
    EXP = "exp"
    ABS = "abs"


@dataclass(frozen=True)
class Reg:
    """A virtual register operand (``%name`` in the textual syntax)."""

    name: str

    def __str__(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True)
class Imm:
    """An immediate operand (int, float, or bool)."""

    value: Union[int, float, bool]

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class ParamRef:
    """A read of a kernel parameter by name."""

    name: str

    def __str__(self) -> str:
        return f"[{self.name}]"


@dataclass(frozen=True)
class Special:
    """A read of a special register, e.g. ``%ctaid.x``."""

    kind: SpecialKind
    axis: Axis

    def __str__(self) -> str:
        return f"%{self.kind.value}.{self.axis.value}"


@dataclass(frozen=True)
class SMemAddr:
    """The base address of a named shared-memory buffer."""

    buffer: str

    def __str__(self) -> str:
        return f"@shared.{self.buffer}"


Operand = Union[Reg, Imm, ParamRef, Special, SMemAddr]


class ParamKind(str, enum.Enum):
    """Declared type of a kernel parameter."""

    PTR = "ptr"  # device-global pointer
    I32 = "i32"
    I64 = "i64"
    F32 = "f32"
    F64 = "f64"
    PRED = "pred"


@dataclass(frozen=True)
class Param:
    """A kernel parameter declaration."""

    name: str
    kind: ParamKind = ParamKind.I32

    def __str__(self) -> str:
        return f".param .{self.kind.value} {self.name}"


@dataclass(frozen=True)
class SharedDecl:
    """A per-block shared-memory buffer declaration (element count)."""

    name: str
    size: int

    def __str__(self) -> str:
        return f".shared {self.name}[{self.size}]"


@dataclass
class Instr:
    """One mini-PTX instruction.

    ``label`` names the instruction as a branch target.  ``pred`` (with
    ``pred_negate``) makes the instruction conditional, mirroring PTX's
    ``@%p`` / ``@!%p`` guards; in this IR predication is only honoured on
    ``BRA``, ``RET``, ``ST`` and ``MOV``, which is all the transformations
    and stock kernels need.
    """

    op: Opcode
    dst: Reg | None = None
    srcs: tuple[Operand, ...] = ()
    target: str | None = None  # branch target label
    targets: tuple[str, ...] = ()  # brx label table
    cmp: CompareOp | None = None
    label: str | None = None
    pred: Reg | None = None
    pred_negate: bool = False

    def copy(self) -> "Instr":
        """Return an independent copy of this instruction."""
        return replace(self)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        from .printer import format_instr

        return format_instr(self)


@dataclass(frozen=True)
class Dim3:
    """A 3-D extent, as used for grid and block dimensions."""

    x: int = 1
    y: int = 1
    z: int = 1

    def __post_init__(self) -> None:
        for axis in ("x", "y", "z"):
            value = getattr(self, axis)
            if not isinstance(value, int) or value < 1:
                raise ValueError(f"Dim3.{axis} must be a positive int, got {value!r}")

    @property
    def total(self) -> int:
        """Total number of elements covered by the extent."""
        return self.x * self.y * self.z

    def get(self, axis: Axis) -> int:
        """Return the extent along ``axis``."""
        return getattr(self, axis.value)

    def linearize(self, x: int, y: int, z: int) -> int:
        """Map a 3-D coordinate to its row-major linear index."""
        return (z * self.y + y) * self.x + x

    def delinearize(self, index: int) -> tuple[int, int, int]:
        """Map a linear index back to its 3-D coordinate."""
        if not 0 <= index < self.total:
            raise ValueError(f"index {index} out of range for {self}")
        x = index % self.x
        y = (index // self.x) % self.y
        z = index // (self.x * self.y)
        return x, y, z

    def __iter__(self) -> Iterator[int]:
        yield self.x
        yield self.y
        yield self.z

    def __str__(self) -> str:
        return f"({self.x}, {self.y}, {self.z})"

    @staticmethod
    def of(value: "Dim3 | int | Sequence[int]") -> "Dim3":
        """Coerce an int or sequence into a :class:`Dim3`."""
        if isinstance(value, Dim3):
            return value
        if isinstance(value, int):
            return Dim3(value)
        parts = list(value)
        if not 1 <= len(parts) <= 3:
            raise ValueError(f"cannot build Dim3 from {value!r}")
        while len(parts) < 3:
            parts.append(1)
        return Dim3(*parts)


@dataclass
class KernelIR:
    """A complete mini-PTX kernel: signature, shared memory, and body."""

    name: str
    params: list[Param] = field(default_factory=list)
    shared: list[SharedDecl] = field(default_factory=list)
    body: list[Instr] = field(default_factory=list)

    def param_names(self) -> list[str]:
        """Names of all declared parameters, in order."""
        return [p.name for p in self.params]

    def has_param(self, name: str) -> bool:
        """Whether a parameter named ``name`` is declared."""
        return any(p.name == name for p in self.params)

    def shared_names(self) -> list[str]:
        """Names of all declared shared buffers."""
        return [s.name for s in self.shared]

    def labels(self) -> dict[str, int]:
        """Map label name to instruction index."""
        out: dict[str, int] = {}
        for i, instr in enumerate(self.body):
            if instr.label is not None:
                if instr.label in out:
                    raise ValueError(f"duplicate label {instr.label!r} in {self.name}")
                out[instr.label] = i
        return out

    def copy(self) -> "KernelIR":
        """Return a deep, independent copy of the kernel."""
        return KernelIR(
            name=self.name,
            params=list(self.params),
            shared=list(self.shared),
            body=[instr.copy() for instr in self.body],
        )

    def instruction_count(self) -> int:
        """Number of instructions in the body."""
        return len(self.body)

    def uses_barrier(self) -> bool:
        """Whether the body contains any ``bar.sync``."""
        return any(instr.op is Opcode.BAR for instr in self.body)

    def reads_special(self, kind: SpecialKind) -> bool:
        """Whether any instruction reads the given special register."""
        return any(
            isinstance(src, Special) and src.kind is kind
            for instr in self.body
            for src in instr.srcs
        )

    def fresh_register(self, stem: str) -> Reg:
        """Return a register named after ``stem`` not used in the body."""
        used = set()
        for instr in self.body:
            if instr.dst is not None:
                used.add(instr.dst.name)
            if instr.pred is not None:
                used.add(instr.pred.name)
            for src in instr.srcs:
                if isinstance(src, Reg):
                    used.add(src.name)
        if stem not in used:
            return Reg(stem)
        i = 0
        while f"{stem}{i}" in used:
            i += 1
        return Reg(f"{stem}{i}")

    def fresh_label(self, stem: str) -> str:
        """Return a label named after ``stem`` not used in the body."""
        used = {instr.label for instr in self.body if instr.label is not None}
        for instr in self.body:
            if instr.target is not None:
                used.add(instr.target)
            used.update(instr.targets)
        if stem not in used:
            return stem
        i = 0
        while f"{stem}_{i}" in used:
            i += 1
        return f"{stem}_{i}"

    def __str__(self) -> str:
        from .printer import format_kernel

        return format_kernel(self)


def walk_operands(instrs: Iterable[Instr]) -> Iterator[tuple[Instr, int, Operand]]:
    """Yield ``(instr, src_index, operand)`` for every source operand."""
    for instr in instrs:
        for i, src in enumerate(instr.srcs):
            yield instr, i, src
