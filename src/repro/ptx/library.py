"""Stock mini-PTX kernels and self-checking launch cases.

This module serves two purposes:

* it is the kernel corpus Tally's transformation passes are exercised on
  (unit tests, property tests, and the transformation pipeline demo);
* each kernel ships with a :class:`KernelCase` factory that builds a
  random problem instance together with its NumPy-computed expected
  output, so any execution path (original, sliced, preemptive, resumed)
  can be checked for functional equivalence.

The corpus deliberately covers the structural features that matter for
the paper's transformations: early returns, internal barriers, loops,
shared-memory reductions, atomics, multi-dimensional grids, and the
legal early-return-before-others-sync pattern (``fold_halves``) that
makes a naive preemption transformation unsafe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from .builder import KernelBuilder
from .interpreter import DeviceMemory, GlobalRef
from .ir import Axis, CompareOp, Dim3, KernelIR

__all__ = [
    "KernelCase",
    "CASE_FACTORIES",
    "make_case",
    "case_names",
    "vector_add",
    "saxpy",
    "iota",
    "exp_elementwise",
    "stencil_1d",
    "histogram",
    "block_sum",
    "dot_product",
    "fold_halves",
    "matmul_naive",
    "matmul_tiled",
    "transpose_naive",
    "softmax_rows",
    "grid3d_stamp",
    "prefix_sum_block",
    "layernorm_rows",
    "argmax_rows",
]


@dataclass
class KernelCase:
    """A kernel plus a concrete problem instance with known answer."""

    name: str
    kernel: KernelIR
    grid: Dim3
    block: Dim3
    memory: DeviceMemory
    args: dict[str, Any]
    expected: dict[str, np.ndarray]
    #: buffers whose final contents are checked against ``expected``
    atol: float = 1e-9

    def check(self) -> None:
        """Assert every expected buffer matches device memory."""
        for buffer, want in self.expected.items():
            got = self.memory.array(GlobalRef(buffer))
            np.testing.assert_allclose(
                got, want, atol=self.atol, rtol=1e-7,
                err_msg=f"buffer {buffer!r} of case {self.name!r}",
            )


# ---------------------------------------------------------------------------
# Kernel definitions
# ---------------------------------------------------------------------------

def vector_add() -> KernelIR:
    """out[i] = x[i] + y[i] with a bounds guard (early return)."""
    b = KernelBuilder("vector_add")
    x, y, out = b.ptr_param("x"), b.ptr_param("y"), b.ptr_param("out")
    n = b.i32_param("n")
    i = b.global_thread_id_x()
    b.ret(pred=b.setp(CompareOp.GE, i, n))
    b.st(out, i, b.add(b.ld(x, i), b.ld(y, i)))
    return b.build()


def saxpy() -> KernelIR:
    """y[i] = alpha * x[i] + y[i]."""
    b = KernelBuilder("saxpy")
    alpha = b.f32_param("alpha")
    x, y = b.ptr_param("x"), b.ptr_param("y")
    n = b.i32_param("n")
    i = b.global_thread_id_x()
    b.ret(pred=b.setp(CompareOp.GE, i, n))
    b.st(y, i, b.mad(alpha, b.ld(x, i), b.ld(y, i)))
    return b.build()


def iota() -> KernelIR:
    """out[i] = i."""
    b = KernelBuilder("iota")
    out, n = b.ptr_param("out"), b.i32_param("n")
    i = b.global_thread_id_x()
    b.ret(pred=b.setp(CompareOp.GE, i, n))
    b.st(out, i, i)
    return b.build()


def exp_elementwise() -> KernelIR:
    """out[i] = exp(x[i])."""
    b = KernelBuilder("exp_elementwise")
    x, out, n = b.ptr_param("x"), b.ptr_param("out"), b.i32_param("n")
    i = b.global_thread_id_x()
    b.ret(pred=b.setp(CompareOp.GE, i, n))
    b.st(out, i, b.exp(b.ld(x, i)))
    return b.build()


def stencil_1d() -> KernelIR:
    """out[i] = mean of x[i-1..i+1] with clamped edges."""
    b = KernelBuilder("stencil_1d")
    x, out, n = b.ptr_param("x"), b.ptr_param("out"), b.i32_param("n")
    i = b.global_thread_id_x()
    b.ret(pred=b.setp(CompareOp.GE, i, n))
    left = b.max_(b.sub(i, 1), 0)
    right = b.min_(b.add(i, 1), b.sub(n, 1))
    total = b.add(b.add(b.ld(x, left), b.ld(x, i)), b.ld(x, right))
    b.st(out, i, b.div(total, 3.0))
    return b.build()


def histogram() -> KernelIR:
    """hist[x[i]] += 1 via global atomics (x holds integral bin ids)."""
    b = KernelBuilder("histogram")
    x, hist = b.ptr_param("x"), b.ptr_param("hist")
    n = b.i32_param("n")
    i = b.global_thread_id_x()
    b.ret(pred=b.setp(CompareOp.GE, i, n))
    b.atom_add(hist, b.ld(x, i), 1)
    return b.build()


def block_sum(block_size: int) -> KernelIR:
    """Shared-memory tree reduction; each block atomically adds to out[0].

    ``block_size`` must be a power of two and match the launch block.
    """
    if block_size & (block_size - 1):
        raise ValueError("block_size must be a power of two")
    b = KernelBuilder("block_sum")
    x, out, n = b.ptr_param("x"), b.ptr_param("out"), b.i32_param("n")
    sdata = b.shared_buffer("sdata", block_size)
    tid = b.mov(b.tid())
    i = b.global_thread_id_x()
    in_range = b.setp(CompareOp.LT, i, n)
    safe_i = b.selp(i, 0, in_range)
    val = b.selp(b.ld(x, safe_i), 0.0, in_range)
    b.st(sdata, tid, val)
    b.bar()

    stride = b.shr(b.ntid(), 1)
    loop, done = b.fresh_label("red"), b.fresh_label("red_done")
    b.label(loop)
    b.bra(done, pred=b.setp(CompareOp.LE, stride, 0))
    active = b.setp(CompareOp.LT, tid, stride)
    partner = b.selp(b.add(tid, stride), 0, active)
    total = b.add(b.ld(sdata, tid), b.ld(sdata, partner))
    b.st(sdata, tid, total, pred=active)
    b.bar()
    b.shr(stride, 1, dst=stride)
    b.bra(loop)

    b.label(done)
    skip = b.fresh_label("skip")
    b.bra(skip, pred=b.setp(CompareOp.NE, tid, 0))
    b.atom_add(out, 0, b.ld(sdata, 0))
    b.label(skip)
    b.ret()
    return b.build()


def dot_product(block_size: int) -> KernelIR:
    """Shared-memory dot product; blocks atomically add into out[0]."""
    if block_size & (block_size - 1):
        raise ValueError("block_size must be a power of two")
    b = KernelBuilder("dot_product")
    x, y, out = b.ptr_param("x"), b.ptr_param("y"), b.ptr_param("out")
    n = b.i32_param("n")
    sdata = b.shared_buffer("sdata", block_size)
    tid = b.mov(b.tid())
    i = b.global_thread_id_x()
    in_range = b.setp(CompareOp.LT, i, n)
    safe_i = b.selp(i, 0, in_range)
    prod = b.mul(b.ld(x, safe_i), b.ld(y, safe_i))
    b.st(sdata, tid, b.selp(prod, 0.0, in_range))
    b.bar()

    stride = b.shr(b.ntid(), 1)
    loop, done = b.fresh_label("red"), b.fresh_label("red_done")
    b.label(loop)
    b.bra(done, pred=b.setp(CompareOp.LE, stride, 0))
    active = b.setp(CompareOp.LT, tid, stride)
    partner = b.selp(b.add(tid, stride), 0, active)
    total = b.add(b.ld(sdata, tid), b.ld(sdata, partner))
    b.st(sdata, tid, total, pred=active)
    b.bar()
    b.shr(stride, 1, dst=stride)
    b.bra(loop)

    b.label(done)
    skip = b.fresh_label("skip")
    b.bra(skip, pred=b.setp(CompareOp.NE, tid, 0))
    b.atom_add(out, 0, b.ld(sdata, 0))
    b.label(skip)
    b.ret()
    return b.build()


def fold_halves(block_size: int) -> KernelIR:
    """out[b*H + t] = x[b*B + t] + x[b*B + t + H]  (H = B/2).

    The upper half of each block *returns before* the lower half
    synchronizes — legal on modern GPUs, where exited threads do not
    count toward ``bar.sync``, but lethal under a naive preemption
    transformation that turns those returns into loop branches.  This is
    the hazard kernel for the unified synchronization transformation.
    """
    if block_size % 2:
        raise ValueError("block_size must be even")
    b = KernelBuilder("fold_halves")
    x, out = b.ptr_param("x"), b.ptr_param("out")
    sdata = b.shared_buffer("sdata", block_size)
    tid = b.mov(b.tid())
    b.st(sdata, tid, b.ld(x, b.global_thread_id_x()))
    half = b.shr(b.ntid(), 1)
    b.ret(pred=b.setp(CompareOp.GE, tid, half))  # upper half exits early
    b.bar()  # lower half synchronizes without the upper half
    total = b.add(b.ld(sdata, tid), b.ld(sdata, b.add(tid, half)))
    b.st(out, b.mad(b.ctaid(), half, tid), total)
    return b.build()


def matmul_naive() -> KernelIR:
    """c[row, col] = sum_k a[row, k] * b[k, col]; one thread per output."""
    b = KernelBuilder("matmul_naive")
    a, bm, c = b.ptr_param("a"), b.ptr_param("b"), b.ptr_param("c")
    m, n, k = b.i32_param("m"), b.i32_param("n"), b.i32_param("k")
    row = b.mad(b.ctaid(Axis.Y), b.ntid(Axis.Y), b.tid(Axis.Y))
    col = b.mad(b.ctaid(Axis.X), b.ntid(Axis.X), b.tid(Axis.X))
    oob = b.or_(b.setp(CompareOp.GE, row, m), b.setp(CompareOp.GE, col, n))
    b.ret(pred=oob)
    acc = b.mov(0.0)
    kk = b.mov(0)
    loop, done = b.fresh_label("mm"), b.fresh_label("mm_done")
    b.label(loop)
    b.bra(done, pred=b.setp(CompareOp.GE, kk, k))
    av = b.ld(a, b.mad(row, k, kk))
    bv = b.ld(bm, b.mad(kk, n, col))
    b.mad(av, bv, acc, dst=acc)
    b.add(kk, 1, dst=kk)
    b.bra(loop)
    b.label(done)
    b.st(c, b.mad(row, n, col), acc)
    return b.build()


def matmul_tiled(tile: int) -> KernelIR:
    """Tiled matmul with shared-memory staging and double barriers.

    Launch with a ``tile``×``tile`` block; edge blocks pad with zeros so
    every thread participates in every barrier.
    """
    if tile < 1:
        raise ValueError("tile must be >= 1")
    b = KernelBuilder("matmul_tiled")
    a, bm, c = b.ptr_param("a"), b.ptr_param("b"), b.ptr_param("c")
    m, n, k = b.i32_param("m"), b.i32_param("n"), b.i32_param("k")
    a_t = b.shared_buffer("a_tile", tile * tile)
    b_t = b.shared_buffer("b_tile", tile * tile)

    tx, ty = b.mov(b.tid(Axis.X)), b.mov(b.tid(Axis.Y))
    row = b.mad(b.ctaid(Axis.Y), tile, ty)
    col = b.mad(b.ctaid(Axis.X), tile, tx)
    acc = b.mov(0.0)
    ntiles = b.div(b.add(k, tile - 1), tile)
    t = b.mov(0)
    slot = b.mad(ty, tile, tx)

    loop, done = b.fresh_label("tile"), b.fresh_label("tile_done")
    b.label(loop)
    b.bra(done, pred=b.setp(CompareOp.GE, t, ntiles))

    acol = b.mad(t, tile, tx)
    pa = b.and_(b.setp(CompareOp.LT, row, m), b.setp(CompareOp.LT, acol, k))
    aidx = b.selp(b.mad(row, k, acol), 0, pa)
    b.st(a_t, slot, b.selp(b.ld(a, aidx), 0.0, pa))

    brow = b.mad(t, tile, ty)
    pb = b.and_(b.setp(CompareOp.LT, brow, k), b.setp(CompareOp.LT, col, n))
    bidx = b.selp(b.mad(brow, n, col), 0, pb)
    b.st(b_t, slot, b.selp(b.ld(bm, bidx), 0.0, pb))
    b.bar()

    kk = b.mov(0)
    inner, inner_done = b.fresh_label("inner"), b.fresh_label("inner_done")
    b.label(inner)
    b.bra(inner_done, pred=b.setp(CompareOp.GE, kk, tile))
    av = b.ld(a_t, b.mad(ty, tile, kk))
    bv = b.ld(b_t, b.mad(kk, tile, tx))
    b.mad(av, bv, acc, dst=acc)
    b.add(kk, 1, dst=kk)
    b.bra(inner)
    b.label(inner_done)
    b.bar()

    b.add(t, 1, dst=t)
    b.bra(loop)

    b.label(done)
    p_store = b.and_(b.setp(CompareOp.LT, row, m), b.setp(CompareOp.LT, col, n))
    cidx = b.selp(b.mad(row, n, col), 0, p_store)
    b.st(c, cidx, acc, pred=p_store)
    b.ret()
    return b.build()


def transpose_naive() -> KernelIR:
    """out[col, row] = x[row, col] over a 2-D grid."""
    b = KernelBuilder("transpose_naive")
    x, out = b.ptr_param("x"), b.ptr_param("out")
    rows, cols = b.i32_param("rows"), b.i32_param("cols")
    row = b.mad(b.ctaid(Axis.Y), b.ntid(Axis.Y), b.tid(Axis.Y))
    col = b.mad(b.ctaid(Axis.X), b.ntid(Axis.X), b.tid(Axis.X))
    oob = b.or_(b.setp(CompareOp.GE, row, rows), b.setp(CompareOp.GE, col, cols))
    b.ret(pred=oob)
    b.st(out, b.mad(col, rows, row), b.ld(x, b.mad(row, cols, col)))
    return b.build()


def softmax_rows(block_size: int) -> KernelIR:
    """Numerically-stable row softmax: one block per row, strided threads.

    Exercises two shared-memory reductions (max, then sum) with barriers
    inside loops — the heaviest synchronization pattern in the corpus.
    """
    if block_size & (block_size - 1):
        raise ValueError("block_size must be a power of two")
    b = KernelBuilder("softmax_rows")
    x, out = b.ptr_param("x"), b.ptr_param("out")
    cols = b.i32_param("cols")
    smax = b.shared_buffer("smax", block_size)
    ssum = b.shared_buffer("ssum", block_size)

    tid = b.mov(b.tid())
    row = b.mov(b.ctaid())
    base = b.mul(row, cols)

    # Phase 1: thread-local max over a strided slice of the row.
    local_max = b.mov(-1e30)
    j = b.mov(tid)
    l1, l1e = b.fresh_label("max"), b.fresh_label("max_done")
    b.label(l1)
    b.bra(l1e, pred=b.setp(CompareOp.GE, j, cols))
    b.max_(local_max, b.ld(x, b.add(base, j)), dst=local_max)
    b.add(j, b.ntid(), dst=j)
    b.bra(l1)
    b.label(l1e)
    b.st(smax, tid, local_max)
    b.bar()

    # Tree-reduce the max.
    stride = b.shr(b.ntid(), 1)
    r1, r1e = b.fresh_label("rmax"), b.fresh_label("rmax_done")
    b.label(r1)
    b.bra(r1e, pred=b.setp(CompareOp.LE, stride, 0))
    active = b.setp(CompareOp.LT, tid, stride)
    partner = b.selp(b.add(tid, stride), 0, active)
    merged = b.max_(b.ld(smax, tid), b.ld(smax, partner))
    b.st(smax, tid, merged, pred=active)
    b.bar()
    b.shr(stride, 1, dst=stride)
    b.bra(r1)
    b.label(r1e)
    row_max = b.ld(smax, 0)

    # Phase 2: exponentiate and accumulate a thread-local sum.
    local_sum = b.mov(0.0)
    b.mov(tid, dst=j)
    l2, l2e = b.fresh_label("exp"), b.fresh_label("exp_done")
    b.label(l2)
    b.bra(l2e, pred=b.setp(CompareOp.GE, j, cols))
    idx = b.add(base, j)
    e = b.exp(b.sub(b.ld(x, idx), row_max))
    b.st(out, idx, e)
    b.add(local_sum, e, dst=local_sum)
    b.add(j, b.ntid(), dst=j)
    b.bra(l2)
    b.label(l2e)
    b.st(ssum, tid, local_sum)
    b.bar()

    # Tree-reduce the sum.
    stride2 = b.shr(b.ntid(), 1)
    r2, r2e = b.fresh_label("rsum"), b.fresh_label("rsum_done")
    b.label(r2)
    b.bra(r2e, pred=b.setp(CompareOp.LE, stride2, 0))
    active2 = b.setp(CompareOp.LT, tid, stride2)
    partner2 = b.selp(b.add(tid, stride2), 0, active2)
    merged2 = b.add(b.ld(ssum, tid), b.ld(ssum, partner2))
    b.st(ssum, tid, merged2, pred=active2)
    b.bar()
    b.shr(stride2, 1, dst=stride2)
    b.bra(r2)
    b.label(r2e)
    row_sum = b.ld(ssum, 0)

    # Phase 3: normalize.
    b.mov(tid, dst=j)
    l3, l3e = b.fresh_label("norm"), b.fresh_label("norm_done")
    b.label(l3)
    b.bra(l3e, pred=b.setp(CompareOp.GE, j, cols))
    idx3 = b.add(base, j)
    b.st(out, idx3, b.div(b.ld(out, idx3), row_sum))
    b.add(j, b.ntid(), dst=j)
    b.bra(l3)
    b.label(l3e)
    b.ret()
    return b.build()


def grid3d_stamp() -> KernelIR:
    """Stamp each thread's slot with a value encoding its 3-D block index.

    Verifies that transformations reconstruct ``ctaid.{x,y,z}`` and the
    original grid dimensions correctly for 3-D grids.
    """
    b = KernelBuilder("grid3d_stamp")
    out = b.ptr_param("out")
    lb = b.mad(b.mad(b.ctaid(Axis.Z), b.nctaid(Axis.Y), b.ctaid(Axis.Y)),
               b.nctaid(Axis.X), b.ctaid(Axis.X))
    tl = b.mad(b.mad(b.tid(Axis.Z), b.ntid(Axis.Y), b.tid(Axis.Y)),
               b.ntid(Axis.X), b.tid(Axis.X))
    bsize = b.mul(b.mul(b.ntid(Axis.X), b.ntid(Axis.Y)), b.ntid(Axis.Z))
    value = b.add(b.mad(b.ctaid(Axis.X), 1, 0),
                  b.add(b.mul(b.ctaid(Axis.Y), 100),
                        b.mul(b.ctaid(Axis.Z), 10000)))
    b.st(out, b.mad(lb, bsize, tl), value)
    return b.build()


# ---------------------------------------------------------------------------
# Case factories: kernel + random problem + expected output
# ---------------------------------------------------------------------------

def _case_vector_add(rng: np.random.Generator) -> KernelCase:
    n = int(rng.integers(1, 200))
    block = 16
    grid = -(-n // block) + int(rng.integers(0, 2))  # sometimes over-provision
    mem = DeviceMemory()
    x = rng.standard_normal(n)
    y = rng.standard_normal(n)
    mem.bind("x", x.copy())
    mem.bind("y", y.copy())
    mem.bind("out", np.zeros(n))
    args = {"x": GlobalRef("x"), "y": GlobalRef("y"),
            "out": GlobalRef("out"), "n": n}
    return KernelCase("vector_add", vector_add(), Dim3(grid), Dim3(block),
                      mem, args, {"out": x + y})


def _case_saxpy(rng: np.random.Generator) -> KernelCase:
    n = int(rng.integers(1, 200))
    block = 32
    grid = -(-n // block)
    alpha = float(rng.standard_normal())
    x = rng.standard_normal(n)
    y = rng.standard_normal(n)
    mem = DeviceMemory()
    mem.bind("x", x.copy())
    mem.bind("y", y.copy())
    args = {"alpha": alpha, "x": GlobalRef("x"), "y": GlobalRef("y"), "n": n}
    return KernelCase("saxpy", saxpy(), Dim3(grid), Dim3(block),
                      mem, args, {"y": alpha * x + y})


def _case_iota(rng: np.random.Generator) -> KernelCase:
    n = int(rng.integers(1, 300))
    block = 8
    grid = -(-n // block)
    mem = DeviceMemory()
    mem.bind("out", np.zeros(n))
    args = {"out": GlobalRef("out"), "n": n}
    return KernelCase("iota", iota(), Dim3(grid), Dim3(block),
                      mem, args, {"out": np.arange(n, dtype=float)})


def _case_exp(rng: np.random.Generator) -> KernelCase:
    n = int(rng.integers(1, 150))
    block = 16
    grid = -(-n // block)
    x = rng.standard_normal(n)
    mem = DeviceMemory()
    mem.bind("x", x.copy())
    mem.bind("out", np.zeros(n))
    args = {"x": GlobalRef("x"), "out": GlobalRef("out"), "n": n}
    return KernelCase("exp_elementwise", exp_elementwise(), Dim3(grid),
                      Dim3(block), mem, args, {"out": np.exp(x)}, atol=1e-12)


def _case_stencil(rng: np.random.Generator) -> KernelCase:
    n = int(rng.integers(2, 200))
    block = 16
    grid = -(-n // block)
    x = rng.standard_normal(n)
    left = np.concatenate([[x[0]], x[:-1]])
    right = np.concatenate([x[1:], [x[-1]]])
    mem = DeviceMemory()
    mem.bind("x", x.copy())
    mem.bind("out", np.zeros(n))
    args = {"x": GlobalRef("x"), "out": GlobalRef("out"), "n": n}
    return KernelCase("stencil_1d", stencil_1d(), Dim3(grid), Dim3(block),
                      mem, args, {"out": (left + x + right) / 3.0})


def _case_histogram(rng: np.random.Generator) -> KernelCase:
    n = int(rng.integers(1, 400))
    nbins = int(rng.integers(2, 16))
    block = 32
    grid = -(-n // block)
    bins = rng.integers(0, nbins, size=n)
    mem = DeviceMemory()
    mem.bind("x", bins.astype(float))
    mem.bind("hist", np.zeros(nbins))
    args = {"x": GlobalRef("x"), "hist": GlobalRef("hist"), "n": n}
    expected = np.bincount(bins, minlength=nbins).astype(float)
    return KernelCase("histogram", histogram(), Dim3(grid), Dim3(block),
                      mem, args, {"hist": expected})


def _case_block_sum(rng: np.random.Generator) -> KernelCase:
    block = int(rng.choice([4, 8, 16, 32]))
    n = int(rng.integers(1, 300))
    grid = -(-n // block)
    x = rng.standard_normal(n)
    mem = DeviceMemory()
    mem.bind("x", x.copy())
    mem.bind("out", np.zeros(1))
    args = {"x": GlobalRef("x"), "out": GlobalRef("out"), "n": n}
    return KernelCase("block_sum", block_sum(block), Dim3(grid), Dim3(block),
                      mem, args, {"out": np.array([x.sum()])}, atol=1e-8)


def _case_dot(rng: np.random.Generator) -> KernelCase:
    block = int(rng.choice([4, 8, 16]))
    n = int(rng.integers(1, 250))
    grid = -(-n // block)
    x = rng.standard_normal(n)
    y = rng.standard_normal(n)
    mem = DeviceMemory()
    mem.bind("x", x.copy())
    mem.bind("y", y.copy())
    mem.bind("out", np.zeros(1))
    args = {"x": GlobalRef("x"), "y": GlobalRef("y"),
            "out": GlobalRef("out"), "n": n}
    return KernelCase("dot_product", dot_product(block), Dim3(grid),
                      Dim3(block), mem, args,
                      {"out": np.array([float(x @ y)])}, atol=1e-8)


def _case_fold_halves(rng: np.random.Generator) -> KernelCase:
    block = int(rng.choice([4, 8, 16, 32]))
    grid = int(rng.integers(1, 8))
    n = grid * block
    half = block // 2
    x = rng.standard_normal(n)
    folded = np.concatenate([
        x[b * block: b * block + half] + x[b * block + half: (b + 1) * block]
        for b in range(grid)
    ])
    mem = DeviceMemory()
    mem.bind("x", x.copy())
    mem.bind("out", np.zeros(grid * half))
    args = {"x": GlobalRef("x"), "out": GlobalRef("out")}
    return KernelCase("fold_halves", fold_halves(block), Dim3(grid),
                      Dim3(block), mem, args, {"out": folded})


def _case_matmul_naive(rng: np.random.Generator) -> KernelCase:
    m, n, k = (int(rng.integers(1, 20)) for _ in range(3))
    block = Dim3(4, 4)
    grid = Dim3(-(-n // block.x), -(-m // block.y))
    a = rng.standard_normal((m, k))
    bmat = rng.standard_normal((k, n))
    mem = DeviceMemory()
    mem.bind("a", a.ravel().copy())
    mem.bind("b", bmat.ravel().copy())
    mem.bind("c", np.zeros(m * n))
    args = {"a": GlobalRef("a"), "b": GlobalRef("b"), "c": GlobalRef("c"),
            "m": m, "n": n, "k": k}
    return KernelCase("matmul_naive", matmul_naive(), grid, block,
                      mem, args, {"c": (a @ bmat).ravel()}, atol=1e-8)


def _case_matmul_tiled(rng: np.random.Generator) -> KernelCase:
    tile = int(rng.choice([2, 4]))
    m, n, k = (int(rng.integers(1, 14)) for _ in range(3))
    block = Dim3(tile, tile)
    grid = Dim3(-(-n // tile), -(-m // tile))
    a = rng.standard_normal((m, k))
    bmat = rng.standard_normal((k, n))
    mem = DeviceMemory()
    mem.bind("a", a.ravel().copy())
    mem.bind("b", bmat.ravel().copy())
    mem.bind("c", np.zeros(m * n))
    args = {"a": GlobalRef("a"), "b": GlobalRef("b"), "c": GlobalRef("c"),
            "m": m, "n": n, "k": k}
    return KernelCase("matmul_tiled", matmul_tiled(tile), grid, block,
                      mem, args, {"c": (a @ bmat).ravel()}, atol=1e-8)


def _case_transpose(rng: np.random.Generator) -> KernelCase:
    rows, cols = int(rng.integers(1, 20)), int(rng.integers(1, 20))
    block = Dim3(4, 4)
    grid = Dim3(-(-cols // block.x), -(-rows // block.y))
    x = rng.standard_normal((rows, cols))
    mem = DeviceMemory()
    mem.bind("x", x.ravel().copy())
    mem.bind("out", np.zeros(rows * cols))
    args = {"x": GlobalRef("x"), "out": GlobalRef("out"),
            "rows": rows, "cols": cols}
    return KernelCase("transpose_naive", transpose_naive(), grid, block,
                      mem, args, {"out": x.T.ravel()})


def _case_softmax(rng: np.random.Generator) -> KernelCase:
    block = int(rng.choice([4, 8]))
    rows = int(rng.integers(1, 6))
    cols = int(rng.integers(1, 20))
    x = rng.standard_normal((rows, cols))
    shifted = np.exp(x - x.max(axis=1, keepdims=True))
    expected = shifted / shifted.sum(axis=1, keepdims=True)
    mem = DeviceMemory()
    mem.bind("x", x.ravel().copy())
    mem.bind("out", np.zeros(rows * cols))
    args = {"x": GlobalRef("x"), "out": GlobalRef("out"), "cols": cols}
    return KernelCase("softmax_rows", softmax_rows(block), Dim3(rows),
                      Dim3(block), mem, args, {"out": expected.ravel()},
                      atol=1e-10)


def _case_grid3d(rng: np.random.Generator) -> KernelCase:
    grid = Dim3(int(rng.integers(1, 4)), int(rng.integers(1, 4)),
                int(rng.integers(1, 3)))
    block = Dim3(2, 2, 1)
    total = grid.total * block.total
    expected = np.zeros(total)
    for gz in range(grid.z):
        for gy in range(grid.y):
            for gx in range(grid.x):
                lb = (gz * grid.y + gy) * grid.x + gx
                value = gx + 100 * gy + 10000 * gz
                expected[lb * block.total: (lb + 1) * block.total] = value
    mem = DeviceMemory()
    mem.bind("out", np.zeros(total))
    args = {"out": GlobalRef("out")}
    return KernelCase("grid3d_stamp", grid3d_stamp(), grid, block,
                      mem, args, {"out": expected})


CASE_FACTORIES: dict[str, Callable[[np.random.Generator], KernelCase]] = {
    "vector_add": _case_vector_add,
    "saxpy": _case_saxpy,
    "iota": _case_iota,
    "exp_elementwise": _case_exp,
    "stencil_1d": _case_stencil,
    "histogram": _case_histogram,
    "block_sum": _case_block_sum,
    "dot_product": _case_dot,
    "fold_halves": _case_fold_halves,
    "matmul_naive": _case_matmul_naive,
    "matmul_tiled": _case_matmul_tiled,
    "transpose_naive": _case_transpose,
    "softmax_rows": _case_softmax,
    "grid3d_stamp": _case_grid3d,
}


def case_names() -> list[str]:
    """Names of all kernel cases in the corpus."""
    return sorted(CASE_FACTORIES)


def make_case(name: str, rng: np.random.Generator | int | None = None) -> KernelCase:
    """Build a fresh random problem instance for the named kernel."""
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    try:
        factory = CASE_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel case {name!r}; choose from {case_names()}"
        ) from None
    return factory(rng)


# ---------------------------------------------------------------------------
# Extended corpus: scan, layernorm, argmax
# ---------------------------------------------------------------------------

def prefix_sum_block(block_size: int) -> KernelIR:
    """Per-block inclusive prefix sum (Hillis-Steele, double buffered).

    Exercises barriers inside a loop *and* shared-memory base pointers
    held in registers (the two buffers are swapped each round), which
    stresses the transformations' register handling.
    """
    if block_size & (block_size - 1):
        raise ValueError("block_size must be a power of two")
    b = KernelBuilder("prefix_sum_block")
    x, out = b.ptr_param("x"), b.ptr_param("out")
    n = b.i32_param("n")
    buf_a = b.shared_buffer("buf_a", block_size)
    buf_b = b.shared_buffer("buf_b", block_size)

    tid = b.mov(b.tid())
    i = b.global_thread_id_x()
    in_range = b.setp(CompareOp.LT, i, n)
    safe_i = b.selp(i, 0, in_range)
    val = b.selp(b.ld(x, safe_i), 0.0, in_range)
    b.st(buf_a, tid, val)
    b.bar()

    cur = b.mov(buf_a)
    nxt = b.mov(buf_b)
    offset = b.mov(1)
    loop, done = b.fresh_label("scan"), b.fresh_label("scan_done")
    b.label(loop)
    b.bra(done, pred=b.setp(CompareOp.GE, offset, b.ntid()))
    active = b.setp(CompareOp.GE, tid, offset)
    partner = b.selp(b.sub(tid, offset), 0, active)
    own = b.ld(cur, tid)
    other = b.selp(b.ld(cur, partner), 0.0, active)
    b.st(nxt, tid, b.add(own, other))
    b.bar()
    tmp = b.mov(cur)
    b.mov(nxt, dst=cur)
    b.mov(tmp, dst=nxt)
    b.shl(offset, 1, dst=offset)
    b.bra(loop)

    b.label(done)
    b.st(out, b.selp(i, 0, in_range), b.ld(cur, tid), pred=in_range)
    b.ret()
    return b.build()


def layernorm_rows(block_size: int) -> KernelIR:
    """Row-wise layer normalization: (x - mean) / sqrt(var + eps).

    One block per row; two shared-memory tree reductions (sum and sum of
    squares) with strided per-thread accumulation.
    """
    if block_size & (block_size - 1):
        raise ValueError("block_size must be a power of two")
    b = KernelBuilder("layernorm_rows")
    x, out = b.ptr_param("x"), b.ptr_param("out")
    cols = b.i32_param("cols")
    eps = b.f32_param("eps")
    ssum = b.shared_buffer("ssum", block_size)
    ssq = b.shared_buffer("ssq", block_size)

    tid = b.mov(b.tid())
    base = b.mul(b.ctaid(), cols)

    local_sum = b.mov(0.0)
    local_sq = b.mov(0.0)
    j = b.mov(tid)
    l1, l1e = b.fresh_label("acc"), b.fresh_label("acc_done")
    b.label(l1)
    b.bra(l1e, pred=b.setp(CompareOp.GE, j, cols))
    v = b.ld(x, b.add(base, j))
    b.add(local_sum, v, dst=local_sum)
    b.mad(v, v, local_sq, dst=local_sq)
    b.add(j, b.ntid(), dst=j)
    b.bra(l1)
    b.label(l1e)
    b.st(ssum, tid, local_sum)
    b.st(ssq, tid, local_sq)
    b.bar()

    stride = b.shr(b.ntid(), 1)
    r1, r1e = b.fresh_label("red"), b.fresh_label("red_done")
    b.label(r1)
    b.bra(r1e, pred=b.setp(CompareOp.LE, stride, 0))
    active = b.setp(CompareOp.LT, tid, stride)
    partner = b.selp(b.add(tid, stride), 0, active)
    merged_sum = b.add(b.ld(ssum, tid), b.ld(ssum, partner))
    merged_sq = b.add(b.ld(ssq, tid), b.ld(ssq, partner))
    b.st(ssum, tid, merged_sum, pred=active)
    b.st(ssq, tid, merged_sq, pred=active)
    b.bar()
    b.shr(stride, 1, dst=stride)
    b.bra(r1)
    b.label(r1e)

    total = b.ld(ssum, 0)
    total_sq = b.ld(ssq, 0)
    mean = b.div(total, cols)
    var = b.sub(b.div(total_sq, cols), b.mul(mean, mean))
    inv_std = b.div(1.0, b.sqrt(b.add(var, eps)))

    b.mov(tid, dst=j)
    l2, l2e = b.fresh_label("norm"), b.fresh_label("norm_done")
    b.label(l2)
    b.bra(l2e, pred=b.setp(CompareOp.GE, j, cols))
    idx = b.add(base, j)
    b.st(out, idx, b.mul(b.sub(b.ld(x, idx), mean), inv_std))
    b.add(j, b.ntid(), dst=j)
    b.bra(l2)
    b.label(l2e)
    b.ret()
    return b.build()


def argmax_rows(block_size: int) -> KernelIR:
    """Row-wise argmax: index of the largest element of each row.

    Tree reduction over *paired* shared state (value + index), with
    first-occurrence tie-breaking to match ``numpy.argmax``.
    """
    if block_size & (block_size - 1):
        raise ValueError("block_size must be a power of two")
    b = KernelBuilder("argmax_rows")
    x, out = b.ptr_param("x"), b.ptr_param("out")
    cols = b.i32_param("cols")
    sval = b.shared_buffer("sval", block_size)
    sidx = b.shared_buffer("sidx", block_size)

    tid = b.mov(b.tid())
    base = b.mul(b.ctaid(), cols)

    best_val = b.mov(-1e30)
    best_idx = b.mov(cols)  # sentinel: larger than any real index
    j = b.mov(tid)
    l1, l1e = b.fresh_label("scanmax"), b.fresh_label("scanmax_done")
    b.label(l1)
    b.bra(l1e, pred=b.setp(CompareOp.GE, j, cols))
    v = b.ld(x, b.add(base, j))
    better = b.setp(CompareOp.GT, v, best_val)
    b.mov(v, dst=best_val, pred=better)
    b.mov(j, dst=best_idx, pred=better)
    b.add(j, b.ntid(), dst=j)
    b.bra(l1)
    b.label(l1e)
    b.st(sval, tid, best_val)
    b.st(sidx, tid, best_idx)
    b.bar()

    stride = b.shr(b.ntid(), 1)
    r1, r1e = b.fresh_label("redmax"), b.fresh_label("redmax_done")
    b.label(r1)
    b.bra(r1e, pred=b.setp(CompareOp.LE, stride, 0))
    active = b.setp(CompareOp.LT, tid, stride)
    partner = b.selp(b.add(tid, stride), 0, active)
    my_val = b.ld(sval, tid)
    my_idx = b.ld(sidx, tid)
    other_val = b.ld(sval, partner)
    other_idx = b.ld(sidx, partner)
    # Take the partner when strictly larger, or equal with smaller index.
    gt = b.setp(CompareOp.GT, other_val, my_val)
    eq = b.setp(CompareOp.EQ, other_val, my_val)
    earlier = b.setp(CompareOp.LT, other_idx, my_idx)
    take = b.or_(gt, b.and_(eq, earlier))
    new_val = b.selp(other_val, my_val, take)
    new_idx = b.selp(other_idx, my_idx, take)
    b.st(sval, tid, new_val, pred=active)
    b.st(sidx, tid, new_idx, pred=active)
    b.bar()
    b.shr(stride, 1, dst=stride)
    b.bra(r1)
    b.label(r1e)

    first = b.setp(CompareOp.EQ, tid, 0)
    b.st(out, b.mov(b.ctaid()), b.ld(sidx, 0), pred=first)
    b.ret()
    return b.build()


def _case_prefix_sum(rng: np.random.Generator) -> KernelCase:
    block = int(rng.choice([4, 8, 16]))
    grid = int(rng.integers(1, 6))
    n = int(rng.integers(1, grid * block + 1))
    x = rng.standard_normal(n)
    padded = np.zeros(grid * block)
    padded[:n] = x
    expected = np.zeros(n)
    for blk in range(grid):
        seg = padded[blk * block:(blk + 1) * block]
        scan = np.cumsum(seg)
        lo = blk * block
        hi = min(n, (blk + 1) * block)
        if lo < n:
            expected[lo:hi] = scan[:hi - lo]
    mem = DeviceMemory()
    mem.bind("x", x.copy())
    mem.bind("out", np.zeros(n))
    args = {"x": GlobalRef("x"), "out": GlobalRef("out"), "n": n}
    return KernelCase("prefix_sum_block", prefix_sum_block(block),
                      Dim3(grid), Dim3(block), mem, args,
                      {"out": expected}, atol=1e-9)


def _case_layernorm(rng: np.random.Generator) -> KernelCase:
    block = int(rng.choice([4, 8]))
    rows = int(rng.integers(1, 6))
    cols = int(rng.integers(2, 24))
    eps = 1e-5
    x = rng.standard_normal((rows, cols))
    mean = x.mean(axis=1, keepdims=True)
    var = x.var(axis=1, keepdims=True)
    expected = (x - mean) / np.sqrt(var + eps)
    mem = DeviceMemory()
    mem.bind("x", x.ravel().copy())
    mem.bind("out", np.zeros(rows * cols))
    args = {"x": GlobalRef("x"), "out": GlobalRef("out"),
            "cols": cols, "eps": eps}
    return KernelCase("layernorm_rows", layernorm_rows(block), Dim3(rows),
                      Dim3(block), mem, args, {"out": expected.ravel()},
                      atol=1e-9)


def _case_argmax(rng: np.random.Generator) -> KernelCase:
    block = int(rng.choice([4, 8]))
    rows = int(rng.integers(1, 6))
    cols = int(rng.integers(1, 30))
    x = rng.standard_normal((rows, cols))
    expected = x.argmax(axis=1).astype(float)
    mem = DeviceMemory()
    mem.bind("x", x.ravel().copy())
    mem.bind("out", np.zeros(rows))
    args = {"x": GlobalRef("x"), "out": GlobalRef("out"), "cols": cols}
    return KernelCase("argmax_rows", argmax_rows(block), Dim3(rows),
                      Dim3(block), mem, args, {"out": expected})


CASE_FACTORIES["prefix_sum_block"] = _case_prefix_sum
CASE_FACTORIES["layernorm_rows"] = _case_layernorm
CASE_FACTORIES["argmax_rows"] = _case_argmax
