"""Parser for textual mini-PTX.

Parses the format produced by :mod:`repro.ptx.printer`, giving the IR a
stable textual form::

    .kernel saxpy (.param .f32 alpha, .param .ptr x, .param .ptr y,
                   .param .i32 n)
    {
        .shared tile[16];
        mad %r0, %ctaid.x, %ntid.x, %tid.x;
        setp.ge %p1, %r0, [n];
        @%p1 ret;
        ld %r2, [x], %r0;
        mad %r3, [alpha], %r2, %r4;
        st [y], %r0, %r3;
        ret;
    }

Round-tripping (``parse(format(k)) == k`` structurally) is covered by
property tests over the whole kernel corpus.
"""

from __future__ import annotations

import re

from ..errors import ParseError
from .ir import (
    Axis,
    CompareOp,
    Imm,
    Instr,
    KernelIR,
    Opcode,
    Operand,
    Param,
    ParamKind,
    ParamRef,
    Reg,
    SharedDecl,
    SMemAddr,
    Special,
    SpecialKind,
)
from .validate import _NEEDS_DST  # shared opcode metadata

__all__ = ["parse_kernel", "parse_operand"]

_KERNEL_RE = re.compile(r"^\.kernel\s+(\w+)\s*\((.*)\)\s*$", re.S)
_PARAM_RE = re.compile(r"^\.param\s+\.(\w+)\s+(\w+)$")
_SHARED_RE = re.compile(r"^\.shared\s+(\w+)\[(\d+)\]$")
_LABEL_RE = re.compile(r"^(\w+):$")
_SPECIAL_RE = re.compile(r"^%(tid|ntid|ctaid|nctaid)\.([xyz])$")
_NUMBER_RE = re.compile(
    r"^[+-]?(\d+\.\d*([eE][+-]?\d+)?|\.\d+([eE][+-]?\d+)?"
    r"|\d+[eE][+-]?\d+|\d+)$"
)

_MNEMONICS = {op.value: op for op in Opcode}


def parse_operand(text: str) -> Operand:
    """Parse one operand token."""
    text = text.strip()
    if not text:
        raise ParseError("empty operand")
    special = _SPECIAL_RE.match(text)
    if special:
        return Special(SpecialKind(special.group(1)), Axis(special.group(2)))
    if text.startswith("%"):
        name = text[1:]
        if not name:
            raise ParseError("register with empty name")
        return Reg(name)
    if text.startswith("[") and text.endswith("]"):
        return ParamRef(text[1:-1].strip())
    if text.startswith("@shared."):
        return SMemAddr(text[len("@shared."):])
    if text in ("True", "False"):
        return Imm(text == "True")
    if _NUMBER_RE.match(text):
        if re.search(r"[.eE]", text) and not text.lstrip("+-").isdigit():
            return Imm(float(text))
        return Imm(int(text))
    raise ParseError(f"cannot parse operand {text!r}")


def _split_operands(text: str) -> list[str]:
    """Split an operand list on commas, respecting {...} brx tables."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in text:
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            if depth < 0:
                raise ParseError(f"unbalanced braces in {text!r}")
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    if depth != 0:
        raise ParseError(f"unbalanced braces in {text!r}")
    return parts


def _parse_instruction(line: str, lineno: int, label: str | None) -> Instr:
    pred: Reg | None = None
    pred_negate = False
    text = line
    if text.startswith("@"):
        guard, _, text = text.partition(" ")
        body = guard[1:]
        if body.startswith("!"):
            pred_negate = True
            body = body[1:]
        operand = parse_operand(body)
        if not isinstance(operand, Reg):
            raise ParseError(f"line {lineno}: predicate must be a register")
        pred = operand
        text = text.strip()

    mnemonic, _, rest = text.partition(" ")
    cmp: CompareOp | None = None
    if mnemonic.startswith("setp."):
        try:
            cmp = CompareOp(mnemonic[len("setp."):])
        except ValueError:
            raise ParseError(
                f"line {lineno}: unknown comparison {mnemonic!r}"
            ) from None
        opcode = Opcode.SETP
    else:
        opcode = _MNEMONICS.get(mnemonic)
        if opcode is None:
            raise ParseError(f"line {lineno}: unknown mnemonic {mnemonic!r}")

    tokens = _split_operands(rest) if rest.strip() else []

    dst: Reg | None = None
    if opcode in _NEEDS_DST:
        if not tokens:
            raise ParseError(f"line {lineno}: {mnemonic} needs a destination")
        operand = parse_operand(tokens.pop(0))
        if not isinstance(operand, Reg):
            raise ParseError(
                f"line {lineno}: destination must be a register"
            )
        dst = operand

    target: str | None = None
    targets: tuple[str, ...] = ()
    if opcode is Opcode.BRA:
        if len(tokens) != 1:
            raise ParseError(f"line {lineno}: bra takes one label")
        target = tokens.pop()
    elif opcode is Opcode.BRX:
        if not tokens or not tokens[-1].startswith("{"):
            raise ParseError(f"line {lineno}: brx needs a {{...}} table")
        table = tokens.pop()
        targets = tuple(t.strip() for t in table[1:-1].split(",") if t.strip())

    srcs = tuple(parse_operand(t) for t in tokens)
    return Instr(op=opcode, dst=dst, srcs=srcs, target=target,
                 targets=targets, cmp=cmp, label=label, pred=pred,
                 pred_negate=pred_negate)


def parse_kernel(text: str, *, validate: bool = True) -> KernelIR:
    """Parse one textual mini-PTX kernel."""
    lines = [ln.strip() for ln in text.strip().splitlines()]
    lines = [ln for ln in lines if ln and not ln.startswith("//")]
    if not lines:
        raise ParseError("empty kernel text")

    header = lines[0]
    if header.endswith("{"):
        header = header[:-1].strip()
        body_lines = lines[1:]
    else:
        if len(lines) < 2 or lines[1] != "{":
            raise ParseError("expected '{' after the kernel header")
        body_lines = lines[2:]
    match = _KERNEL_RE.match(header)
    if not match:
        raise ParseError(f"bad kernel header: {header!r}")
    name = match.group(1)

    params: list[Param] = []
    params_text = match.group(2).strip()
    if params_text:
        for chunk in params_text.split(","):
            pm = _PARAM_RE.match(chunk.strip())
            if not pm:
                raise ParseError(f"bad parameter declaration: {chunk!r}")
            try:
                kind = ParamKind(pm.group(1))
            except ValueError:
                raise ParseError(
                    f"unknown parameter kind {pm.group(1)!r}"
                ) from None
            params.append(Param(pm.group(2), kind))

    if not body_lines or body_lines[-1] != "}":
        raise ParseError("kernel body must end with '}'")
    body_lines = body_lines[:-1]

    shared: list[SharedDecl] = []
    body: list[Instr] = []
    pending_label: str | None = None
    for lineno, raw in enumerate(body_lines, start=1):
        line = raw.rstrip(";").strip() if raw.endswith(";") else raw
        if raw.endswith(";"):
            sm = _SHARED_RE.match(line)
            if sm:
                if body:
                    raise ParseError(
                        f"line {lineno}: shared declarations must precede "
                        "instructions"
                    )
                shared.append(SharedDecl(sm.group(1), int(sm.group(2))))
                continue
            instr = _parse_instruction(line, lineno, pending_label)
            pending_label = None
            body.append(instr)
            continue
        lm = _LABEL_RE.match(line)
        if lm:
            if pending_label is not None:
                body.append(Instr(Opcode.NOP, label=pending_label))
            pending_label = lm.group(1)
            continue
        raise ParseError(f"line {lineno}: cannot parse {raw!r}")

    if pending_label is not None:
        body.append(Instr(Opcode.NOP, label=pending_label))

    kernel = KernelIR(name=name, params=params, shared=shared, body=body)
    if validate:
        from .validate import validate_kernel

        validate_kernel(kernel)
    return kernel
