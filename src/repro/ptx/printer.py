"""Textual rendering of mini-PTX kernels.

The format mirrors real PTX loosely and round-trips through
:mod:`repro.ptx.parser`::

    .kernel vecadd (.param .ptr a, .param .ptr x, .param .ptr y, .param .i32 n)
    {
        mad %r0, %ctaid.x, %ntid.x, %tid.x;
        setp.ge %p1, %r0, [n];
        @%p1 ret;
        ld %r2, [%r0 + a]; ...
    }
"""

from __future__ import annotations

from .ir import (
    Imm,
    Instr,
    KernelIR,
    Opcode,
    Operand,
)

__all__ = ["format_instr", "format_kernel"]


def format_operand(op: Operand) -> str:
    """Render one operand."""
    if isinstance(op, Imm):
        if isinstance(op.value, bool):
            return "1" if op.value else "0"
        return repr(op.value)
    return str(op)


def format_instr(instr: Instr) -> str:
    """Render one instruction (without its label)."""
    parts: list[str] = []
    if instr.pred is not None:
        guard = f"@!{instr.pred}" if instr.pred_negate else f"@{instr.pred}"
        parts.append(guard)

    mnemonic = instr.op.value
    if instr.op is Opcode.SETP and instr.cmp is not None:
        mnemonic = f"setp.{instr.cmp.value}"
    parts.append(mnemonic)

    operands: list[str] = []
    if instr.dst is not None:
        operands.append(str(instr.dst))
    operands.extend(format_operand(s) for s in instr.srcs)
    if instr.target is not None:
        operands.append(instr.target)
    if instr.targets:
        operands.append("{" + ", ".join(instr.targets) + "}")

    text = parts[0] if len(parts) == 1 else " ".join(parts[:-1]) + " " + parts[-1]
    # Rebuild cleanly: guard? mnemonic operands;
    head = " ".join(parts)
    if operands:
        return f"{head} {', '.join(operands)};"
    return f"{head};"


def format_kernel(kernel: KernelIR) -> str:
    """Render a full kernel."""
    params = ", ".join(str(p) for p in kernel.params)
    lines = [f".kernel {kernel.name} ({params})", "{"]
    for decl in kernel.shared:
        lines.append(f"    {decl};")
    for instr in kernel.body:
        if instr.label is not None:
            lines.append(f"  {instr.label}:")
        lines.append(f"    {format_instr(instr)}")
    lines.append("}")
    return "\n".join(lines)
