"""Structural validation of mini-PTX kernels.

Validation catches malformed IR before it reaches the interpreter or a
transformation pass: undefined branch targets, reads of undeclared
parameters or shared buffers, instructions with the wrong operand
count, and fall-through off the end of the body.
"""

from __future__ import annotations

from ..errors import ValidationError
from .ir import (
    Instr,
    KernelIR,
    Opcode,
    ParamRef,
    Reg,
    SMemAddr,
)

__all__ = ["validate_kernel"]

# Expected source-operand counts per opcode (None = variable / special).
_SRC_COUNTS: dict[Opcode, int] = {
    Opcode.MOV: 1,
    Opcode.ADD: 2,
    Opcode.SUB: 2,
    Opcode.MUL: 2,
    Opcode.DIV: 2,
    Opcode.REM: 2,
    Opcode.MIN: 2,
    Opcode.MAX: 2,
    Opcode.AND: 2,
    Opcode.OR: 2,
    Opcode.XOR: 2,
    Opcode.SHL: 2,
    Opcode.SHR: 2,
    Opcode.MAD: 3,
    Opcode.NOT: 1,
    Opcode.SQRT: 1,
    Opcode.EXP: 1,
    Opcode.ABS: 1,
    Opcode.CVT_INT: 1,
    Opcode.SETP: 2,
    Opcode.SELP: 3,
    Opcode.BRA: 0,
    Opcode.BRX: 1,
    Opcode.LD: 2,
    Opcode.ST: 3,
    Opcode.ATOM_ADD: 3,
    Opcode.ATOM_CAS: 4,
    Opcode.ATOM_EXCH: 3,
    Opcode.BAR: 0,
    Opcode.RET: 0,
    Opcode.NOP: 0,
}

_NEEDS_DST = {
    Opcode.MOV,
    Opcode.ADD,
    Opcode.SUB,
    Opcode.MUL,
    Opcode.DIV,
    Opcode.REM,
    Opcode.MIN,
    Opcode.MAX,
    Opcode.AND,
    Opcode.OR,
    Opcode.XOR,
    Opcode.SHL,
    Opcode.SHR,
    Opcode.MAD,
    Opcode.NOT,
    Opcode.SQRT,
    Opcode.EXP,
    Opcode.ABS,
    Opcode.CVT_INT,
    Opcode.SETP,
    Opcode.SELP,
    Opcode.ATOM_ADD,
    Opcode.ATOM_CAS,
    Opcode.ATOM_EXCH,
    Opcode.LD,
}

_PREDICABLE = {Opcode.BRA, Opcode.RET, Opcode.ST, Opcode.MOV}


def _check_instr(kernel: KernelIR, index: int, instr: Instr,
                 labels: dict[str, int], params: set[str],
                 shared: set[str]) -> None:
    where = f"{kernel.name}[{index}] ({instr.op.value})"

    expected = _SRC_COUNTS.get(instr.op)
    if expected is None:
        raise ValidationError(f"{where}: unknown opcode")
    if len(instr.srcs) != expected:
        raise ValidationError(
            f"{where}: expected {expected} source operands, got {len(instr.srcs)}"
        )

    if instr.op in _NEEDS_DST and instr.dst is None:
        raise ValidationError(f"{where}: missing destination register")
    if instr.op not in _NEEDS_DST and instr.dst is not None:
        raise ValidationError(f"{where}: unexpected destination register")

    if instr.op is Opcode.SETP and instr.cmp is None:
        raise ValidationError(f"{where}: setp requires a comparison operator")
    if instr.op is not Opcode.SETP and instr.cmp is not None:
        raise ValidationError(f"{where}: cmp only valid on setp")

    if instr.op is Opcode.BRA:
        if instr.target is None:
            raise ValidationError(f"{where}: bra requires a target label")
        if instr.target not in labels:
            raise ValidationError(f"{where}: undefined label {instr.target!r}")
    elif instr.target is not None:
        raise ValidationError(f"{where}: target only valid on bra")

    if instr.op is Opcode.BRX:
        if not instr.targets:
            raise ValidationError(f"{where}: brx requires a label table")
        for t in instr.targets:
            if t not in labels:
                raise ValidationError(f"{where}: undefined label {t!r} in brx table")
    elif instr.targets:
        raise ValidationError(f"{where}: label table only valid on brx")

    if instr.pred is not None and instr.op not in _PREDICABLE:
        raise ValidationError(f"{where}: {instr.op.value} cannot be predicated")
    if instr.pred is not None and not isinstance(instr.pred, Reg):
        raise ValidationError(f"{where}: predicate must be a register")

    for src in instr.srcs:
        if isinstance(src, ParamRef) and src.name not in params:
            raise ValidationError(f"{where}: undeclared parameter {src.name!r}")
        if isinstance(src, SMemAddr) and src.buffer not in shared:
            raise ValidationError(f"{where}: undeclared shared buffer {src.buffer!r}")


def validate_kernel(kernel: KernelIR) -> None:
    """Validate ``kernel``; raise :class:`ValidationError` on problems."""
    if not kernel.name:
        raise ValidationError("kernel must have a non-empty name")
    if not kernel.body:
        raise ValidationError(f"kernel {kernel.name!r} has an empty body")

    names = kernel.param_names()
    if len(names) != len(set(names)):
        raise ValidationError(f"kernel {kernel.name!r} has duplicate parameters")
    snames = kernel.shared_names()
    if len(snames) != len(set(snames)):
        raise ValidationError(f"kernel {kernel.name!r} has duplicate shared buffers")
    for decl in kernel.shared:
        if decl.size < 1:
            raise ValidationError(
                f"kernel {kernel.name!r}: shared buffer {decl.name!r} has size < 1"
            )

    labels = kernel.labels()  # also raises on duplicates
    params = set(names)
    shared = set(snames)
    for index, instr in enumerate(kernel.body):
        _check_instr(kernel, index, instr, labels, params, shared)

    last = kernel.body[-1]
    falls_through = not (
        (last.op is Opcode.RET and last.pred is None)
        or (last.op is Opcode.BRA and last.pred is None)
        or last.op is Opcode.BRX
    )
    if falls_through:
        raise ValidationError(
            f"kernel {kernel.name!r} may fall through past its last instruction"
        )
