"""CUDA-like runtime substrate: the API surface Tally intercepts."""

from .api import CudaRuntime
from .context import Backend, LocalBackend
from .memory import MemoryManager, MemorySnapshot
from .registration import FatBinary, ModuleRegistry

__all__ = [
    "Backend",
    "CudaRuntime",
    "FatBinary",
    "LocalBackend",
    "MemoryManager",
    "MemorySnapshot",
    "ModuleRegistry",
]
