"""CUDA-like runtime API facade.

:class:`CudaRuntime` exposes the subset of the CUDA runtime surface the
reproduction needs — device selection, memory, streams, device-code
registration, kernel launch, synchronization — and routes everything
through a pluggable :class:`~repro.runtime.context.Backend`.

Per-call counters make the §4.3 forwarding-overhead analysis concrete:
:class:`~repro.virt.interposer.InterposedBackend` serves calls like
``cudaGetDevice`` from client-local state, and the counters show which
calls crossed the client/server channel versus which were absorbed.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Mapping, Sequence

import numpy as np

from ..errors import RuntimeAPIError
from ..ptx.interpreter import GlobalRef
from ..ptx.ir import Dim3
from .context import Backend, LocalBackend
from .registration import FatBinary

__all__ = ["CudaRuntime"]


class CudaRuntime:
    """The application-facing runtime (the paper's "client process")."""

    def __init__(self, backend: Backend | None = None, *,
                 num_devices: int = 1) -> None:
        if num_devices < 1:
            raise RuntimeAPIError("need at least one device")
        self.backend = backend if backend is not None else LocalBackend()
        self.num_devices = num_devices
        self._device = 0
        self._next_stream = 1
        self._streams: set[int] = {0}  # stream 0 = default stream
        self.api_calls: Counter[str] = Counter()

    # ------------------------------------------------------------------
    # Device management (state kept runtime-local; never needs the device)
    # ------------------------------------------------------------------
    def get_device_count(self) -> int:
        """``cudaGetDeviceCount``."""
        self.api_calls["cudaGetDeviceCount"] += 1
        return self.num_devices

    def set_device(self, device: int) -> None:
        """``cudaSetDevice``."""
        self.api_calls["cudaSetDevice"] += 1
        if not 0 <= device < self.num_devices:
            raise RuntimeAPIError(f"invalid device ordinal {device}")
        self._device = device

    def get_device(self) -> int:
        """``cudaGetDevice`` — the paper's example of a frequent call that
        should never be forwarded to the server."""
        self.api_calls["cudaGetDevice"] += 1
        return self._device

    # ------------------------------------------------------------------
    # Streams
    # ------------------------------------------------------------------
    def stream_create(self) -> int:
        """``cudaStreamCreate``."""
        self.api_calls["cudaStreamCreate"] += 1
        handle = self._next_stream
        self._next_stream += 1
        self._streams.add(handle)
        return handle

    def stream_destroy(self, stream: int) -> None:
        """``cudaStreamDestroy``."""
        self.api_calls["cudaStreamDestroy"] += 1
        if stream == 0:
            raise RuntimeAPIError("cannot destroy the default stream")
        try:
            self._streams.remove(stream)
        except KeyError:
            raise RuntimeAPIError(f"unknown stream {stream}") from None

    def stream_synchronize(self, stream: int) -> None:
        """``cudaStreamSynchronize``."""
        self.api_calls["cudaStreamSynchronize"] += 1
        self._require_stream(stream)
        self.backend.synchronize()

    # ------------------------------------------------------------------
    # Device code & memory
    # ------------------------------------------------------------------
    def register_fat_binary(self, binary: FatBinary) -> None:
        """``__cudaRegisterFatBinary`` — ships device code to the backend."""
        self.api_calls["__cudaRegisterFatBinary"] += 1
        self.backend.register_binary(binary)

    def malloc(self, num_elements: int, dtype: Any = np.float64) -> GlobalRef:
        """``cudaMalloc`` (element-granular)."""
        self.api_calls["cudaMalloc"] += 1
        return self.backend.malloc(num_elements, dtype)

    def free(self, ref: GlobalRef) -> None:
        """``cudaFree``."""
        self.api_calls["cudaFree"] += 1
        self.backend.free(ref)

    def memcpy_h2d(self, dst: GlobalRef, src: Sequence[float] | np.ndarray) -> None:
        """``cudaMemcpy(..., cudaMemcpyHostToDevice)``."""
        self.api_calls["cudaMemcpyH2D"] += 1
        self.backend.memcpy_h2d(dst, np.asarray(src, dtype=np.float64))

    def memcpy_d2h(self, src: GlobalRef, num_elements: int) -> np.ndarray:
        """``cudaMemcpy(..., cudaMemcpyDeviceToHost)``."""
        self.api_calls["cudaMemcpyD2H"] += 1
        return self.backend.memcpy_d2h(src, num_elements)

    # ------------------------------------------------------------------
    # Kernel launch
    # ------------------------------------------------------------------
    def launch_kernel(self, kernel_name: str,
                      grid: Dim3 | int | Sequence[int],
                      block: Dim3 | int | Sequence[int],
                      args: Mapping[str, Any], *, stream: int = 0) -> None:
        """``cudaLaunchKernel``."""
        self.api_calls["cudaLaunchKernel"] += 1
        self._require_stream(stream)
        self.backend.launch_kernel(
            kernel_name, Dim3.of(grid), Dim3.of(block), dict(args), stream
        )

    def device_synchronize(self) -> None:
        """``cudaDeviceSynchronize``."""
        self.api_calls["cudaDeviceSynchronize"] += 1
        self.backend.synchronize()

    # ------------------------------------------------------------------
    def _require_stream(self, stream: int) -> None:
        if stream not in self._streams:
            raise RuntimeAPIError(f"unknown stream {stream}")
