"""Execution backends for the CUDA-like runtime.

The runtime facade (:mod:`repro.runtime.api`) delegates every device
operation to a :class:`Backend`.  :class:`LocalBackend` executes
directly (the "no Tally" native path); the virtualization layer
substitutes a forwarding backend (:class:`repro.virt.interposer.
InterposedBackend`) without the application changing a line — which is
precisely the non-intrusiveness property the paper claims.
"""

from __future__ import annotations

import abc
from typing import Any, Mapping

import numpy as np

from ..errors import RuntimeAPIError
from ..ptx.interpreter import DeviceMemory, GlobalRef, Interpreter
from ..ptx.ir import Dim3
from .memory import MemoryManager
from .registration import FatBinary, ModuleRegistry

__all__ = ["Backend", "LocalBackend"]


class Backend(abc.ABC):
    """Everything a CUDA runtime needs from the device side."""

    @abc.abstractmethod
    def register_binary(self, binary: FatBinary) -> None:
        """Register device code (``__cudaRegisterFatBinary``)."""

    @abc.abstractmethod
    def malloc(self, num_elements: int, dtype: Any = np.float64) -> GlobalRef:
        """Allocate device memory."""

    @abc.abstractmethod
    def free(self, ref: GlobalRef) -> None:
        """Release device memory."""

    @abc.abstractmethod
    def memcpy_h2d(self, dst: GlobalRef, src: np.ndarray) -> None:
        """Copy host data to the device."""

    @abc.abstractmethod
    def memcpy_d2h(self, src: GlobalRef, num_elements: int) -> np.ndarray:
        """Copy device data to the host."""

    @abc.abstractmethod
    def launch_kernel(self, kernel_name: str, grid: Dim3, block: Dim3,
                      args: Mapping[str, Any], stream: int) -> None:
        """Launch a registered kernel."""

    @abc.abstractmethod
    def synchronize(self) -> None:
        """Block until all device work completes."""


class LocalBackend(Backend):
    """Direct execution on the functional interpreter (native path)."""

    def __init__(self, memory: DeviceMemory | None = None) -> None:
        self.registry = ModuleRegistry()
        self.memory_manager = MemoryManager(memory)
        self.interpreter = Interpreter(self.memory_manager.memory)
        self.kernels_launched = 0

    def register_binary(self, binary: FatBinary) -> None:
        self.registry.register(binary)

    def malloc(self, num_elements: int, dtype: Any = np.float64) -> GlobalRef:
        return self.memory_manager.malloc(num_elements, dtype)

    def free(self, ref: GlobalRef) -> None:
        self.memory_manager.free(ref)

    def memcpy_h2d(self, dst: GlobalRef, src: np.ndarray) -> None:
        self.memory_manager.memcpy_h2d(dst, src)

    def memcpy_d2h(self, src: GlobalRef, num_elements: int) -> np.ndarray:
        return self.memory_manager.memcpy_d2h(src, num_elements)

    def launch_kernel(self, kernel_name: str, grid: Dim3, block: Dim3,
                      args: Mapping[str, Any], stream: int) -> None:
        kernel = self.registry.lookup(kernel_name)
        missing = [p.name for p in kernel.params if p.name not in args]
        if missing:
            raise RuntimeAPIError(
                f"launch of {kernel_name!r} missing arguments {missing}"
            )
        self.interpreter.launch(kernel, grid, block, args)
        self.kernels_launched += 1

    def synchronize(self) -> None:
        # The functional interpreter executes launches synchronously, so
        # synchronization is a no-op on the local path.
        return None
