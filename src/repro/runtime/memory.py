"""Device memory management for the CUDA-like runtime.

Wraps :class:`~repro.ptx.interpreter.DeviceMemory` with handle-based
alloc/free/memcpy semantics mirroring ``cudaMalloc`` / ``cudaMemcpy``.
Allocations are element-granular (the mini-PTX memory model is typed
per-buffer, not byte-addressed).

:class:`MemorySnapshot` captures a manager's full state — buffer
contents, handle table, allocator position, lifetime counters — so the
cluster control plane can checkpoint a client's memory image on one
simulated device and restore it bit-identically on another (see
``docs/cluster.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..errors import RuntimeAPIError
from ..ptx.interpreter import DeviceMemory, GlobalRef

__all__ = ["MemoryManager", "MemorySnapshot"]


@dataclass(frozen=True)
class MemorySnapshot:
    """Deep-copied image of a :class:`MemoryManager` at checkpoint time.

    Buffer *names* are preserved so every :class:`GlobalRef` the client
    holds stays valid after restore, and the allocator position travels
    along so post-restore ``malloc`` never reuses a name an old handle
    still points at.  Picklable (names, ints, numpy arrays only).
    """

    buffers: tuple[tuple[str, np.ndarray], ...]
    live: tuple[tuple[str, int], ...]  # buffer name -> element count
    next_index: int
    allocated_elements_total: int
    freed_elements_total: int

    @property
    def live_elements(self) -> int:
        """Total elements held live at checkpoint time."""
        return sum(count for _, count in self.live)


class MemoryManager:
    """Handle-based allocator over a :class:`DeviceMemory` image."""

    def __init__(self, memory: DeviceMemory | None = None) -> None:
        self.memory = memory if memory is not None else DeviceMemory()
        self._live: dict[str, int] = {}  # buffer name -> element count
        self._next_index = 0
        #: lifetime accounting — conservation audits (e.g. the LLM
        #: KV-cache drain check) assert allocated == freed at shutdown
        self.allocated_elements_total = 0
        self.freed_elements_total = 0

    def malloc(self, num_elements: int, dtype: Any = np.float64) -> GlobalRef:
        """Allocate a device buffer and return its handle."""
        if num_elements < 1:
            raise RuntimeAPIError(
                f"cudaMalloc of {num_elements} elements is invalid"
            )
        name = f"dev_{self._next_index}"
        self._next_index += 1
        ref = self.memory.alloc(num_elements, dtype=dtype, name=name)
        self._live[name] = num_elements
        self.allocated_elements_total += num_elements
        return ref

    # -- checkpoint/restore (live migration) ---------------------------
    def snapshot(self) -> MemorySnapshot:
        """Capture every live buffer and the allocator state."""
        return MemorySnapshot(
            buffers=tuple((name, self.memory.array(GlobalRef(name)).copy())
                          for name in self._live),
            live=tuple(self._live.items()),
            next_index=self._next_index,
            allocated_elements_total=self.allocated_elements_total,
            freed_elements_total=self.freed_elements_total,
        )

    @classmethod
    def from_snapshot(cls, snap: MemorySnapshot) -> "MemoryManager":
        """Rebuild a manager (over a fresh device image) from ``snap``.

        Lifetime counters carry over, so the alloc==freed drain audit
        spans the migration instead of resetting at it.
        """
        manager = cls()
        for name, data in snap.buffers:
            manager.memory.bind(name, data.copy())
        manager._live = dict(snap.live)
        manager._next_index = snap.next_index
        manager.allocated_elements_total = snap.allocated_elements_total
        manager.freed_elements_total = snap.freed_elements_total
        return manager

    def free(self, ref: GlobalRef) -> None:
        """Release a buffer previously returned by :meth:`malloc`."""
        if ref.buffer not in self._live:
            raise RuntimeAPIError(f"free of unknown buffer {ref.buffer!r}")
        self.freed_elements_total += self._live[ref.buffer]
        del self._live[ref.buffer]
        self.memory.free(ref)

    def memcpy_h2d(self, dst: GlobalRef, src: np.ndarray) -> None:
        """Host-to-device copy."""
        self._check(dst, len(src))
        arr = self.memory.array(dst)
        arr[dst.offset: dst.offset + len(src)] = src

    def memcpy_d2h(self, src: GlobalRef, num_elements: int) -> np.ndarray:
        """Device-to-host copy; returns a fresh array."""
        self._check(src, num_elements)
        arr = self.memory.array(src)
        return arr[src.offset: src.offset + num_elements].copy()

    def memset(self, dst: GlobalRef, value: float, num_elements: int) -> None:
        """Fill ``num_elements`` elements with ``value``."""
        self._check(dst, num_elements)
        arr = self.memory.array(dst)
        arr[dst.offset: dst.offset + num_elements] = value

    def release_all(self) -> int:
        """Free every live buffer (client garbage collection).

        Returns the number of buffers released.  Used by the server
        when a client dies without freeing its allocations.
        """
        names = list(self._live)
        for name in names:
            self.freed_elements_total += self._live[name]
            del self._live[name]
            self.memory.free(GlobalRef(name))
        return len(names)

    def live_bytes(self) -> int:
        """Total elements currently allocated (proxy for memory footprint)."""
        return sum(self._live.values())

    def live_buffers(self) -> int:
        return len(self._live)

    def _check(self, ref: GlobalRef, count: int) -> None:
        if ref.buffer not in self._live:
            raise RuntimeAPIError(f"access to unknown buffer {ref.buffer!r}")
        size = self._live[ref.buffer]
        if count < 0 or ref.offset < 0 or ref.offset + count > size:
            raise RuntimeAPIError(
                f"copy of {count} elements at offset {ref.offset} exceeds "
                f"buffer {ref.buffer!r} (size {size})"
            )
