"""Device-code registration (the fatbinary mechanism).

Real CUDA applications register their device code with the driver at
startup (``__cudaRegisterFatBinary``); Tally's key implementation
insight (§4.3) is that intercepting this registration hands the server
the PTX of every kernel the client may launch, which is what makes
server-side transformation possible without touching user code.

Here a :class:`FatBinary` is a named collection of mini-PTX kernels,
and :class:`ModuleRegistry` is the per-context registration table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..errors import RuntimeAPIError
from ..ptx.ir import KernelIR

__all__ = ["FatBinary", "ModuleRegistry"]


@dataclass(frozen=True)
class FatBinary:
    """A compilation unit: a named bundle of kernels."""

    name: str
    kernels: tuple[KernelIR, ...]

    @staticmethod
    def of(name: str, kernels: Iterable[KernelIR]) -> "FatBinary":
        kernels = tuple(kernels)
        seen: set[str] = set()
        for k in kernels:
            if k.name in seen:
                raise RuntimeAPIError(
                    f"fat binary {name!r} has duplicate kernel {k.name!r}"
                )
            seen.add(k.name)
        return FatBinary(name, kernels)

    def kernel_names(self) -> list[str]:
        return [k.name for k in self.kernels]


class ModuleRegistry:
    """Registered device code of one execution context."""

    def __init__(self) -> None:
        self._binaries: dict[str, FatBinary] = {}
        self._kernels: dict[str, KernelIR] = {}

    def register(self, binary: FatBinary) -> None:
        """Register a fat binary; kernel names must be globally unique."""
        if binary.name in self._binaries:
            raise RuntimeAPIError(f"fat binary {binary.name!r} already registered")
        clashes = [k.name for k in binary.kernels if k.name in self._kernels]
        if clashes:
            raise RuntimeAPIError(
                f"fat binary {binary.name!r} redefines kernels {clashes}"
            )
        self._binaries[binary.name] = binary
        for kernel in binary.kernels:
            self._kernels[kernel.name] = kernel

    def lookup(self, kernel_name: str) -> KernelIR:
        """Find a registered kernel by name."""
        try:
            return self._kernels[kernel_name]
        except KeyError:
            raise RuntimeAPIError(
                f"kernel {kernel_name!r} is not registered"
            ) from None

    def binaries(self) -> Iterator[FatBinary]:
        return iter(self._binaries.values())

    def kernel_names(self) -> list[str]:
        return sorted(self._kernels)

    def __contains__(self, kernel_name: str) -> bool:
        return kernel_name in self._kernels

    def __len__(self) -> int:
        return len(self._kernels)
