"""Tracing & observability for the timing simulator.

Typed events (:mod:`repro.trace.events`) are emitted by the device,
schedulers, and workload drivers into a :class:`Tracer` — a ring
buffer with pluggable sinks (in-memory, JSONL, and Chrome/Perfetto
``trace_event`` export).  :func:`summarize` derives the counters the
harness reports.  Tracing is off by default and the disabled path
(:data:`NULL_TRACER`) adds no measurable overhead.

Quick use::

    from repro.harness import JobSpec, RunConfig, run_colocation
    from repro.trace import Tracer, summarize

    tracer = Tracer(capacity=None)
    run_colocation("Tally", [JobSpec.inference("bert_infer"),
                             JobSpec.training("whisper_train")],
                   RunConfig(duration=5.0), tracer=tracer)
    tracer.export_chrome("out.json")   # load in ui.perfetto.dev
    print(summarize(tracer).format())

See ``docs/observability.md`` for the full event schema.
"""

from .chrome import to_chrome_trace, write_chrome_trace
from .events import (
    EVENT_CLASSES,
    AdmissionDecision,
    BreakerTransition,
    BrownoutShift,
    ChannelFault,
    ClientCrash,
    ClientGC,
    DeadlineShed,
    DeviceDrain,
    DeviceFault,
    EventType,
    KernelComplete,
    KernelStart,
    KernelSubmit,
    MigrationComplete,
    MigrationStart,
    PreemptAck,
    PreemptLost,
    PreemptRequest,
    PtbDispatch,
    QueueDepth,
    Resume,
    RetryBudgetExhausted,
    ScaleDecision,
    SchedDecision,
    SliceDispatch,
    SlotFault,
    TraceEvent,
    TransformDegrade,
    WatchdogReset,
    event_from_dict,
)
from .summary import ClientCounters, TraceSummary, summarize
from .tracer import (
    JSONLSink,
    MemorySink,
    NULL_TRACER,
    TraceSink,
    Tracer,
    load_jsonl,
)

__all__ = [
    "EVENT_CLASSES",
    "EventType",
    "TraceEvent",
    "KernelSubmit",
    "KernelStart",
    "KernelComplete",
    "SliceDispatch",
    "PtbDispatch",
    "PreemptRequest",
    "PreemptAck",
    "Resume",
    "SchedDecision",
    "QueueDepth",
    "ChannelFault",
    "ClientCrash",
    "ClientGC",
    "PreemptLost",
    "WatchdogReset",
    "TransformDegrade",
    "SlotFault",
    "DeviceFault",
    "MigrationStart",
    "MigrationComplete",
    "AdmissionDecision",
    "DeviceDrain",
    "RetryBudgetExhausted",
    "BreakerTransition",
    "DeadlineShed",
    "BrownoutShift",
    "ScaleDecision",
    "event_from_dict",
    "TraceSink",
    "MemorySink",
    "JSONLSink",
    "Tracer",
    "NULL_TRACER",
    "load_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "ClientCounters",
    "TraceSummary",
    "summarize",
]
