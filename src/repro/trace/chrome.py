"""Chrome ``trace_event`` / Perfetto export.

Converts collected :mod:`repro.trace.events` into the JSON object
format both ``chrome://tracing`` and https://ui.perfetto.dev load
directly (the "JSON Array Format" of the trace_event spec):

* one *complete* event (``ph: "X"``) per retired kernel launch, on a
  per-client timeline (``pid`` 1 = the GPU, one ``tid`` per client);
* *instant* events (``ph: "i"``) for scheduler activity — slice/PTB
  dispatches, preemption requests/acks, resumes, decisions;
* *counter* events (``ph: "C"``) for queue-depth samples;
* *metadata* events (``ph: "M"``) naming the process and threads.

Timestamps are microseconds, per the spec; simulation seconds are
scaled by 1e6.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from .events import (
    EventType,
    KernelComplete,
    QueueDepth,
    TraceEvent,
)

__all__ = ["GPU_PID", "to_chrome_trace", "write_chrome_trace"]

#: the single simulated-GPU "process" in the exported trace
GPU_PID = 1

_SEC_TO_US = 1e6

#: instant-event phases rendered per type (name shown on the timeline)
_INSTANT_NAMES = {
    EventType.SLICE_DISPATCH: "slice",
    EventType.PTB_DISPATCH: "ptb",
    EventType.PREEMPT_REQUEST: "preempt.request",
    EventType.PREEMPT_ACK: "preempt.ack",
    EventType.RESUME: "resume",
    EventType.SCHED_DECISION: "decision",
    EventType.CHANNEL_FAULT: "fault.channel",
    EventType.CLIENT_CRASH: "fault.crash",
    EventType.CLIENT_GC: "fault.gc",
    EventType.PREEMPT_LOST: "fault.preempt-lost",
    EventType.WATCHDOG_RESET: "fault.watchdog-reset",
    EventType.TRANSFORM_DEGRADE: "fault.degrade",
    EventType.SLOT_FAULT: "fault.slot",
    EventType.RETRY_BUDGET_EXHAUSTED: "overload.budget",
    EventType.BREAKER_TRANSITION: "overload.breaker",
    EventType.DEADLINE_SHED: "overload.deadline-shed",
    EventType.BROWNOUT_SHIFT: "overload.brownout",
    EventType.SCALE_DECISION: "overload.scale",
}


def _args_of(event: TraceEvent) -> dict[str, Any]:
    data = event.to_dict()
    for common in ("type", "ts", "client_id", "kernel"):
        data.pop(common, None)
    return data


def to_chrome_trace(events: Iterable[TraceEvent]) -> dict[str, Any]:
    """Build the trace_event JSON object for ``events``."""
    trace_events: list[dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": GPU_PID, "tid": 0,
        "args": {"name": "simulated GPU"},
    }]
    tids: dict[str, int] = {}

    def tid_of(client_id: str) -> int:
        tid = tids.get(client_id)
        if tid is None:
            tid = len(tids) + 1
            tids[client_id] = tid
            trace_events.append({
                "name": "thread_name", "ph": "M", "pid": GPU_PID,
                "tid": tid, "args": {"name": client_id or "(device)"},
            })
        return tid

    for event in events:
        tid = tid_of(event.client_id)
        if isinstance(event, KernelComplete):
            if event.started_at is None or event.duration is None:
                continue  # never dispatched; nothing to draw
            trace_events.append({
                "name": event.kernel,
                "cat": "kernel",
                "ph": "X",
                "ts": event.started_at * _SEC_TO_US,
                "dur": event.duration * _SEC_TO_US,
                "pid": GPU_PID,
                "tid": tid,
                "args": _args_of(event),
            })
        elif isinstance(event, QueueDepth):
            trace_events.append({
                "name": f"queue depth: {event.client_id}",
                "cat": "queue",
                "ph": "C",
                "ts": event.ts * _SEC_TO_US,
                "pid": GPU_PID,
                "args": {"depth": event.depth},
            })
        else:
            name = _INSTANT_NAMES.get(event.type)
            if name is None:
                continue  # kernel_submit/start are covered by the X span
            trace_events.append({
                "name": f"{name}: {event.kernel}" if event.kernel else name,
                "cat": "sched",
                "ph": "i",
                "s": "t",
                "ts": event.ts * _SEC_TO_US,
                "pid": GPU_PID,
                "tid": tid,
                "args": _args_of(event),
            })

    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(events: Iterable[TraceEvent], path: str) -> None:
    """Write ``events`` to ``path`` as strictly valid trace JSON."""
    document = to_chrome_trace(events)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, allow_nan=False)
