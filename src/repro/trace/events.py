"""Typed trace events — the simulator's observability schema.

Every event is a frozen dataclass with a stable wire name
(:class:`EventType`), a simulation timestamp ``ts`` (seconds), the
``client_id`` it concerns, and the ``kernel`` name (empty for events
that are not about one kernel, e.g. queue-depth samples).

The authoritative schema documentation — every event type, its fields,
and which module emits it — lives in ``docs/observability.md``; keep
the two in sync when adding events.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, fields
from typing import Any, ClassVar

from ..errors import ReproError

__all__ = [
    "EventType",
    "TraceEvent",
    "KernelSubmit",
    "KernelStart",
    "KernelComplete",
    "SliceDispatch",
    "PtbDispatch",
    "PreemptRequest",
    "PreemptAck",
    "Resume",
    "SchedDecision",
    "QueueDepth",
    "ChannelFault",
    "ClientCrash",
    "ClientGC",
    "PreemptLost",
    "WatchdogReset",
    "TransformDegrade",
    "TransformCache",
    "SlotFault",
    "DeviceFault",
    "MigrationStart",
    "MigrationComplete",
    "AdmissionDecision",
    "DeviceDrain",
    "RetryBudgetExhausted",
    "BreakerTransition",
    "DeadlineShed",
    "BrownoutShift",
    "ScaleDecision",
    "EVENT_CLASSES",
    "event_from_dict",
]


class EventType(enum.Enum):
    """Stable wire names of the trace event types."""

    KERNEL_SUBMIT = "kernel_submit"
    KERNEL_START = "kernel_start"
    KERNEL_COMPLETE = "kernel_complete"
    SLICE_DISPATCH = "slice_dispatch"
    PTB_DISPATCH = "ptb_dispatch"
    PREEMPT_REQUEST = "preempt_request"
    PREEMPT_ACK = "preempt_ack"
    RESUME = "resume"
    SCHED_DECISION = "sched_decision"
    QUEUE_DEPTH = "queue_depth"
    CHANNEL_FAULT = "channel_fault"
    CLIENT_CRASH = "client_crash"
    CLIENT_GC = "client_gc"
    PREEMPT_LOST = "preempt_lost"
    WATCHDOG_RESET = "watchdog_reset"
    TRANSFORM_DEGRADE = "transform_degrade"
    TRANSFORM_CACHE = "transform_cache"
    SLOT_FAULT = "slot_fault"
    DEVICE_FAULT = "device_fault"
    MIGRATION_START = "migration_start"
    MIGRATION_COMPLETE = "migration_complete"
    ADMISSION_DECISION = "admission_decision"
    DEVICE_DRAIN = "device_drain"
    RETRY_BUDGET_EXHAUSTED = "retry_budget_exhausted"
    BREAKER_TRANSITION = "breaker_transition"
    DEADLINE_SHED = "deadline_shed"
    BROWNOUT_SHIFT = "brownout_shift"
    SCALE_DECISION = "scale_decision"


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """Common base of all trace events (never emitted directly)."""

    #: simulation time of the event, seconds
    ts: float
    #: client the event concerns ("" for device-global events)
    client_id: str
    #: kernel name ("" for events not tied to one kernel)
    kernel: str

    type: ClassVar[EventType]

    def to_dict(self) -> dict[str, Any]:
        """Flat JSON-serializable form, ``type`` first."""
        data: dict[str, Any] = {"type": self.type.value}
        for f in fields(self):
            data[f.name] = getattr(self, f.name)
        return data


@dataclass(frozen=True, slots=True)
class KernelSubmit(TraceEvent):
    """A launch entered the device's submission path.

    Emitted by :meth:`repro.gpu.device.GPUDevice.submit`.
    """

    type: ClassVar[EventType] = EventType.KERNEL_SUBMIT

    #: device-unique launch sequence number (correlates lifecycle events)
    launch_seq: int
    #: device launch kind: "original" or "ptb"
    kind: str
    #: device dispatch priority (0 = highest)
    priority: int
    #: grid blocks this launch covers (a slice covers a sub-range)
    blocks: int
    #: first logical block of the covered range
    block_offset: int
    #: persistent workers (PTB launches only, else 0)
    workers: int = 0


@dataclass(frozen=True, slots=True)
class KernelStart(TraceEvent):
    """The launch's first thread blocks became resident.

    Emitted by :class:`repro.gpu.device.GPUDevice` when a pending
    launch transitions to RUNNING.
    """

    type: ClassVar[EventType] = EventType.KERNEL_START

    launch_seq: int
    blocks: int


@dataclass(frozen=True, slots=True)
class KernelComplete(TraceEvent):
    """The launch retired (completed or preempted).

    Emitted by :class:`repro.gpu.device.GPUDevice` on finalization.
    ``started_at``/``duration`` are ``None`` for launches that never
    dispatched a block (e.g. preempted while queued).
    """

    type: ClassVar[EventType] = EventType.KERNEL_COMPLETE

    launch_seq: int
    #: final :class:`repro.gpu.device.LaunchStatus` value
    status: str
    blocks_done: int
    started_at: float | None
    duration: float | None


@dataclass(frozen=True, slots=True)
class SliceDispatch(TraceEvent):
    """Tally dispatched one slice of a sliced best-effort kernel.

    Emitted by :class:`repro.core.scheduler.Tally`.
    """

    type: ClassVar[EventType] = EventType.SLICE_DISPATCH

    launch_seq: int
    #: 0-based index of this slice within the kernel's execution
    slice_index: int
    blocks: int
    block_offset: int


@dataclass(frozen=True, slots=True)
class PtbDispatch(TraceEvent):
    """Tally dispatched a persistent-thread-block launch segment.

    Emitted by :class:`repro.core.scheduler.Tally`; ``segment`` counts
    launch segments of one kernel (1 + number of resumes).
    """

    type: ClassVar[EventType] = EventType.PTB_DISPATCH

    launch_seq: int
    workers: int
    tasks_remaining: int
    segment: int


@dataclass(frozen=True, slots=True)
class PreemptRequest(TraceEvent):
    """Someone asked an in-flight launch to release the device.

    ``mechanism`` is how the release happens: ``"ptb-flag"`` (PTB
    workers exit after the iteration in flight), ``"drain"`` (no new
    blocks start, resident blocks finish), ``"kill"`` (REEF-style
    reset, in-flight work discarded) — all emitted by the device — or
    ``"slice-boundary"`` (Tally holds back the next slice; emitted by
    the scheduler, never acknowledged by the device because the
    in-flight slice completes normally).
    """

    type: ClassVar[EventType] = EventType.PREEMPT_REQUEST

    launch_seq: int
    mechanism: str


@dataclass(frozen=True, slots=True)
class PreemptAck(TraceEvent):
    """A preempted launch released the device.

    Emitted by :class:`repro.gpu.device.GPUDevice` alongside the
    PREEMPTED :class:`KernelComplete`.  ``blocks_lost`` counts blocks
    whose partial work was discarded (kill-based preemption only).
    """

    type: ClassVar[EventType] = EventType.PREEMPT_ACK

    launch_seq: int
    blocks_done: int
    blocks_lost: int


@dataclass(frozen=True, slots=True)
class Resume(TraceEvent):
    """A preempted best-effort execution is continuing.

    Emitted by :class:`repro.core.scheduler.Tally` when the
    high-priority client goes idle; ``next_block`` is the slice offset
    and ``tasks_remaining`` the PTB task counter the execution resumes
    from.
    """

    type: ClassVar[EventType] = EventType.RESUME

    next_block: int
    tasks_remaining: int
    #: the execution's SchedConfig, e.g. "ptb(432)" or "sliced(64)"
    transform: str


@dataclass(frozen=True, slots=True)
class SchedDecision(TraceEvent):
    """A scheduling policy committed to a decision.

    Tally emits one per best-effort kernel with the chosen transform
    (``SchedConfig.describe()``); baselines emit their own decision
    points (Time-Slicing context switches as ``"context-switch"``,
    REEF resets as ``"reset"``).
    """

    type: ClassVar[EventType] = EventType.SCHED_DECISION

    #: chosen transform / action, e.g. "sliced(64)", "context-switch"
    transform: str
    #: human-readable why, e.g. "profiling unmeasured candidate"
    reason: str
    #: True when the choice exists to measure a candidate, not exploit it
    profiling: bool = False


@dataclass(frozen=True, slots=True)
class QueueDepth(TraceEvent):
    """Sample of an inference service's request backlog.

    Emitted by :class:`repro.workloads.inference.InferenceJob` on every
    arrival and completion; ``depth`` includes the request in service.
    """

    type: ClassVar[EventType] = EventType.QUEUE_DEPTH

    depth: int


@dataclass(frozen=True, slots=True)
class ChannelFault(TraceEvent):
    """An injected fault hit one channel message.

    Emitted by :class:`repro.virt.channel.Channel` when the fault
    injector perturbs a message; ``ts`` is the channel's accumulated
    transport time (channels have no simulation clock of their own).
    """

    type: ClassVar[EventType] = EventType.CHANNEL_FAULT

    #: which fault: "drop", "duplicate", "corrupt", or "delay"
    fault: str
    #: which leg of the round trip: "request" or "response"
    direction: str
    #: envelope id of the affected call
    request_id: int
    #: 1-based attempt number of the affected send
    attempt: int


@dataclass(frozen=True, slots=True)
class ClientCrash(TraceEvent):
    """A client process died mid-run.

    Emitted by the harness (:mod:`repro.faults.scenarios`) at the
    simulated instant an armed crash takes effect, before the policy
    and server garbage-collect the client's state.
    """

    type: ClassVar[EventType] = EventType.CLIENT_CRASH

    #: why, e.g. "injected" or "channel"
    reason: str


@dataclass(frozen=True, slots=True)
class ClientGC(TraceEvent):
    """A dead client's state was garbage-collected.

    Emitted once per cleanup site: the server
    (:meth:`repro.core.server.TallyServer.disconnect`, ``scope
    "server"``) reports freed memory and dropped modules; a scheduling
    policy (``scope "scheduler"``) reports cancelled in-flight
    launches.
    """

    type: ClassVar[EventType] = EventType.CLIENT_GC

    #: which layer cleaned up: "server" or "scheduler"
    scope: str
    #: device bytes released (server scope; 0 otherwise)
    freed_bytes: int = 0
    #: live buffers released (server scope; 0 otherwise)
    buffers_freed: int = 0
    #: in-flight launches killed (scheduler scope; 0 otherwise)
    launches_cancelled: int = 0


@dataclass(frozen=True, slots=True)
class PreemptLost(TraceEvent):
    """A cooperative preemption request was lost in delivery.

    Emitted by :class:`repro.gpu.device.GPUDevice` when the injector
    eats a PTB preempt-flag write: the workers never see the flag, so
    no :class:`PreemptAck` will follow the :class:`PreemptRequest`.
    """

    type: ClassVar[EventType] = EventType.PREEMPT_LOST

    launch_seq: int
    mechanism: str


@dataclass(frozen=True, slots=True)
class WatchdogReset(TraceEvent):
    """The preemption watchdog escalated to a forced reset.

    Emitted by :class:`repro.core.scheduler.Tally` when a preemption
    ack misses ``preempt_deadline``: the launch is killed REEF-style
    and the best-effort execution resumes later from its last durable
    cursor.  ``waited`` is how long past the request the watchdog held
    out.
    """

    type: ClassVar[EventType] = EventType.WATCHDOG_RESET

    launch_seq: int
    #: configured ack deadline, seconds
    deadline: float
    #: time between preempt request and the reset, seconds
    waited: float


@dataclass(frozen=True, slots=True)
class TransformDegrade(TraceEvent):
    """A transformation failed and the scheduler fell down the ladder.

    Emitted by :class:`repro.core.scheduler.Tally` when the chosen
    transform cannot be applied to this kernel and the next rung is
    used instead (PTB -> sliced -> original; see
    ``docs/fault_tolerance.md``).
    """

    type: ClassVar[EventType] = EventType.TRANSFORM_DEGRADE

    #: transform that failed, e.g. "ptb(432)"
    from_transform: str
    #: transform actually used, e.g. "sliced(64)" or "original"
    to_transform: str
    reason: str


@dataclass(frozen=True, slots=True)
class TransformCache(TraceEvent):
    """The transform cache served (or compiled) a kernel variant.

    Emitted by :class:`repro.transform.TransformPipeline` once per
    lookup — ``action`` ``"hit"`` or ``"miss"`` — and once per
    LRU-evicted entry (``action`` ``"evict"``).  The functional path
    has no simulation clock, so ``ts`` is always 0.
    """

    type: ClassVar[EventType] = EventType.TRANSFORM_CACHE

    #: "hit", "miss", or "evict"
    action: str
    #: which variant: "sliced", "ptb", or "unified_sync"
    transform: str
    #: content digest of the source kernel (:func:`repro.ptx.ir_hash`)
    ir_hash: str = ""


@dataclass(frozen=True, slots=True)
class SlotFault(TraceEvent):
    """A device slot fault reset a resident launch.

    Emitted by the harness (:mod:`repro.faults.scenarios`) when an
    armed slot fault kills a launch; the owning policy sees an ordinary
    PREEMPTED completion and re-runs the lost work.
    """

    type: ClassVar[EventType] = EventType.SLOT_FAULT

    launch_seq: int
    #: blocks whose partial work the reset discarded
    blocks_lost: int


@dataclass(frozen=True, slots=True)
class DeviceFault(TraceEvent):
    """A cluster-level device fault fired (or cleared).

    Emitted by :class:`repro.cluster.controlplane.ClusterController`
    when a device-level fault from the injector's schedule takes
    effect.  ``fault`` is ``"crash"`` (the device is permanently
    lost), ``"degrade"`` (block durations scale by ``factor`` until
    the matching ``"recover"``), or ``"recover"``.  ``flapping`` marks
    degrade windows that belong to a flap burst.
    """

    type: ClassVar[EventType] = EventType.DEVICE_FAULT

    #: cluster device index the fault hit
    device: int
    #: "crash", "degrade", or "recover"
    fault: str
    #: slowdown multiplier of a degrade window (1.0 otherwise)
    factor: float = 1.0
    #: True when this degrade window is part of a flap burst
    flapping: bool = False


@dataclass(frozen=True, slots=True)
class MigrationStart(TraceEvent):
    """A tenant's checkpoint left its source device.

    Emitted by :class:`repro.cluster.controlplane.ClusterController`
    when a service is checkpointed for live migration.  ``reason`` is
    ``"failover"`` (source crashed), ``"flapping"`` (proactive move off
    an unhealthy device), or ``"repack"`` (fragmentation healing /
    scale-down drain).  ``pending`` counts requests carried in the
    checkpoint (queued plus the replayed in-flight request).
    """

    type: ClassVar[EventType] = EventType.MIGRATION_START

    source: int
    target: int
    reason: str
    pending: int = 0


@dataclass(frozen=True, slots=True)
class MigrationComplete(TraceEvent):
    """A migrated tenant resumed on its target device.

    Emitted by :class:`repro.cluster.controlplane.ClusterController`
    when the restored service starts serving again; ``downtime`` is the
    wall of simulated time between checkpoint and restore (0 for live
    migrations whose source kept serving until the switch).
    """

    type: ClassVar[EventType] = EventType.MIGRATION_COMPLETE

    target: int
    downtime: float


@dataclass(frozen=True, slots=True)
class AdmissionDecision(TraceEvent):
    """The admission controller ruled on an arriving job.

    Emitted by :class:`repro.cluster.controlplane.ClusterController`
    per arrival: ``action`` is ``"admitted"`` (placed on ``device``),
    ``"queued"`` (no placement fits; waiting for capacity), or
    ``"shed"`` (queue full — load shedding).
    """

    type: ClassVar[EventType] = EventType.ADMISSION_DECISION

    action: str
    #: device admitted to (-1 when queued or shed)
    device: int = -1
    #: admission-queue depth after the decision
    queue_depth: int = 0


@dataclass(frozen=True, slots=True)
class DeviceDrain(TraceEvent):
    """A device was gracefully drained and decommissioned.

    Emitted by :class:`repro.cluster.controlplane.ClusterController`
    when the re-pack policy empties a device (its jobs migrated
    elsewhere) and removes it from the fleet.
    """

    type: ClassVar[EventType] = EventType.DEVICE_DRAIN

    device: int
    #: services migrated off the device during the drain
    migrated: int


@dataclass(frozen=True, slots=True)
class RetryBudgetExhausted(TraceEvent):
    """A call needed a retry but the client's retry budget was empty.

    Emitted by :class:`repro.virt.channel.Channel` when the token-
    bucket retry budget refuses a retry and the call fails fast with
    :class:`repro.errors.RetryBudgetExhausted`; ``ts`` is the channel's
    resilience clock (engine time when wired, accumulated transport
    time otherwise).
    """

    type: ClassVar[EventType] = EventType.RETRY_BUDGET_EXHAUSTED

    #: envelope id of the call that was refused its retry
    request_id: int
    #: retries this call had already spent before the refusal
    attempt: int
    #: tokens left in the bucket (fractional; < 1 means refusal)
    tokens: float


@dataclass(frozen=True, slots=True)
class BreakerTransition(TraceEvent):
    """A circuit breaker changed state.

    Emitted by :class:`repro.virt.resilience.CircuitBreaker` on every
    state change: ``closed -> open`` (failure threshold reached),
    ``open -> half_open`` (seeded probe timer expired), ``half_open ->
    closed`` (probe succeeded), or ``half_open -> open`` (probe
    failed).
    """

    type: ClassVar[EventType] = EventType.BREAKER_TRANSITION

    #: breaker's target label, e.g. the server or shard name
    target: str
    from_state: str
    to_state: str
    #: why, e.g. "failure threshold", "probe timer", "probe ok"
    reason: str
    #: consecutive failures observed at the transition
    failures: int = 0


@dataclass(frozen=True, slots=True)
class DeadlineShed(TraceEvent):
    """Work past its propagated deadline was shed instead of executed.

    Emitted by :class:`repro.core.server.TallyServer` (``scope
    "server"``) when an envelope arrives after its deadline, by
    :class:`repro.virt.channel.Channel` (``scope "client"``) when a
    call gives up before sending, and by
    :class:`repro.workloads.llm.LLMServingJob` (``scope "llm"``) when a
    queued request's TTFT deadline is already unmeetable at admission.
    """

    type: ClassVar[EventType] = EventType.DEADLINE_SHED

    #: which layer shed the work: "server", "client", or "llm"
    scope: str
    #: the absolute deadline that was missed, seconds
    deadline: float
    #: how far past the deadline the shed happened, seconds
    lateness: float


@dataclass(frozen=True, slots=True)
class BrownoutShift(TraceEvent):
    """The LLM serving brownout ladder changed level.

    Emitted by :class:`repro.workloads.llm.LLMServingJob` when KV-cache
    or queue-depth pressure moves the ladder (0 = full service, higher
    = more degraded; see ``docs/llm_serving.md``).
    """

    type: ClassVar[EventType] = EventType.BROWNOUT_SHIFT

    #: new brownout level (0 = normal service)
    level: int
    #: level before the shift
    previous: int
    #: triggering signal, e.g. "kv-pressure", "queue-depth", "relief"
    reason: str
    #: KV pool utilization in [0, 1] at the shift
    kv_utilization: float
    #: waiting (unadmitted) requests at the shift
    queue_depth: int


@dataclass(frozen=True, slots=True)
class ScaleDecision(TraceEvent):
    """The autoscaler added or removed serving capacity.

    Emitted by :class:`repro.cluster.controlplane.ClusterController`
    when the load-signal autoscaler commits a decision: ``action`` is
    ``"scale_up"`` (a standby device begins its warm-up) or
    ``"scale_down"`` (an active device starts a graceful drain).
    """

    type: ClassVar[EventType] = EventType.SCALE_DECISION

    #: "scale_up" or "scale_down"
    action: str
    #: device index the decision concerns
    device: int
    #: active (accepting) devices after the decision takes effect
    active: int
    #: triggering signal, e.g. "queue-depth", "p99-over-slo", "idle"
    reason: str
    #: admission-queue depth at the decision
    queue_depth: int = 0


#: wire name -> event class (for deserialization)
EVENT_CLASSES: dict[str, type[TraceEvent]] = {
    cls.type.value: cls
    for cls in (
        KernelSubmit, KernelStart, KernelComplete, SliceDispatch,
        PtbDispatch, PreemptRequest, PreemptAck, Resume, SchedDecision,
        QueueDepth, ChannelFault, ClientCrash, ClientGC, PreemptLost,
        WatchdogReset, TransformDegrade, TransformCache, SlotFault,
        DeviceFault, MigrationStart, MigrationComplete,
        AdmissionDecision, DeviceDrain, RetryBudgetExhausted,
        BreakerTransition, DeadlineShed, BrownoutShift, ScaleDecision,
    )
}


def event_from_dict(data: dict[str, Any]) -> TraceEvent:
    """Rebuild an event from its :meth:`TraceEvent.to_dict` form."""
    payload = dict(data)
    try:
        type_name = payload.pop("type")
    except KeyError:
        raise ReproError(f"trace record has no 'type' field: {data!r}") from None
    cls = EVENT_CLASSES.get(type_name)
    if cls is None:
        raise ReproError(f"unknown trace event type {type_name!r}")
    try:
        return cls(**payload)
    except TypeError as exc:
        raise ReproError(
            f"malformed {type_name!r} trace record: {exc}"
        ) from None
