"""Derived counters and gauges over a collected trace.

:func:`summarize` turns raw events into the quantities the harness and
reports care about: per-client launch/completion counts, preemption
count and *measured* preemption latency (request -> ack, matched by
launch sequence number), slice/PTB dispatch counts, launch-overhead
attributable to slicing, transform usage, and peak queue depths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Union

from ..metrics.latency import LatencySummary
from .events import (
    BreakerTransition,
    BrownoutShift,
    ChannelFault,
    ClientCrash,
    ClientGC,
    DeadlineShed,
    KernelComplete,
    KernelSubmit,
    PreemptAck,
    PreemptLost,
    PreemptRequest,
    PtbDispatch,
    QueueDepth,
    Resume,
    RetryBudgetExhausted,
    ScaleDecision,
    SchedDecision,
    SliceDispatch,
    SlotFault,
    TraceEvent,
    TransformCache,
    TransformDegrade,
    WatchdogReset,
)
from .tracer import Tracer, load_jsonl

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..gpu.specs import GPUSpec

__all__ = ["ClientCounters", "TraceSummary", "summarize"]


@dataclass
class ClientCounters:
    """Per-client activity derived from the trace."""

    submitted: int = 0
    completed: int = 0
    preempted: int = 0
    max_queue_depth: int = 0


@dataclass
class TraceSummary:
    """Counters and gauges derived from one trace."""

    total_events: int = 0
    dropped: int = 0
    by_type: dict[str, int] = field(default_factory=dict)
    clients: dict[str, ClientCounters] = field(default_factory=dict)
    #: acknowledged preemptions (request -> PREEMPTED retirement)
    preemptions: int = 0
    #: unacknowledged requests (slice-boundary holds; in-flight at end)
    preempt_requests: int = 0
    #: request -> ack latency over matched pairs (None if none matched)
    preemption_latency: LatencySummary | None = None
    slice_dispatches: int = 0
    ptb_dispatches: int = 0
    resumes: int = 0
    #: blocks whose partial work was discarded by kill-based preemption
    blocks_lost: int = 0
    #: SchedConfig/action -> decision count
    transform_usage: dict[str, int] = field(default_factory=dict)
    #: extra kernel-launch overhead spent on slice re-launches, seconds
    #: (None when no GPUSpec was provided to :func:`summarize`)
    slice_launch_overhead: float | None = None
    #: injected channel faults (drops, duplicates, corruptions, delays)
    channel_faults: int = 0
    #: client crashes observed by the harness
    client_crashes: int = 0
    #: garbage-collection actions (server and scheduler scopes)
    client_gcs: int = 0
    #: cooperative preemptions whose flag delivery was lost
    preempts_lost: int = 0
    #: watchdog escalations to forced reset
    watchdog_resets: int = 0
    #: degradation-ladder steps taken after failed transformations
    transform_degrades: int = 0
    #: device slot faults that reset a resident launch
    slot_faults: int = 0
    #: transform-cache lookups served from cache
    transform_cache_hits: int = 0
    #: transform-cache lookups that compiled a fresh variant
    transform_cache_misses: int = 0
    #: transform-cache entries LRU-evicted
    transform_cache_evictions: int = 0
    #: retries refused by an empty token-bucket retry budget
    retry_budget_exhaustions: int = 0
    #: circuit-breaker state changes (open/half-open/close)
    breaker_transitions: int = 0
    #: work shed past its propagated deadline, by scope
    deadline_sheds: dict[str, int] = field(default_factory=dict)
    #: brownout-ladder level changes
    brownout_shifts: int = 0
    #: autoscaler decisions, by action ("scale_up"/"scale_down")
    scale_decisions: dict[str, int] = field(default_factory=dict)

    @property
    def transform_cache_hit_rate(self) -> float:
        """Fraction of transform-cache lookups served from cache."""
        total = self.transform_cache_hits + self.transform_cache_misses
        return self.transform_cache_hits / total if total else 0.0

    def format(self) -> str:
        """Plain-text rendering in the harness's table style."""
        from ..harness.reporting import format_seconds, format_table

        rows: list[tuple[str, str]] = [
            ("events", str(self.total_events)),
            ("dropped from ring buffer", str(self.dropped)),
            ("preemptions (acked)", str(self.preemptions)),
            ("preempt requests (unacked)", str(self.preempt_requests)),
            ("slice dispatches", str(self.slice_dispatches)),
            ("ptb dispatches", str(self.ptb_dispatches)),
            ("resumes", str(self.resumes)),
            ("blocks lost to resets", str(self.blocks_lost)),
        ]
        if self.preemption_latency is not None:
            rows.append(("preempt latency mean/max",
                         f"{format_seconds(self.preemption_latency.mean)} / "
                         f"{format_seconds(self.preemption_latency.max)}"))
        if self.slice_launch_overhead is not None:
            rows.append(("slice launch overhead",
                         format_seconds(self.slice_launch_overhead)))
        fault_rows = [
            ("channel faults", self.channel_faults),
            ("client crashes", self.client_crashes),
            ("client GCs", self.client_gcs),
            ("preempts lost", self.preempts_lost),
            ("watchdog resets", self.watchdog_resets),
            ("transform degrades", self.transform_degrades),
            ("slot faults", self.slot_faults),
            ("retry budget exhaustions", self.retry_budget_exhaustions),
            ("breaker transitions", self.breaker_transitions),
            ("deadline sheds", sum(self.deadline_sheds.values())),
            ("brownout shifts", self.brownout_shifts),
            ("scale decisions", sum(self.scale_decisions.values())),
        ]
        rows.extend((name, str(count)) for name, count in fault_rows if count)
        if self.transform_cache_hits or self.transform_cache_misses:
            rows.append((
                "transform cache",
                f"{self.transform_cache_hits} hits / "
                f"{self.transform_cache_misses} misses "
                f"({self.transform_cache_hit_rate:.0%} hit rate"
                + (f", {self.transform_cache_evictions} evicted)"
                   if self.transform_cache_evictions else ")"),
            ))
        for transform, count in sorted(self.transform_usage.items()):
            rows.append((f"decision {transform}", str(count)))
        for client_id, c in sorted(self.clients.items()):
            detail = f"{c.completed}/{c.submitted} done"
            if c.preempted:
                detail += f", {c.preempted} preempted"
            if c.max_queue_depth:
                detail += f", queue<= {c.max_queue_depth}"
            rows.append((f"client {client_id}", detail))
        return format_table(("metric", "value"), rows, title="Trace summary")


TraceSource = Union[Tracer, Iterable[TraceEvent], str]


def summarize(source: TraceSource,
              spec: "GPUSpec | None" = None) -> TraceSummary:
    """Derive counters from ``source``.

    ``source`` may be a :class:`Tracer` (its buffered events are used
    and ring-buffer drops reported), an iterable of events, or the path
    of a :class:`~repro.trace.tracer.JSONLSink` file.  Passing the
    run's :class:`~repro.gpu.specs.GPUSpec` additionally prices the
    slicing overhead in seconds.
    """
    summary = TraceSummary()
    if isinstance(source, Tracer):
        events: Iterable[TraceEvent] = source.events
        summary.dropped = source.dropped
    elif isinstance(source, str):
        events = load_jsonl(source)
    else:
        events = source

    request_ts: dict[int, float] = {}  # launch_seq -> first request time
    latencies: list[float] = []

    for event in events:
        summary.total_events += 1
        name = event.type.value
        summary.by_type[name] = summary.by_type.get(name, 0) + 1
        client = summary.clients.get(event.client_id)
        if client is None:
            client = summary.clients[event.client_id] = ClientCounters()

        if isinstance(event, KernelSubmit):
            client.submitted += 1
        elif isinstance(event, KernelComplete):
            client.completed += 1
        elif isinstance(event, PreemptRequest):
            request_ts.setdefault(event.launch_seq, event.ts)
        elif isinstance(event, PreemptAck):
            summary.preemptions += 1
            client.preempted += 1
            summary.blocks_lost += event.blocks_lost
            requested = request_ts.pop(event.launch_seq, None)
            if requested is not None:
                latencies.append(event.ts - requested)
        elif isinstance(event, SliceDispatch):
            summary.slice_dispatches += 1
        elif isinstance(event, PtbDispatch):
            summary.ptb_dispatches += 1
        elif isinstance(event, Resume):
            summary.resumes += 1
        elif isinstance(event, SchedDecision):
            summary.transform_usage[event.transform] = (
                summary.transform_usage.get(event.transform, 0) + 1
            )
        elif isinstance(event, QueueDepth):
            if event.depth > client.max_queue_depth:
                client.max_queue_depth = event.depth
        elif isinstance(event, ChannelFault):
            summary.channel_faults += 1
        elif isinstance(event, ClientCrash):
            summary.client_crashes += 1
        elif isinstance(event, ClientGC):
            summary.client_gcs += 1
        elif isinstance(event, PreemptLost):
            summary.preempts_lost += 1
            # the flag never reached the workers; no ack can match
            request_ts.pop(event.launch_seq, None)
        elif isinstance(event, WatchdogReset):
            summary.watchdog_resets += 1
        elif isinstance(event, TransformDegrade):
            summary.transform_degrades += 1
        elif isinstance(event, TransformCache):
            if event.action == "hit":
                summary.transform_cache_hits += 1
            elif event.action == "miss":
                summary.transform_cache_misses += 1
            elif event.action == "evict":
                summary.transform_cache_evictions += 1
        elif isinstance(event, SlotFault):
            summary.slot_faults += 1
        elif isinstance(event, RetryBudgetExhausted):
            summary.retry_budget_exhaustions += 1
        elif isinstance(event, BreakerTransition):
            summary.breaker_transitions += 1
        elif isinstance(event, DeadlineShed):
            summary.deadline_sheds[event.scope] = (
                summary.deadline_sheds.get(event.scope, 0) + 1)
        elif isinstance(event, BrownoutShift):
            summary.brownout_shifts += 1
        elif isinstance(event, ScaleDecision):
            summary.scale_decisions[event.action] = (
                summary.scale_decisions.get(event.action, 0) + 1)

    summary.preempt_requests = len(request_ts)
    if latencies:
        summary.preemption_latency = LatencySummary.of(latencies)
    if spec is not None:
        # Every slice after a kernel's first is an extra launch.
        kernels_sliced = sum(
            1 for t in summary.transform_usage if t.startswith("sliced"))
        extra = max(0, summary.slice_dispatches - kernels_sliced)
        summary.slice_launch_overhead = extra * spec.kernel_launch_overhead
    return summary
