"""Ring-buffer event collector with pluggable sinks.

A :class:`Tracer` is handed to :class:`~repro.gpu.device.GPUDevice`
(and from there reaches every policy and driver).  Emission sites are
guarded by ``tracer.enabled`` so that the disabled path — the module
singleton :data:`NULL_TRACER` — costs one attribute load and a branch
per candidate event and allocates nothing.

Events land in a bounded ring buffer (oldest dropped first) and are
simultaneously forwarded to any attached sinks, so a long run can
stream to disk while tests read the in-memory tail.
"""

from __future__ import annotations

import json
from collections import deque
from typing import TYPE_CHECKING, Iterable

from ..errors import ReproError
from .events import TraceEvent, event_from_dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .summary import TraceSummary

__all__ = [
    "TraceSink",
    "MemorySink",
    "JSONLSink",
    "Tracer",
    "NULL_TRACER",
    "load_jsonl",
]


class TraceSink:
    """Receives every emitted event; subclass to add a destination."""

    def on_event(self, event: TraceEvent) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (default: nothing)."""


class MemorySink(TraceSink):
    """Keeps every event in a list (unbounded; for tests and analysis)."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def on_event(self, event: TraceEvent) -> None:
        self.events.append(event)


class JSONLSink(TraceSink):
    """Streams events to ``path`` as newline-delimited JSON objects."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._file = open(path, "w", encoding="utf-8")
        self.written = 0

    def on_event(self, event: TraceEvent) -> None:
        self._file.write(json.dumps(event.to_dict()))
        self._file.write("\n")
        self.written += 1

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()


def load_jsonl(path: str) -> list[TraceEvent]:
    """Read a :class:`JSONLSink` file back into typed events."""
    events: list[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ReproError(
                    f"{path}:{line_no}: not valid JSON: {exc}"
                ) from None
            events.append(event_from_dict(data))
    return events


class Tracer:
    """Collects trace events in a ring buffer and fans out to sinks."""

    #: class attribute so the guard ``tracer.enabled`` is a plain load
    enabled = True

    def __init__(self, capacity: int | None = 65536,
                 sinks: Iterable[TraceSink] = ()) -> None:
        """``capacity=None`` keeps every event (full exports)."""
        if capacity is not None and capacity < 1:
            raise ReproError(f"tracer capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._buffer: deque[TraceEvent] = deque(maxlen=capacity)
        self._sinks: list[TraceSink] = list(sinks)
        self.emitted = 0

    # ------------------------------------------------------------------
    def emit(self, event: TraceEvent) -> None:
        """Record one event (ring buffer + every sink)."""
        self.emitted += 1
        self._buffer.append(event)
        for sink in self._sinks:
            sink.on_event(event)

    def add_sink(self, sink: TraceSink) -> TraceSink:
        self._sinks.append(sink)
        return sink

    @property
    def events(self) -> list[TraceEvent]:
        """The buffered (most recent) events, oldest first."""
        return list(self._buffer)

    @property
    def dropped(self) -> int:
        """Events evicted from the ring buffer (sinks still saw them)."""
        return self.emitted - len(self._buffer)

    def clear(self) -> None:
        """Empty the ring buffer and reset counters (sinks untouched)."""
        self._buffer.clear()
        self.emitted = 0

    # ------------------------------------------------------------------
    def export_chrome(self, path: str) -> None:
        """Write the buffered events as Chrome/Perfetto trace JSON."""
        from .chrome import write_chrome_trace

        write_chrome_trace(self.events, path)

    def summary(self) -> "TraceSummary":
        """Derive counters from the buffered events."""
        from .summary import summarize

        return summarize(self)

    # ------------------------------------------------------------------
    def close(self) -> None:
        for sink in self._sinks:
            sink.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class _NullTracer(Tracer):
    """The disabled tracer: emission sites skip it via ``enabled``."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=1)

    def emit(self, event: TraceEvent) -> None:
        """No-op (call sites should not even get here)."""


#: Shared disabled tracer; components default to it so the hot path is
#: a single ``if self.tracer.enabled:`` branch.
NULL_TRACER = _NullTracer()
