"""Synthetic inference traffic (MAF2 substitute)."""

from .maf import (
    TrafficTrace,
    bursty_trace,
    maf_trace,
    poisson_trace,
    profile_trace,
    rate_for_load,
)

__all__ = [
    "TrafficTrace",
    "bursty_trace",
    "maf_trace",
    "poisson_trace",
    "profile_trace",
    "rate_for_load",
]
