"""Synthetic inference traffic in the style of the MAF2 trace.

The paper drives inference services with the Microsoft Azure Function
Trace 2021 (MAF2), rescaled so the service is busy a target fraction of
time ("load").  MAF2's salient property is burstiness: demand spikes up
to ~50x the average.  This module substitutes a Markov-modulated
Poisson process (a baseline-rate state and a burst state) with the same
load knob and burst ratio, plus helpers for constant-rate and
piecewise-profile traffic (the condensed time-series of Fig. 5b).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError

__all__ = ["TrafficTrace", "bursty_trace", "maf_trace", "poisson_trace",
           "profile_trace", "rate_for_load"]


@dataclass(frozen=True)
class TrafficTrace:
    """Request arrival times (seconds, sorted, within [0, horizon))."""

    arrivals: np.ndarray
    horizon: float
    description: str = ""

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise WorkloadError("horizon must be > 0")
        arr = self.arrivals
        if arr.ndim != 1:
            raise WorkloadError("arrivals must be 1-D")
        if len(arr) and (np.any(np.diff(arr) < 0) or arr[0] < 0
                         or arr[-1] >= self.horizon):
            raise WorkloadError("arrivals must be sorted within [0, horizon)")

    @property
    def count(self) -> int:
        return len(self.arrivals)

    @property
    def mean_rate(self) -> float:
        return self.count / self.horizon

    def offered_load(self, service_time: float) -> float:
        """Fraction of time a serial server would be busy (can exceed 1)."""
        return self.mean_rate * service_time


def rate_for_load(load: float, service_time: float) -> float:
    """Arrival rate that makes a serial service busy ``load`` of the time."""
    if not 0 < load <= 1:
        raise WorkloadError(f"load must be in (0, 1], got {load}")
    if service_time <= 0:
        raise WorkloadError("service_time must be > 0")
    return load / service_time


def poisson_trace(rate: float, horizon: float,
                  seed: int = 0) -> TrafficTrace:
    """Homogeneous Poisson arrivals."""
    if rate <= 0:
        raise WorkloadError("rate must be > 0")
    rng = np.random.default_rng(seed)
    # Draw ~rate*horizon + slack exponential gaps, then trim.
    n = max(16, int(rate * horizon * 1.5) + 8)
    gaps = rng.exponential(1.0 / rate, size=n)
    times = np.cumsum(gaps)
    while times[-1] < horizon:
        more = rng.exponential(1.0 / rate, size=n)
        times = np.concatenate([times, times[-1] + np.cumsum(more)])
    return TrafficTrace(times[times < horizon], horizon,
                        f"poisson(rate={rate:.3g}/s)")


def bursty_trace(load: float, service_time: float, horizon: float, *,
                 burst_ratio: float = 20.0,
                 mean_normal_period: float = 2.0,
                 mean_burst_period: float = 0.25,
                 seed: int = 0) -> TrafficTrace:
    """MAF2-like bursty arrivals at a target average load.

    A two-state Markov-modulated Poisson process: a normal state and a
    burst state whose rate is ``burst_ratio`` times higher.  Rates are
    chosen so the *time-average* arrival rate equals
    ``rate_for_load(load, service_time)``.
    """
    if burst_ratio < 1:
        raise WorkloadError("burst_ratio must be >= 1")
    target_rate = rate_for_load(load, service_time)
    burst_time_fraction = mean_burst_period / (mean_normal_period
                                               + mean_burst_period)
    # avg = r_n * (1 - f) + r_n * ratio * f  ==> solve for r_n.
    normal_rate = target_rate / (1 - burst_time_fraction
                                 + burst_ratio * burst_time_fraction)
    burst_rate = normal_rate * burst_ratio
    # Bursts must not saturate the service outright: MAF2 rescaled to a
    # target load keeps the service responsive, so cap the burst-state
    # rate below the serial service capacity and rebalance the normal
    # state to preserve the average.
    capacity = 0.7 / service_time
    if burst_rate > capacity:
        burst_rate = capacity
        remaining = target_rate - burst_rate * burst_time_fraction
        if remaining <= 0:
            return poisson_trace(target_rate, horizon, seed=seed)
        normal_rate = remaining / (1 - burst_time_fraction)

    rng = np.random.default_rng(seed)
    arrivals: list[float] = []
    t = 0.0
    in_burst = False
    while t < horizon:
        period = rng.exponential(mean_burst_period if in_burst
                                 else mean_normal_period)
        end = min(t + period, horizon)
        rate = burst_rate if in_burst else normal_rate
        tt = t + rng.exponential(1.0 / rate)
        while tt < end:
            arrivals.append(tt)
            tt += rng.exponential(1.0 / rate)
        t = end
        in_burst = not in_burst
    return TrafficTrace(
        np.array(arrivals), horizon,
        f"bursty(load={load:.0%}, ratio={burst_ratio:g}x)",
    )


def maf_trace(load: float, service_time: float, horizon: float, *,
              base_fraction: float = 0.85,
              spike_probability: float = 0.02,
              spike_ratio: float = 8.0,
              jitter: float = 0.15,
              seed: int = 0) -> TrafficTrace:
    """MAF2-replay-style arrivals: per-second counts, evenly spaced.

    The MAF2 dataset records invocation *counts per interval*; replaying
    it spreads each interval's requests evenly, giving near-D/D/1
    behaviour — a service below saturation sees almost no queueing, so
    the ideal p99 tracks the model latency (as in the paper's figures).
    Spike seconds model MAF2's demand bursts; their rate is capped just
    below the serial service capacity so a spike stresses, but does not
    bury, the service.
    """
    if not 0 <= spike_probability <= 1:
        raise WorkloadError("spike_probability must be in [0, 1]")
    if spike_ratio < 1:
        raise WorkloadError("spike_ratio must be >= 1")
    if not 0 < base_fraction <= 1:
        raise WorkloadError("base_fraction must be in (0, 1]")
    base_rate = rate_for_load(load, service_time)
    capacity = 0.9 / service_time
    spike_rate = min(base_rate * spike_ratio, capacity)
    # The steady rate sits below the target; rare spike seconds carry
    # the remainder so the *average* stays exactly on target.
    normal_rate = base_rate * base_fraction
    if spike_probability <= 0 or spike_rate <= normal_rate:
        normal_rate = base_rate
        spike_probability = 0.0
    else:
        needed = (base_rate - normal_rate) / (spike_rate - normal_rate)
        if needed <= spike_probability:
            spike_probability = needed
        else:
            # Spikes alone cannot carry the deficit at the requested
            # frequency; allow slightly more spikes and raise the base.
            spike_probability = min(0.05, needed)
            normal_rate = max(
                0.0,
                (base_rate - spike_probability * spike_rate)
                / (1 - spike_probability),
            )

    rng = np.random.default_rng(seed)
    arrivals: list[float] = []
    second = 0
    while second < horizon:
        is_spike = rng.random() < spike_probability
        rate = spike_rate if is_spike else normal_rate
        noisy = rate * (1.0 + jitter * rng.standard_normal())
        count = max(0, min(int(round(noisy)), int(capacity)))
        if count:
            offsets = (np.arange(count) + 0.5) / count
            offsets = offsets + rng.uniform(-0.2, 0.2, size=count) / count
            for offset in np.sort(np.clip(offsets, 0.0, 0.999)):
                t = second + float(offset)
                if t < horizon:
                    arrivals.append(t)
        second += 1
    arrivals.sort()
    return TrafficTrace(np.array(arrivals), horizon,
                        f"maf(load={load:.0%}, spikes={spike_ratio:g}x)")


def profile_trace(segment_rates: list[float], segment_duration: float,
                  seed: int = 0) -> TrafficTrace:
    """Piecewise-constant-rate Poisson arrivals (Fig. 5b's condensed trace)."""
    if not segment_rates:
        raise WorkloadError("need at least one segment")
    if segment_duration <= 0:
        raise WorkloadError("segment_duration must be > 0")
    rng = np.random.default_rng(seed)
    arrivals: list[float] = []
    t = 0.0
    for rate in segment_rates:
        if rate < 0:
            raise WorkloadError("segment rates must be >= 0")
        end = t + segment_duration
        if rate > 0:
            tt = t + rng.exponential(1.0 / rate)
            while tt < end:
                arrivals.append(tt)
                tt += rng.exponential(1.0 / rate)
        t = end
    return TrafficTrace(np.array(arrivals), t,
                        f"profile({len(segment_rates)} segments)")
