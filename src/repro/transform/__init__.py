"""Tally's kernel transformations (paper §4.1).

Three passes over mini-PTX kernels:

* :func:`make_sliced` — slicing: partition a launch into sub-launches;
* :func:`make_unified_sync` — unified synchronization: funnel all syncs
  and returns through a single barrier (a prepositional safety pass);
* :func:`make_preemptible` — preemption: persistent-thread-block worker
  loop with a global task counter and preemption flag.
"""

from .base import RESERVED_PREFIX, TransformMeta, check_transformable
from .dce import DCEStats, eliminate_dead_code
from .memo import (
    TransformMemo,
    load_snapshot,
    transform_memo,
    warm_snapshot,
)
from .peephole import PeepholeStats, peephole_optimize
from .pipeline import TransformPipeline, TransformStats
from .ptb import PreemptibleKernel, PTBControl, make_preemptible
from .slicing import SlicedKernel, SliceLaunch, make_sliced, plan_slices
from .unified_sync import UnifiedSyncKernel, make_unified_sync

__all__ = [
    "RESERVED_PREFIX",
    "PTBControl",
    "PreemptibleKernel",
    "SliceLaunch",
    "SlicedKernel",
    "PeepholeStats",
    "TransformMemo",
    "TransformMeta",
    "TransformPipeline",
    "TransformStats",
    "UnifiedSyncKernel",
    "DCEStats",
    "check_transformable",
    "eliminate_dead_code",
    "load_snapshot",
    "make_preemptible",
    "make_sliced",
    "make_unified_sync",
    "peephole_optimize",
    "plan_slices",
    "transform_memo",
    "warm_snapshot",
]
