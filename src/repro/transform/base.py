"""Shared machinery for Tally's kernel transformation passes.

All passes rewrite :class:`~repro.ptx.ir.KernelIR` bodies.  They share
three needs covered here: reserved-name hygiene (transformed kernels add
parameters, registers, labels and shared buffers that must not collide
with user code), special-register substitution (``ctaid``/``nctaid``
reads become virtual registers), and grid linearization helpers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..errors import TransformError
from ..ptx.ir import (
    Axis,
    Instr,
    KernelIR,
    Operand,
    Special,
    SpecialKind,
)

__all__ = [
    "RESERVED_PREFIX",
    "check_transformable",
    "substitute_specials",
    "collect_labels",
    "remap_labels",
    "TransformMeta",
]

#: All names introduced by transformation passes start with this prefix.
RESERVED_PREFIX = "__tally"


@dataclass(frozen=True)
class TransformMeta:
    """Provenance of a transformed kernel."""

    original_name: str
    passes: tuple[str, ...]

    def with_pass(self, name: str) -> "TransformMeta":
        """Return a copy recording one more applied pass."""
        return TransformMeta(self.original_name, self.passes + (name,))


def check_transformable(kernel: KernelIR) -> None:
    """Reject kernels that already use the reserved name prefix."""
    offenders: list[str] = []
    offenders.extend(
        p.name for p in kernel.params if p.name.startswith(RESERVED_PREFIX)
    )
    offenders.extend(
        s.name for s in kernel.shared if s.name.startswith(RESERVED_PREFIX)
    )
    for instr in kernel.body:
        if instr.dst is not None and instr.dst.name.startswith(RESERVED_PREFIX):
            offenders.append(instr.dst.name)
        if instr.label is not None and instr.label.startswith(RESERVED_PREFIX):
            offenders.append(instr.label)
    if offenders:
        raise TransformError(
            f"kernel {kernel.name!r} uses reserved names: {sorted(set(offenders))}"
        )


def substitute_specials(
    instrs: Iterable[Instr],
    mapping: Mapping[tuple[SpecialKind, Axis], Operand],
) -> int:
    """Replace special-register reads according to ``mapping``, in place.

    Returns the number of operand substitutions performed.  This is the
    core mechanism of both slicing and preemption: the physical
    ``ctaid``/``nctaid`` of a transformed launch no longer matches the
    logical grid, so reads are redirected to reconstructed values.
    """
    count = 0
    for instr in instrs:
        if not instr.srcs:
            continue
        new_srcs: list[Operand] = []
        changed = False
        for src in instr.srcs:
            if isinstance(src, Special):
                key = (src.kind, src.axis)
                if key in mapping:
                    new_srcs.append(mapping[key])
                    changed = True
                    count += 1
                    continue
            new_srcs.append(src)
        if changed:
            instr.srcs = tuple(new_srcs)
    return count


def collect_labels(instrs: Iterable[Instr]) -> set[str]:
    """All label names defined or referenced by ``instrs``."""
    labels: set[str] = set()
    for instr in instrs:
        if instr.label is not None:
            labels.add(instr.label)
        if instr.target is not None:
            labels.add(instr.target)
        labels.update(instr.targets)
    return labels


def remap_labels(instrs: Iterable[Instr], mapping: Mapping[str, str]) -> None:
    """Rename labels (definitions and references) in place."""
    for instr in instrs:
        if instr.label is not None and instr.label in mapping:
            instr.label = mapping[instr.label]
        if instr.target is not None and instr.target in mapping:
            instr.target = mapping[instr.target]
        if instr.targets:
            instr.targets = tuple(mapping.get(t, t) for t in instr.targets)
