"""Dead-code elimination over the mini-PTX IR.

Removes instructions whose only effect is writing a register that no
later-executed instruction can read.  Liveness is computed by a
backward fixed-point over the control-flow graph (basic blocks formed
at labels and after branches), which handles the loops the stock
kernels and the PTB worker wrapper are full of.

Side-effecting instructions are never removed: stores, atomics
(their memory effect matters even if the fetched value is dead),
barriers, branches, and returns.  The pass composes with
:mod:`repro.transform.peephole`; together they undo the redundancy the
transformation passes introduce (e.g. virtual-index registers computed
for ``ctaid`` axes the kernel never reads).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ptx.ir import Instr, KernelIR, Opcode, Reg
from ..ptx.validate import validate_kernel

__all__ = ["DCEStats", "eliminate_dead_code"]

#: opcodes whose execution has effects beyond writing `dst`
_SIDE_EFFECTS = {
    Opcode.ST, Opcode.ATOM_ADD, Opcode.ATOM_CAS, Opcode.ATOM_EXCH,
    Opcode.BAR, Opcode.RET, Opcode.BRA, Opcode.BRX, Opcode.NOP,
}


@dataclass(frozen=True)
class DCEStats:
    """What the pass removed."""

    instructions_removed: int
    iterations: int


def _block_starts(body: list[Instr], labels: dict[str, int]) -> list[int]:
    starts = {0}
    for i, instr in enumerate(body):
        if instr.label is not None:
            starts.add(i)
        if instr.op in (Opcode.BRA, Opcode.BRX, Opcode.RET):
            if i + 1 < len(body):
                starts.add(i + 1)
    return sorted(starts)


def _successors(body: list[Instr], labels: dict[str, int],
                block_range: tuple[int, int]) -> list[int]:
    """Successor instruction indices of the block ending at ``end - 1``."""
    end = block_range[1]
    last = body[end - 1]
    succ: list[int] = []
    if last.op is Opcode.RET:
        if last.pred is not None and end < len(body):
            succ.append(end)
    elif last.op is Opcode.BRA:
        succ.append(labels[last.target])  # type: ignore[index]
        if last.pred is not None and end < len(body):
            succ.append(end)
    elif last.op is Opcode.BRX:
        succ.extend(labels[t] for t in last.targets)
    elif end < len(body):
        succ.append(end)
    return succ


def _reads(instr: Instr) -> set[str]:
    names = {src.name for src in instr.srcs if isinstance(src, Reg)}
    if instr.pred is not None:
        names.add(instr.pred.name)
    return names


def eliminate_dead_code(kernel: KernelIR) -> tuple[KernelIR, DCEStats]:
    """Return a copy of ``kernel`` with dead register writes removed."""
    body = [instr.copy() for instr in kernel.body]
    total_removed = 0
    iterations = 0

    while True:
        iterations += 1
        labels = {instr.label: i for i, instr in enumerate(body)
                  if instr.label is not None}
        starts = _block_starts(body, labels)
        ranges = [(s, e) for s, e in zip(starts, starts[1:] + [len(body)])]
        index_of = {s: bi for bi, (s, _e) in enumerate(ranges)}

        # Per-block gen/kill.
        use = [set() for _ in ranges]
        define = [set() for _ in ranges]
        for bi, (s, e) in enumerate(ranges):
            for instr in body[s:e]:
                for name in _reads(instr):
                    if name not in define[bi]:
                        use[bi].add(name)
                if instr.dst is not None:
                    define[bi].add(instr.dst.name)

        # Backward fixed point: live-in/live-out per block.
        live_in = [set(u) for u in use]
        live_out = [set() for _ in ranges]
        changed = True
        while changed:
            changed = False
            for bi in range(len(ranges) - 1, -1, -1):
                out: set[str] = set()
                for succ_start in _successors(body, labels, ranges[bi]):
                    out |= live_in[index_of[succ_start]]
                if out != live_out[bi]:
                    live_out[bi] = out
                new_in = use[bi] | (out - define[bi])
                if new_in != live_in[bi]:
                    live_in[bi] = new_in
                    changed = True

        # Instruction-level sweep within each block.
        dead: set[int] = set()
        for bi, (s, e) in enumerate(ranges):
            live = set(live_out[bi])
            for i in range(e - 1, s - 1, -1):
                instr = body[i]
                writes_dead = (instr.dst is not None
                               and instr.dst.name not in live)
                if (instr.op not in _SIDE_EFFECTS and writes_dead
                        and instr.label is None):
                    dead.add(i)
                    continue
                if instr.dst is not None:
                    live.discard(instr.dst.name)
                live |= _reads(instr)

        if not dead:
            break
        body = [instr for i, instr in enumerate(body) if i not in dead]
        total_removed += len(dead)

    optimized = KernelIR(
        name=kernel.name,
        params=list(kernel.params),
        shared=list(kernel.shared),
        body=body,
    )
    validate_kernel(optimized)
    return optimized, DCEStats(instructions_removed=total_removed,
                               iterations=iterations)
