"""Content-addressed memo store for transformed kernels.

Tally transforms each distinct kernel at most once (paper §4); this
module is the "at most once" made process-wide.  A :class:`TransformMemo`
maps ``(ir_hash, transform, params)`` — see :func:`repro.ptx.ir_hash` —
to the finished transformed artifact, so every
:class:`~repro.transform.TransformPipeline` that shares a memo (every
server in a repeated-workload loop, every chaos-matrix cell, every
sweep seed) reuses compiled IR instead of recompiling it.  The pattern
is the Taichi JIT's: compile on first invocation, memoize per
instantiation — except keyed on kernel *content*, which also makes the
store safely **picklable**: :meth:`TransformMemo.snapshot` captures a
warm cache that :func:`load_snapshot` restores in another process
(:func:`repro.harness.sweep.run_sweep` ships one to each pool worker).

Keys carry no object identity, so there is nothing to invalidate:
a kernel edit changes its hash and simply misses.  The store is
LRU-bounded (:data:`DEFAULT_CAPACITY`) so unbounded kernel streams
cannot grow it without limit; evictions are counted alongside hits and
misses.

The process-wide instance is :func:`transform_memo`;
``TransformPipeline(memo=transform_memo())`` (what
:class:`~repro.core.server.TallyServer` does) opts into it, while a
bare ``TransformPipeline()`` keeps a private store so unit tests stay
order-independent.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable

__all__ = [
    "DEFAULT_CAPACITY",
    "MemoSnapshot",
    "TransformMemo",
    "load_snapshot",
    "transform_memo",
    "warm_snapshot",
]

#: default bound on cached artifacts (far above any workload's distinct
#: kernel count; exists so adversarial streams cannot grow unbounded)
DEFAULT_CAPACITY = 4096

#: a picklable warm-cache capture: (capacity, {key: artifact})
MemoSnapshot = tuple

#: memo keys: (ir_hash, transform name, params...) — hashable throughout
MemoKey = Hashable


class TransformMemo:
    """LRU-bounded ``(ir_hash, transform, params) -> artifact`` store."""

    def __init__(self, capacity: int | None = DEFAULT_CAPACITY) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[MemoKey, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def get(self, key: MemoKey) -> Any | None:
        """The cached artifact, or ``None`` (counted as hit or miss)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: MemoKey, artifact: Any) -> None:
        """Store ``artifact``, evicting least-recently-used overflow."""
        self._entries[key] = artifact
        self._entries.move_to_end(key)
        if self.capacity is not None:
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss/evict counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: MemoKey) -> bool:
        return key in self._entries

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the store (0.0 when idle)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    # ------------------------------------------------------------------
    def snapshot(self) -> MemoSnapshot:
        """A picklable capture of the warm cache (entries, not stats).

        Artifacts (:class:`~repro.transform.slicing.SlicedKernel` and
        friends) are plain dataclasses over the IR, so the snapshot
        pickles with the standard machinery.
        """
        return (self.capacity, dict(self._entries))

    def load(self, snapshot: MemoSnapshot, *, replace: bool = False) -> int:
        """Merge a :meth:`snapshot` into this store; returns entries added.

        With ``replace=False`` (default) existing entries win, so a
        warm snapshot never clobbers fresher local work.
        """
        _capacity, entries = snapshot
        added = 0
        for key, artifact in entries.items():
            if not replace and key in self._entries:
                continue
            self.put(key, artifact)
            added += 1
        return added


#: the process-wide store (one per process; pool workers get their own,
#: optionally warmed from the parent's snapshot)
_GLOBAL_MEMO = TransformMemo()


def transform_memo() -> TransformMemo:
    """The process-wide :class:`TransformMemo`."""
    return _GLOBAL_MEMO


def warm_snapshot() -> MemoSnapshot | None:
    """Snapshot of the process-wide store, or ``None`` when cold."""
    if len(_GLOBAL_MEMO) == 0:
        return None
    return _GLOBAL_MEMO.snapshot()


def load_snapshot(snapshot: MemoSnapshot | None) -> int:
    """Warm the process-wide store from a snapshot (``None`` is a no-op)."""
    if snapshot is None:
        return 0
    return _GLOBAL_MEMO.load(snapshot)
