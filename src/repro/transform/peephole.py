"""Peephole cleanup of (transformed) kernels.

The transformation passes favour clarity over tightness: they emit NOP
label-carriers, the builder appends a safety ``ret`` after terminal
branches, and splicing can leave unreachable stubs.  This pass shrinks
kernels without changing semantics:

* **NOP elision** — a labelled NOP moves its label onto the following
  instruction (unless that instruction is itself labelled); unlabelled
  NOPs vanish;
* **unreachable-code removal** — instructions that no control path
  reaches (computed by a conservative CFG walk from the entry) are
  dropped.

The pass is safe by construction — it never touches reachable non-NOP
instructions — and the test suite re-runs the whole kernel corpus
(original and transformed) through the optimizer to confirm identical
outputs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ptx.ir import Instr, KernelIR, Opcode
from ..ptx.validate import validate_kernel

__all__ = ["PeepholeStats", "peephole_optimize"]


@dataclass(frozen=True)
class PeepholeStats:
    """What the optimizer removed."""

    nops_removed: int
    unreachable_removed: int

    @property
    def total_removed(self) -> int:
        return self.nops_removed + self.unreachable_removed


def _reachable(body: list[Instr], labels: dict[str, int]) -> set[int]:
    """Indices reachable from instruction 0 via fall-through/branches."""
    seen: set[int] = set()
    stack = [0]
    n = len(body)
    while stack:
        index = stack.pop()
        if index in seen or not 0 <= index < n:
            continue
        seen.add(index)
        instr = body[index]
        if instr.op is Opcode.RET:
            if instr.pred is not None:
                stack.append(index + 1)
            continue
        if instr.op is Opcode.BRA:
            stack.append(labels[instr.target])  # type: ignore[index]
            if instr.pred is not None:
                stack.append(index + 1)
            continue
        if instr.op is Opcode.BRX:
            stack.extend(labels[t] for t in instr.targets)
            continue
        stack.append(index + 1)
    return seen


def peephole_optimize(kernel: KernelIR) -> tuple[KernelIR, PeepholeStats]:
    """Return an optimized copy of ``kernel`` plus removal statistics."""
    body = [instr.copy() for instr in kernel.body]

    # Pass 1: drop unreachable instructions (their labels are, by
    # definition, never jumped to from reachable code).
    labels = {instr.label: i for i, instr in enumerate(body)
              if instr.label is not None}
    reachable = _reachable(body, labels)
    kept = [instr for i, instr in enumerate(body) if i in reachable]
    unreachable_removed = len(body) - len(kept)
    body = kept

    # Pass 2: elide NOPs.  Each NOP's label migrates to the next
    # surviving instruction; a run of labels collapses onto one name
    # and the rest become aliases rewritten at every reference site.
    keep = [instr.op is not Opcode.NOP for instr in body]
    alias: dict[str, str] = {}
    pending: list[str] = []
    for idx, instr in enumerate(body):
        if not keep[idx]:
            if instr.label is not None:
                pending.append(instr.label)
            continue
        if pending:
            if instr.label is None:
                instr.label = pending[0]
                for name in pending[1:]:
                    alias[name] = pending[0]
            else:
                for name in pending:
                    alias[name] = instr.label
            pending = []

    result = [instr for idx, instr in enumerate(body) if keep[idx]]
    nops_removed = len(body) - len(result)
    if pending:
        # Branch targets at the very end of the body: keep one carrier.
        carrier = Instr(Opcode.NOP, label=pending[0])
        for name in pending[1:]:
            alias[name] = pending[0]
        result.append(carrier)
        result.append(Instr(Opcode.RET))
        nops_removed -= 1

    if alias:
        for instr in result:
            if instr.target in alias:
                instr.target = alias[instr.target]
            if instr.targets:
                instr.targets = tuple(alias.get(t, t)
                                      for t in instr.targets)

    optimized = KernelIR(
        name=kernel.name,
        params=list(kernel.params),
        shared=list(kernel.shared),
        body=result,
    )
    validate_kernel(optimized)
    return optimized, PeepholeStats(
        nops_removed=nops_removed,
        unreachable_removed=unreachable_removed,
    )
