"""Transformation pipeline with content-addressed caching.

Tally's server transforms each distinct kernel at most once and reuses
the result for every subsequent launch (paper §4).  Distinctness is
decided by *content*: :class:`TransformPipeline` keys its cache on
``(ir_hash, transform, params)`` — :func:`repro.ptx.ir_hash` is a
canonical structural digest of the kernel — so two kernel objects with
equal IR share one transformed artifact, and a garbage-collected
kernel whose ``id()`` CPython later hands to a *different* kernel can
never alias a stale cached variant (the bug the previous
identity-keyed cache had).

The backing store is a :class:`~repro.transform.memo.TransformMemo`.
By default each pipeline gets a private one; passing
``memo=transform_memo()`` (what :class:`~repro.core.server.TallyServer`
does) shares the process-wide store, so repeated workloads, chaos-matrix
cells, and sweep workers reuse compiled IR across pipeline instances —
the memoized transform JIT.

A per-object identity fast path avoids rehashing a kernel on every
launch; it is kept honest with weakref reapers, so entries die with
their kernel object and a recycled id can never serve a stale hash.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Any

from ..ptx.hash import ir_hash
from ..ptx.ir import KernelIR
from ..trace.events import TransformCache
from ..trace.tracer import NULL_TRACER
from .dce import eliminate_dead_code
from .memo import TransformMemo
from .peephole import peephole_optimize
from .ptb import PreemptibleKernel, make_preemptible
from .slicing import SlicedKernel, make_sliced
from .unified_sync import UnifiedSyncKernel, make_unified_sync

__all__ = ["TransformPipeline", "TransformStats"]


@dataclass
class TransformStats:
    """Counts of transformation work performed (and avoided)."""

    sliced: int = 0
    preemptible: int = 0
    unified_sync: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    instructions_elided: int = 0

    @property
    def lookups(self) -> int:
        """Total cache probes (hits + misses)."""
        return self.cache_hits + self.cache_misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when idle)."""
        total = self.lookups
        return self.cache_hits / total if total else 0.0


class TransformPipeline:
    """Caches transformed variants of kernels by content hash.

    Cache keys are ``(ir_hash, transform, params)`` plus the pipeline's
    ``optimize`` flag (the cleanup passes change the artifact), so any
    two kernels with identical IR — same object or not, same process or
    not — share one transformed variant.  With ``optimize=True`` (the
    default) every transformed kernel is run through the peephole and
    dead-code cleanup passes before being cached.

    ``memo`` selects the backing store: ``None`` (default) builds a
    private :class:`~repro.transform.memo.TransformMemo`; pass
    :func:`repro.transform.memo.transform_memo` 's instance to share
    the process-wide one.  ``tracer`` (optional) receives one
    :class:`~repro.trace.events.TransformCache` event per lookup and
    per eviction.
    """

    def __init__(self, *, optimize: bool = True,
                 memo: TransformMemo | None = None,
                 tracer: Any = NULL_TRACER) -> None:
        self._optimize = optimize
        self.memo = memo if memo is not None else TransformMemo()
        self._tracer = tracer
        #: id(kernel) -> ir_hash fast path; reaped when the object dies
        self._hash_by_id: dict[int, str] = {}
        self._reapers: dict[int, weakref.ref] = {}
        self.stats = TransformStats()

    # ------------------------------------------------------------------
    def _hash_of(self, kernel: KernelIR) -> str:
        """Content hash of ``kernel`` with an identity fast path.

        The fast-path entry is removed by a weakref callback when the
        kernel object is collected — *before* CPython can hand its id
        to a new object — so a recycled id always re-hashes.
        """
        key = id(kernel)
        cached = self._hash_by_id.get(key)
        if cached is not None:
            return cached
        digest = ir_hash(kernel)
        self._hash_by_id[key] = digest

        def _reap(_ref: weakref.ref, *, _key: int = key,
                  _ids: dict = self._hash_by_id,
                  _reapers: dict = self._reapers) -> None:
            _ids.pop(_key, None)
            _reapers.pop(_key, None)

        self._reapers[key] = weakref.ref(kernel, _reap)
        return digest

    def _cleanup(self, kernel: KernelIR) -> KernelIR:
        if not self._optimize:
            return kernel
        optimized, peep = peephole_optimize(kernel)
        optimized, dce = eliminate_dead_code(optimized)
        self.stats.instructions_elided += (peep.total_removed
                                           + dce.instructions_removed)
        return optimized

    def _trace(self, action: str, transform: str, kernel_name: str,
               digest: str) -> None:
        self._tracer.emit(TransformCache(
            ts=0.0, client_id="", kernel=kernel_name, action=action,
            transform=transform, ir_hash=digest,
        ))

    def _lookup(self, key: tuple, transform: str, kernel: KernelIR,
                digest: str) -> Any | None:
        cached = self.memo.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            if self._tracer.enabled:
                self._trace("hit", transform, kernel.name, digest)
        else:
            self.stats.cache_misses += 1
            if self._tracer.enabled:
                self._trace("miss", transform, kernel.name, digest)
        return cached

    def _store(self, key: tuple, transform: str, kernel: KernelIR,
               digest: str, artifact: Any) -> None:
        before = self.memo.evictions
        self.memo.put(key, artifact)
        if self._tracer.enabled and self.memo.evictions > before:
            self._trace("evict", transform, kernel.name, digest)

    # ------------------------------------------------------------------
    def sliced(self, kernel: KernelIR) -> SlicedKernel:
        """Sliced variant of ``kernel`` (cached by content)."""
        digest = self._hash_of(kernel)
        key = (digest, "sliced", self._optimize)
        cached = self._lookup(key, "sliced", kernel, digest)
        if cached is not None:
            return cached
        result = make_sliced(kernel)
        result.kernel = self._cleanup(result.kernel)
        self._store(key, "sliced", kernel, digest, result)
        self.stats.sliced += 1
        return result

    def preemptible(self, kernel: KernelIR, *,
                    unified_sync: bool = True) -> PreemptibleKernel:
        """Preemptible (PTB) variant of ``kernel`` (cached by content)."""
        digest = self._hash_of(kernel)
        key = (digest, "ptb", unified_sync, self._optimize)
        cached = self._lookup(key, "ptb", kernel, digest)
        if cached is not None:
            return cached
        result = make_preemptible(kernel, unified_sync=unified_sync)
        result.kernel = self._cleanup(result.kernel)
        self._store(key, "ptb", kernel, digest, result)
        self.stats.preemptible += 1
        return result

    def unified_sync(self, kernel: KernelIR) -> UnifiedSyncKernel:
        """Unified-synchronization variant of ``kernel`` (cached by content)."""
        digest = self._hash_of(kernel)
        key = (digest, "unified_sync", self._optimize)
        cached = self._lookup(key, "unified_sync", kernel, digest)
        if cached is not None:
            return cached
        result = make_unified_sync(kernel)
        result.kernel = self._cleanup(result.kernel)
        self._store(key, "unified_sync", kernel, digest, result)
        self.stats.unified_sync += 1
        return result
