"""Transformation pipeline with caching.

Tally's server transforms each distinct kernel at most once and reuses
the result for every subsequent launch (transformation is pure —
keyed on the kernel object).  :class:`TransformPipeline` provides that
cache plus simple statistics, and is what the server-side kernel
transformer (:mod:`repro.core.transformer`) builds on.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ptx.ir import KernelIR
from .dce import eliminate_dead_code
from .peephole import peephole_optimize
from .ptb import PreemptibleKernel, make_preemptible
from .slicing import SlicedKernel, make_sliced
from .unified_sync import UnifiedSyncKernel, make_unified_sync

__all__ = ["TransformPipeline", "TransformStats"]


@dataclass
class TransformStats:
    """Counts of transformation work performed."""

    sliced: int = 0
    preemptible: int = 0
    unified_sync: int = 0
    cache_hits: int = 0
    instructions_elided: int = 0


class TransformPipeline:
    """Caches transformed variants of kernels.

    Cache keys combine the kernel's identity and name, so two distinct
    kernels that happen to share a name do not collide, while repeated
    requests for the same kernel object hit the cache.  With
    ``optimize=True`` (the default) every transformed kernel is run
    through the peephole cleanup pass before being cached.
    """

    def __init__(self, *, optimize: bool = True) -> None:
        self._optimize = optimize
        self._sliced: dict[tuple[int, str], SlicedKernel] = {}
        self._ptb: dict[tuple[int, str, bool], PreemptibleKernel] = {}
        self._usync: dict[tuple[int, str], UnifiedSyncKernel] = {}
        self.stats = TransformStats()

    def _cleanup(self, kernel: KernelIR) -> KernelIR:
        if not self._optimize:
            return kernel
        optimized, peep = peephole_optimize(kernel)
        optimized, dce = eliminate_dead_code(optimized)
        self.stats.instructions_elided += (peep.total_removed
                                           + dce.instructions_removed)
        return optimized

    def sliced(self, kernel: KernelIR) -> SlicedKernel:
        """Sliced variant of ``kernel`` (cached)."""
        key = (id(kernel), kernel.name)
        cached = self._sliced.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        result = make_sliced(kernel)
        result.kernel = self._cleanup(result.kernel)
        self._sliced[key] = result
        self.stats.sliced += 1
        return result

    def preemptible(self, kernel: KernelIR, *,
                    unified_sync: bool = True) -> PreemptibleKernel:
        """Preemptible (PTB) variant of ``kernel`` (cached)."""
        key = (id(kernel), kernel.name, unified_sync)
        cached = self._ptb.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        result = make_preemptible(kernel, unified_sync=unified_sync)
        result.kernel = self._cleanup(result.kernel)
        self._ptb[key] = result
        self.stats.preemptible += 1
        return result

    def unified_sync(self, kernel: KernelIR) -> UnifiedSyncKernel:
        """Unified-synchronization variant of ``kernel`` (cached)."""
        key = (id(kernel), kernel.name)
        cached = self._usync.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        result = make_unified_sync(kernel)
        result.kernel = self._cleanup(result.kernel)
        self._usync[key] = result
        self.stats.unified_sync += 1
        return result
