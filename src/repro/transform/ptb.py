"""The preemption transformation (paper §4.1, persistent thread blocks).

Instead of launching one physical block per unit of work, the
transformed kernel launches a small, fixed number of *worker* blocks.
Each worker repeatedly:

1. checks a global preemption flag — if set, the worker exits (the
   block currently executing is finished first, which is what bounds
   Tally's turnaround latency);
2. atomically fetches the next logical block index from a global task
   counter;
3. reconstructs the logical ``ctaid.{x,y,z}`` from that linear index and
   executes the original kernel body for it;
4. synchronizes and loops.

Progress is fully captured by the task counter, so a preempted kernel
resumes by simply relaunching it with the same counter buffer.

The body is first run through the unified synchronization pass
(:mod:`repro.transform.unified_sync`); applying the worker loop to a
body with its own ``bar.sync``/``ret`` sites is unsafe (see that
module's docstring).  ``unified_sync=False`` builds the naive, unsafe
variant so tests can demonstrate the stall hazard the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..errors import TransformError
from ..ptx.builder import KernelBuilder
from ..ptx.interpreter import DeviceMemory, GlobalRef
from ..ptx.ir import (
    Axis,
    CompareOp,
    Dim3,
    Instr,
    KernelIR,
    Opcode,
    Operand,
    Param,
    ParamKind,
    Reg,
    SharedDecl,
    SpecialKind,
)
from .base import TransformMeta, check_transformable, substitute_specials
from .unified_sync import EXIT_LABEL, make_unified_sync

__all__ = ["PreemptibleKernel", "PTBControl", "make_preemptible"]

COUNTER_PARAM = "__tally_task_counter"
FLAG_PARAM = "__tally_preempt_flag"
GRID_PARAMS = ("__tally_grid_x", "__tally_grid_y", "__tally_grid_z")
TASK_BUFFER = "__tally_ptb_task"
LOOP_LABEL = "__tally_ptb_loop"
ITER_END_LABEL = "__tally_ptb_iter_end"


@dataclass
class PTBControl:
    """The global control state of one preemptible launch.

    ``counter`` holds the next unclaimed logical block index and fully
    encodes execution progress; ``flag`` non-zero asks workers to stop
    after their current block.
    """

    counter: GlobalRef
    flag: GlobalRef
    memory: DeviceMemory

    def request_preemption(self) -> None:
        """Ask all workers to stop after their current block."""
        self.memory.write(self.flag, 0, 1)

    def clear_preemption(self) -> None:
        """Allow workers to fetch tasks again (before a resume launch)."""
        self.memory.write(self.flag, 0, 0)

    def tasks_started(self) -> int:
        """Number of logical blocks claimed so far (may exceed the total
        once workers drain the counter past the end)."""
        return int(self.memory.read(self.counter, 0))

    def reset(self) -> None:
        """Restart progress from logical block zero."""
        self.memory.write(self.counter, 0, 0)
        self.clear_preemption()


@dataclass
class PreemptibleKernel:
    """A kernel rewritten into preemptible persistent-thread-block form."""

    kernel: KernelIR
    meta: TransformMeta
    unified_sync: bool
    counter_param: str = COUNTER_PARAM
    flag_param: str = FLAG_PARAM
    grid_params: tuple[str, str, str] = GRID_PARAMS

    def make_control(self, memory: DeviceMemory) -> PTBControl:
        """Allocate fresh counter/flag buffers on ``memory``."""
        import numpy as np

        counter = memory.alloc(1, dtype=np.int64)
        flag = memory.alloc(1, dtype=np.int64)
        return PTBControl(counter=counter, flag=flag, memory=memory)

    def worker_grid(self, num_workers: int) -> Dim3:
        """The physical launch grid for ``num_workers`` worker blocks."""
        if num_workers < 1:
            raise TransformError(f"num_workers must be >= 1, got {num_workers}")
        return Dim3(num_workers)

    def args_for(self, base_args: Mapping[str, Any], logical_grid: Dim3 | int,
                 control: PTBControl) -> dict[str, Any]:
        """Arguments for a (re)launch of the preemptible kernel."""
        logical_grid = Dim3.of(logical_grid)
        args = dict(base_args)
        args[self.counter_param] = control.counter
        args[self.flag_param] = control.flag
        args[self.grid_params[0]] = logical_grid.x
        args[self.grid_params[1]] = logical_grid.y
        args[self.grid_params[2]] = logical_grid.z
        return args


def make_preemptible(kernel: KernelIR, *,
                     unified_sync: bool = True) -> PreemptibleKernel:
    """Apply the preemption transformation to ``kernel``.

    With ``unified_sync=False`` the original body is spliced in naively
    (returns become plain branches to the loop tail); this reproduces
    the divergent-synchronization stall for kernels that mix early
    returns with barriers and exists for demonstration and testing only.
    """
    check_transformable(kernel)

    if unified_sync:
        usync = make_unified_sync(kernel)
        body_source = usync.kernel
        passes = ("unified_sync", "preemption")
    else:
        body_source = kernel
        passes = ("preemption",)

    b = KernelBuilder(f"{kernel.name}__ptb")
    for param in kernel.params:
        b.declare_param(param)
    counter = b.declare_param(Param(COUNTER_PARAM, ParamKind.PTR))
    flag = b.declare_param(Param(FLAG_PARAM, ParamKind.PTR))
    grid_refs = [b.declare_param(Param(name, ParamKind.I32))
                 for name in GRID_PARAMS]
    for decl in body_source.shared:
        b.declare_shared(decl)
    task_cell = b.declare_shared(SharedDecl(TASK_BUFFER, 1))

    # --- Worker prologue (runs once per worker block) ---------------------
    gx = b.mov(grid_refs[0], dst=Reg("__tally_ptb_gx"))
    gy = b.mov(grid_refs[1], dst=Reg("__tally_ptb_gy"))
    gz = b.mov(grid_refs[2], dst=Reg("__tally_ptb_gz"))
    total = b.mul(gx, gy, dst=Reg("__tally_ptb_total"))
    b.mul(total, gz, dst=total)
    tlin = b.mad(b.tid(Axis.Z), b.ntid(Axis.Y), b.tid(Axis.Y),
                 dst=Reg("__tally_ptb_tlin"))
    b.mad(tlin, b.ntid(Axis.X), b.tid(Axis.X), dst=tlin)
    leader = b.setp(CompareOp.EQ, tlin, 0, dst=Reg("__tally_ptb_leader"))

    # --- Worker loop: fetch -> broadcast -> execute -> quiesce ------------
    b.label(LOOP_LABEL)
    nofetch = "__tally_ptb_nofetch"
    preempted = "__tally_ptb_preempted"
    fetched = "__tally_ptb_fetched"
    b.bra(nofetch, pred=leader, negate=True)
    flag_value = b.ld(flag, 0, dst=Reg("__tally_ptb_flagv"))
    flag_set = b.setp(CompareOp.NE, flag_value, 0,
                      dst=Reg("__tally_ptb_flagp"))
    b.bra(preempted, pred=flag_set)
    next_task = b.atom_add(counter, 0, 1, dst=Reg("__tally_ptb_fetch"))
    b.st(task_cell, 0, next_task)
    b.bra(fetched)
    b.label(preempted)
    b.st(task_cell, 0, -1)
    b.label(fetched)
    b.nop()
    b.label(nofetch)
    b.nop()
    b.bar()  # broadcast the fetched task to the whole block

    # Shared memory stores values untyped; convert the broadcast task
    # index back to an integer before it feeds div/rem index math.
    task_raw = b.ld(task_cell, 0, dst=Reg("__tally_ptb_taskraw"))
    task = b.cvt_int(task_raw, dst=Reg("__tally_ptb_taskr"))
    b.ret(pred=b.setp(CompareOp.LT, task, 0, dst=Reg("__tally_ptb_stopp")))
    b.ret(pred=b.setp(CompareOp.GE, task, total, dst=Reg("__tally_ptb_donep")))

    # Reconstruct the logical 3-D block index of this task.
    vx = b.rem(task, gx, dst=Reg("__tally_ptb_vx"))
    quot = b.div(task, gx, dst=Reg("__tally_ptb_q"))
    vy = b.rem(quot, gy, dst=Reg("__tally_ptb_vy"))
    vz = b.div(quot, gy, dst=Reg("__tally_ptb_vz"))

    # --- Spliced body ------------------------------------------------------
    body = [instr.copy() for instr in body_source.body]
    mapping: dict[tuple[SpecialKind, Axis], Operand] = {
        (SpecialKind.CTAID, Axis.X): vx,
        (SpecialKind.CTAID, Axis.Y): vy,
        (SpecialKind.CTAID, Axis.Z): vz,
        (SpecialKind.NCTAID, Axis.X): gx,
        (SpecialKind.NCTAID, Axis.Y): gy,
        (SpecialKind.NCTAID, Axis.Z): gz,
    }
    substitute_specials(body, mapping)

    for instr in body:
        if unified_sync and instr.label == EXIT_LABEL:
            # The collective exit of the unified-sync body becomes the
            # end of one worker iteration.
            if instr.op is not Opcode.RET:
                raise TransformError(
                    "unified-sync exit label does not mark a ret"
                )
            b.emit_raw(Instr(Opcode.BRA, target=ITER_END_LABEL,
                             label=instr.label))
            continue
        if not unified_sync and instr.op is Opcode.RET:
            # Naive splice: returns become branches to the loop tail.
            # Threads that return at different points now synchronize at
            # different barriers -> divergence hazard.
            b.emit_raw(Instr(Opcode.BRA, target=ITER_END_LABEL,
                             label=instr.label, pred=instr.pred,
                             pred_negate=instr.pred_negate))
            continue
        b.emit_raw(instr)

    b.label(ITER_END_LABEL)
    b.bar()  # quiesce the block before fetching the next task
    b.bra(LOOP_LABEL)

    transformed = b.build()
    meta = TransformMeta(kernel.name, passes)
    return PreemptibleKernel(kernel=transformed, meta=meta,
                             unified_sync=unified_sync)
