"""The slicing transformation (paper §4.1, Figure 2a).

Slicing partitions a kernel's thread blocks into several sub-launches so
the scheduler can interleave other work between them.  Launching a
sub-range of blocks naively is incorrect because threads derive their
work assignment from ``ctaid`` (blockIdx): every sub-launch would see
block indices starting at zero and redo the first blocks' work.

The transformation therefore:

* adds a ``__tally_block_offset`` parameter (the linear index of the
  slice's first logical block) and ``__tally_grid_{x,y,z}`` parameters
  carrying the *original* grid dimensions;
* launches each slice as a 1-D grid of ``k`` physical blocks;
* prepends a prologue reconstructing the logical 3-D block index from
  ``offset + ctaid.x`` and rewrites every ``ctaid``/``nctaid`` read to
  the reconstructed values.

The collective work of the slices is then identical to the original
launch, which the functional test suite checks on the whole kernel
corpus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..errors import TransformError
from ..ptx.builder import KernelBuilder
from ..ptx.ir import (
    Axis,
    Dim3,
    KernelIR,
    Operand,
    Param,
    ParamKind,
    Reg,
    SpecialKind,
)
from .base import TransformMeta, check_transformable, substitute_specials

__all__ = ["SliceLaunch", "SlicedKernel", "make_sliced", "plan_slices"]

OFFSET_PARAM = "__tally_block_offset"
GRID_PARAMS = ("__tally_grid_x", "__tally_grid_y", "__tally_grid_z")


@dataclass(frozen=True)
class SliceLaunch:
    """One sub-launch of a sliced kernel."""

    grid: Dim3  # physical (1-D) grid of this slice
    offset: int  # linear index of the first logical block

    @property
    def blocks(self) -> int:
        return self.grid.total


def plan_slices(logical_grid: Dim3, blocks_per_slice: int) -> list[SliceLaunch]:
    """Split ``logical_grid`` into slices of at most ``blocks_per_slice``."""
    if blocks_per_slice < 1:
        raise TransformError(
            f"blocks_per_slice must be >= 1, got {blocks_per_slice}"
        )
    total = logical_grid.total
    launches = []
    offset = 0
    while offset < total:
        count = min(blocks_per_slice, total - offset)
        launches.append(SliceLaunch(grid=Dim3(count), offset=offset))
        offset += count
    return launches


@dataclass
class SlicedKernel:
    """A kernel rewritten for sliced execution, plus launch helpers."""

    kernel: KernelIR
    meta: TransformMeta
    offset_param: str = OFFSET_PARAM
    grid_params: tuple[str, str, str] = GRID_PARAMS

    def plan(self, logical_grid: Dim3 | int,
             blocks_per_slice: int) -> list[SliceLaunch]:
        """Slices covering ``logical_grid`` with the given granularity."""
        return plan_slices(Dim3.of(logical_grid), blocks_per_slice)

    def args_for(self, base_args: Mapping[str, Any], logical_grid: Dim3 | int,
                 offset: int) -> dict[str, Any]:
        """Arguments for one slice launch."""
        logical_grid = Dim3.of(logical_grid)
        args = dict(base_args)
        args[self.offset_param] = offset
        args[self.grid_params[0]] = logical_grid.x
        args[self.grid_params[1]] = logical_grid.y
        args[self.grid_params[2]] = logical_grid.z
        return args


def make_sliced(kernel: KernelIR) -> SlicedKernel:
    """Apply the slicing transformation to ``kernel``."""
    check_transformable(kernel)

    b = KernelBuilder(f"{kernel.name}__sliced")
    for param in kernel.params:
        b.declare_param(param)
    offset = b.declare_param(Param(OFFSET_PARAM, ParamKind.I32))
    grid_refs = [b.declare_param(Param(name, ParamKind.I32))
                 for name in GRID_PARAMS]
    for decl in kernel.shared:
        b.declare_shared(decl)

    # Prologue: reconstruct the logical block index.  The slice is
    # launched as a 1-D grid, so the logical linear index is simply
    # offset + physical ctaid.x.
    gx = b.mov(grid_refs[0], dst=Reg("__tally_sl_gx"))
    gy = b.mov(grid_refs[1], dst=Reg("__tally_sl_gy"))
    gz = b.mov(grid_refs[2], dst=Reg("__tally_sl_gz"))
    linear = b.add(b.ctaid(Axis.X), offset, dst=Reg("__tally_sl_linear"))
    vx = b.rem(linear, gx, dst=Reg("__tally_sl_vx"))
    quot = b.div(linear, gx, dst=Reg("__tally_sl_q"))
    vy = b.rem(quot, gy, dst=Reg("__tally_sl_vy"))
    vz = b.div(quot, gy, dst=Reg("__tally_sl_vz"))

    body = [instr.copy() for instr in kernel.body]
    mapping: dict[tuple[SpecialKind, Axis], Operand] = {
        (SpecialKind.CTAID, Axis.X): vx,
        (SpecialKind.CTAID, Axis.Y): vy,
        (SpecialKind.CTAID, Axis.Z): vz,
        (SpecialKind.NCTAID, Axis.X): gx,
        (SpecialKind.NCTAID, Axis.Y): gy,
        (SpecialKind.NCTAID, Axis.Z): gz,
    }
    substitute_specials(body, mapping)
    for instr in body:
        b.emit_raw(instr)

    transformed = b.build()
    meta = TransformMeta(kernel.name, ("slicing",))
    return SlicedKernel(kernel=transformed, meta=meta)
