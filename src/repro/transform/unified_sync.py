"""The unified synchronization transformation (paper §4.1, Figure 2b).

The preemption transformation turns returns into branches back into a
worker loop.  On real hardware a thread that "returned" this way is
still alive, so it now participates in barriers again — and it waits at
the loop's barrier while still-working threads wait at the kernel's own
``bar.sync`` sites.  Threads of one block waiting at *different*
barriers is undefined behaviour and stalls forever (the interpreter
raises :class:`~repro.errors.SyncDivergenceError` for it).

This prepositional pass removes the hazard by funnelling **every**
synchronization and return through a single unified sync point:

* a shared counter tracks how many threads have (logically) returned;
* each ``bar.sync`` site ``k`` becomes "record origin ``k``, jump to the
  unified barrier", and after the barrier live threads jump back to
  their origin through an indirect branch;
* each ``ret`` becomes "increment the counter, set a local returned
  flag, jump to the unified barrier"; returned threads loop on the
  barrier until the counter shows *all* threads returned, at which point
  the whole block exits together through a single exit instruction.

Because the only barrier left in the kernel is the unified one, threads
can never diverge across barriers, and the preemption transformation
can be applied safely afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ptx.builder import KernelBuilder
from ..ptx.ir import (
    Axis,
    CompareOp,
    Instr,
    KernelIR,
    Opcode,
    Reg,
    SharedDecl,
)
from .base import TransformMeta, check_transformable

__all__ = ["UnifiedSyncKernel", "make_unified_sync"]

COUNT_BUFFER = "__tally_us_count"
SYNC_LABEL = "__tally_us_sync"
EXIT_LABEL = "__tally_us_exit"


@dataclass
class UnifiedSyncKernel:
    """A kernel whose syncs and returns all route through one barrier."""

    kernel: KernelIR
    meta: TransformMeta
    sync_sites: int  # number of original bar.sync sites
    return_sites: int  # number of original ret sites
    exit_label: str = EXIT_LABEL
    count_buffer: str = COUNT_BUFFER


def make_unified_sync(kernel: KernelIR) -> UnifiedSyncKernel:
    """Apply the unified synchronization transformation to ``kernel``."""
    check_transformable(kernel)

    b = KernelBuilder(f"{kernel.name}__usync")
    for param in kernel.params:
        b.declare_param(param)
    for decl in kernel.shared:
        b.declare_shared(decl)
    count = b.declare_shared(SharedDecl(COUNT_BUFFER, 1))

    ret_flag = Reg("__tally_us_ret")
    origin = Reg("__tally_us_origin")
    ntotal = Reg("__tally_us_ntotal")

    # Prologue: reset the returned-counter (every thread stores the same
    # zero — a benign race), establish the thread count, and clear the
    # per-thread state.  The barrier makes the reset visible before any
    # thread can increment the counter.  Running this prologue once per
    # PTB iteration is exactly what re-arms the counter between tasks.
    b.st(count, 0, 0)
    b.bar()
    b.mov(False, dst=ret_flag)
    b.mov(0, dst=origin)
    b.mul(b.ntid(Axis.X), b.ntid(Axis.Y), dst=ntotal)
    b.mul(ntotal, b.ntid(Axis.Z), dst=ntotal)

    resume_labels: list[str] = []
    sync_sites = 0
    return_sites = 0
    scratch = Reg("__tally_us_scratch")

    for instr in kernel.body:
        if instr.op is Opcode.BAR:
            site = sync_sites
            sync_sites += 1
            # Record where this thread came from, then go sync.
            mov = Instr(Opcode.MOV, dst=origin, srcs=(_imm(site),),
                        label=instr.label)
            b.emit_raw(mov)
            b.bra(SYNC_LABEL)
            resume = f"__tally_us_resume_{site}"
            resume_labels.append(resume)
            b.label(resume)
            continue

        if instr.op is Opcode.RET:
            return_sites += 1
            if instr.pred is not None:
                # @p ret  ->  skip the return stub when the guard fails.
                skip = f"__tally_us_skip_{return_sites}"
                guard = Instr(Opcode.BRA, target=skip, pred=instr.pred,
                              pred_negate=not instr.pred_negate,
                              label=instr.label)
                b.emit_raw(guard)
                b.atom_add(count, 0, 1, dst=scratch)
                b.mov(True, dst=ret_flag)
                b.bra(SYNC_LABEL)
                b.label(skip)
            else:
                if instr.label is not None:
                    b.emit_raw(Instr(Opcode.NOP, label=instr.label))
                b.atom_add(count, 0, 1, dst=scratch)
                b.mov(True, dst=ret_flag)
                b.bra(SYNC_LABEL)
            continue

        b.emit_raw(instr.copy())

    # The unified synchronization point.  The counter is read between
    # two barriers: the first quiesces all increments performed before
    # threads arrived, the second keeps resumed threads from
    # incrementing again until every thread has taken its snapshot.
    # Without the snapshot barrier, a fast live thread can return and
    # re-increment the counter while a slow returned thread is still
    # reading it, making the slow thread exit the loop alone — which is
    # itself a divergent-synchronization stall.
    b.label(SYNC_LABEL)
    b.bar()
    cnt = b.ld(count, 0, dst=Reg("__tally_us_cnt"))
    b.bar()
    all_returned = b.setp(CompareOp.GE, cnt, ntotal,
                          dst=Reg("__tally_us_all"))
    b.bra(EXIT_LABEL, pred=all_returned)
    # Logically-returned threads are held at the barrier until everyone
    # has returned; live threads resume where they left off.
    b.bra(SYNC_LABEL, pred=ret_flag)
    if resume_labels:
        b.brx(resume_labels, origin)
    else:
        # No sync sites: a live thread can never reach this point, but
        # the body must not fall through.
        b.bra(SYNC_LABEL)
    b.label(EXIT_LABEL)
    b.ret()

    transformed = b.build()
    meta = TransformMeta(kernel.name, ("unified_sync",))
    return UnifiedSyncKernel(
        kernel=transformed,
        meta=meta,
        sync_sites=sync_sites,
        return_sites=return_sites,
    )


def _imm(value: int):
    from ..ptx.ir import Imm

    return Imm(value)
