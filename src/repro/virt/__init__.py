"""Virtualization layer: interception, channels, and wire protocol (§4.3)."""

from .channel import Channel, ChannelConfig, ChannelStats, SHARED_MEMORY, UNIX_SOCKET
from .interposer import InterposedBackend
from .resilience import (
    CircuitBreaker,
    ResilienceConfig,
    RetryBudget,
    decorrelated_jitter,
)
from .protocol import (
    Envelope,
    FreeRequest,
    LaunchKernelRequest,
    MallocRequest,
    MemcpyD2HRequest,
    MemcpyH2DRequest,
    RegisterBinaryRequest,
    Request,
    Response,
    SynchronizeRequest,
    checksum_of,
    estimate_size,
)

__all__ = [
    "Channel",
    "ChannelConfig",
    "ChannelStats",
    "CircuitBreaker",
    "Envelope",
    "ResilienceConfig",
    "RetryBudget",
    "decorrelated_jitter",
    "checksum_of",
    "FreeRequest",
    "InterposedBackend",
    "LaunchKernelRequest",
    "MallocRequest",
    "MemcpyD2HRequest",
    "MemcpyH2DRequest",
    "RegisterBinaryRequest",
    "Request",
    "Response",
    "SHARED_MEMORY",
    "SynchronizeRequest",
    "UNIX_SOCKET",
    "estimate_size",
]
