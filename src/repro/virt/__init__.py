"""Virtualization layer: interception, channels, and wire protocol (§4.3)."""

from .channel import Channel, ChannelConfig, SHARED_MEMORY, UNIX_SOCKET
from .interposer import InterposedBackend
from .protocol import (
    FreeRequest,
    LaunchKernelRequest,
    MallocRequest,
    MemcpyD2HRequest,
    MemcpyH2DRequest,
    RegisterBinaryRequest,
    Request,
    Response,
    SynchronizeRequest,
    estimate_size,
)

__all__ = [
    "Channel",
    "ChannelConfig",
    "FreeRequest",
    "InterposedBackend",
    "LaunchKernelRequest",
    "MallocRequest",
    "MemcpyD2HRequest",
    "MemcpyH2DRequest",
    "RegisterBinaryRequest",
    "Request",
    "Response",
    "SHARED_MEMORY",
    "SynchronizeRequest",
    "UNIX_SOCKET",
    "estimate_size",
]
