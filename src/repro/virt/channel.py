"""Client/server communication channels.

The paper found naive API forwarding too slow and adopted shared-memory
channels to avoid context switches (§4.3).  The reproduction models a
channel as a synchronous request/response pipe with a configurable
per-message cost and byte-rate; it *accounts* for the time each
transport would spend, so tests and benchmarks can quantify the
optimization (socket vs shared memory) without real IPC.

Reliability: every call travels in an :class:`~repro.virt.protocol.
Envelope` carrying a request id, payload checksum, and (optionally) an
absolute deadline.  When a fault injector (:mod:`repro.faults`) is
attached, messages can be dropped, duplicated, corrupted, or delayed;
the channel recovers with timeout + backoff retries — seeded
decorrelated jitter by default, so concurrent clients de-synchronize —
and retries reuse the envelope's request id so an envelope-aware
server (``TallyServer``) can replay its cached reply instead of
re-executing a non-idempotent operation.  A call that exhausts its
attempts raises :class:`~repro.errors.ChannelTimeout`; an injected
client crash raises :class:`~repro.errors.ClientCrashed`.

Overload resilience (:mod:`repro.virt.resilience`) is opt-in via the
``resilience`` constructor argument: a token-bucket retry budget caps
retries at a fraction of fresh traffic
(:class:`~repro.errors.RetryBudgetExhausted` on empty) and a per-target
circuit breaker fails fast while the target looks down
(:class:`~repro.errors.CircuitOpen`).  See ``docs/fault_tolerance.md``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable

from ..errors import (
    ChannelTimeout,
    CircuitOpen,
    ClientCrashed,
    DeadlineExceeded,
    RetryBudgetExhausted,
    VirtError,
)
from ..faults.injector import (
    CORRUPT,
    DELAY,
    DROP,
    DUPLICATE,
    NULL_INJECTOR,
)
from ..trace import events as trace_events
from ..trace.events import ChannelFault
from ..trace.tracer import NULL_TRACER
from .protocol import Envelope, Request, Response, checksum_of, estimate_size
from .resilience import (
    CircuitBreaker,
    ResilienceConfig,
    RetryBudget,
    decorrelated_jitter,
)

__all__ = ["ChannelConfig", "Channel", "SHARED_MEMORY", "UNIX_SOCKET"]


@dataclass(frozen=True)
class ChannelConfig:
    """Cost model of one transport."""

    name: str
    #: fixed cost per message (seconds); sockets pay context switches
    per_message_latency: float
    #: incremental cost per payload byte (seconds)
    per_byte_latency: float
    #: how long a sender waits for a reply before retrying (seconds)
    timeout: float = 100e-6
    #: backoff before the first retry (seconds); the decorrelated-jitter
    #: base, or the doubling start when ``backoff_jitter`` is off
    retry_backoff: float = 50e-6
    #: total send attempts per call (1 original + retries)
    max_attempts: int = 5
    #: draw each backoff with seeded decorrelated jitter so concurrent
    #: clients de-synchronize (off = the old deterministic doubling,
    #: which re-collides every client at each power-of-two boundary)
    backoff_jitter: bool = True
    #: longest single backoff sleep (seconds) when jitter is on
    backoff_cap: float = 2e-3


#: Lock-free shared-memory ring (the paper's optimized transport).
SHARED_MEMORY = ChannelConfig(
    name="shared-memory",
    per_message_latency=0.4e-6,
    per_byte_latency=1.0 / 20e9,  # ~20 GB/s effective copy bandwidth
)

#: A unix-domain-socket baseline: two context switches per round trip.
UNIX_SOCKET = ChannelConfig(
    name="unix-socket",
    per_message_latency=8e-6,
    per_byte_latency=1.0 / 2e9,
)


@dataclass
class ChannelStats:
    """Traffic accounting for one channel, split by direction."""

    messages: int = 0
    bytes: int = 0
    simulated_time: float = 0.0
    requests: int = 0
    responses: int = 0
    request_bytes: int = 0
    response_bytes: int = 0
    #: re-sends after a timeout or retryable failure
    retries: int = 0
    #: attempts that waited the full timeout for a reply that never came
    timeouts: int = 0
    #: injected faults that hit this channel's messages
    faults: int = 0
    #: first-attempt calls (the denominator of retry amplification)
    fresh_calls: int = 0
    #: calls failed fast because the retry budget was empty
    budget_exhausted: int = 0
    #: calls refused without a send by an open circuit breaker
    breaker_fast_fails: int = 0
    #: calls abandoned client-side because their deadline had passed
    deadline_give_ups: int = 0

    @property
    def amplification(self) -> float:
        """Sends per fresh call: ``(fresh + retries) / fresh``.

        1.0 means no retries; sustained values well above 1 during a
        fault are the signature of a retry storm.
        """
        if not self.fresh_calls:
            return 1.0
        return (self.fresh_calls + self.retries) / self.fresh_calls


class Channel:
    """A synchronous request/response channel to a server handler.

    The handler receives :class:`~repro.virt.protocol.Envelope` objects;
    handlers that only care about the payload (most tests) can ignore
    the framing entirely because the channel itself enforces the
    retry/timeout discipline.
    """

    def __init__(self, handler: Callable[[Envelope], Response],
                 config: ChannelConfig = SHARED_MEMORY, *,
                 faults: Any = NULL_INJECTOR,
                 tracer: Any = NULL_TRACER,
                 client_id: str = "",
                 seed: int = 0,
                 clock: Callable[[], float] | None = None,
                 resilience: ResilienceConfig | None = None,
                 breaker: CircuitBreaker | None = None) -> None:
        self._handler = handler
        self.config = config
        self.stats = ChannelStats()
        self.faults = faults
        self.tracer = tracer
        self.client_id = client_id
        self._request_seq = 0
        # Channels have no event loop of their own: absent an injected
        # clock (e.g. an EventLoop's ``now``), deadlines and breaker
        # windows are measured on this channel's accumulated transport
        # time, which is the only notion of time the channel advances.
        self._clock = clock if clock is not None else (
            lambda: self.stats.simulated_time)
        self._backoff_rng = random.Random(f"{seed}/{client_id}/backoff")
        self.budget = RetryBudget(resilience) if resilience else None
        if breaker is not None:
            self.breaker: CircuitBreaker | None = breaker
        elif resilience is not None:
            self.breaker = CircuitBreaker(
                resilience, target="server", seed=seed, clock=self._clock,
                tracer=tracer, client_id=client_id)
        else:
            self.breaker = None

    def resume_sequence(self, last_request_id: int) -> None:
        """Continue numbering after ``last_request_id``.

        A channel rebuilt for a migrated client must not reuse request
        ids the server's reply cache already remembers — the cache would
        answer a fresh request with another call's reply.
        """
        self._request_seq = max(self._request_seq, last_request_id)

    # ------------------------------------------------------------------
    def call(self, request: Request, *,
             deadline: float | None = None) -> Response:
        """Send ``request``; return the server's response.

        ``deadline`` is an *absolute* simulated time carried in the
        envelope so the server can shed work that can no longer meet
        it; a deadline already past raises :class:`DeadlineExceeded`
        without sending.

        Raises :class:`VirtError` if the server reports an API failure,
        so client code sees errors exactly as local execution would;
        :class:`ChannelTimeout` when every attempt is lost;
        :class:`RetryBudgetExhausted` when a needed retry cannot be
        paid for; :class:`CircuitOpen` when the breaker refuses the
        call; and :class:`ClientCrashed` at an injected crash point.
        """
        if deadline is not None and self._clock() >= deadline:
            self._give_up_on_deadline(deadline)
        if self.breaker is not None and not self.breaker.allow():
            self.stats.breaker_fast_fails += 1
            raise CircuitOpen(
                f"client {self.client_id!r}: breaker "
                f"{self.breaker.target!r} is {self.breaker.state}"
            )
        self._request_seq += 1
        envelope = Envelope(
            request_id=self._request_seq,
            client_id=getattr(request, "client_id", self.client_id),
            payload=request,
            checksum=checksum_of(request),
            deadline=deadline,
        )
        self.stats.fresh_calls += 1
        if self.budget is not None:
            self.budget.on_fresh()
        last_error = "no attempt made"
        backoff = self.config.retry_backoff
        for attempt in range(1, self.config.max_attempts + 1):
            if attempt > 1:
                if deadline is not None and self._clock() >= deadline:
                    if self.breaker is not None:
                        self.breaker.abandon()
                    self._give_up_on_deadline(deadline)
                if self.budget is not None and not self.budget.try_spend():
                    self._fail_terminally()
                    self.stats.budget_exhausted += 1
                    if self.tracer.enabled:
                        self.tracer.emit(trace_events.RetryBudgetExhausted(
                            ts=self._clock(),
                            client_id=envelope.client_id,
                            kernel="",
                            request_id=envelope.request_id,
                            attempt=attempt,
                            tokens=self.budget.tokens,
                        ))
                    raise RetryBudgetExhausted(
                        f"request {envelope.request_id} "
                        f"({type(request).__name__}) needs retry {attempt - 1}"
                        f" but the retry budget is empty: {last_error}"
                    )
                self.stats.retries += 1
                if self.config.backoff_jitter:
                    backoff = decorrelated_jitter(
                        self._backoff_rng, self.config.retry_backoff,
                        self.config.backoff_cap, backoff)
                    self.stats.simulated_time += backoff
                else:
                    self.stats.simulated_time += backoff
                    backoff *= 2
            if self.faults.enabled and self.faults.crash_now():
                if self.breaker is not None:
                    self.breaker.abandon()
                raise ClientCrashed(
                    f"client {envelope.client_id!r} crashed at request "
                    f"{envelope.request_id} ({type(request).__name__})"
                )
            response = self._attempt(envelope, attempt)
            if response is None:
                self.stats.timeouts += 1
                self.stats.simulated_time += self.config.timeout
                last_error = "timed out waiting for reply"
                continue
            if not response.ok and response.retryable:
                last_error = response.error or "transport failure"
                continue
            if not response.ok:
                # the server answered; an API failure is not its illness
                if self.breaker is not None:
                    self.breaker.record_success()
                raise VirtError(response.error or "server error")
            if self.breaker is not None:
                self.breaker.record_success()
            return response
        self._fail_terminally()
        raise ChannelTimeout(
            f"request {envelope.request_id} ({type(request).__name__}) "
            f"failed after {self.config.max_attempts} attempts: {last_error}"
        )

    def _give_up_on_deadline(self, deadline: float) -> None:
        now = self._clock()
        self.stats.deadline_give_ups += 1
        if self.tracer.enabled:
            self.tracer.emit(trace_events.DeadlineShed(
                ts=now,
                client_id=self.client_id,
                kernel="",
                scope="client",
                deadline=deadline,
                lateness=now - deadline,
            ))
        raise DeadlineExceeded(
            f"client {self.client_id!r}: deadline {deadline:.6f} already "
            f"passed at {now:.6f}; not sending"
        )

    def _fail_terminally(self) -> None:
        """Tell the breaker this call is giving up on its target."""
        if self.breaker is not None:
            self.breaker.record_failure()

    def cost_of(self, message: Any) -> float:
        """Modelled transport time of one message."""
        return (self.config.per_message_latency
                + estimate_size(message) * self.config.per_byte_latency)

    # ------------------------------------------------------------------
    def _attempt(self, envelope: Envelope, attempt: int) -> Response | None:
        """One send/receive attempt; None means the reply never arrived."""
        fault = (self.faults.channel_fault("request")
                 if self.faults.enabled else "none")
        if fault != "none":
            self._note_fault(fault, "request", envelope, attempt)
        if fault == DROP:
            # the bytes left the client but never reached the server
            self._account(envelope, "request")
            return None
        if fault == DELAY:
            self.stats.simulated_time += self.faults.config.delay_time
        sent = envelope
        if fault == CORRUPT:
            sent = Envelope(envelope.request_id, envelope.client_id,
                            envelope.payload, envelope.checksum ^ 0x1,
                            envelope.deadline)
        self._account(sent, "request")
        response = self._handler(sent)
        if fault == DUPLICATE:
            # second copy of the same envelope: an envelope-aware server
            # answers it from the replay cache, so both replies agree
            self._account(envelope, "request")
            response = self._handler(envelope)

        fault = (self.faults.channel_fault("response")
                 if self.faults.enabled else "none")
        if fault != "none":
            self._note_fault(fault, "response", envelope, attempt)
        if fault == DROP:
            self._account(response, "response")
            return None
        if fault == DELAY:
            self.stats.simulated_time += self.faults.config.delay_time
        self._account(response, "response")
        if fault == DUPLICATE:
            self._account(response, "response")
        if fault == CORRUPT:
            # the client cannot trust a corrupted reply; retry the call
            return Response.transport_failure("response corrupted in transit")
        return response

    def _note_fault(self, fault: str, direction: str, envelope: Envelope,
                    attempt: int) -> None:
        self.stats.faults += 1
        if self.tracer.enabled:
            self.tracer.emit(ChannelFault(
                ts=self.stats.simulated_time,
                client_id=envelope.client_id,
                kernel="",
                fault=fault,
                direction=direction,
                request_id=envelope.request_id,
                attempt=attempt,
            ))

    def _account(self, message: Any, direction: str) -> None:
        size = estimate_size(message)
        self.stats.messages += 1
        self.stats.bytes += size
        if direction == "request":
            self.stats.requests += 1
            self.stats.request_bytes += size
        else:
            self.stats.responses += 1
            self.stats.response_bytes += size
        self.stats.simulated_time += (
            self.config.per_message_latency + size * self.config.per_byte_latency
        )
