"""Client/server communication channels.

The paper found naive API forwarding too slow and adopted shared-memory
channels to avoid context switches (§4.3).  The reproduction models a
channel as a synchronous request/response pipe with a configurable
per-message cost and byte-rate; it *accounts* for the time each
transport would spend, so tests and benchmarks can quantify the
optimization (socket vs shared memory) without real IPC.

Reliability: every call travels in an :class:`~repro.virt.protocol.
Envelope` carrying a request id and payload checksum.  When a fault
injector (:mod:`repro.faults`) is attached, messages can be dropped,
duplicated, corrupted, or delayed; the channel recovers with timeout +
exponential-backoff retries, and retries reuse the envelope's request
id so an envelope-aware server (``TallyServer``) can replay its cached
reply instead of re-executing a non-idempotent operation.  A call whose
retry budget runs out raises :class:`~repro.errors.ChannelTimeout`; an
injected client crash raises :class:`~repro.errors.ClientCrashed`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..errors import ChannelTimeout, ClientCrashed, VirtError
from ..faults.injector import (
    CORRUPT,
    DELAY,
    DROP,
    DUPLICATE,
    NULL_INJECTOR,
)
from ..trace.events import ChannelFault
from ..trace.tracer import NULL_TRACER
from .protocol import Envelope, Request, Response, checksum_of, estimate_size

__all__ = ["ChannelConfig", "Channel", "SHARED_MEMORY", "UNIX_SOCKET"]


@dataclass(frozen=True)
class ChannelConfig:
    """Cost model of one transport."""

    name: str
    #: fixed cost per message (seconds); sockets pay context switches
    per_message_latency: float
    #: incremental cost per payload byte (seconds)
    per_byte_latency: float
    #: how long a sender waits for a reply before retrying (seconds)
    timeout: float = 100e-6
    #: backoff before the first retry (seconds); doubles per retry
    retry_backoff: float = 50e-6
    #: total send attempts per call (1 original + retries)
    max_attempts: int = 5


#: Lock-free shared-memory ring (the paper's optimized transport).
SHARED_MEMORY = ChannelConfig(
    name="shared-memory",
    per_message_latency=0.4e-6,
    per_byte_latency=1.0 / 20e9,  # ~20 GB/s effective copy bandwidth
)

#: A unix-domain-socket baseline: two context switches per round trip.
UNIX_SOCKET = ChannelConfig(
    name="unix-socket",
    per_message_latency=8e-6,
    per_byte_latency=1.0 / 2e9,
)


@dataclass
class ChannelStats:
    """Traffic accounting for one channel, split by direction."""

    messages: int = 0
    bytes: int = 0
    simulated_time: float = 0.0
    requests: int = 0
    responses: int = 0
    request_bytes: int = 0
    response_bytes: int = 0
    #: re-sends after a timeout or retryable failure
    retries: int = 0
    #: attempts that waited the full timeout for a reply that never came
    timeouts: int = 0
    #: injected faults that hit this channel's messages
    faults: int = 0


class Channel:
    """A synchronous request/response channel to a server handler.

    The handler receives :class:`~repro.virt.protocol.Envelope` objects;
    handlers that only care about the payload (most tests) can ignore
    the framing entirely because the channel itself enforces the
    retry/timeout discipline.
    """

    def __init__(self, handler: Callable[[Envelope], Response],
                 config: ChannelConfig = SHARED_MEMORY, *,
                 faults: Any = NULL_INJECTOR,
                 tracer: Any = NULL_TRACER,
                 client_id: str = "") -> None:
        self._handler = handler
        self.config = config
        self.stats = ChannelStats()
        self.faults = faults
        self.tracer = tracer
        self.client_id = client_id
        self._request_seq = 0

    def resume_sequence(self, last_request_id: int) -> None:
        """Continue numbering after ``last_request_id``.

        A channel rebuilt for a migrated client must not reuse request
        ids the server's reply cache already remembers — the cache would
        answer a fresh request with another call's reply.
        """
        self._request_seq = max(self._request_seq, last_request_id)

    # ------------------------------------------------------------------
    def call(self, request: Request) -> Response:
        """Send ``request``; return the server's response.

        Raises :class:`VirtError` if the server reports an API failure,
        so client code sees errors exactly as local execution would;
        :class:`ChannelTimeout` when every attempt is lost; and
        :class:`ClientCrashed` at an injected crash point.
        """
        self._request_seq += 1
        envelope = Envelope(
            request_id=self._request_seq,
            client_id=getattr(request, "client_id", self.client_id),
            payload=request,
            checksum=checksum_of(request),
        )
        last_error = "no attempt made"
        backoff = self.config.retry_backoff
        for attempt in range(1, self.config.max_attempts + 1):
            if attempt > 1:
                self.stats.retries += 1
                self.stats.simulated_time += backoff
                backoff *= 2
            if self.faults.enabled and self.faults.crash_now():
                raise ClientCrashed(
                    f"client {envelope.client_id!r} crashed at request "
                    f"{envelope.request_id} ({type(request).__name__})"
                )
            response = self._attempt(envelope, attempt)
            if response is None:
                self.stats.timeouts += 1
                self.stats.simulated_time += self.config.timeout
                last_error = "timed out waiting for reply"
                continue
            if not response.ok and response.retryable:
                last_error = response.error or "transport failure"
                continue
            if not response.ok:
                raise VirtError(response.error or "server error")
            return response
        raise ChannelTimeout(
            f"request {envelope.request_id} ({type(request).__name__}) "
            f"failed after {self.config.max_attempts} attempts: {last_error}"
        )

    def cost_of(self, message: Any) -> float:
        """Modelled transport time of one message."""
        return (self.config.per_message_latency
                + estimate_size(message) * self.config.per_byte_latency)

    # ------------------------------------------------------------------
    def _attempt(self, envelope: Envelope, attempt: int) -> Response | None:
        """One send/receive attempt; None means the reply never arrived."""
        fault = (self.faults.channel_fault("request")
                 if self.faults.enabled else "none")
        if fault != "none":
            self._note_fault(fault, "request", envelope, attempt)
        if fault == DROP:
            # the bytes left the client but never reached the server
            self._account(envelope, "request")
            return None
        if fault == DELAY:
            self.stats.simulated_time += self.faults.config.delay_time
        sent = envelope
        if fault == CORRUPT:
            sent = Envelope(envelope.request_id, envelope.client_id,
                            envelope.payload, envelope.checksum ^ 0x1)
        self._account(sent, "request")
        response = self._handler(sent)
        if fault == DUPLICATE:
            # second copy of the same envelope: an envelope-aware server
            # answers it from the replay cache, so both replies agree
            self._account(envelope, "request")
            response = self._handler(envelope)

        fault = (self.faults.channel_fault("response")
                 if self.faults.enabled else "none")
        if fault != "none":
            self._note_fault(fault, "response", envelope, attempt)
        if fault == DROP:
            self._account(response, "response")
            return None
        if fault == DELAY:
            self.stats.simulated_time += self.faults.config.delay_time
        self._account(response, "response")
        if fault == DUPLICATE:
            self._account(response, "response")
        if fault == CORRUPT:
            # the client cannot trust a corrupted reply; retry the call
            return Response.transport_failure("response corrupted in transit")
        return response

    def _note_fault(self, fault: str, direction: str, envelope: Envelope,
                    attempt: int) -> None:
        self.stats.faults += 1
        if self.tracer.enabled:
            self.tracer.emit(ChannelFault(
                ts=self.stats.simulated_time,
                client_id=envelope.client_id,
                kernel="",
                fault=fault,
                direction=direction,
                request_id=envelope.request_id,
                attempt=attempt,
            ))

    def _account(self, message: Any, direction: str) -> None:
        size = estimate_size(message)
        self.stats.messages += 1
        self.stats.bytes += size
        if direction == "request":
            self.stats.requests += 1
            self.stats.request_bytes += size
        else:
            self.stats.responses += 1
            self.stats.response_bytes += size
        self.stats.simulated_time += (
            self.config.per_message_latency + size * self.config.per_byte_latency
        )
