"""Client/server communication channels.

The paper found naive API forwarding too slow and adopted shared-memory
channels to avoid context switches (§4.3).  The reproduction models a
channel as a synchronous request/response pipe with a configurable
per-message cost and byte-rate; it *accounts* for the time each
transport would spend, so tests and benchmarks can quantify the
optimization (socket vs shared memory) without real IPC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..errors import VirtError
from .protocol import Request, Response, estimate_size

__all__ = ["ChannelConfig", "Channel", "SHARED_MEMORY", "UNIX_SOCKET"]


@dataclass(frozen=True)
class ChannelConfig:
    """Cost model of one transport."""

    name: str
    #: fixed cost per message (seconds); sockets pay context switches
    per_message_latency: float
    #: incremental cost per payload byte (seconds)
    per_byte_latency: float


#: Lock-free shared-memory ring (the paper's optimized transport).
SHARED_MEMORY = ChannelConfig(
    name="shared-memory",
    per_message_latency=0.4e-6,
    per_byte_latency=1.0 / 20e9,  # ~20 GB/s effective copy bandwidth
)

#: A unix-domain-socket baseline: two context switches per round trip.
UNIX_SOCKET = ChannelConfig(
    name="unix-socket",
    per_message_latency=8e-6,
    per_byte_latency=1.0 / 2e9,
)


@dataclass
class ChannelStats:
    """Traffic accounting for one channel."""

    messages: int = 0
    bytes: int = 0
    simulated_time: float = 0.0


class Channel:
    """A synchronous request/response channel to a server handler."""

    def __init__(self, handler: Callable[[Request], Response],
                 config: ChannelConfig = SHARED_MEMORY) -> None:
        self._handler = handler
        self.config = config
        self.stats = ChannelStats()

    def call(self, request: Request) -> Response:
        """Send ``request``; return the server's response.

        Raises :class:`VirtError` if the server reports failure, so
        client code sees API errors exactly as local execution would.
        """
        self._account(request)
        response = self._handler(request)
        self._account(response)
        if not response.ok:
            raise VirtError(response.error or "server error")
        return response

    def cost_of(self, message: Any) -> float:
        """Modelled transport time of one message."""
        return (self.config.per_message_latency
                + estimate_size(message) * self.config.per_byte_latency)

    def _account(self, message: Any) -> None:
        size = estimate_size(message)
        self.stats.messages += 1
        self.stats.bytes += size
        self.stats.simulated_time += (
            self.config.per_message_latency + size * self.config.per_byte_latency
        )
