"""The client-side interposition layer (the LD_PRELOAD equivalent).

:class:`InterposedBackend` is a drop-in
:class:`~repro.runtime.context.Backend` that forwards device API calls
over a :class:`~repro.virt.channel.Channel` to the Tally server instead
of executing them locally.  An application built on
:class:`~repro.runtime.api.CudaRuntime` runs under Tally by swapping
only this backend — no application change, which is the paper's
non-intrusiveness claim in executable form.

The backend also realizes the §4.3 traffic optimization: calls whose
answers live in runtime-local state (``cudaGetDevice``, stream
bookkeeping) never reach this backend at all — ``CudaRuntime`` answers
them itself — and the counters here let tests assert exactly which
calls crossed the channel.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Mapping

import numpy as np

from ..errors import VirtError
from ..ptx.interpreter import GlobalRef
from ..ptx.ir import Dim3
from ..runtime.context import Backend
from ..runtime.registration import FatBinary
from .channel import Channel
from .protocol import (
    FreeRequest,
    LaunchKernelRequest,
    MallocRequest,
    MemcpyD2HRequest,
    MemcpyH2DRequest,
    RegisterBinaryRequest,
    SynchronizeRequest,
)

__all__ = ["InterposedBackend"]


class InterposedBackend(Backend):
    """Forwards device API calls to a Tally server over a channel."""

    def __init__(self, channel: Channel, client_id: str) -> None:
        if not client_id:
            raise VirtError("client_id must be non-empty")
        self.channel = channel
        self.client_id = client_id
        self.forwarded: Counter[str] = Counter()

    def register_binary(self, binary: FatBinary) -> None:
        self.forwarded["register_binary"] += 1
        self.channel.call(RegisterBinaryRequest(self.client_id, binary))

    def malloc(self, num_elements: int, dtype: Any = np.float64) -> GlobalRef:
        self.forwarded["malloc"] += 1
        response = self.channel.call(
            MallocRequest(self.client_id, num_elements, dtype)
        )
        return response.value

    def free(self, ref: GlobalRef) -> None:
        self.forwarded["free"] += 1
        self.channel.call(FreeRequest(self.client_id, ref))

    def memcpy_h2d(self, dst: GlobalRef, src: np.ndarray) -> None:
        self.forwarded["memcpy_h2d"] += 1
        self.channel.call(MemcpyH2DRequest(self.client_id, dst, src))

    def memcpy_d2h(self, src: GlobalRef, num_elements: int) -> np.ndarray:
        self.forwarded["memcpy_d2h"] += 1
        response = self.channel.call(
            MemcpyD2HRequest(self.client_id, src, num_elements)
        )
        return response.value

    def launch_kernel(self, kernel_name: str, grid: Dim3, block: Dim3,
                      args: Mapping[str, Any], stream: int) -> None:
        self.forwarded["launch_kernel"] += 1
        self.channel.call(
            LaunchKernelRequest(self.client_id, kernel_name, grid, block,
                                dict(args), stream)
        )

    def synchronize(self) -> None:
        self.forwarded["synchronize"] += 1
        self.channel.call(SynchronizeRequest(self.client_id))
