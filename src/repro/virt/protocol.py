"""Client/server message protocol of the virtualization layer.

Each intercepted device API call becomes one request message sent over
a channel to the Tally server, which replies with one response.  The
message set mirrors the API surface of :class:`repro.runtime.api.
CudaRuntime` minus the calls the client answers from local state
(device ordinals, stream handles) — the §4.3 optimization.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Mapping, Union

import numpy as np

from ..ptx.interpreter import GlobalRef
from ..ptx.ir import Dim3
from ..runtime.registration import FatBinary

__all__ = [
    "RegisterBinaryRequest",
    "MallocRequest",
    "FreeRequest",
    "MemcpyH2DRequest",
    "MemcpyD2HRequest",
    "LaunchKernelRequest",
    "SynchronizeRequest",
    "Request",
    "Response",
    "Envelope",
    "checksum_of",
    "estimate_size",
]


@dataclass(frozen=True)
class RegisterBinaryRequest:
    """Forward registered device code to the server."""

    client_id: str
    binary: FatBinary


@dataclass(frozen=True)
class MallocRequest:
    client_id: str
    num_elements: int
    dtype: Any = np.float64


@dataclass(frozen=True)
class FreeRequest:
    client_id: str
    ref: GlobalRef


@dataclass(frozen=True)
class MemcpyH2DRequest:
    client_id: str
    dst: GlobalRef
    data: np.ndarray


@dataclass(frozen=True)
class MemcpyD2HRequest:
    client_id: str
    src: GlobalRef
    num_elements: int


@dataclass(frozen=True)
class LaunchKernelRequest:
    client_id: str
    kernel_name: str
    grid: Dim3
    block: Dim3
    args: Mapping[str, Any]
    stream: int = 0


@dataclass(frozen=True)
class SynchronizeRequest:
    client_id: str


Request = Union[
    RegisterBinaryRequest,
    MallocRequest,
    FreeRequest,
    MemcpyH2DRequest,
    MemcpyD2HRequest,
    LaunchKernelRequest,
    SynchronizeRequest,
]


@dataclass(frozen=True)
class Response:
    """Server reply: a value on success, an error string on failure.

    ``retryable`` separates transport-level failures (checksum mismatch,
    unparseable envelope — resend the same request) from API failures
    (double free, unknown kernel — retrying cannot help, so the channel
    surfaces them to the caller as :class:`~repro.errors.VirtError`).
    """

    ok: bool
    value: Any = None
    error: str | None = None
    retryable: bool = False

    @staticmethod
    def success(value: Any = None) -> "Response":
        return Response(ok=True, value=value)

    @staticmethod
    def failure(error: str) -> "Response":
        return Response(ok=False, error=error)

    @staticmethod
    def transport_failure(error: str) -> "Response":
        return Response(ok=False, error=error, retryable=True)


@dataclass(frozen=True)
class Envelope:
    """Transport frame around a request: id + integrity checksum.

    ``request_id`` is unique per (client, attempt-group): every retry of
    the same logical call reuses the id, which is what lets the server's
    replay cache answer a duplicate or retried request idempotently.
    ``checksum`` covers the payload; the server rejects a mismatch with
    a *retryable* failure instead of executing a corrupted request.
    ``deadline`` (absolute simulated time, ``None`` = none) propagates
    the caller's latency bound so the server can shed work that can no
    longer meet it instead of burning capacity on a doomed reply.
    """

    request_id: int
    client_id: str
    payload: Request
    checksum: int
    deadline: float | None = None


def checksum_of(message: Any) -> int:
    """Structural checksum of a message (stands in for a byte CRC).

    The simulator never serializes messages, so the checksum covers a
    stable structural token — message type, client, estimated wire size
    — which is enough to detect the injector's corruption (a checksum
    bit-flip) while staying cheap on the fault-free path.
    """
    token = (
        f"{type(message).__name__}:"
        f"{getattr(message, 'client_id', '')}:"
        f"{estimate_size(message)}"
    )
    return zlib.crc32(token.encode())


def estimate_size(message: Any) -> int:
    """Rough wire size of a message in bytes (for channel accounting).

    Envelopes are costed as their payload: the frame's fields live in
    the fixed per-message header every transport already charges for.
    Request and response payloads are costed symmetrically — an array
    travelling D2H in a response costs the same 64-byte header plus
    payload bytes as the H2D request carrying it up.
    """
    if isinstance(message, Envelope):
        return estimate_size(message.payload)
    if isinstance(message, MemcpyH2DRequest):
        return 64 + message.data.nbytes
    if isinstance(message, MemcpyD2HRequest):
        return 64
    if isinstance(message, RegisterBinaryRequest):
        return 128 + sum(
            64 + 16 * len(k.body) for k in message.binary.kernels
        )
    if isinstance(message, LaunchKernelRequest):
        return 96 + 16 * len(message.args)
    if isinstance(message, Response) and isinstance(message.value, np.ndarray):
        return 64 + message.value.nbytes
    return 64
