"""Overload-resilience primitives for channels.

Retries are load-bearing during faults — and load-*generating* during
overload.  A fleet of clients that all retry a struggling server with
deterministic exponential backoff multiplies offered load exactly when
capacity is lowest, and keeps it multiplied after the fault clears: the
metastable-failure mode.  This module provides the three standard
counter-measures, built for the simulator's determinism requirements:

* :func:`decorrelated_jitter` — seeded decorrelated-jitter backoff, so
  replays are bit-identical while distinct clients de-synchronize;
* :class:`RetryBudget` — a token bucket that caps retries at a fixed
  fraction of fresh traffic, so retry load can never exceed
  ``ratio`` x the fresh request rate no matter how long a fault lasts;
* :class:`CircuitBreaker` — a per-target closed → open → half-open
  state machine that fails fast after consecutive failures and probes
  recovery on a seeded, jittered timer.

All timing is simulated: components read time from an injected
``clock`` callable and draw randomness from :class:`random.Random`
instances seeded from ``(seed, client_id/target)``, never from wall
clock or global RNG state.  See ``docs/fault_tolerance.md``
("Overload and metastability").
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, List, Tuple

from ..trace.events import BreakerTransition
from ..trace.tracer import NULL_TRACER

__all__ = [
    "ResilienceConfig",
    "RetryBudget",
    "CircuitBreaker",
    "decorrelated_jitter",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
]

#: breaker state names (stable wire strings used in traces and tests)
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


def decorrelated_jitter(rng: random.Random, base: float, cap: float,
                        previous: float) -> float:
    """One decorrelated-jitter backoff step.

    ``sleep = min(cap, uniform(base, previous * 3))`` — the AWS
    "decorrelated jitter" recipe: each step is drawn relative to the
    *previous* sleep rather than the attempt number, which spreads
    concurrent clients apart instead of letting them re-collide at
    every power-of-two boundary.
    """
    return min(cap, rng.uniform(base, max(base, previous * 3.0)))


@dataclass(frozen=True)
class ResilienceConfig:
    """Tuning for retry budgets and circuit breakers.

    The defaults are deliberately conservative: a budget ratio of 0.1
    bounds steady-state retry amplification at 1.1x fresh traffic, and
    breaker open windows are long relative to channel timeouts so a
    degraded server sees probes, not storms.
    """

    #: retry tokens earned per fresh (first-attempt) call
    retry_budget_ratio: float = 0.1
    #: tokens a fresh budget starts with (allows short fault blips)
    retry_budget_min: float = 5.0
    #: token-bucket capacity (bounds the post-idle retry burst)
    retry_budget_cap: float = 50.0
    #: consecutive call failures that trip the breaker open
    breaker_failure_threshold: int = 5
    #: first open window before a half-open probe (seconds)
    breaker_open_base: float = 25e-3
    #: longest open window (seconds); repeated failures saturate here
    breaker_open_cap: float = 400e-3
    #: concurrent probe calls admitted while half-open
    breaker_half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.retry_budget_ratio < 0:
            raise ValueError("retry_budget_ratio must be >= 0")
        if self.retry_budget_cap < self.retry_budget_min:
            raise ValueError("retry_budget_cap must be >= retry_budget_min")
        if self.breaker_failure_threshold < 1:
            raise ValueError("breaker_failure_threshold must be >= 1")
        if self.breaker_open_cap < self.breaker_open_base:
            raise ValueError("breaker_open_cap must be >= breaker_open_base")
        if self.breaker_half_open_probes < 1:
            raise ValueError("breaker_half_open_probes must be >= 1")


class RetryBudget:
    """Token bucket capping retries at a fraction of fresh traffic.

    Every *fresh* call deposits ``retry_budget_ratio`` tokens; every
    retry withdraws one.  When the bucket is empty the channel fails
    fast (:class:`~repro.errors.RetryBudgetExhausted`) instead of
    re-sending — so however long a fault lasts, retry load stays
    bounded by ``ratio`` x the fresh request rate plus the initial
    float, and the server is never held underwater by its own clients.
    """

    def __init__(self, config: ResilienceConfig) -> None:
        self.config = config
        self.tokens = float(config.retry_budget_min)
        #: fresh calls that earned tokens
        self.fresh = 0
        #: retries paid for
        self.spent = 0
        #: retries refused because the bucket was empty
        self.refused = 0

    @property
    def exhausted(self) -> bool:
        """True when the bucket cannot pay for one more retry."""
        return self.tokens < 1.0

    def on_fresh(self) -> None:
        """Deposit for one first-attempt call."""
        self.fresh += 1
        self.tokens = min(self.config.retry_budget_cap,
                          self.tokens + self.config.retry_budget_ratio)

    def try_spend(self) -> bool:
        """Withdraw one token for a retry; False if the bucket is empty."""
        if self.tokens < 1.0:
            self.refused += 1
            return False
        self.tokens -= 1.0
        self.spent += 1
        return True


class CircuitBreaker:
    """Per-target closed → open → half-open breaker.

    *Closed* passes calls and counts consecutive failures; at
    ``breaker_failure_threshold`` it opens.  *Open* refuses calls
    (:class:`~repro.errors.CircuitOpen` at the channel) until a seeded,
    decorrelated-jitter window elapses, then admits up to
    ``breaker_half_open_probes`` probe calls (*half-open*).  A probe
    success closes the breaker; a probe failure re-opens it with a
    longer window (saturating at ``breaker_open_cap``).

    One breaker guards one *target* (e.g. one server); channels from
    the same client to the same target should share an instance so
    fast-fails protect every path at once.  All timing comes from the
    injected ``clock`` and all randomness from a ``Random`` seeded on
    ``(seed, target)``, keeping replays bit-identical.
    """

    def __init__(self, config: ResilienceConfig, *,
                 target: str = "server",
                 seed: int = 0,
                 clock: Callable[[], float] | None = None,
                 tracer: Any = NULL_TRACER,
                 client_id: str = "") -> None:
        self.config = config
        self.target = target
        self.tracer = tracer
        self.client_id = client_id
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._rng = random.Random(f"{seed}/{client_id}/{target}/breaker")
        self.state = BREAKER_CLOSED
        self.failures = 0          # consecutive failures while closed
        self.fast_fails = 0        # calls refused while open
        self._open_until = 0.0
        self._open_window = 0.0    # previous window (jitter recurrence)
        self._probes_in_flight = 0
        #: (ts, from_state, to_state, reason) history for reports
        self.transitions: List[Tuple[float, str, str, str]] = []

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """May a call proceed right now?

        In half-open state a ``True`` reserves a probe slot; the caller
        must follow up with :meth:`record_success` or
        :meth:`record_failure` to release it.
        """
        if self.state == BREAKER_CLOSED:
            return True
        if self.state == BREAKER_OPEN:
            if self._clock() >= self._open_until:
                self._transition(BREAKER_HALF_OPEN, "open window elapsed")
                self._probes_in_flight = 1
                return True
            self.fast_fails += 1
            return False
        # half-open: admit probes up to the configured concurrency
        if self._probes_in_flight < self.config.breaker_half_open_probes:
            self._probes_in_flight += 1
            return True
        self.fast_fails += 1
        return False

    def record_success(self) -> None:
        """A call the breaker admitted reached the server and returned."""
        if self.state == BREAKER_HALF_OPEN:
            self._probes_in_flight = max(0, self._probes_in_flight - 1)
            self._transition(BREAKER_CLOSED, "probe succeeded")
        self.failures = 0

    def abandon(self) -> None:
        """An admitted call ended with no verdict on the target.

        Client crashes and local deadline give-ups say nothing about
        the server's health; release any half-open probe slot so the
        breaker is not wedged waiting on a call that will never report.
        """
        if self.state == BREAKER_HALF_OPEN:
            self._probes_in_flight = max(0, self._probes_in_flight - 1)

    def record_failure(self) -> None:
        """A call the breaker admitted failed terminally."""
        if self.state == BREAKER_HALF_OPEN:
            self._probes_in_flight = max(0, self._probes_in_flight - 1)
            self._open(reason="probe failed")
            return
        if self.state == BREAKER_OPEN:
            return  # late failure from a call admitted before opening
        self.failures += 1
        if self.failures >= self.config.breaker_failure_threshold:
            self._open(reason=f"{self.failures} consecutive failures")

    # ------------------------------------------------------------------
    def _open(self, reason: str) -> None:
        cfg = self.config
        self._open_window = decorrelated_jitter(
            self._rng, cfg.breaker_open_base, cfg.breaker_open_cap,
            self._open_window)
        self._open_until = self._clock() + self._open_window
        self._transition(BREAKER_OPEN, reason)

    def _transition(self, to_state: str, reason: str) -> None:
        now = self._clock()
        from_state = self.state
        self.state = to_state
        self.transitions.append((now, from_state, to_state, reason))
        if to_state == BREAKER_CLOSED:
            self.failures = 0
        if self.tracer.enabled:
            self.tracer.emit(BreakerTransition(
                ts=now,
                client_id=self.client_id,
                kernel="",
                target=self.target,
                from_state=from_state,
                to_state=to_state,
                reason=reason,
                failures=self.failures,
            ))
