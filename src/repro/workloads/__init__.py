"""The paper's workload suite and job drivers."""

from .distributions import DurationComponent, DurationMixture
from .inference import InferenceJob, RequestRecord
from .models import (
    INFERENCE_MODELS,
    TRAINING_MODELS,
    Trace,
    TraceOp,
    WorkloadKind,
    WorkloadModel,
    get_model,
)
from .training import TrainingJob

__all__ = [
    "DurationComponent",
    "DurationMixture",
    "INFERENCE_MODELS",
    "InferenceJob",
    "RequestRecord",
    "TRAINING_MODELS",
    "Trace",
    "TraceOp",
    "TrainingJob",
    "WorkloadKind",
    "WorkloadModel",
    "get_model",
]
