"""The paper's workload suite and job drivers."""

from .distributions import DurationComponent, DurationMixture
from .inference import InferenceJob, RequestRecord
from .llm import (
    BrownoutConfig,
    KVCache,
    LLM_MODELS,
    LLMRequest,
    LLMServingJob,
    LLMServingModel,
    TokenLengths,
    get_llm_model,
)
from .models import (
    INFERENCE_MODELS,
    TRAINING_MODELS,
    Trace,
    TraceOp,
    WorkloadKind,
    WorkloadModel,
    get_model,
)
from .training import TrainingJob

__all__ = [
    "BrownoutConfig",
    "DurationComponent",
    "DurationMixture",
    "INFERENCE_MODELS",
    "InferenceJob",
    "KVCache",
    "LLM_MODELS",
    "LLMRequest",
    "LLMServingJob",
    "LLMServingModel",
    "RequestRecord",
    "TokenLengths",
    "TRAINING_MODELS",
    "Trace",
    "TraceOp",
    "TrainingJob",
    "WorkloadKind",
    "WorkloadModel",
    "get_model",
    "get_llm_model",
]
