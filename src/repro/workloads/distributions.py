"""Kernel-duration distributions for workload modelling.

DL workloads are streams of kernels whose duration distribution is what
drives co-execution interference (paper §5.5: 99.3 % of ResNet50
kernels finish under 0.1 ms while 5.6 % of Whisper kernels outlast an
entire BERT inference).  A :class:`DurationMixture` captures such
shapes as a weighted mixture of lognormal components.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError

__all__ = ["DurationComponent", "DurationMixture"]


@dataclass(frozen=True)
class DurationComponent:
    """One lognormal component: ``median`` seconds, log-space ``sigma``."""

    weight: float
    median: float
    sigma: float

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise WorkloadError(f"component weight {self.weight} must be > 0")
        if self.median <= 0:
            raise WorkloadError(f"component median {self.median} must be > 0")
        if self.sigma < 0:
            raise WorkloadError(f"component sigma {self.sigma} must be >= 0")


@dataclass(frozen=True)
class DurationMixture:
    """A weighted mixture of lognormal duration components."""

    components: tuple[DurationComponent, ...]

    def __post_init__(self) -> None:
        if not self.components:
            raise WorkloadError("mixture needs at least one component")

    @staticmethod
    def of(*components: tuple[float, float, float]) -> "DurationMixture":
        """Build from ``(weight, median_seconds, sigma)`` triples."""
        return DurationMixture(
            tuple(DurationComponent(w, m, s) for w, m, s in components)
        )

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` durations (seconds)."""
        if n < 1:
            raise WorkloadError(f"cannot sample {n} durations")
        weights = np.array([c.weight for c in self.components])
        weights = weights / weights.sum()
        choices = rng.choice(len(self.components), size=n, p=weights)
        out = np.empty(n)
        for i, component in enumerate(self.components):
            mask = choices == i
            count = int(mask.sum())
            if count:
                out[mask] = component.median * np.exp(
                    component.sigma * rng.standard_normal(count)
                )
        return out

    def mean(self) -> float:
        """Analytic mean of the mixture."""
        weights = np.array([c.weight for c in self.components])
        weights = weights / weights.sum()
        means = np.array([
            c.median * np.exp(c.sigma ** 2 / 2.0) for c in self.components
        ])
        return float(weights @ means)

    def tail_fraction(self, threshold: float) -> float:
        """Analytic P(duration > threshold)."""
        from math import erf, log, sqrt

        weights = np.array([c.weight for c in self.components])
        weights = weights / weights.sum()
        total = 0.0
        for w, c in zip(weights, self.components):
            if c.sigma == 0:
                tail = 1.0 if c.median > threshold else 0.0
            else:
                z = (log(threshold) - log(c.median)) / c.sigma
                tail = 0.5 * (1.0 - erf(z / sqrt(2.0)))
            total += w * tail
        return total
