"""Latency-critical inference service driver.

An inference service receives requests per a
:class:`~repro.traffic.TrafficTrace` and serves them FIFO, one at a
time; each request executes the model's kernel trace through the
sharing policy.  Request latency (completion minus arrival, i.e.
including queueing) is the quantity whose 99th percentile the paper
reports.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..baselines.base import Priority, SharingPolicy
from ..errors import WorkloadError
from ..gpu.engine import EventLoop
from ..metrics.latency import LatencySummary
from ..trace import QueueDepth
from ..traffic.maf import TrafficTrace
from .models import Trace

__all__ = ["RequestRecord", "InferenceJob"]


@dataclass(frozen=True)
class RequestRecord:
    """Timing of one completed request."""

    arrival: float
    started: float
    completed: float

    @property
    def latency(self) -> float:
        return self.completed - self.arrival

    @property
    def queueing(self) -> float:
        return self.started - self.arrival


class InferenceJob:
    """Drives one inference service through a sharing policy."""

    def __init__(self, trace: Trace, traffic: TrafficTrace,
                 policy: SharingPolicy, client_id: str, *,
                 priority: Priority = Priority.HIGH) -> None:
        if not trace.ops:
            raise WorkloadError(f"trace {trace.model_name!r} is empty")
        self.trace = trace
        self.traffic = traffic
        self.policy = policy
        self.engine: EventLoop = policy.engine
        self.client_id = client_id
        self.priority = priority
        self.records: list[RequestRecord] = []
        self._queue: deque[float] = deque()
        self._busy = False
        self._arrival_index = 0
        self._op_index = 0
        self._current_arrival = 0.0
        self._current_start = 0.0
        self._started = False
        self.crashed = False
        policy.register_client(client_id, priority)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the arrival process (call once, before running the engine)."""
        if self._started:
            raise WorkloadError(f"job {self.client_id!r} already started")
        self._started = True
        self._schedule_next_arrival()

    def crash(self) -> None:
        """The client process dies: stop arriving and submitting.

        Queued requests are abandoned and any in-flight request never
        completes — the policy's ``disconnect`` reclaims the device
        side; late completion callbacks become no-ops.  Records of
        already-completed requests stay, so before/after-crash latency
        comparisons remain possible.
        """
        self.crashed = True
        self._queue.clear()
        self._busy = False

    @property
    def completed_requests(self) -> int:
        return len(self.records)

    @property
    def pending_requests(self) -> int:
        return len(self._queue) + (1 if self._busy else 0)

    def latencies(self, *, since: float = 0.0,
                  until: float = float("inf")) -> list[float]:
        """Latencies of requests completed within [since, until)."""
        return [r.latency for r in self.records
                if since <= r.completed < until]

    def latency_summary(self, *, since: float = 0.0,
                        until: float = float("inf")) -> LatencySummary:
        return LatencySummary.of(self.latencies(since=since, until=until))

    def queueing_delays(self, *, since: float = 0.0,
                        until: float = float("inf")) -> list[float]:
        """Arrival-to-start delays of requests completed in the window.

        End-to-end latency already *contains* this delay, but reporting
        it separately makes submission-time queueing observable: under
        bursty arrivals (``maf_trace`` spike seconds) a request can wait
        behind the backlog far longer than it executes, and a latency
        summary alone cannot say which share of the p99 is queueing.
        """
        return [r.queueing for r in self.records
                if since <= r.completed < until]

    def queueing_summary(self, *, since: float = 0.0,
                         until: float = float("inf")
                         ) -> LatencySummary | None:
        """Summary of queueing delays, or None if nothing completed."""
        delays = self.queueing_delays(since=since, until=until)
        return LatencySummary.of(delays) if delays else None

    def completions_in(self, start: float, end: float) -> int:
        """Requests completed within [start, end)."""
        return sum(1 for r in self.records if start <= r.completed < end)

    # ------------------------------------------------------------------
    def _schedule_next_arrival(self) -> None:
        if self._arrival_index >= self.traffic.count:
            return
        when = float(self.traffic.arrivals[self._arrival_index])
        self._arrival_index += 1
        self.engine.schedule_at(when, self._on_arrival)

    def _on_arrival(self) -> None:
        if self.crashed:
            return  # the arrival event outlived the process
        self._queue.append(self.engine.now)
        self._schedule_next_arrival()
        self._sample_queue_depth()
        if not self._busy:
            self._start_request()

    def _sample_queue_depth(self) -> None:
        tracer = self.policy.tracer
        if tracer.enabled:
            tracer.emit(QueueDepth(
                ts=self.engine.now, client_id=self.client_id, kernel="",
                depth=self.pending_requests,
            ))

    def _start_request(self) -> None:
        self._busy = True
        self._current_arrival = self._queue.popleft()
        self._current_start = self.engine.now
        self._op_index = 0
        self._advance()

    def _advance(self) -> None:
        if self.crashed:
            return  # a completion racing the crash; nobody is listening
        if self._op_index >= len(self.trace.ops):
            self.records.append(RequestRecord(
                arrival=self._current_arrival,
                started=self._current_start,
                completed=self.engine.now,
            ))
            self._busy = False
            self._sample_queue_depth()
            if self._queue:
                self._start_request()
            return
        op = self.trace.ops[self._op_index]
        self._op_index += 1
        if op.kind == "gap":
            self.engine.schedule(op.gap, self._advance)
        else:
            self.policy.submit(self.client_id, op.kernel,
                               self._advance)
