"""Latency-critical inference service driver.

An inference service receives requests per a
:class:`~repro.traffic.TrafficTrace` and serves them FIFO, one at a
time; each request executes the model's kernel trace through the
sharing policy.  Request latency (completion minus arrival, i.e.
including queueing) is the quantity whose 99th percentile the paper
reports.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..baselines.base import Priority, SharingPolicy
from ..errors import MigrationError, WorkloadError
from ..gpu.engine import Event, EventLoop
from ..metrics.latency import LatencySummary
from ..trace import QueueDepth
from ..traffic.maf import TrafficTrace
from .models import Trace

__all__ = ["RequestRecord", "InferenceJob"]


@dataclass(frozen=True)
class RequestRecord:
    """Timing of one completed request."""

    arrival: float
    started: float
    completed: float

    @property
    def latency(self) -> float:
        return self.completed - self.arrival

    @property
    def queueing(self) -> float:
        return self.started - self.arrival


class InferenceJob:
    """Drives one inference service through a sharing policy."""

    def __init__(self, trace: Trace, traffic: TrafficTrace,
                 policy: SharingPolicy, client_id: str, *,
                 priority: Priority = Priority.HIGH) -> None:
        if not trace.ops:
            raise WorkloadError(f"trace {trace.model_name!r} is empty")
        self.trace = trace
        self.traffic = traffic
        self.policy = policy
        self.engine: EventLoop = policy.engine
        self.client_id = client_id
        self.priority = priority
        self.records: list[RequestRecord] = []
        self._queue: deque[float] = deque()
        self._busy = False
        self._arrival_index = 0
        self._op_index = 0
        self._current_arrival = 0.0
        self._current_start = 0.0
        self._started = False
        self.crashed = False
        #: requests that ever entered the queue (conservation:
        #: ``arrivals_total == completed + pending + shed``)
        self.arrivals_total = 0
        #: requests discarded by a crash, never to complete
        self.shed_requests = 0
        self._paused = False
        self._closed = False
        self._epoch = 0          # bumped by checkpoint(); stale-callback guard
        self._gap_event: Event | None = None
        self._arrival_event: Event | None = None
        policy.register_client(client_id, priority)

    # ------------------------------------------------------------------
    def start(self, *, since: float = 0.0) -> None:
        """Arm the arrival process (call once, before running the engine).

        ``since`` skips arrivals scheduled before that time — the online
        control plane admits jobs mid-run, and requests "sent" before
        the service existed never happened.
        """
        if self._started:
            raise WorkloadError(f"job {self.client_id!r} already started")
        self._started = True
        if since > 0.0:
            arrivals = self.traffic.arrivals
            while (self._arrival_index < self.traffic.count
                   and float(arrivals[self._arrival_index]) < since):
                self._arrival_index += 1
        self._schedule_next_arrival()

    def close(self) -> None:
        """Graceful departure: stop accepting new arrivals.

        Unlike :meth:`crash`, queued and in-flight requests still
        complete — the service drains before it leaves the cluster.
        """
        self._closed = True

    def crash(self) -> None:
        """The client process dies: stop arriving and submitting.

        Queued requests are abandoned and any in-flight request never
        completes — the policy's ``disconnect`` reclaims the device
        side; late completion callbacks become no-ops.  Records of
        already-completed requests stay, so before/after-crash latency
        comparisons remain possible.
        """
        self.crashed = True
        self.shed_requests += len(self._queue) + (1 if self._busy else 0)
        self._queue.clear()
        self._busy = False

    # -- checkpoint/restore (live migration) ---------------------------
    def checkpoint(self) -> None:
        """Freeze the driver so it can be restored on another device.

        Cancels the pending gap timer, bumps the submit epoch so kernel
        completions from the old device are ignored, and requeues any
        in-flight request at the queue front — it will replay from its
        first kernel after :meth:`restore`, keeping its original arrival
        time so the latency it reports includes the migration downtime.
        Arrivals keep queueing while paused (the traffic source outlives
        the device), so no admitted request is lost.
        """
        self._paused = True
        self._epoch += 1
        if self._gap_event is not None:
            self._gap_event.cancel()
            self._gap_event = None
        if self._busy:
            self._queue.appendleft(self._current_arrival)
            self._busy = False

    def restore(self, policy: SharingPolicy) -> None:
        """Resume on ``policy`` (after :meth:`checkpoint`).

        The new policy must share the driver's event loop — arrival
        events are already scheduled on it.  Registers the client with
        the new policy and restarts the head-of-queue request.
        """
        if policy.engine is not self.engine:
            raise MigrationError(
                f"cannot restore {self.client_id!r}: target policy runs on a "
                "different event loop than the one its arrivals are scheduled on"
            )
        if not self._paused:
            raise MigrationError(
                f"restore of {self.client_id!r} without a checkpoint")
        self.policy = policy
        policy.register_client(self.client_id, self.priority)
        self._paused = False
        if self._queue and not self._busy:
            self._start_request()

    # -- freeze/thaw (cross-loop migration) ----------------------------
    def freeze_state(self) -> dict:
        """Serialize the mutable driver state of a checkpointed job.

        Unlike :meth:`checkpoint`/:meth:`restore` — which keep the same
        object on the same event loop — freeze/thaw moves a driver to a
        *different* event loop (a parallel-engine shard on another
        worker).  The pending arrival event cannot cross loops, so it is
        cancelled here and re-armed by :meth:`thaw` from the (identical,
        deterministically rebuilt) traffic trace.  The old object is
        left inert: stale kernel completions are epoch-guarded no-ops,
        exactly as they are after an in-loop migration.
        """
        if not self._paused:
            raise MigrationError(
                f"freeze of {self.client_id!r} without a checkpoint")
        resume_index = self._arrival_index
        if self._arrival_event is not None:
            self._arrival_event.cancel()
            self._arrival_event = None
            resume_index -= 1  # the cancelled arrival re-arms on thaw
        return {
            "client_id": self.client_id,
            "priority": self.priority,
            "records": list(self.records),
            "queue": list(self._queue),
            "arrival_index": resume_index,
            "started": self._started,
            "crashed": self.crashed,
            "arrivals_total": self.arrivals_total,
            "shed_requests": self.shed_requests,
            "closed": self._closed,
            "epoch": self._epoch,
        }

    @classmethod
    def thaw(cls, trace: Trace, traffic: TrafficTrace,
             policy: SharingPolicy, state: dict) -> "InferenceJob":
        """Rebuild a frozen driver on ``policy``'s event loop.

        ``trace``/``traffic`` must be the deterministic rebuilds of the
        originals (same model, seed, and config).  The thawed driver is
        paused and *not* registered with the policy — exactly the state
        an in-loop driver is in between ``checkpoint()`` and
        ``restore()`` — but its arrival chain is live, so requests keep
        queueing through the migration downtime.
        """
        job = cls.__new__(cls)
        job.trace = trace
        job.traffic = traffic
        job.policy = policy
        job.engine = policy.engine
        job.client_id = state["client_id"]
        job.priority = state["priority"]
        job.records = list(state["records"])
        job._queue = deque(state["queue"])
        job._busy = False
        job._arrival_index = state["arrival_index"]
        job._op_index = 0
        job._current_arrival = 0.0
        job._current_start = 0.0
        job._started = state["started"]
        job.crashed = state["crashed"]
        job.arrivals_total = state["arrivals_total"]
        job.shed_requests = state["shed_requests"]
        job._paused = True
        job._closed = state["closed"]
        job._epoch = state["epoch"]
        job._gap_event = None
        job._arrival_event = None
        job._schedule_next_arrival()
        return job

    @property
    def completed_requests(self) -> int:
        return len(self.records)

    @property
    def pending_requests(self) -> int:
        return len(self._queue) + (1 if self._busy else 0)

    def latencies(self, *, since: float = 0.0,
                  until: float = float("inf")) -> list[float]:
        """Latencies of requests completed within [since, until)."""
        return [r.latency for r in self.records
                if since <= r.completed < until]

    def latency_summary(self, *, since: float = 0.0,
                        until: float = float("inf")) -> LatencySummary:
        return LatencySummary.of(self.latencies(since=since, until=until))

    def queueing_delays(self, *, since: float = 0.0,
                        until: float = float("inf")) -> list[float]:
        """Arrival-to-start delays of requests completed in the window.

        End-to-end latency already *contains* this delay, but reporting
        it separately makes submission-time queueing observable: under
        bursty arrivals (``maf_trace`` spike seconds) a request can wait
        behind the backlog far longer than it executes, and a latency
        summary alone cannot say which share of the p99 is queueing.
        """
        return [r.queueing for r in self.records
                if since <= r.completed < until]

    def queueing_summary(self, *, since: float = 0.0,
                         until: float = float("inf")
                         ) -> LatencySummary | None:
        """Summary of queueing delays, or None if nothing completed."""
        delays = self.queueing_delays(since=since, until=until)
        return LatencySummary.of(delays) if delays else None

    def completions_in(self, start: float, end: float) -> int:
        """Requests completed within [start, end)."""
        return sum(1 for r in self.records if start <= r.completed < end)

    # ------------------------------------------------------------------
    def _schedule_next_arrival(self) -> None:
        if self._closed or self._arrival_index >= self.traffic.count:
            return
        when = float(self.traffic.arrivals[self._arrival_index])
        self._arrival_index += 1
        self._arrival_event = self.engine.schedule_at(when, self._on_arrival)

    def _on_arrival(self) -> None:
        self._arrival_event = None
        if self.crashed:
            return  # the arrival event outlived the process
        self.arrivals_total += 1
        self._queue.append(self.engine.now)
        self._schedule_next_arrival()
        self._sample_queue_depth()
        if not self._busy and not self._paused:
            self._start_request()

    def _sample_queue_depth(self) -> None:
        tracer = self.policy.tracer
        if tracer.enabled:
            tracer.emit(QueueDepth(
                ts=self.engine.now, client_id=self.client_id, kernel="",
                depth=self.pending_requests,
            ))

    def _start_request(self) -> None:
        self._busy = True
        self._current_arrival = self._queue.popleft()
        self._current_start = self.engine.now
        self._op_index = 0
        self._advance()

    def _advance(self) -> None:
        if self.crashed or self._paused:
            return  # a completion racing a crash or checkpoint
        self._gap_event = None
        if self._op_index >= len(self.trace.ops):
            self.records.append(RequestRecord(
                arrival=self._current_arrival,
                started=self._current_start,
                completed=self.engine.now,
            ))
            self._busy = False
            self._sample_queue_depth()
            if self._queue:
                self._start_request()
            return
        op = self.trace.ops[self._op_index]
        self._op_index += 1
        if op.kind == "gap":
            self._gap_event = self.engine.schedule(op.gap, self._advance)
        else:
            epoch = self._epoch
            self.policy.submit(self.client_id, op.kernel,
                               lambda: self._kernel_done(epoch))

    def _kernel_done(self, epoch: int) -> None:
        if epoch != self._epoch:
            return  # completion from a device this client migrated off
        self._advance()
