"""LLM inference serving: autoregressive decode under continuous batching.

The Table 2 suite drives every service with a *fixed* kernel trace per
request.  Modern serving traffic is autoregressive: each request runs a
**prefill** phase whose cost scales with its prompt, then a **decode**
loop that emits one token per step until the sampled output length is
reached, while a **continuous-batching** scheduler admits, merges, and
evicts requests mid-flight and the **KV cache** grows by one token per
sequence per step.  Following Revati's observation that this workload
class is faithfully simulable GPU-free, this module models it on the
same discrete-event substrate as the rest of the suite:

* an :class:`LLMServingModel` describes one served model — prompt and
  output length distributions, per-token prefill/decode costs, KV
  bytes per token, batching limits, and the KV pool carved out of
  device memory;
* a :class:`KVCache` accounts per-request cache blocks (paged, vLLM
  style) through :class:`~repro.runtime.memory.MemoryManager`, so
  allocation, growth, eviction, and release flow through the same
  allocator the functional runtime uses and conservation is auditable
  (bytes allocated == bytes freed at drain);
* an :class:`LLMServingJob` drives requests from a
  :class:`~repro.traffic.TrafficTrace` through a sharing policy: it
  submits prefill-chunk and batched-decode-step kernels, admits
  waiting requests whenever batch slots and KV headroom allow, and
  shelves the *youngest* running request when the pool runs dry.

Kernel streams are deterministic: lengths are sampled once from a
seeded generator, and kernel descriptors are pure functions of
``(model, phase, bucket)`` — names repeat, so Tally's transparent
profiler cache works exactly as it does for the trace models.  Decode
cost is quantized to the batch bucket (next power of two) so a kernel
name always implies one duration.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from ..baselines.base import Priority, SharingPolicy
from ..errors import WorkloadError
from ..gpu.engine import EventLoop
from ..gpu.kernel import KernelDescriptor
from ..gpu.specs import GPUSpec
from ..metrics.serving import ServingSLO, ServingSummary
from ..runtime.memory import MemoryManager
from ..trace import BrownoutShift, DeadlineShed, QueueDepth
from ..traffic.maf import TrafficTrace

__all__ = [
    "TokenLengths",
    "LLMServingModel",
    "LLM_MODELS",
    "get_llm_model",
    "KVCache",
    "LLMRequest",
    "LLMServingJob",
    "BrownoutConfig",
]


# ---------------------------------------------------------------------------
# Model description
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TokenLengths:
    """Bounded lognormal token-count distribution (prompt or output)."""

    mean: float
    sigma: float
    minimum: int
    maximum: int

    def __post_init__(self) -> None:
        if self.mean <= 0 or self.sigma < 0:
            raise WorkloadError("mean must be > 0 and sigma >= 0")
        if not 1 <= self.minimum <= self.maximum:
            raise WorkloadError("need 1 <= minimum <= maximum")

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """``count`` integer lengths, clipped into [minimum, maximum]."""
        mu = np.log(self.mean) - 0.5 * self.sigma ** 2
        raw = rng.lognormal(mu, self.sigma, size=count)
        return np.clip(np.rint(raw), self.minimum,
                       self.maximum).astype(int)


def _pow2_bucket(value: int, cap: int) -> int:
    """Smallest power of two >= value, clipped to ``cap``."""
    bucket = 1
    while bucket < value:
        bucket *= 2
    return min(bucket, cap)


@dataclass(frozen=True)
class LLMServingModel:
    """Statistical description of one autoregressively served model.

    Per-token costs are *condensed* the same way the Table 2 traces
    are: shorter than the real model's, same phase structure and
    interference physics, so colocation results normalize cleanly.
    """

    name: str
    #: parameter count (drives the weight-memory footprint)
    params: float
    prompt_tokens: TokenLengths
    output_tokens: TokenLengths
    #: idle-device prefill cost per prompt token (seconds)
    prefill_token_time: float
    #: idle-device base cost of one decode step (seconds)
    decode_step_time: float
    #: incremental decode-step cost per sequence in the batch (seconds)
    decode_seq_time: float
    #: host-side work between steps (sampling, detokenize, scheduling)
    host_gap: float
    #: KV-cache bytes per token per sequence (2 x layers x hidden x 2B)
    kv_bytes_per_token: int
    #: KV pool carved out for this service (bytes)
    kv_capacity_bytes: int
    #: max sequences decoded per step
    max_batch: int = 16
    #: prompt tokens processed per prefill kernel
    prefill_chunk: int = 128
    #: tokens per KV block (paged-attention granularity)
    kv_block_tokens: int = 16

    def __post_init__(self) -> None:
        if min(self.prefill_token_time, self.decode_step_time,
               self.decode_seq_time) <= 0 or self.host_gap < 0:
            raise WorkloadError(f"{self.name}: phase times must be > 0")
        if self.kv_bytes_per_token < 1 or self.kv_capacity_bytes < 1:
            raise WorkloadError(f"{self.name}: KV sizes must be >= 1")
        if min(self.max_batch, self.prefill_chunk,
               self.kv_block_tokens) < 1:
            raise WorkloadError(f"{self.name}: batching knobs must be >= 1")
        if self.kv_capacity_bytes < self.kv_bytes_per_token * (
                self.prompt_tokens.maximum + self.output_tokens.maximum):
            raise WorkloadError(
                f"{self.name}: KV pool cannot hold even one max-length "
                f"request"
            )

    # ------------------------------------------------------------------
    def mean_request_time(self) -> float:
        """Idle-device, batch-of-one service time of an average request.

        The quantity ``load`` is defined against (as for the trace
        models): an arrival rate of ``load / mean_request_time`` keeps
        a serial server busy ``load`` of the time.  Continuous
        batching serves faster than serially, so the same load leaves
        more idle headroom than it would for a trace-model service.
        """
        prefill = self.prefill_token_time * self.prompt_tokens.mean
        steps = self.output_tokens.mean
        step = self.decode_step_time + self.decode_seq_time + self.host_gap
        return prefill + steps * step

    def kv_capacity_tokens(self) -> int:
        return self.kv_capacity_bytes // self.kv_bytes_per_token

    # ------------------------------------------------------------------
    # Deterministic kernel construction.  A name is hashed into stable
    # pseudo-random block geometry, so every occurrence of a kernel
    # name carries identical timing — the property both Tally's
    # profiler cache and the differential oracles rely on.
    # ------------------------------------------------------------------
    def _kernel(self, phase: str, bucket: int, duration: float,
                spec: GPUSpec) -> KernelDescriptor:
        name = f"{self.name}_{phase}_{bucket}"
        h = zlib.crc32(name.encode())
        threads = 512 if h & 1 else 1024
        capacity = spec.concurrent_blocks(threads)
        # Per-block time in the same 4-120 us band as the trace models.
        target = 8e-6 + (h % 997) / 997.0 * 40e-6
        target = min(target, duration)
        waves = max(1, min(256, round(duration / target)))
        # Decode steps at small batch underfill the device (the classic
        # serving-underutilization gap best-effort work soaks up);
        # prefill and big batches mostly fill it.
        fill = (0.25 + 0.5 * min(1.0, bucket / self.max_batch)
                if phase == "decode" else 0.85)
        blocks = (waves - 1) * capacity + max(1, int(capacity * fill))
        return KernelDescriptor(
            name=name,
            num_blocks=blocks,
            threads_per_block=threads,
            block_duration=duration / waves,
            ptb_overhead_fraction=0.02 + (h % 41) / 1000.0,
        )

    def prefill_kernel(self, chunk_tokens: int,
                       spec: GPUSpec) -> KernelDescriptor:
        """One prefill chunk of ``chunk_tokens`` prompt tokens."""
        bucket = _pow2_bucket(chunk_tokens, self.prefill_chunk)
        return self._kernel("prefill", bucket,
                            self.prefill_token_time * bucket, spec)

    def decode_kernel(self, batch: int, spec: GPUSpec) -> KernelDescriptor:
        """One decode step over ``batch`` sequences (bucket-quantized)."""
        bucket = _pow2_bucket(batch, self.max_batch)
        duration = self.decode_step_time + self.decode_seq_time * bucket
        return self._kernel("decode", bucket, duration, spec)


#: Built-in serving models.  Per-token costs are condensed ~10x from
#: A100 fp16 reality (llama-2-7b decodes ~25 ms/token); KV bytes per
#: token are the real architecture numbers (2 x layers x hidden x
#: 2 bytes x 2 tensors), and each pool is what remains of 40 GB after
#: fp16 weights and runtime overhead when co-located with a trainer.
LLM_MODELS: dict[str, LLMServingModel] = {
    "llama7b_serve": LLMServingModel(
        name="llama7b_serve", params=7e9,
        prompt_tokens=TokenLengths(mean=256, sigma=0.8, minimum=16,
                                   maximum=1024),
        output_tokens=TokenLengths(mean=64, sigma=0.7, minimum=4,
                                   maximum=256),
        prefill_token_time=8e-6,
        decode_step_time=1.6e-3,
        decode_seq_time=45e-6,
        host_gap=120e-6,
        kv_bytes_per_token=512 * 1024,  # 32 layers x 4096 x 2 x 2B
        kv_capacity_bytes=6 * 1024 ** 3,
        max_batch=16,
    ),
    "llama13b_serve": LLMServingModel(
        name="llama13b_serve", params=13e9,
        prompt_tokens=TokenLengths(mean=512, sigma=0.7, minimum=32,
                                   maximum=2048),
        output_tokens=TokenLengths(mean=128, sigma=0.7, minimum=8,
                                   maximum=512),
        prefill_token_time=14e-6,
        decode_step_time=2.6e-3,
        decode_seq_time=70e-6,
        host_gap=120e-6,
        kv_bytes_per_token=800 * 1024,  # 40 layers x 5120 x 2 x 2B
        kv_capacity_bytes=5 * 1024 ** 3,
        max_batch=8,
    ),
}


def get_llm_model(name: str) -> LLMServingModel:
    """Look up a serving model by name."""
    try:
        return LLM_MODELS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown LLM serving model {name!r}; "
            f"choose from {sorted(LLM_MODELS)}"
        ) from None


# ---------------------------------------------------------------------------
# KV cache
# ---------------------------------------------------------------------------

class KVCache:
    """Paged per-request KV accounting over a bounded pool.

    Every block is a real :class:`~repro.runtime.memory.MemoryManager`
    allocation (one element per token), so cache pressure is exercised
    through the same allocator the functional runtime uses and the
    drain invariant — every element allocated is eventually freed — is
    checked against the manager's lifetime counters, not a shadow
    tally.
    """

    def __init__(self, model: LLMServingModel,
                 manager: MemoryManager | None = None) -> None:
        self.model = model
        self.manager = manager if manager is not None else MemoryManager()
        self.capacity_tokens = model.kv_capacity_tokens()
        self._blocks: dict[int, list] = {}  # request index -> block refs
        self._block_tokens = model.kv_block_tokens
        self.block_allocs = 0
        self.block_frees = 0

    # ------------------------------------------------------------------
    @property
    def used_tokens(self) -> int:
        return self.manager.live_bytes()  # one element per token

    @property
    def used_bytes(self) -> int:
        return self.used_tokens * self.model.kv_bytes_per_token

    @property
    def utilization(self) -> float:
        return self.used_tokens / self.capacity_tokens

    def blocks_for(self, tokens: int) -> int:
        return -(-tokens // self._block_tokens)

    def can_hold(self, tokens: int) -> bool:
        needed = self.blocks_for(tokens) * self._block_tokens
        return self.used_tokens + needed <= self.capacity_tokens

    # ------------------------------------------------------------------
    def admit(self, index: int, tokens: int) -> None:
        """Reserve blocks for a request entering with ``tokens`` tokens."""
        if index in self._blocks:
            raise WorkloadError(f"request {index} already holds KV blocks")
        if not self.can_hold(tokens):
            raise WorkloadError(
                f"KV pool cannot hold {tokens} tokens "
                f"({self.used_tokens}/{self.capacity_tokens} used)"
            )
        refs = [self.manager.malloc(self._block_tokens)
                for _ in range(self.blocks_for(tokens))]
        self._blocks[index] = refs
        self.block_allocs += len(refs)

    def grow(self, index: int, tokens_now: int) -> bool:
        """Ensure ``tokens_now`` tokens fit; returns False on pressure.

        Growth is block-granular: most steps are free, and a False
        return means the pool is exhausted — the driver must evict.
        """
        refs = self._blocks.get(index)
        if refs is None:
            raise WorkloadError(f"request {index} holds no KV blocks")
        needed = self.blocks_for(tokens_now)
        while len(refs) < needed:
            if self.used_tokens + self._block_tokens > self.capacity_tokens:
                return False
            refs.append(self.manager.malloc(self._block_tokens))
            self.block_allocs += 1
        return True

    def release(self, index: int) -> None:
        """Free every block of a finished or evicted request."""
        refs = self._blocks.pop(index, None)
        if refs is None:
            return
        for ref in refs:
            self.manager.free(ref)
        self.block_frees += len(refs)

    def release_all(self) -> None:
        for index in list(self._blocks):
            self.release(index)


# ---------------------------------------------------------------------------
# Brownout
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BrownoutConfig:
    """Hysteresis-gated degradation ladder for overloaded serving.

    Brownout trades service *quality* for service *survival*: under
    sustained pressure the driver climbs one rung at a time —

    * **level 1**: shrink the effective decode batch to
      ``batch_shrink`` of the model's ``max_batch`` (each admitted
      request finishes sooner, freeing KV earlier);
    * **level 2**: additionally chunk prefill harder
      (``chunk_shrink`` of the model's ``prefill_chunk``), so decode
      steps — the latency-critical work — interleave more often;
    * **level 3**: additionally early-evict the youngest running
      sequences until KV pressure subsides (they hold the least sunk
      work; the standard best-effort-first shedding order).

    Pressure is read from KV-pool utilization and the unadmitted
    queue depth.  Escalation and relief use separate thresholds
    (``*_high`` / ``*_low``) with a ``min_dwell`` residence time per
    rung, so the ladder cannot flap on per-step noise.
    """

    #: KV utilization at or above which the ladder escalates
    kv_high: float = 0.85
    #: KV utilization at or below which the ladder may relax
    kv_low: float = 0.60
    #: waiting-queue depth at or above which the ladder escalates
    queue_high: int = 12
    #: waiting-queue depth at or below which the ladder may relax
    queue_low: int = 4
    #: minimum simulated time between level shifts (seconds)
    min_dwell: float = 0.05
    #: level >= 1 multiplier on ``max_batch``
    batch_shrink: float = 0.5
    #: level >= 2 multiplier on ``prefill_chunk``
    chunk_shrink: float = 0.5
    #: deepest rung of the ladder
    max_level: int = 3

    def __post_init__(self) -> None:
        if not 0.0 <= self.kv_low <= self.kv_high <= 1.0:
            raise WorkloadError("need 0 <= kv_low <= kv_high <= 1")
        if not 0 <= self.queue_low <= self.queue_high:
            raise WorkloadError("need 0 <= queue_low <= queue_high")
        if not 0.0 < self.batch_shrink <= 1.0:
            raise WorkloadError("batch_shrink must be in (0, 1]")
        if not 0.0 < self.chunk_shrink <= 1.0:
            raise WorkloadError("chunk_shrink must be in (0, 1]")
        if self.min_dwell < 0 or self.max_level < 1:
            raise WorkloadError("need min_dwell >= 0 and max_level >= 1")


# ---------------------------------------------------------------------------
# Requests
# ---------------------------------------------------------------------------

@dataclass
class LLMRequest:
    """One serving request's timeline."""

    index: int
    arrival: float
    prompt_tokens: int
    output_tokens: int
    admitted: float | None = None
    first_token: float | None = None
    #: generation timestamp of every emitted token (first included)
    token_times: list[float] = field(default_factory=list)
    finished: float | None = None
    evicted: bool = False
    #: shed from the admission queue because its TTFT deadline passed
    deadline_shed: bool = False

    @property
    def generated(self) -> int:
        return len(self.token_times)

    @property
    def completed(self) -> bool:
        return (self.finished is not None and not self.evicted
                and not self.deadline_shed)

    @property
    def ttft(self) -> float:
        if self.first_token is None:
            raise WorkloadError(f"request {self.index} has no first token")
        return self.first_token - self.arrival

    @property
    def queueing(self) -> float:
        """Arrival-to-admission delay (the continuous-batching queue)."""
        if self.admitted is None:
            raise WorkloadError(f"request {self.index} was never admitted")
        return self.admitted - self.arrival

    def inter_token_latencies(self) -> list[float]:
        times = self.token_times
        return [times[i] - times[i - 1] for i in range(1, len(times))]


# ---------------------------------------------------------------------------
# The continuous-batching driver
# ---------------------------------------------------------------------------

class LLMServingJob:
    """Drives one LLM serving endpoint through a sharing policy.

    The server loop mirrors a vLLM-style engine condensed to the
    timing-relevant decisions:

    1. **admission** — before every step, waiting requests are admitted
       FCFS while batch slots and KV headroom last;
    2. **prefill first** — an admitted request's prompt runs as a chain
       of prefill-chunk kernels; its completion emits the first token
       and moves the request into the decode batch;
    3. **batched decode** — one kernel per step advances every running
       sequence by one token and grows its KV by one token;
    4. **eviction** — when KV growth fails mid-decode, the *youngest*
       running request is evicted (terminal here: the request is
       shed and counted, the metric the SLO analysis needs) until the
       survivors fit.

    Everything is deterministic: request lengths come from one seeded
    generator, and all scheduling follows the event loop's stable
    order — identical seeds give bit-identical token timelines.
    """

    def __init__(self, model: LLMServingModel, traffic: TrafficTrace,
                 policy: SharingPolicy, client_id: str, *,
                 priority: Priority = Priority.HIGH,
                 seed: int = 0,
                 kv_manager: MemoryManager | None = None,
                 brownout: BrownoutConfig | None = None,
                 ttft_deadline: float | None = None) -> None:
        self.model = model
        self.traffic = traffic
        self.policy = policy
        self.engine: EventLoop = policy.engine
        self.client_id = client_id
        self.priority = priority
        self.spec = policy.device.spec
        self.kv = KVCache(model, kv_manager)
        self.requests: list[LLMRequest] = []
        self.evictions = 0
        self.crashed = False
        #: degradation ladder (None = never degrade)
        self.brownout = brownout
        self.brownout_level = 0
        self.brownout_shifts = 0
        #: level-3 early evictions (a subset of ``evictions``)
        self.brownout_evictions = 0
        #: relative TTFT bound; a request still queued past
        #: ``arrival + ttft_deadline`` is shed instead of admitted
        self.ttft_deadline = ttft_deadline
        self.deadline_sheds = 0
        self._last_brownout_shift = float("-inf")
        self._waiting: list[LLMRequest] = []
        self._prefilling: list[LLMRequest] = []
        self._running: list[LLMRequest] = []
        self._arrival_index = 0
        self._busy = False
        self._started = False
        rng = np.random.default_rng(
            (zlib.crc32(model.name.encode()) << 8) ^ seed)
        count = traffic.count
        self._prompt_lengths = model.prompt_tokens.sample(count, rng)
        self._output_lengths = model.output_tokens.sample(count, rng)
        policy.register_client(client_id, priority)

    # ------------------------------------------------------------------
    # Public accessors (harness contract)
    # ------------------------------------------------------------------
    @property
    def completed_requests(self) -> int:
        return sum(1 for r in self.requests if r.completed)

    @property
    def pending_requests(self) -> int:
        """Requests admitted or queued but not yet finished/evicted."""
        return (len(self._waiting) + len(self._prefilling)
                + len(self._running))

    def completions_in(self, start: float, end: float) -> int:
        return sum(1 for r in self.requests
                   if r.completed and start <= r.finished < end)

    def tokens_in(self, start: float, end: float) -> int:
        return sum(1 for r in self.requests for t in r.token_times
                   if start <= t < end)

    def token_timeline(self) -> list[tuple[int, float]]:
        """Every ``(request index, token time)``, in generation order.

        The bit-identity oracle: two runs agree iff these lists are
        exactly equal.
        """
        events = [(t, r.index) for r in self.requests
                  for t in r.token_times]
        events.sort()
        return [(index, t) for t, index in events]

    def queueing_summary(self, *, since: float = 0.0,
                         until: float = float("inf")):
        """Admission-queue delays of requests admitted in the window."""
        from ..metrics.latency import LatencySummary

        samples = [r.queueing for r in self.requests
                   if r.admitted is not None
                   and since <= r.admitted < until]
        return LatencySummary.of(samples) if samples else None

    def serving_summary(self, *, since: float = 0.0,
                        until: float = float("inf"),
                        slo: ServingSLO | None = None) -> ServingSummary:
        """Windowed :class:`~repro.metrics.serving.ServingSummary`."""
        ttfts = [r.ttft for r in self.requests
                 if r.first_token is not None
                 and since <= r.first_token < until]
        gaps = [gap for r in self.requests
                for t, gap in zip(r.token_times[1:],
                                  r.inter_token_latencies())
                if since <= t < until]
        timings = []
        for r in self.requests:
            if r.completed and since <= r.finished < until:
                its = r.inter_token_latencies()
                timings.append((r.ttft, max(its) if its else 0.0))
        evicted = sum(1 for r in self.requests
                      if r.evicted and since <= r.finished < until)
        span = min(until, self.engine.now) - since
        if span <= 0:
            raise WorkloadError(
                f"summary window [{since}, {until}) is empty at "
                f"t={self.engine.now}"
            )
        return ServingSummary.of(
            ttfts=ttfts, gaps=gaps, request_timings=timings,
            evicted=evicted, tokens=self.tokens_in(since, until),
            span=span, slo=slo,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, *, since: float = 0.0) -> None:
        """Arm the arrival process (call once, before running the engine).

        ``since`` skips arrivals scheduled before that time — the online
        control plane admits jobs mid-run, and requests "sent" before
        the endpoint existed never happened.
        """
        if self._started:
            raise WorkloadError(f"job {self.client_id!r} already started")
        self._started = True
        if since > 0.0:
            arrivals = self.traffic.arrivals
            while (self._arrival_index < self.traffic.count
                   and float(arrivals[self._arrival_index]) < since):
                self._arrival_index += 1
        self._schedule_next_arrival()

    def crash(self) -> None:
        """The serving process dies: shed all state, free all KV."""
        self.crashed = True
        self._waiting.clear()
        self._prefilling.clear()
        self._running.clear()
        self._busy = False
        self.kv.release_all()

    # ------------------------------------------------------------------
    # Arrivals
    # ------------------------------------------------------------------
    def _schedule_next_arrival(self) -> None:
        if self._arrival_index >= self.traffic.count:
            return
        when = float(self.traffic.arrivals[self._arrival_index])
        self._arrival_index += 1
        self.engine.schedule_at(when, self._on_arrival)

    def _on_arrival(self) -> None:
        if self.crashed:
            return
        index = len(self.requests)
        request = LLMRequest(
            index=index, arrival=self.engine.now,
            prompt_tokens=int(self._prompt_lengths[index]),
            output_tokens=int(self._output_lengths[index]),
        )
        self.requests.append(request)
        self._waiting.append(request)
        self._schedule_next_arrival()
        self._sample_queue_depth()
        if not self._busy:
            self._busy = True
            self._step()

    def _sample_queue_depth(self) -> None:
        tracer = self.policy.tracer
        if tracer.enabled:
            tracer.emit(QueueDepth(
                ts=self.engine.now, client_id=self.client_id, kernel="",
                depth=self.pending_requests,
            ))

    # ------------------------------------------------------------------
    # Brownout & deadlines
    # ------------------------------------------------------------------
    @property
    def effective_max_batch(self) -> int:
        """Decode-batch ceiling at the current brownout level."""
        if self.brownout is None or self.brownout_level < 1:
            return self.model.max_batch
        return max(1, int(self.model.max_batch * self.brownout.batch_shrink))

    @property
    def effective_prefill_chunk(self) -> int:
        """Prefill-chunk size at the current brownout level."""
        if self.brownout is None or self.brownout_level < 2:
            return self.model.prefill_chunk
        return max(1, int(self.model.prefill_chunk
                          * self.brownout.chunk_shrink))

    def _update_brownout(self) -> None:
        cfg = self.brownout
        if cfg is None:
            return
        if self.engine.now - self._last_brownout_shift < cfg.min_dwell:
            return
        kv = self.kv.utilization
        queue = len(self._waiting)
        level = self.brownout_level
        if ((kv >= cfg.kv_high or queue >= cfg.queue_high)
                and level < cfg.max_level):
            reason = "kv-pressure" if kv >= cfg.kv_high else "queue-depth"
            self._shift_brownout(level + 1, reason)
        elif kv <= cfg.kv_low and queue <= cfg.queue_low and level > 0:
            self._shift_brownout(level - 1, "relief")
        if self.brownout_level >= cfg.max_level:
            self._brownout_evict()

    def _shift_brownout(self, level: int, reason: str) -> None:
        previous = self.brownout_level
        self.brownout_level = level
        self.brownout_shifts += 1
        self._last_brownout_shift = self.engine.now
        tracer = self.policy.tracer
        if tracer.enabled:
            tracer.emit(BrownoutShift(
                ts=self.engine.now, client_id=self.client_id, kernel="",
                level=level, previous=previous, reason=reason,
                kv_utilization=self.kv.utilization,
                queue_depth=len(self._waiting),
            ))

    def _brownout_evict(self) -> None:
        """Level 3: early-evict the youngest sequences under pressure."""
        cfg = self.brownout
        while (len(self._running) > 1
               and self.kv.utilization >= cfg.kv_high):
            victim = max(self._running, key=lambda r: r.admitted)
            self._evict(victim)
            self.brownout_evictions += 1

    def _shed_past_deadline(self) -> None:
        """Drop queued requests whose TTFT deadline already passed.

        They have no KV and no sunk device work — shedding them here is
        free, and admitting them would only burn prefill capacity on
        replies their callers have stopped waiting for.
        """
        if self.ttft_deadline is None or not self._waiting:
            return
        now = self.engine.now
        kept: list[LLMRequest] = []
        tracer = self.policy.tracer
        for request in self._waiting:
            deadline = request.arrival + self.ttft_deadline
            if now >= deadline:
                request.deadline_shed = True
                request.finished = now
                self.deadline_sheds += 1
                if tracer.enabled:
                    tracer.emit(DeadlineShed(
                        ts=now, client_id=self.client_id, kernel="",
                        scope="llm", deadline=deadline,
                        lateness=now - deadline,
                    ))
            else:
                kept.append(request)
        self._waiting[:] = kept

    # ------------------------------------------------------------------
    # The engine loop
    # ------------------------------------------------------------------
    def _admit(self) -> None:
        """Pull waiting requests into the engine FCFS while room lasts."""
        self._shed_past_deadline()
        while (self._waiting
               and len(self._prefilling) + len(self._running)
               < self.effective_max_batch
               and self.kv.can_hold(self._waiting[0].prompt_tokens + 1)):
            request = self._waiting.pop(0)
            request.admitted = self.engine.now
            self.kv.admit(request.index, request.prompt_tokens + 1)
            self._prefilling.append(request)

    def _step(self) -> None:
        """Run one engine step: prefill when pending, decode otherwise."""
        if self.crashed:
            return
        self._update_brownout()
        self._admit()
        if self._prefilling:
            self._start_prefill(self._prefilling[0])
        elif self._running:
            self._start_decode()
        else:
            self._busy = False
            # going idle: nothing queued, nothing running — pressure is
            # definitionally gone, so the ladder need not walk down one
            # dwell window at a time
            if self.brownout is not None and self.brownout_level > 0:
                self._shift_brownout(0, "idle")
            self._sample_queue_depth()

    def _start_prefill(self, request: LLMRequest) -> None:
        remaining = request.prompt_tokens

        def submit_next() -> None:
            nonlocal remaining
            if self.crashed:
                return
            if remaining <= 0:
                self._finish_prefill(request)
                return
            # chunk size is re-read per kernel so a brownout shift takes
            # effect mid-prefill, not just at the next admission
            tokens = min(self.effective_prefill_chunk, remaining)
            remaining -= tokens
            kernel = self.model.prefill_kernel(tokens, self.spec)
            self.policy.submit(self.client_id, kernel, submit_next)

        submit_next()

    def _finish_prefill(self, request: LLMRequest) -> None:
        """Prefill done: the first token exists, decode takes over."""
        now = self.engine.now
        request.first_token = now
        request.token_times.append(now)
        self._prefilling.remove(request)
        if request.generated >= request.output_tokens:
            self._complete(request)  # degenerate single-token output
        else:
            self._running.append(request)
        self.engine.schedule(self.model.host_gap, self._step)

    def _start_decode(self) -> None:
        kernel = self.model.decode_kernel(len(self._running), self.spec)
        self.policy.submit(self.client_id, kernel, self._finish_decode)

    def _finish_decode(self) -> None:
        if self.crashed:
            return
        now = self.engine.now
        finished: list[LLMRequest] = []
        for request in list(self._running):
            if request.evicted:
                continue  # shed as a victim earlier in this same step
            if not self.kv.grow(request.index,
                                request.prompt_tokens + request.generated
                                + 1):
                self._evict_for_headroom(request)
                if request.evicted:
                    continue
            request.token_times.append(now)
            if request.generated >= request.output_tokens:
                finished.append(request)
        for request in finished:
            self._running.remove(request)
            self._complete(request)
        self.engine.schedule(self.model.host_gap, self._step)

    def _evict_for_headroom(self, needy: LLMRequest) -> None:
        """Shed the youngest running request(s) until ``needy`` fits.

        The youngest sequence holds the least sunk work, so shedding it
        wastes the fewest tokens — the standard serving heuristic.  If
        the youngest *is* ``needy``, it evicts itself.
        """
        while self._running:
            victim = max(self._running, key=lambda r: r.admitted)
            self._evict(victim)
            if victim is needy:
                return
            if self.kv.grow(needy.index,
                            needy.prompt_tokens + needy.generated + 1):
                return

    def _evict(self, request: LLMRequest) -> None:
        request.evicted = True
        request.finished = self.engine.now
        self.kv.release(request.index)
        self._running.remove(request)
        self.evictions += 1

    def _complete(self, request: LLMRequest) -> None:
        request.finished = self.engine.now
        self.kv.release(request.index)
        self._sample_queue_depth()
