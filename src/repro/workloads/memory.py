"""Device-memory footprint model for the workload suite.

GPU sharing is gated by memory before it is gated by compute: every
co-located job's weights, optimizer state, and activations must fit in
the device's memory (40 GB on the paper's A100s).  This module gives
each Table 2 workload a footprint estimate from its parameter count —

* inference: fp16 weights plus an activation/KV-cache allowance;
* training: fp32 weights, gradients, and Adam moments (4x parameters,
  16 bytes per parameter) plus activations —

and a checker the harness uses to validate that a co-location plan is
feasible on a given GPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..errors import WorkloadError
from .models import WorkloadKind, WorkloadModel, get_model

__all__ = [
    "MemoryFootprint",
    "PARAMETER_COUNTS",
    "footprint_of",
    "total_footprint",
    "check_memory_fit",
    "A100_MEMORY_BYTES",
]

#: Device memory of the paper's GPUs (A100-SXM4-40GB).
A100_MEMORY_BYTES = 40 * 1024 ** 3

#: Table 2 parameter counts.
PARAMETER_COUNTS: dict[str, float] = {
    "resnet50_train": 25.6e6,
    "pointnet_train": 3.5e6,
    "bert_train": 110e6,
    "gpt2_train": 774e6,
    "pegasus_train": 568e6,
    "whisper_train": 1.5e9,
    "resnet50_infer": 25.6e6,
    "bert_infer": 110e6,
    "yolov6m_infer": 34.9e6,
    "llama2_infer": 7e9,
    "stable_diffusion_infer": 983e6,
    "gptneo_infer": 2.7e9,
}

#: bytes per parameter for mixed-precision training: fp16 weights and
#: gradients plus fp32 master weights and one packed Adam state (the
#: memory-lean AMP configuration the paper's workloads need to fit a
#: 40 GB card).
_TRAINING_BYTES_PER_PARAM = 12
#: bytes per parameter for inference weights (fp16).
_INFERENCE_BYTES_PER_PARAM = 2
#: activation / workspace / KV-cache allowance as a fraction of weights.
_TRAINING_ACTIVATION_FACTOR = 0.20
_INFERENCE_ACTIVATION_FACTOR = 0.20
#: fixed per-process overhead (CUDA context, framework, buffers).
_PROCESS_OVERHEAD_BYTES = 768 * 1024 ** 2


@dataclass(frozen=True)
class MemoryFootprint:
    """Estimated device-memory usage of one workload process."""

    model: str
    weights: int
    activations: int
    overhead: int = _PROCESS_OVERHEAD_BYTES

    @property
    def total(self) -> int:
        return self.weights + self.activations + self.overhead

    def gib(self) -> float:
        return self.total / 1024 ** 3


def footprint_of(model_name: str) -> MemoryFootprint:
    """Memory footprint estimate for one workload."""
    from .llm import LLM_MODELS

    llm = LLM_MODELS.get(model_name)
    if llm is not None:
        # Serving: fp16 weights plus the explicitly sized KV pool (the
        # KV cache is the activation budget of an LLM server).
        return MemoryFootprint(
            model=model_name,
            weights=int(llm.params * _INFERENCE_BYTES_PER_PARAM),
            activations=llm.kv_capacity_bytes,
        )
    model: WorkloadModel = get_model(model_name)
    try:
        params = PARAMETER_COUNTS[model_name]
    except KeyError:
        raise WorkloadError(
            f"no parameter count recorded for {model_name!r}"
        ) from None
    if model.kind is WorkloadKind.TRAINING:
        weights = int(params * _TRAINING_BYTES_PER_PARAM)
        activations = int(weights * _TRAINING_ACTIVATION_FACTOR)
    else:
        weights = int(params * _INFERENCE_BYTES_PER_PARAM)
        activations = int(weights * _INFERENCE_ACTIVATION_FACTOR)
    return MemoryFootprint(model=model_name, weights=weights,
                           activations=activations)


def total_footprint(model_names: Iterable[str]) -> int:
    """Combined footprint of co-located workloads (bytes)."""
    return sum(footprint_of(name).total for name in model_names)


def check_memory_fit(model_names: Iterable[str],
                     capacity_bytes: int = A100_MEMORY_BYTES) -> None:
    """Raise :class:`WorkloadError` if the plan exceeds device memory."""
    names = list(model_names)
    needed = total_footprint(names)
    if needed > capacity_bytes:
        breakdown = ", ".join(
            f"{name}={footprint_of(name).gib():.1f}GiB" for name in names
        )
        raise WorkloadError(
            f"co-location plan needs {needed / 1024 ** 3:.1f} GiB but the "
            f"device has {capacity_bytes / 1024 ** 3:.0f} GiB ({breakdown})"
        )
