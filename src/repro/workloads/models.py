"""The paper's workload suite (Table 2) as kernel-trace models.

Each of the twelve workloads (six PyTorch training jobs, six inference
services) is modelled as a fixed trace of
:class:`~repro.gpu.kernel.KernelDescriptor` per iteration/request, with
a kernel-duration distribution calibrated to the statistics the paper
reports (e.g. 99.3 % of ResNet50 kernels < 0.1 ms; 5.6 % of Whisper
kernels > 3.93 ms) plus host-side gaps modelling CPU work.

**Condensation.** Simulating full-length iterations (e.g. Whisper's
3.3 s) with realistic per-kernel durations would need thousands of
kernels per iteration; instead each model is *condensed*: fewer kernels
per iteration, same duration distribution and GPU-busy fraction, so all
interference physics (kernel lengths, block counts, idle patterns) are
preserved while simulation cost stays manageable.  The ``condensation``
property reports the time-scale factor against the paper's Table 2
numbers; throughput results are normalized per-workload, so the factor
cancels in every figure.
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass
from typing import Literal

import numpy as np

from ..errors import WorkloadError
from ..gpu.kernel import KernelDescriptor
from ..gpu.specs import GPUSpec
from .distributions import DurationMixture

__all__ = [
    "WorkloadKind",
    "WorkloadModel",
    "Trace",
    "TraceOp",
    "TRAINING_MODELS",
    "INFERENCE_MODELS",
    "get_model",
]


class WorkloadKind(str, enum.Enum):
    TRAINING = "training"
    INFERENCE = "inference"


@dataclass(frozen=True)
class TraceOp:
    """One step of a trace: run a kernel, or idle on the host."""

    kind: Literal["kernel", "gap"]
    kernel: KernelDescriptor | None = None
    gap: float = 0.0


@dataclass(frozen=True)
class Trace:
    """A fixed per-iteration (or per-request) execution trace."""

    model_name: str
    ops: tuple[TraceOp, ...]
    gpu_time: float  # idle-device GPU time of all kernels
    host_time: float  # total host gaps

    @property
    def duration(self) -> float:
        """Idle-device wall time of one iteration/request."""
        return self.gpu_time + self.host_time

    @property
    def kernels(self) -> list[KernelDescriptor]:
        return [op.kernel for op in self.ops if op.kind == "kernel"]

    def kernel_durations(self, spec: GPUSpec) -> np.ndarray:
        """Idle-device durations of the trace's kernels (seconds)."""
        return np.array([op.kernel.duration(spec)
                         for op in self.ops if op.kind == "kernel"])


@dataclass(frozen=True)
class WorkloadModel:
    """Statistical description of one benchmark workload."""

    name: str
    kind: WorkloadKind
    #: paper metadata (Table 2)
    paper_engine: str
    paper_params: str
    #: Table 2 reference: iteration throughput (it/s) or request latency (s)
    paper_value: float
    #: real per-iteration / per-request duration implied by Table 2 (s)
    paper_duration: float
    num_kernels: int
    mixture: DurationMixture
    #: fraction of iteration wall time spent off-GPU (host work)
    host_gap_fraction: float
    #: host gaps are split into this many chunks across the trace
    gap_chunks: int = 10

    def __post_init__(self) -> None:
        if self.num_kernels < 1:
            raise WorkloadError(f"{self.name}: num_kernels must be >= 1")
        if not 0 <= self.host_gap_fraction < 1:
            raise WorkloadError(
                f"{self.name}: host_gap_fraction must be in [0, 1)"
            )

    # ------------------------------------------------------------------
    def build_trace(self, spec: GPUSpec, seed: int = 0) -> Trace:
        """Materialize a deterministic kernel trace on ``spec``.

        The same (model, seed) pair always yields the same trace, so
        kernel names are stable across iterations — which is what makes
        Tally's per-kernel profiling cache effective.
        """
        rng = np.random.default_rng(
            (zlib.crc32(self.name.encode()) << 8) ^ seed
        )
        durations = self.mixture.sample(self.num_kernels, rng)

        kernels: list[KernelDescriptor] = []
        gpu_time = 0.0
        for i, duration in enumerate(durations):
            kernels.append(self._make_kernel(spec, i, float(duration), rng))
            gpu_time += duration

        host_time = gpu_time * self.host_gap_fraction / (1 - self.host_gap_fraction)
        ops = self._interleave(kernels, host_time)
        return Trace(self.name, tuple(ops), gpu_time, host_time)

    #: cap on full-occupancy waves per kernel: bounds simulation events
    #: per kernel while keeping per-block durations (the quantity that
    #: bounds Tally's turnaround) realistic for all but the very longest
    #: kernels.
    MAX_WAVES = 256

    def _make_kernel(self, spec: GPUSpec, index: int, duration: float,
                     rng: np.random.Generator) -> KernelDescriptor:
        threads = int(rng.choice([512, 1024]))
        capacity = spec.concurrent_blocks(threads)
        # Per-block time: DL kernels run many short blocks; long kernels
        # are long because they have many waves, not huge blocks.
        target = float(np.clip(22e-6 * np.exp(0.6 * rng.standard_normal()),
                               4e-6, 120e-6))
        target = min(target, duration)
        waves = max(1, min(self.MAX_WAVES, round(duration / target)))
        block_duration = duration / waves
        # Short kernels rarely fill the device (the underutilization the
        # paper starts from); long compute kernels mostly do.
        if duration < 200e-6:
            fill = rng.uniform(0.15, 0.6)
        else:
            fill = rng.uniform(0.7, 1.0)
        blocks = (waves - 1) * capacity + max(1, int(capacity * fill))
        return KernelDescriptor(
            name=f"{self.name}_k{index:03d}",
            num_blocks=blocks,
            threads_per_block=threads,
            block_duration=block_duration,
            ptb_overhead_fraction=float(rng.uniform(0.02, 0.08)),
        )

    def _interleave(self, kernels: list[KernelDescriptor],
                    host_time: float) -> list[TraceOp]:
        ops: list[TraceOp] = []
        chunks = min(self.gap_chunks, len(kernels)) if host_time > 0 else 0
        gap_every = len(kernels) // chunks if chunks else 0
        gap = host_time / chunks if chunks else 0.0
        for i, kernel in enumerate(kernels):
            if chunks and i % gap_every == 0 and i // gap_every < chunks:
                ops.append(TraceOp("gap", gap=gap))
            ops.append(TraceOp("kernel", kernel=kernel))
        return ops

    # ------------------------------------------------------------------
    def condensation(self, trace: Trace) -> float:
        """Time-scale factor vs the paper's real workload."""
        return self.paper_duration / trace.duration


def _training(name: str, engine: str, params: str, it_per_s: float,
              num_kernels: int, mixture: DurationMixture,
              host_gap: float) -> WorkloadModel:
    return WorkloadModel(
        name=name, kind=WorkloadKind.TRAINING, paper_engine=engine,
        paper_params=params, paper_value=it_per_s,
        paper_duration=1.0 / it_per_s, num_kernels=num_kernels,
        mixture=mixture, host_gap_fraction=host_gap,
    )


def _inference(name: str, engine: str, params: str, latency: float,
               num_kernels: int, mixture: DurationMixture,
               host_gap: float) -> WorkloadModel:
    return WorkloadModel(
        name=name, kind=WorkloadKind.INFERENCE, paper_engine=engine,
        paper_params=params, paper_value=latency, paper_duration=latency,
        num_kernels=num_kernels, mixture=mixture,
        host_gap_fraction=host_gap,
    )


#: Six best-effort training workloads (paper Table 2, upper half).
TRAINING_MODELS: dict[str, WorkloadModel] = {
    "resnet50_train": _training(
        "resnet50_train", "PyTorch/ImageNet", "25.6M", 1.0, 300,
        # 99.3 % of kernels < 0.1 ms (paper §5.5) + a few long GEMMs.
        DurationMixture.of((0.992, 30e-6, 0.45), (0.008, 8e-3, 0.5)),
        host_gap=0.35,
    ),
    "pointnet_train": _training(
        "pointnet_train", "PyTorch/ShapeNet", "3.5M", 40.0, 90,
        DurationMixture.of((0.97, 40e-6, 0.5), (0.03, 1.5e-3, 0.4)),
        host_gap=0.45,
    ),
    "bert_train": _training(
        "bert_train", "PyTorch/SQuAD", "110M", 1.8, 220,
        DurationMixture.of((0.88, 120e-6, 0.6), (0.12, 2.2e-3, 0.5)),
        host_gap=0.10,
    ),
    "gpt2_train": _training(
        "gpt2_train", "PyTorch/Wikitext2", "774M", 3.3, 200,
        DurationMixture.of((0.75, 250e-6, 0.55), (0.25, 1.8e-3, 0.5)),
        host_gap=0.05,
    ),
    "pegasus_train": _training(
        "pegasus_train", "PyTorch/XSum", "568M", 2.9, 210,
        DurationMixture.of((0.78, 220e-6, 0.55), (0.22, 1.9e-3, 0.5)),
        host_gap=0.08,
    ),
    "whisper_train": _training(
        "whisper_train", "PyTorch/LibriSpeech", "1.5B", 0.3, 170,
        # 5.6 % of kernels exceed a full BERT inference (3.93 ms).
        DurationMixture.of((0.944, 700e-6, 0.7), (0.056, 16e-3, 0.6)),
        host_gap=0.03,
    ),
}

#: Six latency-critical inference workloads (paper Table 2, lower half).
INFERENCE_MODELS: dict[str, WorkloadModel] = {
    "resnet50_infer": _inference(
        "resnet50_infer", "Hidet", "25.6M", 1.37e-3, 24,
        DurationMixture.of((1.0, 45e-6, 0.4)), host_gap=0.0,
    ),
    "bert_infer": _inference(
        "bert_infer", "ONNX RT", "110M", 3.93e-3, 36,
        DurationMixture.of((0.95, 85e-6, 0.5), (0.05, 400e-6, 0.3)),
        host_gap=0.0,
    ),
    "yolov6m_infer": _inference(
        "yolov6m_infer", "TorchInductor", "34.9M", 17.5e-3, 60,
        DurationMixture.of((0.9, 180e-6, 0.5), (0.1, 1.2e-3, 0.4)),
        host_gap=0.0,
    ),
    "llama2_infer": _inference(
        "llama2_infer", "ONNX RT", "7B", 1.9, 240,
        DurationMixture.of((0.85, 450e-6, 0.5), (0.15, 1.6e-3, 0.4)),
        host_gap=0.0,
    ),
    "stable_diffusion_infer": _inference(
        "stable_diffusion_infer", "TorchInductor", "983M", 2.5, 200,
        DurationMixture.of((0.7, 650e-6, 0.5), (0.3, 2.0e-3, 0.4)),
        host_gap=0.0,
    ),
    "gptneo_infer": _inference(
        "gptneo_infer", "TorchInductor", "2.7B", 3.6, 260,
        DurationMixture.of((0.8, 600e-6, 0.5), (0.2, 2.2e-3, 0.4)),
        host_gap=0.0,
    ),
}


def get_model(name: str) -> WorkloadModel:
    """Look up a workload model by name."""
    if name in TRAINING_MODELS:
        return TRAINING_MODELS[name]
    if name in INFERENCE_MODELS:
        return INFERENCE_MODELS[name]
    known = sorted(TRAINING_MODELS) + sorted(INFERENCE_MODELS)
    raise WorkloadError(f"unknown workload {name!r}; choose from {known}")
