"""Best-effort training job driver.

A training job loops over its iteration trace forever: kernels are
submitted one at a time through the sharing policy (stream order), and
host gaps advance simulated time without touching the device.  The
driver records per-iteration completion times, from which the harness
computes throughput over any measurement window.
"""

from __future__ import annotations


from ..baselines.base import Priority, SharingPolicy
from ..errors import MigrationError, WorkloadError
from ..gpu.engine import Event, EventLoop
from .models import Trace

__all__ = ["TrainingJob"]


class TrainingJob:
    """Drives one training workload through a sharing policy."""

    def __init__(self, trace: Trace, policy: SharingPolicy, client_id: str,
                 *, priority: Priority = Priority.BEST_EFFORT) -> None:
        if not trace.ops:
            raise WorkloadError(f"trace {trace.model_name!r} is empty")
        self.trace = trace
        self.policy = policy
        self.engine: EventLoop = policy.engine
        self.client_id = client_id
        self.priority = priority
        self.iteration_completions: list[float] = []
        self.kernels_completed = 0
        self.started_at: float | None = None
        self.crashed = False
        self._op_index = 0
        self._stopped = False
        self._paused = False
        self._epoch = 0          # bumped by checkpoint(); stale-callback guard
        self._gap_event: Event | None = None
        policy.register_client(client_id, priority)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin iterating (call once, before running the engine)."""
        if self.started_at is not None:
            raise WorkloadError(f"job {self.client_id!r} already started")
        self.started_at = self.engine.now
        self._advance()

    def stop(self) -> None:
        """Stop after the current kernel/gap completes."""
        self._stopped = True

    def crash(self) -> None:
        """The client process dies: no further submissions, ever.

        Unlike :meth:`stop`, a crash also leaves any in-flight kernel
        without a consumer — the policy's ``disconnect`` must reclaim
        it; completion callbacks that still fire become no-ops.
        """
        self._stopped = True
        self.crashed = True

    # -- checkpoint/restore (live migration) ---------------------------
    def checkpoint(self) -> None:
        """Freeze the job for migration to another device.

        Training iterations have no externally visible request boundary,
        so the interrupted iteration simply restarts from its first
        kernel after :meth:`restore` — partial progress on the dead
        device is discarded, as a real trainer redoes the step from its
        last optimizer checkpoint.
        """
        self._paused = True
        self._epoch += 1
        if self._gap_event is not None:
            self._gap_event.cancel()
            self._gap_event = None
        self._op_index = 0

    def restore(self, policy: SharingPolicy) -> None:
        """Resume iterating on ``policy`` (after :meth:`checkpoint`)."""
        if policy.engine is not self.engine:
            raise MigrationError(
                f"cannot restore {self.client_id!r}: target policy runs on a "
                "different event loop")
        if not self._paused:
            raise MigrationError(
                f"restore of {self.client_id!r} without a checkpoint")
        self.policy = policy
        policy.register_client(self.client_id, self.priority)
        self._paused = False
        if not self._stopped:
            self._advance()

    # -- freeze/thaw (cross-loop migration) ----------------------------
    def freeze_state(self) -> dict:
        """Serialize the mutable state of a checkpointed trainer.

        A checkpointed trainer has no live events (the gap timer is
        cancelled, kernel completions are epoch-guarded), so the state
        is pure data; :meth:`thaw` rebuilds the driver on another event
        loop from the deterministically regenerated trace.
        """
        if not self._paused:
            raise MigrationError(
                f"freeze of {self.client_id!r} without a checkpoint")
        return {
            "client_id": self.client_id,
            "priority": self.priority,
            "iteration_completions": list(self.iteration_completions),
            "kernels_completed": self.kernels_completed,
            "started_at": self.started_at,
            "crashed": self.crashed,
            "stopped": self._stopped,
            "epoch": self._epoch,
        }

    @classmethod
    def thaw(cls, trace: Trace, policy: SharingPolicy,
             state: dict) -> "TrainingJob":
        """Rebuild a frozen trainer on ``policy``'s event loop.

        The thawed driver is paused and unregistered — the state an
        in-loop driver holds between ``checkpoint()`` and ``restore()``.
        """
        job = cls.__new__(cls)
        job.trace = trace
        job.policy = policy
        job.engine = policy.engine
        job.client_id = state["client_id"]
        job.priority = state["priority"]
        job.iteration_completions = list(state["iteration_completions"])
        job.kernels_completed = state["kernels_completed"]
        job.started_at = state["started_at"]
        job.crashed = state["crashed"]
        job._op_index = 0
        job._stopped = state["stopped"]
        job._paused = True
        job._epoch = state["epoch"]
        job._gap_event = None
        return job

    @property
    def iterations_completed(self) -> int:
        return len(self.iteration_completions)

    def fractional_iterations(self) -> float:
        """Completed iterations plus progress through the current one."""
        return self.iterations_completed + self._op_index / len(self.trace.ops)

    def completions_in(self, start: float, end: float) -> int:
        """Iterations completed within [start, end)."""
        return sum(1 for t in self.iteration_completions if start <= t < end)

    # ------------------------------------------------------------------
    def _advance(self) -> None:
        if self._stopped or self._paused:
            return
        self._gap_event = None
        if self._op_index >= len(self.trace.ops):
            self._op_index = 0
            self.iteration_completions.append(self.engine.now)
        op = self.trace.ops[self._op_index]
        self._op_index += 1
        if op.kind == "gap":
            self._gap_event = self.engine.schedule(op.gap, self._advance)
        else:
            epoch = self._epoch
            self.policy.submit(self.client_id, op.kernel,
                               lambda: self._kernel_done(epoch))

    def _kernel_done(self, epoch: int) -> None:
        if self.crashed or epoch != self._epoch:
            return  # racing a crash, or a device this client migrated off
        self.kernels_completed += 1
        self._advance()
