"""Best-effort training job driver.

A training job loops over its iteration trace forever: kernels are
submitted one at a time through the sharing policy (stream order), and
host gaps advance simulated time without touching the device.  The
driver records per-iteration completion times, from which the harness
computes throughput over any measurement window.
"""

from __future__ import annotations


from ..baselines.base import Priority, SharingPolicy
from ..errors import WorkloadError
from ..gpu.engine import EventLoop
from .models import Trace

__all__ = ["TrainingJob"]


class TrainingJob:
    """Drives one training workload through a sharing policy."""

    def __init__(self, trace: Trace, policy: SharingPolicy, client_id: str,
                 *, priority: Priority = Priority.BEST_EFFORT) -> None:
        if not trace.ops:
            raise WorkloadError(f"trace {trace.model_name!r} is empty")
        self.trace = trace
        self.policy = policy
        self.engine: EventLoop = policy.engine
        self.client_id = client_id
        self.priority = priority
        self.iteration_completions: list[float] = []
        self.kernels_completed = 0
        self.started_at: float | None = None
        self.crashed = False
        self._op_index = 0
        self._stopped = False
        policy.register_client(client_id, priority)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin iterating (call once, before running the engine)."""
        if self.started_at is not None:
            raise WorkloadError(f"job {self.client_id!r} already started")
        self.started_at = self.engine.now
        self._advance()

    def stop(self) -> None:
        """Stop after the current kernel/gap completes."""
        self._stopped = True

    def crash(self) -> None:
        """The client process dies: no further submissions, ever.

        Unlike :meth:`stop`, a crash also leaves any in-flight kernel
        without a consumer — the policy's ``disconnect`` must reclaim
        it; completion callbacks that still fire become no-ops.
        """
        self._stopped = True
        self.crashed = True

    @property
    def iterations_completed(self) -> int:
        return len(self.iteration_completions)

    def fractional_iterations(self) -> float:
        """Completed iterations plus progress through the current one."""
        return self.iterations_completed + self._op_index / len(self.trace.ops)

    def completions_in(self, start: float, end: float) -> int:
        """Iterations completed within [start, end)."""
        return sum(1 for t in self.iteration_completions if start <= t < end)

    # ------------------------------------------------------------------
    def _advance(self) -> None:
        if self._stopped:
            return
        if self._op_index >= len(self.trace.ops):
            self._op_index = 0
            self.iteration_completions.append(self.engine.now)
        op = self.trace.ops[self._op_index]
        self._op_index += 1
        if op.kind == "gap":
            self.engine.schedule(op.gap, self._advance)
        else:
            self.policy.submit(self.client_id, op.kernel, self._kernel_done)

    def _kernel_done(self) -> None:
        if self.crashed:
            return  # a completion racing the crash; nobody is listening
        self.kernels_completed += 1
        self._advance()
