"""Tests for the baseline GPU-sharing policies."""

import pytest

from repro.baselines import (
    Ideal,
    MPS,
    MPSPriority,
    Priority,
    TGS,
    TimeSlicing,
)
from repro.errors import SchedulerError
from repro.gpu import A100_SXM4_40GB, EventLoop, GPUDevice, KernelDescriptor

SPEC = A100_SXM4_40GB


def setup(policy_cls, **kw):
    engine = EventLoop()
    device = GPUDevice(SPEC, engine)
    return policy_cls(device, engine, **kw), device, engine


def kernel(name="k", blocks=100, bd=50e-6, tpb=256):
    return KernelDescriptor(name, num_blocks=blocks, threads_per_block=tpb,
                            block_duration=bd)


class TestPolicyBasics:
    @pytest.mark.parametrize("policy_cls", [Ideal, MPS, MPSPriority, TGS,
                                            TimeSlicing])
    def test_single_client_kernel_completes(self, policy_cls):
        policy, device, engine = setup(policy_cls)
        policy.register_client("a", Priority.HIGH)
        done = []
        policy.submit("a", kernel(), lambda: done.append(engine.now))
        engine.run()
        assert len(done) == 1

    @pytest.mark.parametrize("policy_cls", [Ideal, MPS, MPSPriority, TGS,
                                            TimeSlicing])
    def test_counters_track_submissions(self, policy_cls):
        policy, device, engine = setup(policy_cls)
        info = policy.register_client("a", Priority.HIGH)
        chain = [kernel(f"k{i}") for i in range(5)]

        def submit_next():
            if chain:
                policy.submit("a", chain.pop(), submit_next)

        submit_next()
        engine.run()
        assert info.kernels_submitted == 5
        assert info.kernels_completed == 5

    def test_unknown_client_rejected(self):
        policy, device, engine = setup(MPS)
        with pytest.raises(SchedulerError):
            policy.submit("ghost", kernel(), lambda: None)

    def test_duplicate_registration_rejected(self):
        policy, device, engine = setup(MPS)
        policy.register_client("a")
        with pytest.raises(SchedulerError):
            policy.register_client("a")


class TestMPSPriority:
    def test_priority_client_overtakes(self):
        """Under MPS-Priority the HP kernel finishes before a large BE
        kernel that was submitted first; under plain MPS they share."""
        def run(policy_cls):
            policy, device, engine = setup(policy_cls)
            policy.register_client("be", Priority.BEST_EFFORT)
            policy.register_client("hp", Priority.HIGH)
            done = {}
            policy.submit("be", kernel("big", blocks=864 * 6, bd=1e-3),
                          lambda: done.setdefault("be", engine.now))
            engine.schedule(0.1e-3, lambda: policy.submit(
                "hp", kernel("small", blocks=200, bd=50e-6),
                lambda: done.setdefault("hp", engine.now)))
            engine.run()
            return done

        prio = run(MPSPriority)
        assert prio["hp"] < prio["be"]


class TestTimeSlicing:
    def test_round_robin_shares_device(self):
        policy, device, engine = setup(TimeSlicing, quantum=1e-3)
        policy.register_client("a", Priority.HIGH)
        policy.register_client("b", Priority.HIGH)
        done = {}

        def chain(client, count):
            if count:
                policy.submit(client, kernel(f"{client}{count}", blocks=2000,
                                             bd=200e-6),
                              lambda: chain(client, count - 1))
            else:
                done[client] = engine.now

        chain("a", 10)
        chain("b", 10)
        engine.run()
        # Both make progress; neither is starved until the other ends.
        assert abs(done["a"] - done["b"]) < max(done.values()) * 0.6

    def test_quantum_expiry_preempts_running_kernels(self):
        policy, device, engine = setup(TimeSlicing, quantum=0.5e-3)
        policy.register_client("a", Priority.HIGH)
        policy.register_client("b", Priority.HIGH)
        done = {}
        # Client a runs one giant kernel; b queues a small one.
        policy.submit("a", kernel("giant", blocks=864 * 20, bd=1e-3),
                      lambda: done.setdefault("a", engine.now))
        engine.schedule(0.1e-3, lambda: policy.submit(
            "b", kernel("tiny", blocks=10, bd=20e-6),
            lambda: done.setdefault("b", engine.now)))
        engine.run()
        # Compute preemption: b ran long before a's 20ms kernel ended.
        assert done["b"] < done["a"] / 2
        assert policy.preemptions >= 1

    def test_invalid_quantum(self):
        with pytest.raises(SchedulerError):
            setup(TimeSlicing, quantum=0.0)


class TestTGS:
    def test_gap_grows_under_high_priority_activity(self):
        policy, device, engine = setup(TGS)
        policy.register_client("hp", Priority.HIGH)
        policy.register_client("be", Priority.BEST_EFFORT)
        initial_gap = policy.current_gap

        def hp_chain(count):
            if count:
                policy.submit("hp", kernel("hp_k", blocks=100),
                              lambda: hp_chain(count - 1))

        def be_chain(count):
            if count:
                policy.submit("be", kernel("be_k", blocks=100),
                              lambda: be_chain(count - 1))

        hp_chain(50)
        be_chain(50)
        engine.run_until(5e-3)
        assert policy.current_gap > initial_gap

    def test_gap_decays_when_idle(self):
        policy, device, engine = setup(TGS, initial_gap=4e-3)
        policy.register_client("hp", Priority.HIGH)
        policy.register_client("be", Priority.BEST_EFFORT)

        def be_chain(count):
            if count:
                policy.submit("be", kernel("be_k", blocks=50, bd=20e-6),
                              lambda: be_chain(count - 1))

        be_chain(20)
        engine.run()
        assert policy.current_gap < 4e-3

    def test_rate_limit_delays_best_effort(self):
        policy, device, engine = setup(
            TGS, initial_gap=2e-3, recovery=0.99)
        policy.register_client("hp", Priority.HIGH)
        policy.register_client("be", Priority.BEST_EFFORT)
        done = []
        policy.submit("be", kernel(blocks=10, bd=20e-6),
                      lambda: done.append(engine.now))
        engine.run()
        assert done[0] > 1.5e-3  # the gap gated the launch

    def test_parameter_validation(self):
        with pytest.raises(SchedulerError):
            setup(TGS, backoff=1.0)
        with pytest.raises(SchedulerError):
            setup(TGS, recovery=1.5)
